//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API used by this workspace's
//! benches — `Criterion::benchmark_group`, `sample_size`, `throughput`,
//! `bench_with_input`/`bench_function`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — with a plain wall-clock harness: warm up once, run
//! `sample_size` timed samples, report min/mean per-iteration time (and
//! derived throughput) on stdout. No statistics machinery, no HTML
//! reports; enough to compare runs by eye and keep `cargo bench` working
//! without network access.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque identifier of a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier rendered from a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }

    /// Identifier with a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units the per-iteration throughput is reported in.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for source compatibility with generated mains.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 10, throughput: None }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Report throughput per iteration in the given units.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure that receives an input reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        self.report(&id.id, &b);
        self
    }

    /// Finish the group (prints nothing extra; provided for parity).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        if b.samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let mean: Duration = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  {:.1} MiB/s", n as f64 / mean.as_secs_f64() / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: mean {mean:.2?}  min {min:.2?}  ({} samples){rate}",
            self.name,
            b.samples.len(),
        );
    }
}

/// Runs and times the measured closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`: one untimed warm-up call, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(1), &(), |b, _| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }
}
