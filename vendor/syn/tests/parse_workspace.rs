//! Every Rust source file in the repository must lex and group without
//! error (the statement layer is tolerant by construction).

use std::path::{Path, PathBuf};

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for e in entries.flatten() {
        let p = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect(&p, out);
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

#[test]
fn all_workspace_sources_parse() {
    let root =
        Path::new(env!("CARGO_MANIFEST_DIR")).parent().and_then(Path::parent).expect("repo root");
    let mut files = Vec::new();
    collect(root, &mut files);
    assert!(files.len() > 20, "expected a real workspace, found {} files", files.len());
    let mut fn_total = 0;
    for f in &files {
        let src = std::fs::read_to_string(f).expect("read source");
        match syn::parse_file(&src) {
            Ok(parsed) => fn_total += parsed.fns.len(),
            Err(e) => panic!("{} failed to parse: {e}", f.display()),
        }
    }
    assert!(fn_total > 100, "expected many functions, found {fn_total}");
}
