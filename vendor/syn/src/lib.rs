//! In-tree offline stand-in for the `syn` crate.
//!
//! The build environment has no registry access, so — like `vendor/rand`
//! and `vendor/proptest` — this crate reimplements exactly the surface the
//! workspace needs: enough Rust parsing for the `spmdlint` static
//! analyzer. It is *not* a full Rust parser. It provides:
//!
//! * a **lexer** that understands comments (line, nested block), string
//!   literals (plain, raw, byte), character literals vs. lifetimes, and
//!   multi-character operators, so later passes never false-positive on
//!   text inside comments or strings;
//! * **token trees**: the flat token stream grouped by `()`/`[]`/`{}`
//!   with open/close line numbers;
//! * an **item extractor** that walks modules, `impl` and `trait` blocks
//!   to find every `fn` (with its signature tokens, parameter binders,
//!   and whether it lives under `#[cfg(test)]` / `#[test]`), skipping
//!   `macro_rules!` definitions and item-level macro invocations;
//! * a **statement parser** that turns a function body into a
//!   control-flow-shaped tree (`let` / `let … else`, `if` / `if let`,
//!   `match` arms with guards, `for` / `while` / `loop`, `return`,
//!   `break` / `continue`), with everything else preserved verbatim as
//!   [`Expr::Opaque`] token runs. The parser is *tolerant*: malformed or
//!   unsupported syntax degrades to opaque tokens, never a panic.
//!
//! Line numbers are 1-based throughout.

use std::fmt;

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

/// Group delimiter kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Delim {
    Paren,
    Bracket,
    Brace,
}

/// A token tree: a leaf token or a delimited group.
#[derive(Clone, Debug)]
pub enum Tt {
    Group { delim: Delim, tokens: Vec<Tt>, open_line: usize, close_line: usize },
    Ident { text: String, line: usize },
    Lit { text: String, line: usize },
    Punct { text: String, line: usize },
    Lifetime { text: String, line: usize },
}

impl Tt {
    pub fn line(&self) -> usize {
        match self {
            Tt::Group { open_line, .. } => *open_line,
            Tt::Ident { line, .. }
            | Tt::Lit { line, .. }
            | Tt::Punct { line, .. }
            | Tt::Lifetime { line, .. } => *line,
        }
    }

    pub fn ident(&self) -> Option<&str> {
        match self {
            Tt::Ident { text, .. } => Some(text),
            _ => None,
        }
    }

    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, Tt::Ident { text, .. } if text == s)
    }

    pub fn is_punct(&self, s: &str) -> bool {
        matches!(self, Tt::Punct { text, .. } if text == s)
    }

    pub fn group(&self) -> Option<(Delim, &[Tt])> {
        match self {
            Tt::Group { delim, tokens, .. } => Some((*delim, tokens)),
            _ => None,
        }
    }

    pub fn brace_tokens(&self) -> Option<&[Tt]> {
        match self {
            Tt::Group { delim: Delim::Brace, tokens, .. } => Some(tokens),
            _ => None,
        }
    }
}

/// A parse error: unbalanced delimiter or unterminated literal.
#[derive(Debug)]
pub struct Error {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum FlatKind {
    Ident,
    Lit,
    Punct,
    Lifetime,
    Open(Delim),
    Close(Delim),
}

struct Flat {
    kind: FlatKind,
    text: String,
    line: usize,
}

/// Multi-character operators, longest first within each length class.
const PUNCT3: &[&str] = &["<<=", ">>=", "..=", "..."];
const PUNCT2: &[&str] = &[
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=",
    "^=", "&=", "|=", "..",
];

fn lex(src: &str) -> Result<Vec<Flat>, Error> {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    let count_newlines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count();

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = line;
            let mut depth = 1;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if b[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            if depth > 0 {
                return Err(Error { line: start, msg: "unterminated block comment".into() });
            }
            i = j;
            continue;
        }
        // Raw strings and raw identifiers: r"…", r#"…"#, br"…", r#ident.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (raw_at, is_raw) = if c == 'r' {
                (i + 1, true)
            } else if b[i + 1] == 'r' && i + 2 < n {
                (i + 2, true)
            } else {
                (i, false)
            };
            if is_raw {
                let mut hashes = 0;
                let mut j = raw_at;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == '"' {
                    // Raw string: scan for `"` followed by `hashes` hashes.
                    let start = line;
                    j += 1;
                    loop {
                        if j >= n {
                            return Err(Error {
                                line: start,
                                msg: "unterminated raw string".into(),
                            });
                        }
                        if b[j] == '\n' {
                            line += 1;
                            j += 1;
                            continue;
                        }
                        if b[j] == '"'
                            && b[j + 1..].iter().take(hashes).filter(|&&h| h == '#').count()
                                == hashes
                        {
                            j += 1 + hashes;
                            break;
                        }
                        j += 1;
                    }
                    out.push(Flat {
                        kind: FlatKind::Lit,
                        text: String::from("\"raw\""),
                        line: start,
                    });
                    i = j;
                    continue;
                }
                if c == 'r' && hashes == 1 && j < n && (b[j].is_alphabetic() || b[j] == '_') {
                    // Raw identifier r#ident: emit the bare identifier.
                    let mut k = j;
                    while k < n && (b[k].is_alphanumeric() || b[k] == '_') {
                        k += 1;
                    }
                    let text: String = b[j..k].iter().collect();
                    out.push(Flat { kind: FlatKind::Ident, text, line });
                    i = k;
                    continue;
                }
            }
        }
        // String literals (plain and byte).
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let start = line;
            let mut j = if c == '"' { i + 1 } else { i + 2 };
            loop {
                if j >= n {
                    return Err(Error { line: start, msg: "unterminated string".into() });
                }
                match b[j] {
                    '\\' => j += 2,
                    '\n' => {
                        line += 1;
                        j += 1;
                    }
                    '"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            out.push(Flat { kind: FlatKind::Lit, text: String::from("\"str\""), line: start });
            i = j;
            continue;
        }
        // Char literal vs. lifetime (and byte char b'…').
        if c == '\'' || (c == 'b' && i + 1 < n && b[i + 1] == '\'') {
            let q = if c == '\'' { i } else { i + 1 };
            // Lifetime: 'ident not closed by a quote.
            if c == '\'' && q + 1 < n && (b[q + 1].is_alphabetic() || b[q + 1] == '_') {
                let mut k = q + 2;
                while k < n && (b[k].is_alphanumeric() || b[k] == '_') {
                    k += 1;
                }
                if k < n && b[k] == '\'' && k == q + 2 {
                    // 'x' — single-char literal, fall through below.
                } else if k >= n || b[k] != '\'' {
                    let text: String = b[q + 1..k].iter().collect();
                    out.push(Flat { kind: FlatKind::Lifetime, text, line });
                    i = k;
                    continue;
                }
            }
            // Char literal: 'x', '\n', '\u{1F600}', b'x'.
            let mut j = q + 1;
            if j < n && b[j] == '\\' {
                j += 2;
                if j <= n && j >= 1 && b[j - 1] == 'u' && j < n && b[j] == '{' {
                    while j < n && b[j] != '}' {
                        j += 1;
                    }
                    j += 1;
                }
            } else {
                j += 1;
            }
            if j >= n || b[j] != '\'' {
                return Err(Error { line, msg: "unterminated character literal".into() });
            }
            let text: String = b[q..=j].iter().collect();
            line += count_newlines(&b[q..=j]);
            out.push(Flat { kind: FlatKind::Lit, text, line });
            i = j + 1;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            while j < n {
                let d = b[j];
                if d.is_alphanumeric() || d == '_' {
                    j += 1;
                } else if d == '.' && j + 1 < n && b[j + 1].is_ascii_digit() {
                    j += 1;
                } else if (d == '+' || d == '-')
                    && j > start
                    && (b[j - 1] == 'e' || b[j - 1] == 'E')
                    && b[start..j].iter().any(|&x| x == '.' || x.is_ascii_digit())
                {
                    j += 1;
                } else {
                    break;
                }
            }
            let text: String = b[start..j].iter().collect();
            out.push(Flat { kind: FlatKind::Lit, text, line });
            i = j;
            continue;
        }
        // Identifiers and keywords.
        if c.is_alphabetic() || c == '_' {
            let mut j = i;
            while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            let text: String = b[i..j].iter().collect();
            out.push(Flat { kind: FlatKind::Ident, text, line });
            i = j;
            continue;
        }
        // Delimiters.
        let delim = match c {
            '(' => Some((FlatKind::Open(Delim::Paren), "(")),
            ')' => Some((FlatKind::Close(Delim::Paren), ")")),
            '[' => Some((FlatKind::Open(Delim::Bracket), "[")),
            ']' => Some((FlatKind::Close(Delim::Bracket), "]")),
            '{' => Some((FlatKind::Open(Delim::Brace), "{")),
            '}' => Some((FlatKind::Close(Delim::Brace), "}")),
            _ => None,
        };
        if let Some((kind, text)) = delim {
            out.push(Flat { kind, text: text.into(), line });
            i += 1;
            continue;
        }
        // Multi-character operators, longest match first.
        let rest: String = b[i..n.min(i + 3)].iter().collect();
        let mut matched = None;
        for p in PUNCT3 {
            if rest.starts_with(p) {
                matched = Some(*p);
                break;
            }
        }
        if matched.is_none() {
            for p in PUNCT2 {
                if rest.starts_with(p) {
                    matched = Some(*p);
                    break;
                }
            }
        }
        if let Some(p) = matched {
            out.push(Flat { kind: FlatKind::Punct, text: p.into(), line });
            i += p.len();
            continue;
        }
        out.push(Flat { kind: FlatKind::Punct, text: c.to_string(), line });
        i += 1;
    }
    Ok(out)
}

/// Group a flat token stream into token trees.
fn group(flat: Vec<Flat>) -> Result<Vec<Tt>, Error> {
    // Each stack entry: (delim, open_line, accumulated tokens).
    let mut stack: Vec<(Delim, usize, Vec<Tt>)> = Vec::new();
    let mut top: Vec<Tt> = Vec::new();
    for f in flat {
        match f.kind {
            FlatKind::Open(d) => stack.push((d, f.line, Vec::new())),
            FlatKind::Close(d) => {
                let Some((open_d, open_line, tokens)) = stack.pop() else {
                    return Err(Error { line: f.line, msg: format!("unmatched `{}`", f.text) });
                };
                if open_d != d {
                    return Err(Error {
                        line: f.line,
                        msg: format!("mismatched delimiter closed by `{}`", f.text),
                    });
                }
                let g = Tt::Group { delim: d, tokens, open_line, close_line: f.line };
                match stack.last_mut() {
                    Some((_, _, parent)) => parent.push(g),
                    None => top.push(g),
                }
            }
            _ => {
                let tt = match f.kind {
                    FlatKind::Ident => Tt::Ident { text: f.text, line: f.line },
                    FlatKind::Lit => Tt::Lit { text: f.text, line: f.line },
                    FlatKind::Punct => Tt::Punct { text: f.text, line: f.line },
                    FlatKind::Lifetime => Tt::Lifetime { text: f.text, line: f.line },
                    _ => unreachable!(),
                };
                match stack.last_mut() {
                    Some((_, _, parent)) => parent.push(tt),
                    None => top.push(tt),
                }
            }
        }
    }
    if let Some((_, open_line, _)) = stack.first() {
        return Err(Error { line: *open_line, msg: "unclosed delimiter".into() });
    }
    Ok(top)
}

// ---------------------------------------------------------------------------
// Items
// ---------------------------------------------------------------------------

/// A parsed source file: the full token-tree stream, every function found
/// anywhere in it, and the line spans of `#[cfg(test)]` / `#[test]`
/// regions (for scans over the raw stream that must skip test code).
pub struct File {
    pub tokens: Vec<Tt>,
    pub fns: Vec<ItemFn>,
    pub test_spans: Vec<(usize, usize)>,
}

impl File {
    pub fn line_is_test(&self, line: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| line >= a && line <= b)
    }
}

/// A function item, wherever it was found (top level, `mod`, `impl`,
/// `trait`, or nested in another function's body).
pub struct ItemFn {
    pub name: String,
    pub line: usize,
    /// Tokens between the name and the body: generics, parameters, return
    /// type, where-clause.
    pub sig: Vec<Tt>,
    /// Parameter binder names (pattern identifiers, `self` excluded).
    pub params: Vec<String>,
    pub body: Vec<Stmt>,
    pub is_test: bool,
}

pub fn parse_file(src: &str) -> Result<File, Error> {
    let tokens = group(lex(src)?)?;
    let mut fns = Vec::new();
    let mut test_spans = Vec::new();
    collect_items(&tokens, false, &mut fns, &mut test_spans);
    Ok(File { tokens, fns, test_spans })
}

/// Does an attribute token sequence mark test code? Matches `#[test]`,
/// `#[cfg(test)]`, and composed forms like `#[cfg(all(test, …))]`;
/// `#[cfg(not(test))]` does not count.
fn attr_is_test(tokens: &[Tt]) -> bool {
    fn any_test(ts: &[Tt]) -> bool {
        ts.iter().any(|t| match t {
            Tt::Ident { text, .. } => text == "test",
            Tt::Group { tokens, .. } => any_test(tokens),
            _ => false,
        })
    }
    fn any_not(ts: &[Tt]) -> bool {
        ts.iter().any(|t| match t {
            Tt::Ident { text, .. } => text == "not",
            Tt::Group { tokens, .. } => any_not(tokens),
            _ => false,
        })
    }
    match tokens.first() {
        Some(t) if t.is_ident("test") => true,
        Some(t) if t.is_ident("cfg") => any_test(tokens) && !any_not(tokens),
        _ => false,
    }
}

fn collect_items(
    tokens: &[Tt],
    in_test: bool,
    fns: &mut Vec<ItemFn>,
    test_spans: &mut Vec<(usize, usize)>,
) {
    let mut i = 0;
    let mut attr_test = false; // a pending #[test]/#[cfg(test)] attribute
    while i < tokens.len() {
        // Attributes: `#[…]` or `#![…]`.
        if tokens[i].is_punct("#") {
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].is_punct("!") {
                j += 1;
            }
            if let Some(Tt::Group { delim: Delim::Bracket, tokens: at, .. }) = tokens.get(j) {
                if attr_is_test(at) {
                    attr_test = true;
                }
                i = j + 1;
                continue;
            }
            i += 1;
            continue;
        }
        let this_test = in_test || attr_test;
        match &tokens[i] {
            Tt::Ident { text, .. } if text == "fn" => {
                let (name, name_line) = match tokens.get(i + 1) {
                    Some(Tt::Ident { text, line }) => (text.clone(), *line),
                    _ => {
                        i += 1;
                        attr_test = false;
                        continue;
                    }
                };
                // Find the body brace (or `;` for a bodyless declaration).
                let mut j = i + 2;
                let mut body: Option<&Tt> = None;
                while j < tokens.len() {
                    match &tokens[j] {
                        Tt::Group { delim: Delim::Brace, .. } => {
                            body = Some(&tokens[j]);
                            break;
                        }
                        Tt::Punct { text, .. } if text == ";" => break,
                        _ => j += 1,
                    }
                }
                if let Some(Tt::Group { tokens: bt, open_line, close_line, .. }) = body {
                    let sig: Vec<Tt> = tokens[i + 2..j].to_vec();
                    let params = sig
                        .iter()
                        .find_map(|t| match t {
                            Tt::Group { delim: Delim::Paren, tokens, .. } => {
                                Some(param_binders(tokens))
                            }
                            _ => None,
                        })
                        .unwrap_or_default();
                    if this_test {
                        test_spans.push((*open_line, *close_line));
                    }
                    fns.push(ItemFn {
                        name,
                        line: name_line,
                        sig,
                        params,
                        body: parse_stmts(bt),
                        is_test: this_test,
                    });
                    // Nested `fn` items inside this body are functions too.
                    collect_items(bt, this_test, fns, test_spans);
                }
                i = j + 1;
                attr_test = false;
            }
            Tt::Ident { text, .. } if text == "mod" => {
                // `mod name { … }` or `mod name;`
                let mut j = i + 1;
                while j < tokens.len() {
                    match &tokens[j] {
                        Tt::Group { delim: Delim::Brace, tokens: mt, open_line, close_line } => {
                            if this_test {
                                test_spans.push((*open_line, *close_line));
                            }
                            collect_items(mt, this_test, fns, test_spans);
                            break;
                        }
                        Tt::Punct { text, .. } if text == ";" => break,
                        _ => j += 1,
                    }
                }
                i = j + 1;
                attr_test = false;
            }
            Tt::Ident { text, .. } if text == "impl" || text == "trait" => {
                let mut j = i + 1;
                while j < tokens.len() {
                    match &tokens[j] {
                        Tt::Group { delim: Delim::Brace, tokens: bt, open_line, close_line } => {
                            if this_test {
                                test_spans.push((*open_line, *close_line));
                            }
                            collect_items(bt, this_test, fns, test_spans);
                            break;
                        }
                        Tt::Punct { text, .. } if text == ";" => break,
                        _ => j += 1,
                    }
                }
                i = j + 1;
                attr_test = false;
            }
            Tt::Ident { text, .. } if text == "macro_rules" => {
                // `macro_rules! name { … }` — never parse macro bodies.
                let mut j = i + 1;
                while j < tokens.len() {
                    if matches!(&tokens[j], Tt::Group { delim: Delim::Brace, .. }) {
                        break;
                    }
                    j += 1;
                }
                i = j + 1;
                attr_test = false;
            }
            Tt::Ident { text, .. } if text == "struct" || text == "enum" || text == "union" => {
                // Skip to the end of the type definition: `;` or its body.
                let mut j = i + 1;
                while j < tokens.len() {
                    match &tokens[j] {
                        Tt::Group { delim: Delim::Brace, .. } => break,
                        Tt::Punct { text, .. } if text == ";" => break,
                        _ => j += 1,
                    }
                }
                i = j + 1;
                attr_test = false;
            }
            // Item-level macro invocation (`proptest! { … }`, `thread_local! { … }`):
            // macro-generated code is not analyzed.
            Tt::Ident { .. }
                if matches!(tokens.get(i + 1), Some(t) if t.is_punct("!"))
                    && matches!(tokens.get(i + 2), Some(Tt::Group { .. })) =>
            {
                i += 3;
                attr_test = false;
            }
            _ => {
                i += 1;
                attr_test = false;
            }
        }
    }
}

/// Extract binder names from a parameter-list token sequence: for each
/// comma-separated parameter, the pattern identifiers before the `:`.
fn param_binders(tokens: &[Tt]) -> Vec<String> {
    let mut out = Vec::new();
    for part in split_top(tokens, ",") {
        let pat = match top_index(part, ":") {
            Some(k) => &part[..k],
            None => part,
        };
        for t in pat {
            if let Tt::Ident { text, .. } = t {
                if text != "mut" && text != "ref" && text != "self" && text != "box" {
                    out.push(text.clone());
                }
            }
        }
    }
    out
}

/// Split a token sequence at every top-level occurrence of punct `p`.
pub fn split_top<'a>(tokens: &'a [Tt], p: &str) -> Vec<&'a [Tt]> {
    let mut out = Vec::new();
    let mut start = 0;
    for (k, t) in tokens.iter().enumerate() {
        if t.is_punct(p) {
            out.push(&tokens[start..k]);
            start = k + 1;
        }
    }
    if start < tokens.len() {
        out.push(&tokens[start..]);
    }
    out
}

/// Index of the first top-level occurrence of punct `p`.
pub fn top_index(tokens: &[Tt], p: &str) -> Option<usize> {
    tokens.iter().position(|t| t.is_punct(p))
}

/// Index of the first top-level identifier `s`.
pub fn top_ident_index(tokens: &[Tt], s: &str) -> Option<usize> {
    tokens.iter().position(|t| t.is_ident(s))
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

/// A statement in a function body.
#[derive(Debug)]
pub enum Stmt {
    /// `let <pat>(: ty)? (= init)? (else { … })? ;`
    Let {
        names: Vec<String>,
        init: Option<Expr>,
        else_block: Option<Vec<Stmt>>,
        line: usize,
    },
    Expr(Expr),
}

/// A control-flow-shaped expression; anything unrecognized is `Opaque`.
#[derive(Debug)]
pub enum Expr {
    If {
        cond: Vec<Tt>,
        then_branch: Vec<Stmt>,
        else_branch: Option<Box<Expr>>,
        line: usize,
    },
    Match {
        scrutinee: Vec<Tt>,
        arms: Vec<Arm>,
        line: usize,
    },
    ForLoop {
        pat: Vec<Tt>,
        iter: Vec<Tt>,
        body: Vec<Stmt>,
        line: usize,
    },
    While {
        cond: Vec<Tt>,
        body: Vec<Stmt>,
        line: usize,
    },
    Loop {
        body: Vec<Stmt>,
        line: usize,
    },
    Block {
        stmts: Vec<Stmt>,
        line: usize,
    },
    Return {
        value: Vec<Tt>,
        line: usize,
    },
    Break {
        line: usize,
    },
    Continue {
        line: usize,
    },
    /// A control expression followed by trailing tokens
    /// (e.g. `match x { … }.to_string()`).
    Chain {
        head: Box<Expr>,
        rest: Vec<Tt>,
        line: usize,
    },
    Opaque {
        tokens: Vec<Tt>,
        line: usize,
    },
}

impl Expr {
    pub fn line(&self) -> usize {
        match self {
            Expr::If { line, .. }
            | Expr::Match { line, .. }
            | Expr::ForLoop { line, .. }
            | Expr::While { line, .. }
            | Expr::Loop { line, .. }
            | Expr::Block { line, .. }
            | Expr::Return { line, .. }
            | Expr::Break { line }
            | Expr::Continue { line }
            | Expr::Chain { line, .. }
            | Expr::Opaque { line, .. } => *line,
        }
    }
}

/// A `match` arm.
#[derive(Debug)]
pub struct Arm {
    pub pat: Vec<Tt>,
    pub guard: Vec<Tt>,
    pub body: Vec<Stmt>,
    pub line: usize,
}

const CONTROL_KEYWORDS: &[&str] = &["if", "match", "for", "while", "loop", "unsafe"];

fn starts_control(tokens: &[Tt]) -> bool {
    match tokens.first() {
        Some(Tt::Ident { text, .. }) => CONTROL_KEYWORDS.contains(&text.as_str()),
        Some(Tt::Group { delim: Delim::Brace, .. }) => true,
        _ => false,
    }
}

/// Parse a token sequence as a block of statements. Tolerant: anything
/// not recognized becomes an opaque expression statement.
pub fn parse_stmts(tokens: &[Tt]) -> Vec<Stmt> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Stray semicolons and attributes.
        if tokens[i].is_punct(";") {
            i += 1;
            continue;
        }
        if tokens[i].is_punct("#") {
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].is_punct("!") {
                j += 1;
            }
            if matches!(tokens.get(j), Some(Tt::Group { delim: Delim::Bracket, .. })) {
                i = j + 1;
                continue;
            }
            i += 1;
            continue;
        }
        // Loop labels: `'label: loop { … }`.
        if matches!(tokens[i], Tt::Lifetime { .. })
            && matches!(tokens.get(i + 1), Some(t) if t.is_punct(":"))
        {
            i += 2;
            continue;
        }
        // Nested `fn` items were collected separately; skip them here.
        if tokens[i].is_ident("fn")
            || (tokens[i].is_ident("pub")
                && matches!(tokens.get(i + 1), Some(t) if t.is_ident("fn")))
        {
            let mut j = i + 1;
            while j < tokens.len() {
                match &tokens[j] {
                    Tt::Group { delim: Delim::Brace, .. } => break,
                    Tt::Punct { text, .. } if text == ";" => break,
                    _ => j += 1,
                }
            }
            i = j + 1;
            continue;
        }
        if tokens[i].is_ident("let") {
            let line = tokens[i].line();
            let end = stmt_end(tokens, i);
            let inner = &tokens[i + 1..end];
            let (names_part, init_part) = match top_index(inner, "=") {
                Some(eq) => (&inner[..eq], Some(&inner[eq + 1..])),
                None => (inner, None),
            };
            let pat = match top_index(names_part, ":") {
                Some(k) => &names_part[..k],
                None => names_part,
            };
            let names = pattern_binders(pat);
            let (init, else_block) = match init_part {
                Some(it) => {
                    // `let … = init else { … };`
                    let mut split = None;
                    for (k, t) in it.iter().enumerate() {
                        if t.is_ident("else") {
                            if let Some(bt) = it.get(k + 1).and_then(|g| g.brace_tokens()) {
                                split = Some((k, bt));
                                break;
                            }
                        }
                    }
                    match split {
                        Some((k, bt)) => (Some(parse_expr(&it[..k])), Some(parse_stmts(bt))),
                        None => (Some(parse_expr(it)), None),
                    }
                }
                None => (None, None),
            };
            out.push(Stmt::Let { names, init, else_block, line });
            i = end + 1;
            continue;
        }
        if tokens[i].is_ident("return") {
            let line = tokens[i].line();
            let end = stmt_end(tokens, i);
            out.push(Stmt::Expr(Expr::Return { value: tokens[i + 1..end].to_vec(), line }));
            i = end + 1;
            continue;
        }
        if tokens[i].is_ident("break") || tokens[i].is_ident("continue") {
            let line = tokens[i].line();
            let is_break = tokens[i].is_ident("break");
            let end = stmt_end(tokens, i);
            out.push(Stmt::Expr(if is_break {
                Expr::Break { line }
            } else {
                Expr::Continue { line }
            }));
            i = end + 1;
            continue;
        }
        if starts_control(&tokens[i..]) {
            let (expr, used) = parse_control(&tokens[i..]);
            let after = i + used;
            // A control statement ends at its closing brace; only a
            // following `.` or `?` continues it as an expression chain
            // (`match x { … }.to_string()` in tail position).
            let chains = matches!(tokens.get(after), Some(t) if t.is_punct(".") || t.is_punct("?"));
            if chains {
                let end = stmt_end(tokens, after);
                let line = expr.line();
                out.push(Stmt::Expr(Expr::Chain {
                    head: Box::new(expr),
                    rest: tokens[after..end].to_vec(),
                    line,
                }));
                i = end + 1;
            } else {
                out.push(Stmt::Expr(expr));
                i = after;
            }
            continue;
        }
        // Opaque expression statement.
        let line = tokens[i].line();
        let end = stmt_end(tokens, i);
        out.push(Stmt::Expr(Expr::Opaque { tokens: tokens[i..end].to_vec(), line }));
        i = end + 1;
    }
    out
}

/// Index of the `;` ending the statement starting at `start` (or the end
/// of the sequence for a tail expression).
fn stmt_end(tokens: &[Tt], start: usize) -> usize {
    for (k, t) in tokens.iter().enumerate().skip(start) {
        if t.is_punct(";") {
            return k;
        }
    }
    tokens.len()
}

/// Binder identifiers in a pattern: lowercase-starting identifiers that
/// are not keywords, path segments, or struct-literal field names.
pub fn pattern_binders(pat: &[Tt]) -> Vec<String> {
    let mut out = Vec::new();
    collect_binders(pat, &mut out);
    out
}

fn collect_binders(pat: &[Tt], out: &mut Vec<String>) {
    for (k, t) in pat.iter().enumerate() {
        match t {
            Tt::Ident { text, .. } => {
                let first = text.chars().next();
                let lower = matches!(first, Some(c) if c.is_lowercase() || c == '_');
                if !lower || text == "_" {
                    continue;
                }
                if matches!(text.as_str(), "mut" | "ref" | "box" | "if" | "in" | "self") {
                    continue;
                }
                // Path segment (`std::cmp::min`) or field name (`field: pat`).
                let next_path = matches!(pat.get(k + 1), Some(n) if n.is_punct("::"));
                let prev_path = k > 0 && pat[k - 1].is_punct("::");
                let field_name = matches!(pat.get(k + 1), Some(n) if n.is_punct(":"));
                if next_path || prev_path || field_name {
                    continue;
                }
                out.push(text.clone());
            }
            Tt::Group { tokens, .. } => collect_binders(tokens, out),
            _ => {}
        }
    }
}

/// Parse an expression: control-flow forms get structure; everything else
/// is opaque.
pub fn parse_expr(tokens: &[Tt]) -> Expr {
    if tokens.is_empty() {
        return Expr::Opaque { tokens: Vec::new(), line: 0 };
    }
    if starts_control(tokens) {
        let (expr, used) = parse_control(tokens);
        if used >= tokens.len() {
            return expr;
        }
        let line = expr.line();
        return Expr::Chain { head: Box::new(expr), rest: tokens[used..].to_vec(), line };
    }
    Expr::Opaque { tokens: tokens.to_vec(), line: tokens[0].line() }
}

/// Find the body brace of an `if`/`while` header starting at `from`: the
/// first top-level brace group not immediately followed by `=` (an
/// `if let Pat { … } = x` pattern brace *is* followed by `=`).
fn header_body(tokens: &[Tt], from: usize) -> Option<usize> {
    let mut k = from;
    while k < tokens.len() {
        if matches!(tokens[k], Tt::Group { delim: Delim::Brace, .. }) {
            let followed_by_eq = matches!(tokens.get(k + 1), Some(t) if t.is_punct("="));
            if !followed_by_eq {
                return Some(k);
            }
        }
        k += 1;
    }
    None
}

/// Parse one control expression at the start of `tokens`; returns the
/// expression and the number of tokens consumed. Malformed input degrades
/// to a one-token opaque expression (the caller always advances).
fn parse_control(tokens: &[Tt]) -> (Expr, usize) {
    let line = tokens[0].line();
    let opaque1 = |line| (Expr::Opaque { tokens: tokens[..1].to_vec(), line }, 1);
    if let Tt::Group { delim: Delim::Brace, tokens: bt, .. } = &tokens[0] {
        return (Expr::Block { stmts: parse_stmts(bt), line }, 1);
    }
    let Some(kw) = tokens[0].ident() else { return opaque1(line) };
    match kw {
        "if" => {
            let Some(k) = header_body(tokens, 1) else { return opaque1(line) };
            let cond = tokens[1..k].to_vec();
            let then_branch = match tokens[k].brace_tokens() {
                Some(bt) => parse_stmts(bt),
                None => Vec::new(),
            };
            let mut used = k + 1;
            let mut else_branch = None;
            if matches!(tokens.get(used), Some(t) if t.is_ident("else")) {
                if let Some(next) = tokens.get(used + 1) {
                    if next.is_ident("if") {
                        let (e, u) = parse_control(&tokens[used + 1..]);
                        else_branch = Some(Box::new(e));
                        used += 1 + u;
                    } else if let Some(bt) = next.brace_tokens() {
                        else_branch = Some(Box::new(Expr::Block {
                            stmts: parse_stmts(bt),
                            line: next.line(),
                        }));
                        used += 2;
                    }
                }
            }
            (Expr::If { cond, then_branch, else_branch, line }, used)
        }
        "match" => {
            let mut k = 1;
            while k < tokens.len() && !matches!(tokens[k], Tt::Group { delim: Delim::Brace, .. }) {
                k += 1;
            }
            if k >= tokens.len() {
                return opaque1(line);
            }
            let scrutinee = tokens[1..k].to_vec();
            let arms = match tokens[k].brace_tokens() {
                Some(bt) => parse_arms(bt),
                None => Vec::new(),
            };
            (Expr::Match { scrutinee, arms, line }, k + 1)
        }
        "for" => {
            let Some(in_at) = top_ident_index(&tokens[1..], "in").map(|k| k + 1) else {
                return opaque1(line);
            };
            let Some(k) = header_body(tokens, in_at + 1) else { return opaque1(line) };
            let pat = tokens[1..in_at].to_vec();
            let iter = tokens[in_at + 1..k].to_vec();
            let body = match tokens[k].brace_tokens() {
                Some(bt) => parse_stmts(bt),
                None => Vec::new(),
            };
            (Expr::ForLoop { pat, iter, body, line }, k + 1)
        }
        "while" => {
            let Some(k) = header_body(tokens, 1) else { return opaque1(line) };
            let cond = tokens[1..k].to_vec();
            let body = match tokens[k].brace_tokens() {
                Some(bt) => parse_stmts(bt),
                None => Vec::new(),
            };
            (Expr::While { cond, body, line }, k + 1)
        }
        "loop" => match tokens.get(1).and_then(|t| t.brace_tokens()) {
            Some(bt) => (Expr::Loop { body: parse_stmts(bt), line }, 2),
            None => opaque1(line),
        },
        "unsafe" => match tokens.get(1).and_then(|t| t.brace_tokens()) {
            Some(bt) => (Expr::Block { stmts: parse_stmts(bt), line }, 2),
            None => opaque1(line),
        },
        _ => opaque1(line),
    }
}

fn parse_arms(tokens: &[Tt]) -> Vec<Arm> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and leading `|`.
        if tokens[i].is_punct("#") {
            if matches!(tokens.get(i + 1), Some(Tt::Group { delim: Delim::Bracket, .. })) {
                i += 2;
                continue;
            }
            i += 1;
            continue;
        }
        if tokens[i].is_punct("|") || tokens[i].is_punct(",") {
            i += 1;
            continue;
        }
        let Some(arrow) = tokens[i..].iter().position(|t| t.is_punct("=>")).map(|k| k + i) else {
            break;
        };
        let line = tokens[i].line();
        let pat_all = &tokens[i..arrow];
        let (pat, guard) = match top_ident_index(pat_all, "if") {
            Some(g) => (pat_all[..g].to_vec(), pat_all[g + 1..].to_vec()),
            None => (pat_all.to_vec(), Vec::new()),
        };
        // Arm body: a brace block, or tokens up to the next top-level `,`.
        if let Some(bt) = tokens.get(arrow + 1).and_then(|t| t.brace_tokens()) {
            out.push(Arm { pat, guard, body: parse_stmts(bt), line });
            i = arrow + 2;
        } else {
            let end = tokens[arrow + 1..]
                .iter()
                .position(|t| t.is_punct(","))
                .map(|k| k + arrow + 1)
                .unwrap_or(tokens.len());
            out.push(Arm { pat, guard, body: parse_stmts(&tokens[arrow + 1..end]), line });
            i = end + 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> File {
        parse_file(src).expect("parse")
    }

    #[test]
    fn comments_and_strings_do_not_produce_tokens() {
        let f = file("// x.unwrap()\n/* nested /* still */ comment */\nlet s = \"a.unwrap()\";\n");
        let mut idents = Vec::new();
        fn walk(ts: &[Tt], out: &mut Vec<String>) {
            for t in ts {
                match t {
                    Tt::Ident { text, .. } => out.push(text.clone()),
                    Tt::Group { tokens, .. } => walk(tokens, out),
                    _ => {}
                }
            }
        }
        walk(&f.tokens, &mut idents);
        assert_eq!(idents, vec!["let", "s"]);
    }

    #[test]
    fn lifetimes_and_chars_are_distinguished() {
        let f = file("fn a<'x>(v: &'x u8) -> char { 'y' }\n");
        assert_eq!(f.fns.len(), 1);
        let has_lifetime =
            f.fns[0].sig.iter().any(|t| matches!(t, Tt::Lifetime { text, .. } if text == "x"));
        assert!(has_lifetime);
    }

    #[test]
    fn fns_are_found_in_mods_impls_and_nested() {
        let src = "mod m { impl Foo { fn a(&self) {} } }\nfn b() { fn c() {} }\n";
        let f = file(src);
        let names: Vec<&str> = f.fns.iter().map(|x| x.name.as_str()).collect();
        assert!(names.contains(&"a"));
        assert!(names.contains(&"b"));
        assert!(names.contains(&"c"));
    }

    #[test]
    fn cfg_test_mods_and_test_fns_are_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod t {\n    #[test]\n    fn check() {}\n    fn helper() {}\n}\n";
        let f = file(src);
        let by_name = |n: &str| f.fns.iter().find(|x| x.name == n).expect("fn");
        assert!(!by_name("prod").is_test);
        assert!(by_name("check").is_test);
        assert!(by_name("helper").is_test);
        assert!(f.line_is_test(5));
        assert!(!f.line_is_test(1));
    }

    #[test]
    fn macro_bodies_are_skipped() {
        let src = "macro_rules! m { () => { fn fake() {} }; }\nproptest! { fn also_fake(x in 0..3) {} }\nfn real() {}\n";
        let f = file(src);
        let names: Vec<&str> = f.fns.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn statement_shapes_parse() {
        let src = "fn a(x: usize) -> usize {\n    let y = x + 1;\n    if y > 2 { return 0; } else { y += 1; }\n    match y {\n        0 => {}\n        n if n > 5 => { y = n; }\n        _ => y = 1,\n    }\n    for i in 0..y { y += i; }\n    while y > 0 { y -= 1; }\n    loop { break; }\n    y\n}\n";
        let f = file(src);
        let body = &f.fns[0].body;
        assert!(matches!(body[0], Stmt::Let { ref names, .. } if names == &["y"]));
        assert!(matches!(body[1], Stmt::Expr(Expr::If { .. })));
        let Stmt::Expr(Expr::Match { ref arms, .. }) = body[2] else { panic!("match") };
        assert_eq!(arms.len(), 3);
        assert!(!arms[1].guard.is_empty(), "guard preserved");
        assert!(matches!(body[3], Stmt::Expr(Expr::ForLoop { .. })));
        assert!(matches!(body[4], Stmt::Expr(Expr::While { .. })));
        assert!(matches!(body[5], Stmt::Expr(Expr::Loop { .. })));
        assert!(matches!(body[6], Stmt::Expr(Expr::Opaque { .. })));
    }

    #[test]
    fn let_else_and_if_let_parse() {
        let src = "fn a(o: Option<u8>) {\n    let Some(v) = o else { return; };\n    if let Some(w) = o { drop(w); }\n    let z = if v > 0 { 1 } else { 2 };\n    drop(z);\n}\n";
        let f = file(src);
        let body = &f.fns[0].body;
        let Stmt::Let { names, else_block, .. } = &body[0] else { panic!("let-else") };
        assert_eq!(names, &["v"]);
        assert!(else_block.is_some());
        assert!(matches!(body[1], Stmt::Expr(Expr::If { .. })));
        let Stmt::Let { init: Some(Expr::If { .. }), .. } = &body[2] else {
            panic!("control init")
        };
    }

    #[test]
    fn if_let_with_struct_pattern_finds_the_right_body() {
        let src = "fn a(s: S) -> u8 {\n    if let S { x } = s { x } else { 0 }\n}\n";
        let f = file(src);
        let Stmt::Expr(Expr::If { cond, then_branch, else_branch, .. }) = &f.fns[0].body[0] else {
            panic!("if");
        };
        // The pattern brace `{ x }` stays in the condition; the body is
        // the block after `= s`.
        assert!(cond.iter().any(|t| t.is_ident("let")));
        assert_eq!(then_branch.len(), 1);
        assert!(else_branch.is_some());
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "fn a() {\n    let s = \"two\nlines\";\n    /* block\ncomment */\n    b();\n}\n";
        let f = file(src);
        let Stmt::Expr(Expr::Opaque { line, .. }) = &f.fns[0].body[1] else { panic!("call") };
        assert_eq!(*line, 6);
    }

    #[test]
    fn raw_strings_and_numbers_lex() {
        let f =
            file("fn a() { let x = r#\"quote \" inside\"#; let y = 1.5e-3f64; let z = 0..10; }");
        assert_eq!(f.fns.len(), 1);
        let Stmt::Let { init: Some(Expr::Opaque { tokens, .. }), .. } = &f.fns[0].body[1] else {
            panic!("float")
        };
        assert!(matches!(&tokens[0], Tt::Lit { text, .. } if text == "1.5e-3f64"));
    }

    #[test]
    fn unbalanced_delimiters_error() {
        assert!(parse_file("fn a() { (").is_err());
        assert!(parse_file("fn a() }").is_err());
    }

    #[test]
    fn chain_after_control_expr() {
        let src = "fn a(x: u8) -> String { match x { _ => 1 }.to_string() }";
        let f = file(src);
        assert!(matches!(f.fns[0].body[0], Stmt::Expr(Expr::Chain { .. })));
    }
}
