//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}
