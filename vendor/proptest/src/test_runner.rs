//! The deterministic RNG behind property tests.

/// Deterministic generator seeded from the test's name, so every run of a
/// given property test sees the identical case stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a of the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `lo..hi`.
    pub fn below_range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
