//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this in-tree crate
//! implements the subset of proptest used by the workspace's property tests:
//! the [`proptest!`] macro, range / `Just` / tuple / [`prop_oneof!`] /
//! `prop::collection::vec` strategies, `ProptestConfig { cases, .. }`, and
//! the `prop_assert*` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs and panics as-is), and the value stream is a deterministic
//! function of the test name and the case index, so failures reproduce
//! exactly on re-run without a regression file.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategies over collections (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size` and
    /// elements drawn from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A vector strategy: lengths from `size`, elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec size range must be non-empty");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.below_range(self.size.start as u64, self.size.end as u64) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert inside a property; failure reports the case's inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property; failure reports the case's inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..cfg.cases {
                    let values = ( $( $crate::strategy::Strategy::sample(&($strat), &mut rng) ),* ,);
                    let described = format!("{values:?}");
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || {
                        let ( $($pat),* ,) = values;
                        $body
                    }));
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest {}: case {case}/{} failed with inputs {described}",
                            stringify!($name),
                            cfg.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        prop_oneof![Just(1u32), Just(2u32), Just(3u32)]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -1.0f64..1.0, s in small()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!((1..=3).contains(&s));
        }

        #[test]
        fn tuples_and_vecs((a, b) in (0u64..10, 0u64..10), v in prop::collection::vec(0.0f64..5.0, 1..6)) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|x| (0.0..5.0).contains(x)));
        }
    }

    #[test]
    fn stream_is_deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.clone().sample(&mut a), s.clone().sample(&mut b));
        }
    }
}
