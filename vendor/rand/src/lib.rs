//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this in-tree crate provides the (small) subset of the `rand 0.8` API the
//! workspace actually uses: a seedable deterministic generator
//! ([`rngs::StdRng`]), integer/float range sampling ([`Rng::gen_range`]) and
//! Bernoulli draws ([`Rng::gen_bool`]).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but every consumer in this
//! workspace treats the RNG as an arbitrary deterministic stream behind a
//! seed, so only determinism matters, not the exact sequence.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Widening-multiply range reduction (Lemire); the residual
                // modulo bias is < 2^-64 * span, irrelevant for test data.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64); // [0, 1)
        self.start + u * (self.end - self.start)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open, like `rand`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..32).all(|_| a.gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX));
        assert!(!same, "different seeds should diverge");
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "{hits}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn full_range_sampling_covers_extremes_eventually() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen0 = false;
        let mut seen9 = false;
        for _ in 0..10_000 {
            match rng.gen_range(0u8..10) {
                0 => seen0 = true,
                9 => seen9 = true,
                _ => {}
            }
        }
        assert!(seen0 && seen9);
    }
}
