//! # p-autoclass — the facade crate
//!
//! Reproduction of *“Scalable Parallel Clustering for Data Mining on
//! Multicomputers”* (Foti, Lipari, Pizzuti, Talia — the P-AutoClass
//! paper, IPPS 2000 workshops). This crate re-exports the workspace
//! members under one roof and hosts the runnable examples and the
//! cross-crate integration tests.
//!
//! * [`autoclass`] — sequential AutoClass (Bayesian mixture clustering).
//! * [`pautoclass`] — the paper's SPMD parallelization.
//! * [`mpsim`] — the simulated message-passing multicomputer substrate.
//! * [`datagen`] — seeded synthetic workloads.
//! * [`kmeans`] — the hard-assignment parallel baseline.
//!
//! Start with `examples/quickstart.rs`, then see DESIGN.md for the system
//! inventory and EXPERIMENTS.md for the paper-vs-measured record.

#![warn(missing_docs)]

pub use autoclass;
pub use datagen;
pub use kmeans;
pub use mpsim;
pub use pautoclass;
