//! Command-line AutoClass: cluster a CSV dataset and print the report —
//! the workflow of AutoClass C's `autoclass -search data.db2 data.hd2 ...`,
//! with the `.hd2` header replaced by a small schema file.
//!
//! ```text
//! autoclass --data items.csv --schema items.schema \
//!           [--procs 8] [--j 2,4,8] [--tries 2] [--max-cycles 100] \
//!           [--seed 42] [--assign out.csv]
//! ```
//!
//! Schema file format, one attribute per line (matching the CSV columns):
//!
//! ```text
//! # comments and blank lines are ignored
//! age       real 0.5
//! mass      positive_real 0.01
//! channel   discrete mobile,web,store
//! segment   discrete 4            # 4 unnamed levels (CSV holds 0..3)
//! ```
//!
//! With `--procs P` the search runs on a simulated P-processor Meiko CS-2
//! (deterministic virtual timing); without it, plain sequential AutoClass.

use std::fs::File;
use std::io::Write as _;
use std::process::ExitCode;

use autoclass::data::{read_csv, Attribute, GlobalStats, Schema, Value};
use autoclass::predict::classify;
use autoclass::report::report;
use autoclass::search::SearchConfig;
use autoclass::Model;
use p_autoclass as _;
use pautoclass::{run_search, ParallelConfig};

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("run with --help for usage");
    ExitCode::FAILURE
}

const HELP: &str = "\
autoclass — Bayesian unsupervised classification (AutoClass reimplementation)

USAGE:
  autoclass --data FILE.csv --schema FILE.schema [OPTIONS]

OPTIONS:
  --data FILE        CSV data file (header row, '?' = missing)   [required]
  --schema FILE      schema file (see below)                     [required]
  --procs P          run P-AutoClass on a simulated P-processor Meiko CS-2
  --j LIST           start_j_list, e.g. 2,4,8,16    [default: 2,4,8,16,24,50,64]
  --tries N          random restarts per J          [default: 2]
  --max-cycles N     EM cycle cap per try           [default: 200]
  --seed S           random seed                    [default: 11307093]
  --blocks SPEC      correlated attribute blocks, e.g. 0-1;2-3-4 (multi_normal_cn)
  --assign FILE      write per-item class assignments + posteriors as CSV
  --save FILE        save the search's classifications (AutoClass-style results file)
  --load FILE        skip the search: load a results file and only predict
  --help             this text

SCHEMA FILE: one attribute per line, in CSV column order:
  NAME real ERROR              real-valued, absolute measurement error
  NAME positive_real ERROR     positive real modeled on the log scale
  NAME discrete N              categorical with N unnamed levels (0..N-1)
  NAME discrete a,b,c          categorical with named levels
'#' starts a comment.";

fn parse_schema(text: &str) -> Result<Schema, String> {
    let mut attrs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (name, kind, arg) = match (parts.next(), parts.next(), parts.next()) {
            (Some(n), Some(k), Some(a)) => (n, k, a),
            _ => return Err(format!("schema line {}: expected NAME KIND ARG", lineno + 1)),
        };
        let attr = match kind {
            "real" => {
                let err: f64 = arg
                    .parse()
                    .map_err(|_| format!("schema line {}: bad error {arg:?}", lineno + 1))?;
                Attribute::real(name, err)
            }
            "positive_real" => {
                let err: f64 = arg
                    .parse()
                    .map_err(|_| format!("schema line {}: bad error {arg:?}", lineno + 1))?;
                Attribute::positive_real(name, err)
            }
            "discrete" => {
                if let Ok(levels) = arg.parse::<usize>() {
                    Attribute::discrete(name, levels)
                } else {
                    let names: Vec<String> = arg.split(',').map(str::to_string).collect();
                    Attribute::discrete_named(name, names)
                }
            }
            other => return Err(format!("schema line {}: unknown kind {other:?}", lineno + 1)),
        };
        attrs.push(attr);
    }
    if attrs.is_empty() {
        return Err("schema file has no attributes".into());
    }
    Ok(Schema::new(attrs))
}

struct Args {
    data: String,
    schema: String,
    procs: Option<usize>,
    j_list: Vec<usize>,
    tries: usize,
    max_cycles: usize,
    seed: u64,
    blocks: Vec<Vec<usize>>,
    assign: Option<String>,
    save: Option<String>,
    load: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        data: String::new(),
        schema: String::new(),
        procs: None,
        j_list: vec![2, 4, 8, 16, 24, 50, 64],
        tries: 2,
        max_cycles: 200,
        seed: 11_307_093,
        blocks: Vec::new(),
        assign: None,
        save: None,
        load: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().cloned().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--data" => args.data = val()?,
            "--schema" => args.schema = val()?,
            "--procs" => args.procs = Some(val()?.parse().map_err(|_| "bad --procs")?),
            "--j" => {
                args.j_list = val()?
                    .split(',')
                    .map(|s| s.parse().map_err(|_| format!("bad J value {s:?}")))
                    .collect::<Result<_, _>>()?
            }
            "--tries" => args.tries = val()?.parse().map_err(|_| "bad --tries")?,
            "--max-cycles" => args.max_cycles = val()?.parse().map_err(|_| "bad --max-cycles")?,
            "--seed" => args.seed = val()?.parse().map_err(|_| "bad --seed")?,
            "--assign" => args.assign = Some(val()?),
            "--save" => args.save = Some(val()?),
            "--load" => args.load = Some(val()?),
            "--blocks" => {
                args.blocks = val()?
                    .split(';')
                    .map(|b| {
                        b.split('-')
                            .map(|s| s.parse().map_err(|_| format!("bad block index {s:?}")))
                            .collect::<Result<Vec<usize>, _>>()
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.data.is_empty() || args.schema.is_empty() {
        return Err("--data and --schema are required".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) if e == "help" => {
            println!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Err(e) => return fail(&e),
    };

    let schema_text = match std::fs::read_to_string(&args.schema) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read schema {:?}: {e}", args.schema)),
    };
    let schema = match parse_schema(&schema_text) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let file = match File::open(&args.data) {
        Ok(f) => f,
        Err(e) => return fail(&format!("cannot open data {:?}: {e}", args.data)),
    };
    let data = match read_csv(schema, file) {
        Ok(d) => d,
        Err(e) => return fail(&format!("cannot parse {:?}: {e}", args.data)),
    };
    eprintln!("loaded {} items x {} attributes", data.len(), data.schema().len());

    let sconfig = SearchConfig {
        start_j_list: args.j_list,
        tries_per_j: args.tries,
        max_cycles: args.max_cycles,
        seed: args.seed,
        ..SearchConfig::default()
    };

    // Either load a stored search result, or run the search.
    let (all, blocks): (Vec<autoclass::Classification>, Vec<Vec<usize>>) =
        if let Some(path) = &args.load {
            let file = match File::open(path) {
                Ok(f) => f,
                Err(e) => return fail(&format!("cannot open {path:?}: {e}")),
            };
            match autoclass::store::read_results(std::io::BufReader::new(file)) {
                Ok((all, blocks)) => {
                    eprintln!("loaded {} classification(s) from {path}", all.len());
                    (all, blocks)
                }
                Err(e) => return fail(&format!("cannot parse {path:?}: {e}")),
            }
        } else if let Some(p) = args.procs {
            let machine = mpsim::presets::meiko_cs2(p);
            let config = ParallelConfig {
                search: sconfig,
                correlated_blocks: args.blocks.clone(),
                ..ParallelConfig::default()
            };
            match run_search(&data, &machine, &config) {
                Ok(out) => {
                    eprintln!(
                        "P-AutoClass on {p} simulated processors: {:.2} virtual seconds, \
                         {} cycles",
                        out.elapsed, out.cycles
                    );
                    (out.all, args.blocks.clone())
                }
                Err(e) => return fail(&e.to_string()),
            }
        } else {
            let t0 = std::time::Instant::now();
            let stats = GlobalStats::compute(&data.full_view());
            let model = if args.blocks.is_empty() {
                Model::new(data.schema().clone(), &stats)
            } else {
                Model::with_correlated(data.schema().clone(), &stats, &args.blocks)
            };
            let result = autoclass::search::search_with_model(&data.full_view(), &model, &sconfig);
            eprintln!(
                "sequential search: {:.2}s host time, {} cycles, base_cycle {:.1}%",
                t0.elapsed().as_secs_f64(),
                result.profile.cycles,
                100.0 * result.profile.base_cycle_fraction()
            );
            (result.all, args.blocks.clone())
        };
    let best = all.first().expect("at least one classification").clone();

    let stats = GlobalStats::compute(&data.full_view());
    let model = if blocks.is_empty() {
        Model::new(data.schema().clone(), &stats)
    } else {
        Model::with_correlated(data.schema().clone(), &stats, &blocks)
    };
    if let Err(e) = autoclass::store::check_against_model(&model, &best) {
        return fail(&format!("results do not match the data schema: {e}"));
    }
    println!("{}", report(&model, &stats, &best));

    if let Some(path) = &args.save {
        let mut file = match File::create(path) {
            Ok(f) => f,
            Err(e) => return fail(&format!("cannot create {path:?}: {e}")),
        };
        if let Err(e) = autoclass::store::write_results(&mut file, &all, &blocks) {
            return fail(&format!("cannot write {path:?}: {e}"));
        }
        eprintln!("results saved to {path}");
    }

    if let Some(path) = args.assign {
        let view = data.full_view();
        let mut out = match File::create(&path) {
            Ok(f) => f,
            Err(e) => return fail(&format!("cannot create {path:?}: {e}")),
        };
        let mut text = String::from("item,class,posterior\n");
        for i in 0..data.len() {
            let row: Vec<Value> = (0..data.schema().len())
                .map(|c| match &data.schema().attributes[c].kind {
                    autoclass::data::AttributeKind::Real { .. }
                    | autoclass::data::AttributeKind::PositiveReal { .. } => {
                        let x = view.real_column(c)[i];
                        if x.is_nan() {
                            Value::Missing
                        } else {
                            Value::Real(x)
                        }
                    }
                    autoclass::data::AttributeKind::Discrete { .. } => {
                        let l = view.discrete_column(c)[i];
                        if l == autoclass::data::MISSING_DISCRETE {
                            Value::Missing
                        } else {
                            Value::Discrete(l)
                        }
                    }
                })
                .collect();
            let (cls, post) = classify(&model, &best.classes, &row);
            text.push_str(&format!("{i},{cls},{post:.6}\n"));
        }
        if let Err(e) = out.write_all(text.as_bytes()) {
            return fail(&format!("cannot write {path:?}: {e}"));
        }
        eprintln!("assignments written to {path}");
    }
    ExitCode::SUCCESS
}
