//! Quickstart: cluster a small synthetic dataset sequentially, inspect the
//! report, then run the same search on a simulated 8-processor
//! multicomputer and compare results and (virtual) runtimes.
//!
//! Run with: `cargo run --example quickstart --release`

use autoclass::data::GlobalStats;
use autoclass::report::report;
use autoclass::search::{search, SearchConfig};
use autoclass::Model;
use pautoclass::{run_search, ParallelConfig};

fn main() {
    // 1. A dataset with three planted Gaussian clusters in 2-D.
    let mixture = datagen::GaussianMixture::well_separated(3, 2, 12.0);
    let (data, _labels) = mixture.generate(3_000, 42);
    println!("dataset: {} tuples x {} real attributes\n", data.len(), data.schema().len());

    // 2. Sequential AutoClass: search over candidate class counts.
    let config = SearchConfig {
        start_j_list: vec![2, 3, 4, 8],
        tries_per_j: 2,
        max_cycles: 60,
        ..SearchConfig::default()
    };
    let t0 = std::time::Instant::now();
    let seq = search(&data.full_view(), &config);
    println!(
        "sequential AutoClass: best = {} classes (CS score {:.1}) in {:.2}s host time",
        seq.best.n_classes(),
        seq.best.score(),
        t0.elapsed().as_secs_f64()
    );

    // 3. The influence report (which attributes define each class).
    let stats = GlobalStats::compute(&data.full_view());
    let model = Model::new(data.schema().clone(), &stats);
    println!("\n{}", report(&model, &stats, &seq.best));

    // 4. P-AutoClass on a simulated 8-processor Meiko CS-2: identical
    //    semantics, and the virtual clock reports parallel elapsed time.
    let machine = mpsim::presets::meiko_cs2(8);
    let pconfig = ParallelConfig { search: config, ..ParallelConfig::default() };
    let par = run_search(&data, &machine, &pconfig).expect("simulated run");
    println!(
        "P-AutoClass on 8 simulated processors: best = {} classes (CS score {:.1})",
        par.best.n_classes(),
        par.best.score()
    );
    println!("virtual elapsed: {:.3}s  ({} EM cycles total)", par.elapsed, par.cycles);
    let single = run_search(&data, &mpsim::presets::meiko_cs2(1), &pconfig).expect("run");
    println!(
        "virtual elapsed on 1 processor: {:.3}s  -> speedup {:.2}x",
        single.elapsed,
        single.elapsed / par.elapsed
    );
    assert_eq!(par.best.n_classes(), seq.best.n_classes());
    println!("\nsequential and parallel searches agree.");

    // 5. Fleet-parallel: the same 8 processors split into two concurrent
    //    sub-searches drawing candidates from the shared schedule, with
    //    duplicate elimination and a final consensus stage.
    let fc = pautoclass::FleetConfig::default();
    let fleet = pautoclass::run_search_fleet(&data, &machine, &pconfig, &fc).expect("fleet run");
    println!(
        "fleet of {}: {} candidates, best = {} classes, virtual elapsed {:.3}s",
        fleet.fleet.groups,
        fleet.fleet.candidates,
        fleet.outcome.best.n_classes(),
        fleet.outcome.elapsed
    );
}
