//! Satellite-image segmentation: the workload AutoClass is famous for
//! (the Landsat/TM classification in Kanefsky et al. 1994 took the
//! sequential system more than 130 hours — the paper's §3 motivation).
//!
//! We generate a synthetic multi-band raster with spatially coherent land
//! covers, cluster the pixel spectra with P-AutoClass on a simulated
//! 10-processor machine, and measure how well the discovered classes
//! recover the planted covers (cluster purity), plus the virtual-time
//! speedup over one processor.
//!
//! Run with: `cargo run --example satellite_segmentation --release`

use autoclass::data::Value;
use autoclass::predict::classify;
use autoclass::search::SearchConfig;
use autoclass::{data::GlobalStats, Model};
use pautoclass::{run_search, ParallelConfig};

fn main() {
    let side = 48; // 48x48 pixels = 2 304 tuples
    let bands = 4; // e.g. visible + near-infrared channels
    let covers = 5;
    let (image, truth) = datagen::satellite_image(side, bands, covers, 2024);
    println!(
        "synthetic scene: {side}x{side} pixels, {bands} spectral bands, {covers} land covers\n"
    );

    let config = ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![2, 4, 6, 8],
            tries_per_j: 2,
            max_cycles: 60,
            ..SearchConfig::default()
        },
        ..ParallelConfig::default()
    };

    let m10 = mpsim::presets::meiko_cs2(10);
    let out = run_search(&image, &m10, &config).expect("simulated run");
    let m1 = mpsim::presets::meiko_cs2(1);
    let seq = run_search(&image, &m1, &config).expect("simulated run");

    println!(
        "P-AutoClass found {} spectral classes (CS score {:.1})",
        out.best.n_classes(),
        out.best.score()
    );
    println!(
        "virtual time: {:.1}s on 10 procs vs {:.1}s on 1 proc -> speedup {:.2}x",
        out.elapsed,
        seq.elapsed,
        seq.elapsed / out.elapsed
    );

    // Cluster purity: assign each pixel to its MAP class and check how
    // concentrated each class is on a single planted cover.
    let stats = GlobalStats::compute(&image.full_view());
    let model = Model::new(image.schema().clone(), &stats);
    let view = image.full_view();
    let j = out.best.n_classes();
    let mut confusion = vec![vec![0usize; covers]; j];
    for i in 0..image.len() {
        let row: Vec<Value> = (0..bands).map(|b| Value::Real(view.real_column(b)[i])).collect();
        let (cls, _) = classify(&model, &out.best.classes, &row);
        confusion[cls][truth[i]] += 1;
    }
    let mut pure = 0usize;
    println!("\nclass -> dominant land cover (purity):");
    for (c, row) in confusion.iter().enumerate() {
        let total: usize = row.iter().sum();
        if total == 0 {
            continue;
        }
        let (cover, &hits) = row.iter().enumerate().max_by_key(|&(_, &h)| h).unwrap();
        pure += hits;
        println!(
            "  class {c}: cover {cover} ({:.1}% of {total} pixels)",
            100.0 * hits as f64 / total as f64
        );
    }
    let purity = pure as f64 / image.len() as f64;
    println!("\noverall purity: {:.1}%", 100.0 * purity);
    assert!(purity > 0.8, "segmentation should recover the planted covers");
}
