//! Model-structure search: AutoClass's second search level. Given data
//! whose attributes are strongly correlated *within* classes, compare the
//! default independent-attribute structure (`single_normal_cn`) against a
//! full-covariance block (`multi_normal_cn`) by their Cheeseman–Stutz
//! marginal scores, then run the winning structure in parallel.
//!
//! Run with: `cargo run --example correlated_attributes --release`

use autoclass::search::{compare_structures, SearchConfig};
use pautoclass::{run_search, ParallelConfig};

fn main() {
    // Three clusters whose two measurements co-vary strongly (ρ = 0.8) —
    // think height/weight or two correlated spectral bands.
    let rho = 0.8;
    let (data, _) = datagen::correlated_blobs(3, 12.0, rho, 3_000, 2026);
    println!("{} tuples, 2 real attributes, within-class correlation ρ = {rho}\n", data.len());

    // Structure search: {x0, x1 independent} vs {x0×x1 jointly Gaussian}.
    let config = SearchConfig {
        start_j_list: vec![2, 3, 4],
        tries_per_j: 3,
        max_cycles: 60,
        ..SearchConfig::default()
    };
    let ranked = compare_structures(&data.full_view(), &[vec![], vec![vec![0, 1]]], &config);
    println!("structure ranking (Cheeseman–Stutz score, higher wins):");
    for (blocks, result) in &ranked {
        let name = if blocks.is_empty() { "independent x0, x1" } else { "correlated x0×x1" };
        println!(
            "  {name:<20} score {:>10.1}  ({} classes, {} cycles)",
            result.best.score(),
            result.best.n_classes(),
            result.best.cycles
        );
    }
    let winner = &ranked[0];
    assert_eq!(winner.0, vec![vec![0, 1]], "correlated structure should win");
    println!(
        "\nthe correlated structure wins by {:.1} nats — the model-level\n\
         search discovered the attribute dependency from the data alone.",
        winner.1.best.score() - ranked[1].1.best.score()
    );

    // Run the winning structure with P-AutoClass on the simulated CS-2.
    let pconfig = ParallelConfig {
        search: config,
        correlated_blocks: winner.0.clone(),
        ..ParallelConfig::default()
    };
    let out = run_search(&data, &mpsim::presets::meiko_cs2(8), &pconfig).expect("run");
    println!(
        "\nP-AutoClass (8 simulated procs, correlated structure): {} classes in \
         {:.1} virtual seconds",
        out.best.n_classes(),
        out.elapsed
    );
}
