//! Protein-family discovery from categorical sequence data — the Hunter &
//! States use case the paper cites (Bayesian classification of protein
//! structure, 300–400 hours of sequential discovery time).
//!
//! AutoClass's multinomial terms handle purely categorical data natively,
//! which hard-assignment k-means cannot; this example exercises the
//! discrete-attribute code path end to end, including missing residues.
//!
//! Run with: `cargo run --example protein_families --release`

use autoclass::data::{GlobalStats, Value};
use autoclass::predict::posterior;
use autoclass::search::SearchConfig;
use autoclass::Model;
use pautoclass::{run_search, ParallelConfig};

fn main() {
    let n = 1_500;
    let positions = 12; // aligned residue positions
    let alphabet = 6; // coarse residue classes
    let families = 4;
    let (data, truth) = datagen::protein_sequences(n, positions, alphabet, families, 7);
    // Real sequence data has gaps: knock out 5 % of residues.
    let data = datagen::inject_missing(&data, 0.05, 13);
    println!(
        "{n} sequences x {positions} positions over a {alphabet}-letter alphabet, \
         {families} planted families, 5% gaps\n"
    );

    let config = ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![2, 4, 6],
            tries_per_j: 2,
            max_cycles: 50,
            ..SearchConfig::default()
        },
        ..ParallelConfig::default()
    };
    let machine = mpsim::presets::meiko_cs2(6);
    let out = run_search(&data, &machine, &config).expect("simulated run");
    println!(
        "found {} families (CS score {:.1}) in {:.1} virtual seconds on 6 procs",
        out.best.n_classes(),
        out.best.score(),
        out.elapsed
    );

    // Family recovery: map each discovered class to its dominant truth
    // family and measure agreement.
    let stats = GlobalStats::compute(&data.full_view());
    let model = Model::new(data.schema().clone(), &stats);
    let view = data.full_view();
    let j = out.best.n_classes();
    let mut confusion = vec![vec![0usize; families]; j];
    let mut confident = 0usize;
    for i in 0..n {
        let row: Vec<Value> = (0..positions)
            .map(|p| {
                let l = view.discrete_column(p)[i];
                if l == autoclass::data::MISSING_DISCRETE {
                    Value::Missing
                } else {
                    Value::Discrete(l)
                }
            })
            .collect();
        let post = posterior(&model, &out.best.classes, &row);
        let (cls, &p) = post.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap();
        if p > 0.9 {
            confident += 1;
        }
        confusion[cls][truth[i]] += 1;
    }
    let agree: usize = confusion.iter().map(|row| row.iter().max().copied().unwrap_or(0)).sum();
    println!("family agreement: {:.1}%", 100.0 * agree as f64 / n as f64);
    println!(
        "sequences with >0.9 posterior in one family: {:.1}%",
        100.0 * confident as f64 / n as f64
    );
    println!(
        "(the paper's §2 point: well-separated classes give near-0.99 memberships,\n\
         overlapping ones hedge — membership is probabilistic, not crisp)"
    );
    assert_eq!(out.best.n_classes(), families, "should recover the planted family count");
    assert!(agree as f64 > 0.9 * n as f64, "families should be recovered cleanly");
}
