//! Scaling study in miniature: the paper's three measurements (elapsed
//! time, speedup, scaleup) on one small workload, plus the k-means
//! baseline on the identical simulated machine — a compact tour of the
//! whole evaluation pipeline. The `bench` crate's `fig6`/`fig7`/`fig8`
//! binaries run the full-size grids.
//!
//! Run with: `cargo run --example cluster_scaling --release`

use autoclass::search::SearchConfig;
use kmeans::{kmeans_parallel, KMeansConfig};
use pautoclass::{run_fixed_j, run_search, ParallelConfig};

fn main() {
    let n = 10_000;
    let data = datagen::paper_dataset(n, 0xDA7A);
    let config = ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![4, 8],
            tries_per_j: 1,
            max_cycles: 10,
            rel_delta_ll: 0.0,
            min_class_weight: 0.0,
            ..SearchConfig::default()
        },
        ..ParallelConfig::default()
    };

    // Elapsed time and speedup vs processors (Figs 6 & 7 in miniature).
    println!("P-AutoClass on the simulated Meiko CS-2, {n} tuples:");
    println!("{:>6} {:>12} {:>9} {:>11}", "procs", "elapsed [s]", "speedup", "efficiency");
    let mut t1 = 0.0;
    for p in [1usize, 2, 4, 6, 8, 10] {
        let machine = mpsim::presets::meiko_cs2(p);
        let out = run_search(&data, &machine, &config).expect("simulated run");
        if p == 1 {
            t1 = out.elapsed;
        }
        let speedup = t1 / out.elapsed;
        println!(
            "{p:>6} {:>12.2} {speedup:>9.2} {:>10.0}%",
            out.elapsed,
            100.0 * speedup / p as f64
        );
    }

    // Scaleup (Fig 8 in miniature): fixed 2 000 tuples per processor.
    println!("\nscaleup: 2 000 tuples per processor, seconds per base_cycle (J=8):");
    print!("  ");
    for p in [1usize, 2, 4, 8, 10] {
        let d = datagen::paper_dataset(2_000 * p, 0xDA7A);
        let machine = mpsim::presets::meiko_cs2(p);
        let t = run_fixed_j(&d, &machine, 8, 3, 7, &config).expect("run").per_cycle;
        print!("P={p}: {t:.3}s  ");
    }
    println!("\n(nearly constant = good scaleup)");

    // The k-means baseline on the identical machine and data.
    println!("\nparallel k-means baseline (k=8) on the same machine:");
    for p in [1usize, 10] {
        let machine = mpsim::presets::meiko_cs2(p);
        let km = kmeans_parallel(
            &data,
            &machine,
            &KMeansConfig { k: 8, max_iters: 10, tol: 0.0, seed: 7 },
        )
        .expect("simulated run");
        println!("  P={p}: {:.2}s virtual, inertia {:.0}", km.elapsed, km.result.inertia);
    }
    println!(
        "\nk-means cycles are cheaper (no densities, no marginals) but deliver hard\n\
         assignments and no model scoring; AutoClass buys probabilistic membership\n\
         and automatic class-count selection with more compute per cycle."
    );
}
