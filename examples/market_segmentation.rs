//! Market segmentation over mixed numeric + categorical records — the
//! "knowledge discovery in large databases" setting of the paper's
//! introduction. Demonstrates mixed-attribute modeling, the influence
//! report, and scoring previously unseen customers.
//!
//! Run with: `cargo run --example market_segmentation --release`

use autoclass::data::{GlobalStats, Value};
use autoclass::predict::classify;
use autoclass::report::report;
use autoclass::search::SearchConfig;
use autoclass::Model;
use pautoclass::{run_search, ParallelConfig};

fn main() {
    // Three customer segments: (age, monthly spend) + (channel, plan).
    let mixture = datagen::MixedMixture {
        classes: vec![
            // Students: young, low spend, mobile channel, prepaid plan.
            datagen::MixedClass {
                means: vec![22.0, 25.0],
                sigma: 3.0,
                level_probs: vec![vec![0.8, 0.15, 0.05], vec![0.9, 0.1]],
                weight: 1.0,
            },
            // Professionals: mid-age, high spend, web channel, contract.
            datagen::MixedClass {
                means: vec![38.0, 90.0],
                sigma: 4.0,
                level_probs: vec![vec![0.2, 0.7, 0.1], vec![0.2, 0.8]],
                weight: 1.5,
            },
            // Retirees: older, medium spend, store channel, contract.
            datagen::MixedClass {
                means: vec![67.0, 55.0],
                sigma: 5.0,
                level_probs: vec![vec![0.1, 0.2, 0.7], vec![0.3, 0.7]],
                weight: 0.8,
            },
        ],
        error: 0.5,
    };
    let (data, _truth) = mixture.generate(5_000, 99);
    println!("{} customer records, 2 numeric + 2 categorical attributes\n", data.len());

    let config = ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![2, 3, 4, 6],
            tries_per_j: 2,
            max_cycles: 60,
            ..SearchConfig::default()
        },
        ..ParallelConfig::default()
    };
    let machine = mpsim::presets::meiko_cs2(8);
    let out = run_search(&data, &machine, &config).expect("simulated run");
    println!(
        "discovered {} segments (CS score {:.1}) in {:.1} virtual seconds on 8 procs\n",
        out.best.n_classes(),
        out.best.score(),
        out.elapsed
    );

    let stats = GlobalStats::compute(&data.full_view());
    let model = Model::new(data.schema().clone(), &stats);
    println!("{}", report(&model, &stats, &out.best));

    // Score a new customer: 24 years old, spends 30, mobile, prepaid.
    let newcomer =
        vec![Value::Real(24.0), Value::Real(30.0), Value::Discrete(0), Value::Discrete(0)];
    let (segment, confidence) = classify(&model, &out.best.classes, &newcomer);
    println!(
        "new customer (24y, spend 30, mobile, prepaid) -> segment {segment} \
         with posterior {confidence:.3}"
    );
    assert_eq!(out.best.n_classes(), 3, "should discover the three planted segments");
}
