//! Repository automation (`cargo xtask <task>`).
//!
//! * `lint` — a custom static pass over the library sources enforcing
//!   project rules that `clippy` has no lints for (detailed below).
//! * `bench` — the benchmark harness behind `BENCH_2.json`: E-step kernel
//!   throughput (naive vs blocked, same process) and virtual cycle times
//!   per strategy × P. See the `bench` module docs for flags.
//! * `report` — reproduce the paper's evaluation tables (per-phase time,
//!   speedup, efficiency, critical path) from verified runs at a series of
//!   processor counts. See the `report` module docs for flags and gates.
//! * `faultmatrix` — the robustness acceptance sweep: every injected fault
//!   kind × recovery policy × processor count must either recover
//!   bit-identically or surface a typed error naming the correct culprit.
//!   See the `faultmatrix` module docs for flags and gates.
//!
//! # Rules
//!
//! 1. **wall-clock** — no `std::thread::sleep` / `Instant::now` /
//!    `SystemTime::now` in simulator or rank-body code outside
//!    `mpsim/src/comm.rs`. Virtual time must come from the cost models;
//!    wall-clock reads anywhere else either break determinism or leak host
//!    timing into simulated results. (`comm.rs` owns the two legitimate
//!    uses: the receive-timeout backstop and `Comm::measured`.)
//! 2. **unwrap** — no `.unwrap()` / `.expect(` in non-test library code
//!    (binaries under `src/bin/` are exempt: panicking on CLI/I/O errors
//!    is fine for a tool). A rank panic tears down the whole simulated
//!    machine, so fallible paths must surface `SimError`s instead. Genuine
//!    invariants can be waived with a `// lint:allow(unwrap): why` comment
//!    on the same line or the line above.
//! 3. **float-eq** — no direct `==` / `!=` against floating-point literals
//!    in model code; use tolerances or `total_cmp`. Waivable with
//!    `// lint:allow(float-eq): why` when bitwise equality is the point.
//! 4. **blocking-collective** — no blocking collective calls
//!    (`allreduce_f64s`, `broadcast_f64s`, `gather_f64s`) inside `for` /
//!    `while` / `loop` bodies in `pautoclass` rank code: a collective per
//!    loop iteration multiplies the per-message latency (the pattern the
//!    Fused and Pipelined exchanges exist to remove). Batch the payload or
//!    post non-blocking operations instead. The deliberately fine-grained
//!    `Exchange::PerTerm` ablation baseline is waived with
//!    `// lint:allow(blocking-collective): why`.
//! 5. **recv-unwrap** — no `.unwrap()` / `.expect(` on receive/wait
//!    results in `mpsim` / `pautoclass` library code. With fault injection
//!    in the tree, a lost, late, or corrupt message is an *expected*
//!    `Err`; unwrapping it turns a diagnosable typed failure into a rank
//!    panic that tears down the whole simulated machine. Propagate the
//!    `SimError` (or waive a genuine invariant with
//!    `// lint:allow(recv-unwrap): why`).
//!
//! Test code (`#[cfg(test)]` modules, `tests/`, `benches/`) is exempt from
//! all rules.

mod bench;
mod faultmatrix;
mod report;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("bench") => bench::bench(&args[1..]),
        Some("report") => report::report(&args[1..]),
        Some("faultmatrix") => faultmatrix::faultmatrix(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask lint | bench [--smoke] [--out PATH] [--check PATH] \
                 | report [--smoke] [--out DIR] [--check PATH] \
                 | faultmatrix [--smoke] [--out DIR] [--check PATH]"
            );
            ExitCode::FAILURE
        }
    }
}

/// A single rule violation, for reporting.
struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

fn lint() -> ExitCode {
    let root = repo_root();
    let mut violations = Vec::new();
    // Every member crate's src/ plus the workspace root crate's src/ (the
    // CLI wrapper library lives there; its bin/ is exempted per-rule).
    let mut src_dirs: Vec<PathBuf> =
        list_dir(&root.join("crates")).into_iter().map(|k| k.join("src")).collect();
    src_dirs.push(root.join("src"));
    for src in src_dirs {
        if !src.is_dir() {
            continue;
        }
        for file in rust_files(&src) {
            match fs::read_to_string(&file) {
                Ok(text) => check_file(&root, &file, &text, &mut violations),
                Err(e) => {
                    eprintln!("xtask lint: cannot read {}: {e}", file.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if violations.is_empty() {
        println!("xtask lint: ok");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!(
                "{}:{}: [{}] {}",
                v.file.strip_prefix(&root).unwrap_or(&v.file).display(),
                v.line,
                v.rule,
                v.message
            );
        }
        println!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: the parent of xtask's own manifest directory, so
/// the pass works from any cwd (`cargo xtask` runs it from the workspace,
/// but a direct `cargo run -p xtask` from a subdirectory is fine too).
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(Path::to_path_buf).unwrap_or(manifest)
}

fn list_dir(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> =
        fs::read_dir(dir).into_iter().flatten().flatten().map(|e| e.path()).collect();
    out.sort();
    out
}

fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for p in list_dir(&d) {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Does the wall-clock rule apply to this file? Simulator internals and
/// the parallel rank bodies must never read host time (that is `comm.rs`'s
/// job); the sequential `autoclass` crate and the bench binaries time real
/// host execution on purpose.
fn wall_clock_scoped(root: &Path, file: &Path) -> bool {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let rel = rel.to_string_lossy();
    (rel.starts_with("crates/mpsim/src") || rel.starts_with("crates/pautoclass/src"))
        && !rel.ends_with("comm.rs")
}

/// Does the unwrap rule apply? Library code only: binaries (`src/bin/*`,
/// `main.rs`) may panic on I/O and CLI errors like any command-line tool.
fn unwrap_scoped(file: &Path) -> bool {
    let s = file.to_string_lossy();
    !s.contains("/src/bin/") && !s.ends_with("main.rs")
}

/// Does the recv-unwrap rule apply? The simulator and the parallel rank
/// bodies — the code that handles messages which fault injection can
/// legitimately lose, delay, or corrupt.
fn recv_unwrap_scoped(root: &Path, file: &Path) -> bool {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let rel = rel.to_string_lossy();
    rel.starts_with("crates/mpsim/src") || rel.starts_with("crates/pautoclass/src")
}

/// Does the float-eq rule apply? Model/estimation code only.
fn float_eq_scoped(root: &Path, file: &Path) -> bool {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let rel = rel.to_string_lossy();
    rel.starts_with("crates/autoclass/src") || rel.starts_with("crates/pautoclass/src")
}

/// Does the blocking-collective rule apply? The parallel rank bodies —
/// that's where a blocking collective inside a loop costs a latency per
/// iteration.
fn blocking_collective_scoped(root: &Path, file: &Path) -> bool {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.to_string_lossy().starts_with("crates/pautoclass/src")
}

/// Is this line a loop header (`for` / `while` / `loop`)? Only the first
/// token is inspected, so identifiers like `format` or comments don't
/// match; rustfmt keeps loop headers at the start of their line.
fn is_loop_header(code: &str) -> bool {
    let mut tokens = code.trim_start().split(|c: char| !c.is_alphanumeric() && c != '_');
    matches!(tokens.next(), Some("for" | "while" | "loop"))
}

fn check_file(root: &Path, file: &Path, text: &str, out: &mut Vec<Violation>) {
    let wall_clock = wall_clock_scoped(root, file);
    let no_unwrap = unwrap_scoped(file);
    let recv_unwrap = recv_unwrap_scoped(root, file);
    let float_eq = float_eq_scoped(root, file);
    let blocking_collective = blocking_collective_scoped(root, file);

    // Track `#[cfg(test)] mod … { … }` regions by brace depth so test code
    // is exempt. Format-string braces are balanced, so line-level counting
    // stays correct for the code in this repository.
    let mut depth: i64 = 0;
    let mut armed = false; // saw #[cfg(test)], waiting for the opening brace
    let mut skip_above: Option<i64> = None; // inside a test region opened at this depth

    // Loop bodies, for the blocking-collective rule: the depth at which
    // each currently-open `for`/`while`/`loop` was entered.
    let mut loop_stack: Vec<i64> = Vec::new();
    let mut loop_armed = false; // loop header seen, waiting for its `{`

    let lines: Vec<&str> = text.lines().collect();
    for (idx, &raw) in lines.iter().enumerate() {
        let line_no = idx + 1;
        // A waiver comment applies to its own line or the line below it.
        let waived = |rule: &str| raw.contains(rule) || (idx > 0 && lines[idx - 1].contains(rule));
        let trimmed = raw.trim_start();
        let is_comment = trimmed.starts_with("//");
        // Code portion only: a trailing comment must not trigger rules.
        let code = raw.split("//").next().unwrap_or(raw);

        if !is_comment {
            if trimmed.contains("#[cfg(test)]") {
                armed = true;
            }
            let opens = code.matches('{').count() as i64;
            let closes = code.matches('}').count() as i64;
            if armed && opens > 0 {
                skip_above = Some(depth);
                armed = false;
            }
            if is_loop_header(code) {
                loop_armed = true;
            }
            if loop_armed && opens > 0 {
                loop_stack.push(depth);
                loop_armed = false;
            }
            depth += opens - closes;
            while loop_stack.last().is_some_and(|&d| depth <= d) {
                loop_stack.pop();
            }
            if let Some(d) = skip_above {
                if depth <= d {
                    skip_above = None;
                }
                continue; // inside (or closing line of) a test region
            }
        }
        if is_comment {
            continue;
        }

        if wall_clock {
            for pat in ["thread::sleep", "Instant::now", "SystemTime::now"] {
                if code.contains(pat) {
                    out.push(Violation {
                        file: file.to_path_buf(),
                        line: line_no,
                        rule: "wall-clock",
                        message: format!(
                            "`{pat}` outside comm.rs: simulated code must use virtual time"
                        ),
                    });
                }
            }
        }

        if no_unwrap && !waived("lint:allow(unwrap)") {
            for pat in [".unwrap()", ".expect("] {
                if code.contains(pat) {
                    out.push(Violation {
                        file: file.to_path_buf(),
                        line: line_no,
                        rule: "unwrap",
                        message: format!(
                            "`{pat}` in library code: return an error or waive with \
                             `// lint:allow(unwrap): why`"
                        ),
                    });
                }
            }
        }

        if recv_unwrap
            && !waived("lint:allow(recv-unwrap)")
            && (code.contains(".unwrap()") || code.contains(".expect("))
            && (code.contains("recv") || code.contains("wait"))
        {
            out.push(Violation {
                file: file.to_path_buf(),
                line: line_no,
                rule: "recv-unwrap",
                message: "unwrapping a receive/wait result: injected faults make this a \
                          legitimate Err — propagate the SimError or waive with \
                          `// lint:allow(recv-unwrap): why`"
                    .to_string(),
            });
        }

        if float_eq && !waived("lint:allow(float-eq)") {
            for (pos, op) in find_eq_ops(code) {
                let lhs = last_token(&code[..pos]);
                let rhs = first_token(&code[pos + 2..]);
                if is_float_literal(lhs) || is_float_literal(rhs) {
                    out.push(Violation {
                        file: file.to_path_buf(),
                        line: line_no,
                        rule: "float-eq",
                        message: format!(
                            "direct `{op}` against a float literal: compare with a \
                             tolerance or waive with `// lint:allow(float-eq): why`"
                        ),
                    });
                }
            }
        }

        if blocking_collective
            && !loop_stack.is_empty()
            && !waived("lint:allow(blocking-collective)")
        {
            for pat in [".allreduce_f64s(", ".broadcast_f64s(", ".gather_f64s("] {
                if code.contains(pat) {
                    out.push(Violation {
                        file: file.to_path_buf(),
                        line: line_no,
                        rule: "blocking-collective",
                        message: format!(
                            "`{pat}` inside a loop body pays a message latency per \
                             iteration: batch the payload or post `iallreduce_f64s`, \
                             or waive with `// lint:allow(blocking-collective): why`"
                        ),
                    });
                }
            }
        }
    }
}

/// Byte offsets of `==` / `!=` operators in a line (`<=`, `>=`, `=>` and
/// plain assignment do not match).
fn find_eq_ops(code: &str) -> Vec<(usize, &'static str)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        match &bytes[i..i + 2] {
            b"==" => {
                out.push((i, "=="));
                i += 2;
            }
            b"!=" => {
                out.push((i, "!="));
                i += 2;
            }
            _ => i += 1,
        }
    }
    out
}

fn last_token(s: &str) -> &str {
    s.trim_end().rsplit(|c: char| c.is_whitespace() || "([{,;&|".contains(c)).next().unwrap_or("")
}

fn first_token(s: &str) -> &str {
    s.trim_start().split(|c: char| c.is_whitespace() || ")]},;&|".contains(c)).next().unwrap_or("")
}

fn is_float_literal(tok: &str) -> bool {
    let t = tok.trim_start_matches('-').trim_end_matches("f64").trim_end_matches("f32");
    let t = t.trim_end_matches('.');
    !t.is_empty()
        && t.contains(|c: char| c.is_ascii_digit())
        && (tok.contains('.') || tok.ends_with("f64") || tok.ends_with("f32"))
        && t.replace('_', "").parse::<f64>().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_literals_are_recognized() {
        assert!(is_float_literal("0.0"));
        assert!(is_float_literal("1.5e-3"));
        assert!(is_float_literal("-2."));
        assert!(is_float_literal("1_000.0"));
        assert!(!is_float_literal("x"));
        assert!(!is_float_literal("0"));
        assert!(!is_float_literal("len"));
        assert!(!is_float_literal(""));
    }

    #[test]
    fn eq_ops_are_found_and_assignment_is_not() {
        assert_eq!(find_eq_ops("a == b != c").len(), 2);
        assert!(find_eq_ops("let x = 0.0; y <= 1.0; z >= 2.0").is_empty());
    }

    #[test]
    fn test_regions_are_skipped() {
        let src = "fn a() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn b() { y.unwrap(); }\n\
                   }\n\
                   fn c() { z.unwrap(); }\n";
        let mut v = Vec::new();
        check_file(Path::new("/r"), Path::new("/r/crates/x/src/lib.rs"), src, &mut v);
        let lines: Vec<usize> = v.iter().map(|x| x.line).collect();
        assert_eq!(lines, vec![1, 6], "only non-test unwraps flagged");
    }

    #[test]
    fn waivers_suppress() {
        let src = "fn a() { x.unwrap(); // lint:allow(unwrap): invariant\n}\n";
        let mut v = Vec::new();
        check_file(Path::new("/r"), Path::new("/r/crates/x/src/lib.rs"), src, &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn waiver_on_the_line_above_suppresses() {
        let src = "fn a() {\n\
                       // lint:allow(unwrap): invariant\n\
                       x.unwrap();\n\
                   }\n";
        let mut v = Vec::new();
        check_file(Path::new("/r"), Path::new("/r/crates/x/src/lib.rs"), src, &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn blocking_collectives_flagged_only_inside_loops() {
        let src = "fn a(comm: &mut Comm, xs: &mut [f64]) {\n\
                       comm.allreduce_f64s(xs, ReduceOp::Sum);\n\
                       for _ in 0..3 {\n\
                           comm.allreduce_f64s(xs, ReduceOp::Sum);\n\
                           while go() {\n\
                               comm.broadcast_f64s(0, xs);\n\
                           }\n\
                       }\n\
                       comm.gather_f64s(0, xs);\n\
                   }\n";
        let mut v = Vec::new();
        check_file(Path::new("/r"), Path::new("/r/crates/pautoclass/src/driver.rs"), src, &mut v);
        let lines: Vec<usize> = v.iter().map(|x| x.line).collect();
        assert_eq!(lines, vec![4, 6], "only loop-body collectives flagged");
        assert!(v.iter().all(|x| x.rule == "blocking-collective"));
        // Out of scope: the same source in mpsim is not flagged.
        v.clear();
        check_file(Path::new("/r"), Path::new("/r/crates/mpsim/src/x.rs"), src, &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn blocking_collective_waiver_suppresses() {
        let src = "fn a(comm: &mut Comm, xs: &mut [f64]) {\n\
                       for _ in 0..3 {\n\
                           // lint:allow(blocking-collective): ablation baseline\n\
                           comm.allreduce_f64s(xs, ReduceOp::Sum);\n\
                       }\n\
                   }\n";
        let mut v = Vec::new();
        check_file(Path::new("/r"), Path::new("/r/crates/pautoclass/src/driver.rs"), src, &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn recv_unwraps_are_flagged_in_simulator_code() {
        let src = "fn a(rx: Receiver<u8>) -> u8 {\n\
                       let v = rx.recv().unwrap();\n\
                       let w = handle.wait().expect(\"done\");\n\
                       v + w\n\
                   }\n";
        let mut v = Vec::new();
        check_file(Path::new("/r"), Path::new("/r/crates/mpsim/src/comm.rs"), src, &mut v);
        let recv: Vec<usize> =
            v.iter().filter(|x| x.rule == "recv-unwrap").map(|x| x.line).collect();
        assert_eq!(recv, vec![2, 3], "both receive-result unwraps flagged");
        // Out of scope: the sequential crate handles no messages.
        v.clear();
        check_file(Path::new("/r"), Path::new("/r/crates/autoclass/src/model.rs"), src, &mut v);
        assert!(v.iter().all(|x| x.rule != "recv-unwrap"));
    }

    #[test]
    fn recv_unwrap_needs_a_receive_token_and_respects_waivers() {
        // A plain unwrap is the generic unwrap rule's business, not this
        // rule's: no receive or wait in sight.
        let src = "fn a(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let mut v = Vec::new();
        check_file(Path::new("/r"), Path::new("/r/crates/mpsim/src/engine.rs"), src, &mut v);
        assert!(v.iter().all(|x| x.rule != "recv-unwrap"));
        assert_eq!(v.len(), 1, "still caught by the unwrap rule");
        // A waived receive unwrap is silent.
        let src = "fn a(rx: Receiver<u8>) -> u8 {\n\
                       // lint:allow(recv-unwrap): lint:allow(unwrap): sender outlives us\n\
                       rx.recv().unwrap()\n\
                   }\n";
        v.clear();
        check_file(Path::new("/r"), Path::new("/r/crates/mpsim/src/engine.rs"), src, &mut v);
        assert!(v.iter().all(|x| x.rule != "recv-unwrap"));
    }

    #[test]
    fn float_eq_flagged_only_in_model_code() {
        let src = "fn a(w: f64) -> bool { w == 0.0 }\n";
        let mut v = Vec::new();
        check_file(Path::new("/r"), Path::new("/r/crates/autoclass/src/model.rs"), src, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "float-eq");
        v.clear();
        check_file(Path::new("/r"), Path::new("/r/crates/mpsim/src/clock.rs"), src, &mut v);
        assert!(v.is_empty());
    }
}
