//! Repository automation (`cargo xtask <task>`).
//!
//! * `lint` — the project's custom static rules, run on the `spmdlint`
//!   AST engine (see below). Prints the classic `file:line: [rule] …`
//!   format and fails on any unwaivered violation.
//! * `analyze` — the full SPMD static analysis: everything `lint` checks
//!   plus the rank-taint rules (collective-divergence, unwaited-request,
//!   phase-balance, rank-variant-payload, nondet), with JSON output for
//!   CI. See `cargo xtask analyze --help` equivalent flags below.
//! * `bench` — the benchmark harness behind `BENCH_2.json`: E-step kernel
//!   throughput (naive vs blocked, same process) and virtual cycle times
//!   per strategy × P. See the `bench` module docs for flags.
//! * `report` — reproduce the paper's evaluation tables (per-phase time,
//!   speedup, efficiency, critical path) from verified runs at a series of
//!   processor counts. See the `report` module docs for flags and gates.
//! * `faultmatrix` — the robustness acceptance sweep: every injected fault
//!   kind × recovery policy × processor count must either recover
//!   bit-identically or surface a typed error naming the correct culprit.
//!   See the `faultmatrix` module docs for flags and gates.
//!
//! # Rules
//!
//! The rule set lives in `crates/spmdlint` (each rule's rationale is
//! documented there). The legacy five — **wall-clock**, **unwrap**,
//! **float-eq**, **blocking-collective**, **recv-unwrap** — keep their
//! historical IDs, scopes, and `// lint:allow(rule): why` waiver comments,
//! but now run on a real token/AST pass, so comments, strings, and
//! doc-tests can no longer false-positive. The SPMD taint rules —
//! **collective-divergence**, **unwaited-request**, **phase-balance**,
//! **rank-variant-payload**, **nondet** — guard the replication invariant
//! the runtime verifier (PR 1) checks per run, at build time instead.
//!
//! `analyze` flags:
//!
//! * `--check` — exit nonzero if any unwaivered error-severity finding
//!   remains (warnings are informational; test code is downgraded).
//! * `--out PATH` — write the sorted, deterministic JSON report.
//! * `--fixtures` — also run the known-bad fixture corpus under
//!   `crates/spmdlint/tests/fixtures` and fail unless every expected
//!   rule fires at its expected line.
//! * `--root DIR` — analyze a different root (used by the corpus).

mod bench;
mod calibrate;
mod faultmatrix;
mod report;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("analyze") => analyze(&args[1..]),
        Some("bench") => bench::bench(&args[1..]),
        Some("report") => report::report(&args[1..]),
        Some("calibrate") => calibrate::calibrate(&args[1..]),
        Some("faultmatrix") => faultmatrix::faultmatrix(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask lint \
                 | analyze [--check] [--out PATH] [--fixtures] [--root DIR] \
                 | bench [--smoke] [--native] [--engines] [--ensemble] [--out PATH] [--check PATH] \
                 | report [--smoke] [--largep] [--out DIR] [--check PATH] \
                 | calibrate [--smoke] [--out PATH] [--check PATH] \
                 | faultmatrix [--smoke] [--largep] [--standby] [--out DIR] [--check [PATH]]"
            );
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: the parent of xtask's own manifest directory, so
/// the pass works from any cwd (`cargo xtask` runs it from the workspace,
/// but a direct `cargo run -p xtask` from a subdirectory is fine too).
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(Path::to_path_buf).unwrap_or(manifest)
}

/// The legacy lint gate: the five historical rules, old output format,
/// unwaivered errors only. (`analyze` is the superset.)
fn lint() -> ExitCode {
    const LEGACY: &[&str] = &[
        spmdlint::WALL_CLOCK,
        spmdlint::UNWRAP,
        spmdlint::FLOAT_EQ,
        spmdlint::BLOCKING_COLLECTIVE,
        spmdlint::RECV_UNWRAP,
    ];
    let report = match spmdlint::analyze(&repo_root()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let violations: Vec<_> = report
        .findings
        .iter()
        .filter(|f| {
            !f.waived && f.severity == spmdlint::Severity::Error && LEGACY.contains(&f.rule)
        })
        .collect();
    if violations.is_empty() {
        println!("xtask lint: ok");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
        println!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn analyze(args: &[String]) -> ExitCode {
    let mut check = false;
    let mut fixtures = false;
    let mut out_path: Option<PathBuf> = None;
    let mut root = repo_root();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check = true,
            "--fixtures" => fixtures = true,
            "--out" => match it.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xtask analyze: --out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("xtask analyze: --root needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask analyze: unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = match spmdlint::analyze(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    for f in &report.findings {
        let tag = if f.waived { " (waived)" } else { "" };
        println!("{}:{}: {} [{}]{} {}", f.file, f.line, f.severity, f.rule, tag, f.message);
        for t in &f.taint_trace {
            println!("    taint: {t}");
        }
    }
    println!(
        "xtask analyze: {} file(s), {} function(s), {} finding(s) \
         ({} unwaivered error(s), {} warning(s))",
        report.files_scanned,
        report.functions,
        report.findings.len(),
        report.unwaivered_errors(),
        report.warnings()
    );
    if let Some(p) = &out_path {
        if let Err(e) = std::fs::write(p, report.to_json()) {
            eprintln!("xtask analyze: write {}: {e}", p.display());
            return ExitCode::FAILURE;
        }
        println!("xtask analyze: wrote {}", p.display());
    }

    let mut failed = check && report.unwaivered_errors() > 0;

    if fixtures {
        let dir = repo_root().join("crates/spmdlint/tests/fixtures");
        match spmdlint::check_fixtures(&dir) {
            Ok(results) => {
                for (name, missing) in &results {
                    if missing.is_empty() {
                        println!("fixture {name}: ok");
                    } else {
                        failed = true;
                        for m in missing {
                            println!("fixture {name}: MISSING {m}");
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("xtask analyze: fixtures: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
