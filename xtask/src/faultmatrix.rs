//! `cargo xtask faultmatrix` — the robustness acceptance sweep.
//!
//! Runs the fault-tolerant search ([`pautoclass::run_search_ft`]) through
//! every fault kind × recovery policy × processor count cell and gates on
//! the tentpole property: **every injected fault is either recovered
//! bit-identically or reported with a typed error naming the correct
//! culprit rank and fault kind — no hangs, no panics, no silently
//! different numbers.**
//!
//! Per processor count the harness runs an unfaulted fault-tolerant
//! baseline, then injects each fatal fault kind (crash, drop,
//! delay-past-virtual-timeout, corrupt) under each recovery policy:
//!
//! * **abort** — the run must terminate with a typed [`mpsim::SimError`]
//!   whose culprit coordinates match the injected fault.
//! * **restart** — the supervisor must recover in exactly one extra
//!   attempt and the recovered result must be bit-identical to the
//!   unfaulted baseline (score and every class parameter compared as raw
//!   bit patterns).
//! * **shrink** — the survivors must finish with P−1 ranks and report a
//!   positive recovery-phase virtual time.
//!
//! Two benign faults (a delay under the timeout, a degraded link) must
//! complete with *no* error, bit-identical results, and strictly more
//! virtual time — robustness must not come at the price of spurious
//! failure reports.
//!
//! A checkpoint-interval sweep at P = 4 records recovery overhead versus
//! the interval `k` (the data behind the EXPERIMENTS.md walkthrough), and
//! the whole series is run twice: the rendered JSON must be bit-identical
//! (the fault layer must not break virtual-time determinism).
//!
//! A seeded sub-sweep ([`FaultPlan::seeded`]) grades randomized plans
//! under the restart policy; plans the contract deliberately does not
//! cover (a crash on rank 0 — the checkpoint publisher — and the benign
//! kinds) are recorded as explicit `skipped_cells` with reasons instead
//! of being silently dropped.
//!
//! Flags: `--smoke` (P ∈ {2,4}, short sweep — the CI configuration),
//! `--out DIR` (default `faultmatrix/` in the repo root), `--check PATH`
//! (validate an existing artifact instead of running — the schema is
//! sniffed from the artifact; a bare `--check` runs the selected sweep
//! and then validates what it just wrote, the one-command CI form),
//! `--largep` (run the reduced large-`P` sweep instead: crash and corrupt
//! under abort/restart/promote on the **cooperative** engine and the
//! hierarchical fat-tree cluster at P ∈ {64, 256, 1024} — `--smoke`
//! trims to P ∈ {64, 256} — writing `faultmatrix_largep.json`/`.txt`),
//! `--standby` (run the localized-recovery sweep instead: spare-rank
//! promotion on both simulator engines **and** the native backend,
//! replay-vs-rollback cost, spare exhaustion, and shard corruption at
//! P ∈ {2, 5, 8} — `--smoke` trims to P ∈ {2, 5} — writing
//! `faultmatrix_standby.json`/`.txt`).

use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;

use autoclass::model::classes_to_flat;
use autoclass::search::SearchConfig;
use mpsim::{
    presets, Engine, FaultAction, FaultPlan, FaultSpec, FaultTrigger, MachineSpec, SimError,
    SimOptions,
};
use pautoclass::{
    run_search_ft, run_search_ft_native, Exchange, FtConfig, FtOutcome, NativeOptions,
    ParallelConfig, ParallelOutcome, RecoveryPolicy, RunError, ShardFault, StandbyConfig, Strategy,
};

/// Culprit rank for every injected fault. Rank 1 sends to the allreduce
/// root (rank 0) once per collective under the preset's `Linear`
/// algorithm, so its link to rank 0 is exercised every cycle at every P.
const CULPRIT: usize = 1;
/// Send-seq trigger for the fatal faults: ≈ cycle 6 of the search (two
/// allreduce sends per cycle plus model setup) — safely before
/// convergence and *after* the first default-interval checkpoint at the
/// cycle-4 boundary, so restart cells genuinely resume mid-search
/// instead of replaying from scratch.
const FAULT_SEQ: u64 = 13;
/// Virtual-time receive timeout (seconds) armed for the delay cell —
/// generous against normal idles, tiny against [`BLOCKING_DELAY_S`].
const VIRTUAL_TIMEOUT_S: f64 = 2.0;
/// A delay that must trip the virtual-time timeout.
const BLOCKING_DELAY_S: f64 = 1_000.0;
/// A delay the run must absorb: longer than the whole unfaulted run so
/// the elapsed-time increase is unambiguous, with no timeout armed.
const TOLERATED_DELAY_S: f64 = 1.0;
/// Bandwidth slowdown for the degraded-link cell.
const DEGRADE_FACTOR: f64 = 200.0;

pub fn faultmatrix(args: &[String]) -> ExitCode {
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .filter(|v| !v.starts_with("--"))
            .map(String::as_str)
    };
    // `--check PATH` validates an existing artifact and exits; a bare
    // `--check` (no path) runs the selected sweep first and then
    // validates the artifact it just wrote.
    let self_check = args.iter().any(|a| a == "--check");
    if let Some(path) = flag_value("--check") {
        return check(Path::new(path));
    }
    let root = crate::repo_root();
    let out_dir = flag_value("--out").map(Into::into).unwrap_or_else(|| root.join("faultmatrix"));
    if args.iter().any(|a| a == "--standby") {
        return faultmatrix_standby(smoke, &out_dir, self_check);
    }
    if args.iter().any(|a| a == "--largep") {
        return faultmatrix_largep(smoke, &out_dir, self_check);
    }

    let first = match run_matrix(smoke) {
        Ok(m) => m,
        Err(msg) => {
            eprintln!("xtask faultmatrix: {msg}");
            return ExitCode::FAILURE;
        }
    };
    // Determinism gate: fault injection, detection, and recovery are all
    // pinned to virtual time, so a second identical sweep must render
    // bit-identical artifacts.
    let deterministic = match run_matrix(smoke) {
        Ok(second) => to_json(smoke, &second, true) == to_json(smoke, &first, true),
        Err(msg) => {
            eprintln!("xtask faultmatrix: repeat run failed: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if !deterministic {
        eprintln!("xtask faultmatrix: repeated sweep rendered different artifacts");
        return ExitCode::FAILURE;
    }

    let json = to_json(smoke, &first, deterministic);
    let text = to_text(&first);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("xtask faultmatrix: cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    for (name, content) in [("faultmatrix.json", &json), ("faultmatrix.txt", &text)] {
        let path = out_dir.join(name);
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!("xtask faultmatrix: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    print!("{text}");
    println!("\nxtask faultmatrix: wrote 2 artifacts to {}", out_dir.display());
    if self_check {
        return check(&out_dir.join("faultmatrix.json"));
    }
    ExitCode::SUCCESS
}

/// One cell of the sweep: what was injected, how the supervisor was told
/// to react, and what actually happened (all gates already enforced).
struct Cell {
    p: usize,
    kind: &'static str,
    policy: &'static str,
    /// `"typed error: …"`, `"recovered"`, or `"completed"`.
    outcome: String,
    attempts: usize,
    survivors: usize,
    /// Raw-bit equality with the unfaulted baseline; `None` where the
    /// comparison is not meaningful (abort cells, shrink cells).
    bit_identical: Option<bool>,
    recovery_s: f64,
    elapsed_s: f64,
}

/// Recovery overhead at one checkpoint interval (P = 4, crash + restart).
struct KRow {
    k: usize,
    unfaulted_s: f64,
    faulted_s: f64,
    /// Checkpoint cost: unfaulted elapsed vs the k = 0 (no snapshots) run.
    ckpt_overhead_s: f64,
    /// Replay work the checkpoint saved: unfaulted elapsed minus the
    /// recovery attempt's elapsed. Zero when the crash precedes every
    /// snapshot (the restart replays from scratch); positive when the
    /// resume skips already-checkpointed cycles.
    resume_saving_s: f64,
}

struct Baseline {
    p: usize,
    elapsed_s: f64,
}

/// One graded cell from the seeded sub-sweep (P = 4, restart policy).
struct SeededCell {
    seed: u64,
    kind: &'static str,
    rank: usize,
    outcome: &'static str,
    attempts: usize,
}

/// A seeded plan the sweep deliberately refuses to grade; the reason is
/// part of the artifact so the exclusion is auditable.
struct SkippedCell {
    seed: u64,
    kind: &'static str,
    rank: usize,
    reason: &'static str,
}

struct Matrix {
    baselines: Vec<Baseline>,
    cells: Vec<Cell>,
    ksweep: Vec<KRow>,
    seeded: Vec<SeededCell>,
    skipped: Vec<SkippedCell>,
}

fn parallel_config() -> ParallelConfig {
    ParallelConfig {
        search: SearchConfig::quick(vec![3], 11),
        strategy: Strategy::Full { exchange: Exchange::Fused },
        ..ParallelConfig::default()
    }
}

fn machine(p: usize) -> MachineSpec {
    // The preset's Linear allreduce keeps the culprit's link to rank 0
    // hot (and folds in rank order, so results are bit-reproducible).
    presets::meiko_cs2(p)
}

fn ftc(policy: RecoveryPolicy) -> FtConfig {
    FtConfig { checkpoint_every: 4, policy, max_restarts: 1, ..FtConfig::default() }
}

fn opts_with(plan: FaultPlan) -> SimOptions {
    SimOptions { fault: Some(plan), ..SimOptions::default() }
}

/// The best classification's score and parameters as raw bit patterns —
/// the strictest possible "same result" comparison.
fn result_bits(o: &ParallelOutcome) -> (u64, Vec<u64>) {
    let flat = classes_to_flat(&o.best.classes);
    (o.best.score().to_bits(), flat.iter().map(|v| v.to_bits()).collect())
}

/// The culprit rank and fault-kind label a typed error names, if it is
/// one of the fault-diagnosis variants.
fn culprit_of(e: &SimError) -> Option<(usize, String)> {
    match e {
        SimError::RankCrashed { rank, .. } => Some((*rank, "crash".to_string())),
        SimError::PeerFailed { peer, kind, .. } => Some((*peer, kind.to_string())),
        SimError::Timeout { from, .. } => Some((*from, "delay".to_string())),
        SimError::PayloadCorrupt { from, .. } => Some((*from, "corrupt".to_string())),
        _ => None,
    }
}

/// A fresh single-fault plan for one cell. Plans share fired flags across
/// clones by design (the restart contract), so every cell gets its own.
fn plan_for(kind: &str) -> FaultPlan {
    let spec =
        |action| FaultSpec { rank: CULPRIT, action, trigger: FaultTrigger::AtSendSeq(FAULT_SEQ) };
    match kind {
        "crash" => FaultPlan::new(vec![spec(FaultAction::Crash)]),
        "drop" => FaultPlan::new(vec![spec(FaultAction::Drop { dst: 0 })]),
        "delay" => FaultPlan::new(vec![FaultSpec {
            rank: CULPRIT,
            action: FaultAction::Delay { dst: 0, secs: BLOCKING_DELAY_S },
            trigger: FaultTrigger::AtSendSeq(FAULT_SEQ),
        }])
        .with_virtual_timeout(VIRTUAL_TIMEOUT_S),
        "corrupt" => {
            FaultPlan::new(vec![spec(FaultAction::Corrupt { dst: 0, byte: 5, mask: 0x20 })])
        }
        other => unreachable!("unknown fault kind {other}"),
    }
}

fn run_matrix(smoke: bool) -> Result<Matrix, String> {
    let (n, ps): (usize, &[usize]) = if smoke { (240, &[2, 4]) } else { (240, &[2, 4, 5, 8]) };
    let data = datagen::paper_dataset(n, 7);
    let cfg = parallel_config();

    let mut baselines = Vec::new();
    let mut cells = Vec::new();
    for &p in ps {
        let spec = machine(p);
        let base = run_search_ft(
            &data,
            &spec,
            &cfg,
            &ftc(RecoveryPolicy::RestartFromCheckpoint),
            &SimOptions::default(),
        )
        .map_err(|e| format!("P={p}: unfaulted baseline failed: {e}"))?;
        if base.attempts != 1 || !base.faults.is_empty() {
            return Err(format!("P={p}: unfaulted baseline reported phantom faults"));
        }
        let base_bits = result_bits(&base.outcome);
        let base_elapsed = base.outcome.elapsed;
        baselines.push(Baseline { p, elapsed_s: base_elapsed });

        for kind in ["crash", "drop", "delay", "corrupt"] {
            for (policy, pname) in [
                (RecoveryPolicy::Abort, "abort"),
                (RecoveryPolicy::RestartFromCheckpoint, "restart"),
                (RecoveryPolicy::ShrinkAndRedistribute, "shrink"),
            ] {
                let res =
                    run_search_ft(&data, &spec, &cfg, &ftc(policy), &opts_with(plan_for(kind)));
                cells.push(grade_cell(p, kind, pname, res, &base_bits)?);
            }
        }

        // Benign faults: the run must absorb them — same bits, more
        // virtual time, and no failure report under any policy (the
        // restart policy stands in; no fault ever surfaces to it).
        for (kind, action, trigger) in [
            (
                "delay-tolerated",
                FaultAction::Delay { dst: 0, secs: TOLERATED_DELAY_S },
                FaultTrigger::AtSendSeq(3),
            ),
            (
                "degrade",
                FaultAction::DegradeLink { dst: 0, factor: DEGRADE_FACTOR },
                FaultTrigger::AtSendSeq(3),
            ),
        ] {
            let plan = FaultPlan::new(vec![FaultSpec { rank: CULPRIT, action, trigger }]);
            let out = run_search_ft(
                &data,
                &spec,
                &cfg,
                &ftc(RecoveryPolicy::RestartFromCheckpoint),
                &opts_with(plan),
            )
            .map_err(|e| format!("P={p} {kind}: benign fault was fatal: {e}"))?;
            if out.attempts != 1 || !out.faults.is_empty() {
                return Err(format!("P={p} {kind}: benign fault triggered a recovery"));
            }
            if result_bits(&out.outcome) != base_bits {
                return Err(format!("P={p} {kind}: benign fault changed the numbers"));
            }
            if out.outcome.elapsed <= base_elapsed {
                return Err(format!(
                    "P={p} {kind}: elapsed {:.6}s not above the baseline {:.6}s — \
                     the fault had no cost, so it was not injected",
                    out.outcome.elapsed, base_elapsed
                ));
            }
            cells.push(Cell {
                p,
                kind,
                policy: "n/a",
                outcome: "completed".to_string(),
                attempts: out.attempts,
                survivors: out.survivors,
                bit_identical: Some(true),
                recovery_s: out.recovery_time,
                elapsed_s: out.outcome.elapsed,
            });
        }
    }

    let (seeded, skipped) = run_seeded(smoke, &data, &cfg)?;
    Ok(Matrix { baselines, cells, ksweep: run_ksweep(smoke, &data, &cfg)?, seeded, skipped })
}

/// The label a fault action carries in artifacts and diagnoses.
fn fault_kind_label(a: &FaultAction) -> &'static str {
    match a {
        FaultAction::Crash => "crash",
        FaultAction::Drop { .. } => "drop",
        FaultAction::Delay { .. } => "delay",
        FaultAction::Corrupt { .. } => "corrupt",
        FaultAction::DegradeLink { .. } => "degrade",
        // The enum is non-exhaustive; a kind this harness does not know
        // is graded like a fatal one (never skipped).
        _ => "unknown",
    }
}

/// The seeded sub-sweep at P = 4: randomized but reproducible
/// single-fault plans ([`FaultPlan::seeded`]) graded under the restart
/// policy. Two plan shapes are deliberately *skipped* and recorded as
/// explicit cells with reasons rather than silently dropped:
///
/// * a **crash on rank 0** — rank 0 publishes the checkpoints, and a
///   crash there can land inside a publication; whether the snapshot
///   store survives that race is not modeled, so the restart contract
///   does not cover the cell;
/// * the **benign kinds** (delay, degraded link) — absorbed with no
///   failure report by design and graded by the dedicated benign cells,
///   so the recovery gates do not apply.
///
/// The seed list is deterministically extended with the first seed whose
/// plan is a rank-0 crash, so the sweep always *exhibits* the skip rule
/// instead of merely stating it.
fn run_seeded(
    smoke: bool,
    data: &autoclass::data::Dataset,
    cfg: &ParallelConfig,
) -> Result<(Vec<SeededCell>, Vec<SkippedCell>), String> {
    const P: usize = 4;
    let n_seeds: u64 = if smoke { 6 } else { 12 };
    let mut seeds: Vec<u64> = (1..=n_seeds).collect();
    if let Some(s0) = (1..10_000).find(|&s| {
        FaultPlan::seeded(s, P)
            .specs()
            .iter()
            .any(|sp| sp.rank == 0 && matches!(sp.action, FaultAction::Crash))
    }) {
        if !seeds.contains(&s0) {
            seeds.push(s0);
        }
    }
    let spec = machine(P);
    let base = run_search_ft(
        data,
        &spec,
        cfg,
        &ftc(RecoveryPolicy::RestartFromCheckpoint),
        &SimOptions::default(),
    )
    .map_err(|e| format!("seeded baseline failed: {e}"))?;
    let base_bits = result_bits(&base.outcome);
    let mut cells = Vec::new();
    let mut skipped = Vec::new();
    for seed in seeds {
        let plan = FaultPlan::seeded(seed, P);
        let (rank, kind) = {
            let sp = &plan.specs()[0];
            (sp.rank, fault_kind_label(&sp.action))
        };
        if rank == 0 && kind == "crash" {
            skipped.push(SkippedCell {
                seed,
                kind,
                rank,
                reason: "crash on rank 0 can land inside a checkpoint publication and lose the \
                         snapshot store — a race the restart contract does not model, so the \
                         cell is excluded, not silently absorbed",
            });
            continue;
        }
        if matches!(kind, "delay" | "degrade") {
            skipped.push(SkippedCell {
                seed,
                kind,
                rank,
                reason: "benign fault kind: absorbed with no failure report by design and \
                         graded by the dedicated benign cells, so the recovery gates do not \
                         apply",
            });
            continue;
        }
        let out = run_search_ft(
            data,
            &spec,
            cfg,
            &ftc(RecoveryPolicy::RestartFromCheckpoint),
            &opts_with(plan),
        )
        .map_err(|e| format!("seed {seed} ({kind} on rank {rank}): recovery failed: {e}"))?;
        match (out.attempts, out.faults.len()) {
            // Either the trigger was never reached (clean run) or exactly
            // one fault fired and one recovery followed.
            (1, 0) | (2, 1) => {}
            (a, f) => {
                return Err(format!(
                    "seed {seed} ({kind} on rank {rank}): {f} fault(s) in {a} attempt(s)"
                ));
            }
        }
        if let Some(e) = out.faults.first() {
            match culprit_of(e) {
                Some((r, k)) if r == rank && k == kind => {}
                _ => {
                    return Err(format!(
                        "seed {seed}: diagnosis does not name the injected fault \
                         ({kind} on rank {rank}): {e}"
                    ));
                }
            }
        }
        if result_bits(&out.outcome) != base_bits {
            return Err(format!(
                "seed {seed} ({kind} on rank {rank}): recovered result differs from the \
                 fault-free bits"
            ));
        }
        let outcome =
            if out.faults.is_empty() { "completed (trigger never reached)" } else { "recovered" };
        cells.push(SeededCell { seed, kind, rank, outcome, attempts: out.attempts });
    }
    Ok((cells, skipped))
}

/// Enforce one fatal cell's gates and record it.
fn grade_cell(
    p: usize,
    kind: &'static str,
    policy: &'static str,
    res: Result<FtOutcome, RunError>,
    base_bits: &(u64, Vec<u64>),
) -> Result<Cell, String> {
    let where_ = format!("P={p} {kind} x {policy}");
    // Whatever the policy, a reported fault must carry the injected
    // culprit's coordinates.
    let check_culprit = |e: &SimError| -> Result<(), String> {
        match culprit_of(e) {
            Some((rank, k)) if rank == CULPRIT && k == kind => Ok(()),
            Some((rank, k)) => Err(format!(
                "{where_}: diagnosis names rank {rank} ({k}), injected {CULPRIT} ({kind})"
            )),
            None => Err(format!("{where_}: error is not a fault diagnosis: {e}")),
        }
    };
    match (policy, res) {
        ("abort", Err(RunError::Sim(e))) => {
            check_culprit(&e)?;
            Ok(Cell {
                p,
                kind,
                policy,
                outcome: format!("typed error: {e}"),
                attempts: 1,
                survivors: 0,
                bit_identical: None,
                recovery_s: 0.0,
                elapsed_s: 0.0,
            })
        }
        ("abort", Err(e)) => Err(format!("{where_}: expected a sim fault, got {e}")),
        ("abort", Ok(_)) => {
            Err(format!("{where_}: run succeeded — the fault never fired or was swallowed"))
        }
        (_, Err(e)) => Err(format!("{where_}: recovery failed: {e}")),
        (_, Ok(out)) => {
            if out.attempts != 2 || out.faults.len() != 1 {
                return Err(format!(
                    "{where_}: expected exactly one fault and one recovery, got {} fault(s) in {} attempt(s)",
                    out.faults.len(),
                    out.attempts
                ));
            }
            check_culprit(&out.faults[0])?;
            let bit_identical = if policy == "restart" || policy == "promote" {
                if &result_bits(&out.outcome) != base_bits {
                    return Err(format!(
                        "{where_}: recovered result differs from the baseline bits"
                    ));
                }
                Some(true)
            } else {
                // Shrink repartitions over P−1 ranks; the result is a
                // valid classification but not the baseline's bits.
                None
            };
            if policy == "promote" {
                if out.promotions != 1 || out.fell_back || out.shrunk || out.survivors != p {
                    return Err(format!(
                        "{where_}: promotion not clean (promotions {}, fell_back {}, \
                         survivors {})",
                        out.promotions, out.fell_back, out.survivors
                    ));
                }
                if out.recovery_time <= 0.0 {
                    return Err(format!("{where_}: promotion reported no recovery virtual time"));
                }
            }
            if policy == "shrink" {
                if !out.shrunk || out.survivors != p - 1 {
                    return Err(format!(
                        "{where_}: expected {} survivors, got {} (shrunk: {})",
                        p - 1,
                        out.survivors,
                        out.shrunk
                    ));
                }
                if out.recovery_time <= 0.0 {
                    return Err(format!("{where_}: recovery phase reported no virtual time"));
                }
            }
            Ok(Cell {
                p,
                kind,
                policy,
                outcome: "recovered".to_string(),
                attempts: out.attempts,
                survivors: out.survivors,
                bit_identical,
                recovery_s: out.recovery_time,
                elapsed_s: out.outcome.elapsed,
            })
        }
    }
}

/// Recovery overhead versus checkpoint interval at P = 4: for each `k`,
/// one unfaulted run (checkpoint cost) and one crash-restart run (replay
/// cost). Restarts must stay bit-identical at every interval, including
/// `k = 0` (no snapshots: full replay).
fn run_ksweep(
    smoke: bool,
    data: &autoclass::data::Dataset,
    cfg: &ParallelConfig,
) -> Result<Vec<KRow>, String> {
    let ks: &[usize] = if smoke { &[0, 4] } else { &[0, 1, 2, 4, 8, 16] };
    let spec = machine(4);
    let mut rows: Vec<KRow> = Vec::new();
    let mut bits0: Option<(u64, Vec<u64>)> = None;
    let mut unfaulted0 = 0.0;
    for &k in ks {
        let fc = FtConfig {
            checkpoint_every: k,
            policy: RecoveryPolicy::RestartFromCheckpoint,
            max_restarts: 1,
            ..FtConfig::default()
        };
        let unf = run_search_ft(data, &spec, cfg, &fc, &SimOptions::default())
            .map_err(|e| format!("ksweep k={k}: unfaulted run failed: {e}"))?;
        let fau = run_search_ft(data, &spec, cfg, &fc, &opts_with(plan_for("crash")))
            .map_err(|e| format!("ksweep k={k}: restart failed: {e}"))?;
        if fau.attempts != 2 {
            return Err(format!(
                "ksweep k={k}: expected one recovery, got {} attempts",
                fau.attempts
            ));
        }
        let bits = result_bits(&unf.outcome);
        if result_bits(&fau.outcome) != bits {
            return Err(format!("ksweep k={k}: recovered result differs from the unfaulted run"));
        }
        match &bits0 {
            None => {
                bits0 = Some(bits);
                unfaulted0 = unf.outcome.elapsed;
            }
            Some(b0) if *b0 != bits => {
                return Err(format!("ksweep k={k}: checkpoint interval changed the numbers"));
            }
            Some(_) => {}
        }
        let saving = unf.outcome.elapsed - fau.outcome.elapsed;
        if saving < 0.0 {
            return Err(format!(
                "ksweep k={k}: the recovery attempt took {:.6}s, longer than the whole \
                 unfaulted run ({:.6}s) — the resume replayed more than it skipped",
                fau.outcome.elapsed, unf.outcome.elapsed
            ));
        }
        // The crash lands in cycle 6; any interval covering the cycle-4
        // boundary must produce a snapshot the resume actually skips
        // cycles with.
        if (1..=4).contains(&k) && saving <= 0.0 {
            return Err(format!(
                "ksweep k={k}: resume saved no virtual time — the restart did not \
                 pick up the checkpoint"
            ));
        }
        rows.push(KRow {
            k,
            unfaulted_s: unf.outcome.elapsed,
            faulted_s: fau.outcome.elapsed,
            ckpt_overhead_s: unf.outcome.elapsed - unfaulted0,
            resume_saving_s: saving,
        });
    }
    Ok(rows)
}

/// The reduced large-`P` sweep: crash and corrupt under abort/restart on
/// the cooperative engine and the hierarchical fat-tree cluster. The full
/// fault × policy matrix at these sizes would dominate CI for no extra
/// coverage — the fault layer is engine- and size-independent; what this
/// sweep pins is that detection, diagnosis, and bit-identical recovery
/// survive the cooperative scheduler at processor counts the threaded
/// engine cannot carry.
fn run_largep_matrix(smoke: bool) -> Result<(Vec<Baseline>, Vec<Cell>), String> {
    let ps: &[usize] = if smoke { &[64, 256] } else { &[64, 256, 1024] };
    // Every rank must own data at P = 1024. On the tiny per-rank
    // partitions up there the EM search can hit an exact fixed point
    // within ~3 cycles, so the fatal faults trigger at send #5 (≈ cycle
    // 2) — a sequence every run reaches — rather than [`FAULT_SEQ`].
    // The crash then precedes the first checkpoint and the restart
    // replays from scratch; bit-identity is still fully enforced.
    const LARGEP_FAULT_SEQ: u64 = 5;
    let plan = |kind: &str| {
        let action = match kind {
            "crash" => FaultAction::Crash,
            _ => FaultAction::Corrupt { dst: 0, byte: 5, mask: 0x20 },
        };
        FaultPlan::new(vec![FaultSpec {
            rank: CULPRIT,
            action,
            trigger: FaultTrigger::AtSendSeq(LARGEP_FAULT_SEQ),
        }])
    };
    let data = datagen::paper_dataset(2_048, 7);
    let cfg = parallel_config();
    let coop_opts = |plan: Option<FaultPlan>| SimOptions {
        engine: Engine::Cooperative,
        fault: plan,
        ..SimOptions::default()
    };

    let mut baselines = Vec::new();
    let mut cells = Vec::new();
    for &p in ps {
        let spec = presets::hier_cluster(p, 8);
        let base = run_search_ft(
            &data,
            &spec,
            &cfg,
            &ftc(RecoveryPolicy::RestartFromCheckpoint),
            &coop_opts(None),
        )
        .map_err(|e| format!("P={p}: unfaulted baseline failed: {e}"))?;
        if base.attempts != 1 || !base.faults.is_empty() {
            return Err(format!("P={p}: unfaulted baseline reported phantom faults"));
        }
        let base_bits = result_bits(&base.outcome);
        baselines.push(Baseline { p, elapsed_s: base.outcome.elapsed });

        for kind in ["crash", "corrupt"] {
            for (policy, pname) in [
                (RecoveryPolicy::Abort, "abort"),
                (RecoveryPolicy::RestartFromCheckpoint, "restart"),
                // The spare-rank row: one warm spare absorbs the fault
                // without changing P, even at a thousand ranks on the
                // cooperative scheduler.
                (RecoveryPolicy::PromoteSpare, "promote"),
            ] {
                let res =
                    run_search_ft(&data, &spec, &cfg, &ftc(policy), &coop_opts(Some(plan(kind))));
                cells.push(grade_cell(p, kind, pname, res, &base_bits)?);
            }
        }
    }
    Ok((baselines, cells))
}

fn largep_json(smoke: bool, baselines: &[Baseline], cells: &[Cell], deterministic: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"kind\": \"largep\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"engine\": \"cooperative\",");
    let _ = writeln!(out, "  \"machine\": \"hier_cluster\",");
    let _ = writeln!(out, "  \"culprit_rank\": {CULPRIT},");
    out.push_str("  \"gates\": {\n");
    // Enforced in run_largep_matrix via grade_cell; recorded for --check.
    let _ = writeln!(out, "    \"abort_names_correct_culprit\": true,");
    let _ = writeln!(out, "    \"restart_bit_identical\": true,");
    let _ = writeln!(out, "    \"promote_bit_identical\": true,");
    let _ = writeln!(out, "    \"promote_preserves_p\": true,");
    let _ = writeln!(out, "    \"deterministic\": {deterministic}");
    out.push_str("  },\n");
    out.push_str("  \"baselines\": [\n");
    for (i, b) in baselines.iter().enumerate() {
        let comma = if i + 1 < baselines.len() { "," } else { "" };
        let _ = writeln!(out, "    {{\"p\": {}, \"elapsed_s\": {:.9}}}{comma}", b.p, b.elapsed_s);
    }
    out.push_str("  ],\n");
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let bits = match c.bit_identical {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        let _ = writeln!(
            out,
            "    {{\"p\": {}, \"fault\": \"{}\", \"policy\": \"{}\", \"outcome\": \"{}\", \
             \"attempts\": {}, \"survivors\": {}, \"bit_identical\": {bits}, \
             \"elapsed_s\": {:.9}}}{comma}",
            c.p,
            c.kind,
            c.policy,
            c.outcome.replace('\\', "\\\\").replace('"', "\\\""),
            c.attempts,
            c.survivors,
            c.elapsed_s
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn faultmatrix_largep(smoke: bool, out_dir: &Path, self_check: bool) -> ExitCode {
    let (baselines, cells) = match run_largep_matrix(smoke) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("xtask faultmatrix --largep: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let deterministic = match run_largep_matrix(smoke) {
        Ok((b2, c2)) => {
            largep_json(smoke, &b2, &c2, true) == largep_json(smoke, &baselines, &cells, true)
        }
        Err(msg) => {
            eprintln!("xtask faultmatrix --largep: repeat run failed: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if !deterministic {
        eprintln!("xtask faultmatrix --largep: repeated sweep rendered different artifacts");
        return ExitCode::FAILURE;
    }
    let json = largep_json(smoke, &baselines, &cells, deterministic);
    let text = to_text(&Matrix {
        baselines,
        cells,
        ksweep: Vec::new(),
        seeded: Vec::new(),
        skipped: Vec::new(),
    });
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("xtask faultmatrix --largep: cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    for (name, content) in [("faultmatrix_largep.json", &json), ("faultmatrix_largep.txt", &text)] {
        let path = out_dir.join(name);
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!("xtask faultmatrix --largep: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    print!("{text}");
    println!("\nxtask faultmatrix --largep: wrote 2 artifacts to {}", out_dir.display());
    if self_check {
        return check(&out_dir.join("faultmatrix_largep.json"));
    }
    ExitCode::SUCCESS
}

/// Required keys for the large-`P` artifact (`faultmatrix_largep.json`).
const LARGEP_REQUIRED: [&str; 14] = [
    "\"schema_version\": 1",
    "\"kind\": \"largep\"",
    "\"engine\": \"cooperative\"",
    "\"machine\": \"hier_cluster\"",
    "\"abort_names_correct_culprit\": true",
    "\"restart_bit_identical\": true",
    "\"promote_bit_identical\": true",
    "\"promote_preserves_p\": true",
    "\"deterministic\": true",
    "\"fault\": \"crash\"",
    "\"fault\": \"corrupt\"",
    "\"policy\": \"abort\"",
    "\"policy\": \"restart\"",
    "\"policy\": \"promote\"",
];

/// One cell of the localized-recovery (standby) sweep.
struct StandbyCell {
    p: usize,
    scenario: &'static str,
    backend: &'static str,
    outcome: String,
    attempts: usize,
    promotions: usize,
    replays: usize,
    fell_back: bool,
    survivors: usize,
    bit_identical: Option<bool>,
    recovery_s: f64,
    elapsed_s: f64,
}

/// Gate one standby outcome against its expected shape — exact
/// attempts/promotions/replays/fallback counts, P preserved, and the
/// result bit-identical to the fault-free baseline — and record it.
fn grade_standby(
    p: usize,
    scenario: &'static str,
    backend: &'static str,
    out: &FtOutcome,
    base_bits: &(u64, Vec<u64>),
    want: (usize, usize, usize, bool),
) -> Result<StandbyCell, String> {
    let where_ = format!("P={p} {scenario} [{backend}]");
    let (attempts, promotions, replays, fell_back) = want;
    if out.attempts != attempts
        || out.promotions != promotions
        || out.replays != replays
        || out.fell_back != fell_back
    {
        return Err(format!(
            "{where_}: expected attempts/promotions/replays/fell_back = \
             {attempts}/{promotions}/{replays}/{fell_back}, got {}/{}/{}/{}",
            out.attempts, out.promotions, out.replays, out.fell_back
        ));
    }
    if out.shrunk || out.survivors != p {
        return Err(format!(
            "{where_}: P not preserved ({} survivors, shrunk: {})",
            out.survivors, out.shrunk
        ));
    }
    if &result_bits(&out.outcome) != base_bits {
        return Err(format!("{where_}: result differs from the fault-free bits"));
    }
    let outcome = if out.attempts == 1 {
        "completed"
    } else if out.fell_back {
        "recovered (fell back)"
    } else {
        "recovered"
    };
    Ok(StandbyCell {
        p,
        scenario,
        backend,
        outcome: outcome.to_string(),
        attempts: out.attempts,
        promotions: out.promotions,
        replays: out.replays,
        fell_back: out.fell_back,
        survivors: out.survivors,
        bit_identical: Some(true),
        recovery_s: out.recovery_time,
        elapsed_s: out.outcome.elapsed,
    })
}

/// The localized-recovery sweep: every cell injects the same crash as the
/// main matrix (culprit rank 1, send #13 — past the first checkpoint) and
/// gates the two localized mechanisms against the rollback policy:
///
/// * **promote** — a warm spare takes over the culprit's logical slot on
///   the threaded engine, the cooperative engine, *and* the native
///   backend: exactly one promotion, P preserved, result bit-identical
///   to the fault-free run.
/// * **replay vs restart** — on the identical fault cell, the in-flight
///   replay's recovery virtual time must be *strictly* below the full
///   rollback's (localization is the point; equality means the log
///   bought nothing).
/// * **exhausted** — two crashes against one spare: the second promotion
///   request must fall back to a full restart deterministically
///   (attempts = 3, exactly one promotion, `fell_back`).
/// * **corrupt-shard** — a corrupted checkpoint shard under promotion:
///   the spare must refuse the shard with a typed diagnosis naming the
///   shard's owner and fall back to restarting from the intact image,
///   without consuming the spare.
fn run_standby_matrix(smoke: bool) -> Result<Vec<StandbyCell>, String> {
    let ps: &[usize] = if smoke { &[2, 5] } else { &[2, 5, 8] };
    let data = datagen::paper_dataset(240, 7);
    let cfg = parallel_config();
    let mut cells = Vec::new();
    for &p in ps {
        let spec = machine(p);
        let base = run_search_ft(
            &data,
            &spec,
            &cfg,
            &ftc(RecoveryPolicy::RestartFromCheckpoint),
            &SimOptions::default(),
        )
        .map_err(|e| format!("P={p}: unfaulted baseline failed: {e}"))?;
        if base.attempts != 1 || !base.faults.is_empty() {
            return Err(format!("P={p}: unfaulted baseline reported phantom faults"));
        }
        let base_bits = result_bits(&base.outcome);
        cells.push(grade_standby(
            p,
            "baseline",
            "sim-threaded",
            &base,
            &base_bits,
            (1, 0, 0, false),
        )?);

        // Spare promotion on both simulator engines.
        for (backend, engine) in
            [("sim-threaded", Engine::Threaded), ("sim-coop", Engine::Cooperative)]
        {
            let opts =
                SimOptions { engine, fault: Some(plan_for("crash")), ..SimOptions::default() };
            let out = run_search_ft(&data, &spec, &cfg, &ftc(RecoveryPolicy::PromoteSpare), &opts)
                .map_err(|e| format!("P={p} promote [{backend}]: {e}"))?;
            let cell = grade_standby(p, "promote", backend, &out, &base_bits, (2, 1, 0, false))?;
            if cell.recovery_s <= 0.0 {
                return Err(format!(
                    "P={p} promote [{backend}]: promotion reported no recovery virtual time"
                ));
            }
            cells.push(cell);
        }

        // Spare promotion on the native backend: same crash plan, real
        // threads. Timings are wall-clock there, so they are zeroed in
        // the artifact — the determinism gate compares rendered JSON and
        // must see only modeled quantities.
        let nopts = NativeOptions { fault: Some(plan_for("crash")), ..NativeOptions::default() };
        let out =
            run_search_ft_native(&data, &spec, &cfg, &ftc(RecoveryPolicy::PromoteSpare), &nopts)
                .map_err(|e| format!("P={p} promote [native]: {e}"))?;
        let mut cell = grade_standby(p, "promote", "native", &out, &base_bits, (2, 1, 0, false))?;
        cell.recovery_s = 0.0;
        cell.elapsed_s = 0.0;
        cells.push(cell);

        // The same crash under full rollback and under localized replay:
        // the replay horizon must be strictly cheaper.
        let restart = run_search_ft(
            &data,
            &spec,
            &cfg,
            &ftc(RecoveryPolicy::RestartFromCheckpoint),
            &opts_with(plan_for("crash")),
        )
        .map_err(|e| format!("P={p} restart: {e}"))?;
        cells.push(grade_standby(
            p,
            "restart",
            "sim-threaded",
            &restart,
            &base_bits,
            (2, 0, 0, false),
        )?);
        let replay = run_search_ft(
            &data,
            &spec,
            &cfg,
            &ftc(RecoveryPolicy::LocalReplay),
            &opts_with(plan_for("crash")),
        )
        .map_err(|e| format!("P={p} replay: {e}"))?;
        cells.push(grade_standby(
            p,
            "replay",
            "sim-threaded",
            &replay,
            &base_bits,
            (2, 0, 1, false),
        )?);
        if restart.recovery_time <= 0.0 {
            return Err(format!("P={p}: rollback charged no recovery virtual time"));
        }
        if replay.recovery_time >= restart.recovery_time {
            return Err(format!(
                "P={p}: replay recovery {:.9}s is not strictly below the rollback's {:.9}s — \
                 the in-flight log bought nothing",
                replay.recovery_time, restart.recovery_time
            ));
        }

        // Two crashes against one spare: the first promotes, the second
        // finds the pool exhausted and falls back to a full restart. Both
        // crashes land before the first checkpoint so each re-run
        // re-reaches the next trigger from scratch.
        let two_crashes = FaultPlan::new(vec![
            FaultSpec {
                rank: CULPRIT,
                action: FaultAction::Crash,
                trigger: FaultTrigger::AtSendSeq(5),
            },
            FaultSpec {
                rank: CULPRIT,
                action: FaultAction::Crash,
                trigger: FaultTrigger::AtSendSeq(9),
            },
        ]);
        let ft = FtConfig {
            checkpoint_every: 4,
            policy: RecoveryPolicy::PromoteSpare,
            max_restarts: 2,
            ..FtConfig::default()
        };
        let out = run_search_ft(&data, &spec, &cfg, &ft, &opts_with(two_crashes))
            .map_err(|e| format!("P={p} exhausted: {e}"))?;
        cells.push(grade_standby(
            p,
            "exhausted",
            "sim-threaded",
            &out,
            &base_bits,
            (3, 1, 0, true),
        )?);

        // A corrupted checkpoint shard: promotion must refuse it with a
        // typed diagnosis naming the shard's owner, fall back to the
        // intact full image, and leave the spare unconsumed.
        let ft = FtConfig {
            checkpoint_every: 4,
            policy: RecoveryPolicy::PromoteSpare,
            max_restarts: 1,
            standby: StandbyConfig {
                shard_fault: Some(ShardFault { logical_rank: CULPRIT, byte: 7, mask: 0x40 }),
                ..StandbyConfig::default()
            },
        };
        let out = run_search_ft(&data, &spec, &cfg, &ft, &opts_with(plan_for("crash")))
            .map_err(|e| format!("P={p} corrupt-shard: {e}"))?;
        if !out
            .faults
            .iter()
            .any(|f| matches!(f, SimError::PayloadCorrupt { from, .. } if *from == CULPRIT))
        {
            return Err(format!(
                "P={p} corrupt-shard: no corruption diagnosis naming rank {CULPRIT} in {:?}",
                out.faults
            ));
        }
        cells.push(grade_standby(
            p,
            "corrupt-shard",
            "sim-threaded",
            &out,
            &base_bits,
            (2, 0, 0, true),
        )?);
    }
    Ok(cells)
}

fn standby_json(smoke: bool, cells: &[StandbyCell], deterministic: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"kind\": \"standby\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"culprit_rank\": {CULPRIT},");
    out.push_str("  \"gates\": {\n");
    // Enforced in run_standby_matrix; recorded for --check.
    let _ = writeln!(out, "    \"promote_preserves_p\": true,");
    let _ = writeln!(out, "    \"promote_bit_identical\": true,");
    let _ = writeln!(out, "    \"promote_native_bit_identical\": true,");
    let _ = writeln!(out, "    \"replay_strictly_cheaper_than_restart\": true,");
    let _ = writeln!(out, "    \"shard_corruption_detected\": true,");
    let _ = writeln!(out, "    \"exhausted_fallback_deterministic\": {deterministic},");
    let _ = writeln!(out, "    \"deterministic\": {deterministic}");
    out.push_str("  },\n");
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let bits = match c.bit_identical {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        let _ = writeln!(
            out,
            "    {{\"p\": {}, \"scenario\": \"{}\", \"backend\": \"{}\", \"outcome\": \"{}\", \
             \"attempts\": {}, \"promotions\": {}, \"replays\": {}, \"fell_back\": {}, \
             \"survivors\": {}, \"bit_identical\": {bits}, \"recovery_s\": {:.9}, \
             \"elapsed_s\": {:.9}}}{comma}",
            c.p,
            c.scenario,
            c.backend,
            c.outcome,
            c.attempts,
            c.promotions,
            c.replays,
            c.fell_back,
            c.survivors,
            c.recovery_s,
            c.elapsed_s
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn standby_text(cells: &[StandbyCell]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "localized recovery sweep (culprit rank {CULPRIT}, all gates enforced)");
    let _ = writeln!(
        out,
        "{:>3}  {:<13} {:<12} {:>8} {:>5} {:>7} {:>9} {:>9} {:>12} {:>12}  outcome",
        "P",
        "scenario",
        "backend",
        "attempts",
        "promo",
        "replays",
        "fellback",
        "survivors",
        "recovery_s",
        "elapsed_s"
    );
    for c in cells {
        let _ = writeln!(
            out,
            "{:>3}  {:<13} {:<12} {:>8} {:>5} {:>7} {:>9} {:>9} {:>12.6} {:>12.6}  {}",
            c.p,
            c.scenario,
            c.backend,
            c.attempts,
            c.promotions,
            c.replays,
            c.fell_back,
            c.survivors,
            c.recovery_s,
            c.elapsed_s,
            c.outcome
        );
    }
    out
}

fn faultmatrix_standby(smoke: bool, out_dir: &Path, self_check: bool) -> ExitCode {
    let cells = match run_standby_matrix(smoke) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("xtask faultmatrix --standby: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let deterministic = match run_standby_matrix(smoke) {
        Ok(second) => standby_json(smoke, &second, true) == standby_json(smoke, &cells, true),
        Err(msg) => {
            eprintln!("xtask faultmatrix --standby: repeat run failed: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if !deterministic {
        eprintln!("xtask faultmatrix --standby: repeated sweep rendered different artifacts");
        return ExitCode::FAILURE;
    }
    let json = standby_json(smoke, &cells, deterministic);
    let text = standby_text(&cells);
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("xtask faultmatrix --standby: cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    for (name, content) in [("faultmatrix_standby.json", &json), ("faultmatrix_standby.txt", &text)]
    {
        let path = out_dir.join(name);
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!("xtask faultmatrix --standby: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    print!("{text}");
    println!("\nxtask faultmatrix --standby: wrote 2 artifacts to {}", out_dir.display());
    if self_check {
        return check(&out_dir.join("faultmatrix_standby.json"));
    }
    ExitCode::SUCCESS
}

/// Required keys for the standby artifact (`faultmatrix_standby.json`).
const STANDBY_REQUIRED: [&str; 16] = [
    "\"schema_version\": 1",
    "\"kind\": \"standby\"",
    "\"promote_preserves_p\": true",
    "\"promote_bit_identical\": true",
    "\"promote_native_bit_identical\": true",
    "\"replay_strictly_cheaper_than_restart\": true",
    "\"shard_corruption_detected\": true",
    "\"exhausted_fallback_deterministic\": true",
    "\"deterministic\": true",
    "\"scenario\": \"promote\"",
    "\"scenario\": \"restart\"",
    "\"scenario\": \"replay\"",
    "\"scenario\": \"exhausted\"",
    "\"scenario\": \"corrupt-shard\"",
    "\"backend\": \"native\"",
    "\"backend\": \"sim-coop\"",
];

fn to_text(m: &Matrix) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "fault x policy x P sweep (culprit rank {CULPRIT}, all gates enforced)");
    let _ = writeln!(
        out,
        "{:>3}  {:<15} {:<8} {:<10} {:>8} {:>9} {:>12} {:>12}  outcome",
        "P", "fault", "policy", "bits", "attempts", "survivors", "recovery_s", "elapsed_s"
    );
    for c in &m.cells {
        let bits = match c.bit_identical {
            Some(true) => "identical",
            Some(false) => "DIFFER",
            None => "-",
        };
        let _ = writeln!(
            out,
            "{:>3}  {:<15} {:<8} {:<10} {:>8} {:>9} {:>12.6} {:>12.6}  {}",
            c.p,
            c.kind,
            c.policy,
            bits,
            c.attempts,
            c.survivors,
            c.recovery_s,
            c.elapsed_s,
            c.outcome
        );
    }
    if !m.seeded.is_empty() || !m.skipped.is_empty() {
        let _ = writeln!(out, "\nseeded plans (P = 4, restart policy)");
        for c in &m.seeded {
            let _ = writeln!(
                out,
                "  seed {:>5}  {:<8} rank {}  attempts {}  {}",
                c.seed, c.kind, c.rank, c.attempts, c.outcome
            );
        }
        for c in &m.skipped {
            let _ = writeln!(
                out,
                "  seed {:>5}  {:<8} rank {}  SKIPPED: {}",
                c.seed, c.kind, c.rank, c.reason
            );
        }
    }
    if m.ksweep.is_empty() {
        return out;
    }
    let _ = writeln!(out, "\nrecovery overhead vs checkpoint interval (P = 4, crash + restart)");
    let _ = writeln!(
        out,
        "{:>4} {:>12} {:>12} {:>16} {:>16}",
        "k", "unfaulted_s", "faulted_s", "ckpt_overhead_s", "resume_saving_s"
    );
    for r in &m.ksweep {
        let _ = writeln!(
            out,
            "{:>4} {:>12.6} {:>12.6} {:>16.6} {:>16.6}",
            r.k, r.unfaulted_s, r.faulted_s, r.ckpt_overhead_s, r.resume_saving_s
        );
    }
    out
}

fn to_json(smoke: bool, m: &Matrix, deterministic: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"culprit_rank\": {CULPRIT},");
    out.push_str("  \"gates\": {\n");
    // Every gate is enforced inside run_matrix; reaching here means true.
    // Recorded so --check (and CI) can assert on the artifact alone.
    let _ = writeln!(out, "    \"abort_names_correct_culprit\": true,");
    let _ = writeln!(out, "    \"restart_bit_identical\": true,");
    let _ = writeln!(out, "    \"shrink_survivors_ok\": true,");
    let _ = writeln!(out, "    \"benign_faults_absorbed\": true,");
    let _ = writeln!(out, "    \"ksweep_bit_identical\": true,");
    let _ = writeln!(out, "    \"seeded_recovered_bit_identical\": true,");
    let _ = writeln!(out, "    \"deterministic\": {deterministic}");
    out.push_str("  },\n");
    out.push_str("  \"baselines\": [\n");
    for (i, b) in m.baselines.iter().enumerate() {
        let comma = if i + 1 < m.baselines.len() { "," } else { "" };
        let _ = writeln!(out, "    {{\"p\": {}, \"elapsed_s\": {:.9}}}{comma}", b.p, b.elapsed_s);
    }
    out.push_str("  ],\n");
    out.push_str("  \"cells\": [\n");
    for (i, c) in m.cells.iter().enumerate() {
        let comma = if i + 1 < m.cells.len() { "," } else { "" };
        let bits = match c.bit_identical {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        let _ = writeln!(
            out,
            "    {{\"p\": {}, \"fault\": \"{}\", \"policy\": \"{}\", \"outcome\": \"{}\", \
             \"attempts\": {}, \"survivors\": {}, \"bit_identical\": {bits}, \
             \"recovery_s\": {:.9}, \"elapsed_s\": {:.9}}}{comma}",
            c.p,
            c.kind,
            c.policy,
            c.outcome.replace('\\', "\\\\").replace('"', "\\\""),
            c.attempts,
            c.survivors,
            c.recovery_s,
            c.elapsed_s
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"seeded_cells\": [\n");
    for (i, c) in m.seeded.iter().enumerate() {
        let comma = if i + 1 < m.seeded.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"seed\": {}, \"fault\": \"{}\", \"rank\": {}, \"outcome\": \"{}\", \
             \"attempts\": {}, \"bit_identical\": true}}{comma}",
            c.seed, c.kind, c.rank, c.outcome, c.attempts
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"skipped_cells\": [\n");
    for (i, c) in m.skipped.iter().enumerate() {
        let comma = if i + 1 < m.skipped.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"seed\": {}, \"fault\": \"{}\", \"rank\": {}, \"reason\": \"{}\"}}{comma}",
            c.seed, c.kind, c.rank, c.reason
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"checkpoint_interval_sweep\": [\n");
    for (i, r) in m.ksweep.iter().enumerate() {
        let comma = if i + 1 < m.ksweep.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"k\": {}, \"unfaulted_s\": {:.9}, \"faulted_s\": {:.9}, \
             \"ckpt_overhead_s\": {:.9}, \"resume_saving_s\": {:.9}}}{comma}",
            r.k, r.unfaulted_s, r.faulted_s, r.ckpt_overhead_s, r.resume_saving_s
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Structural validation of a faultmatrix artifact: required keys exist
/// and every gate reads `true`. Timing values are machine-model outputs
/// and deliberately not pinned here.
fn check(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask faultmatrix --check: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if text.contains("\"kind\": \"standby\"") {
        return check_required(path, &text, &STANDBY_REQUIRED);
    }
    if text.contains("\"kind\": \"largep\"") {
        return check_required(path, &text, &LARGEP_REQUIRED);
    }
    let required = [
        "\"schema_version\": 1",
        "\"gates\"",
        "\"abort_names_correct_culprit\": true",
        "\"restart_bit_identical\": true",
        "\"shrink_survivors_ok\": true",
        "\"benign_faults_absorbed\": true",
        "\"ksweep_bit_identical\": true",
        "\"deterministic\": true",
        "\"baselines\"",
        "\"cells\"",
        "\"fault\": \"crash\"",
        "\"fault\": \"drop\"",
        "\"fault\": \"delay\"",
        "\"fault\": \"corrupt\"",
        "\"fault\": \"delay-tolerated\"",
        "\"fault\": \"degrade\"",
        "\"policy\": \"abort\"",
        "\"policy\": \"restart\"",
        "\"policy\": \"shrink\"",
        "\"seeded_recovered_bit_identical\": true",
        "\"seeded_cells\"",
        "\"skipped_cells\"",
        "\"reason\"",
        "\"checkpoint_interval_sweep\"",
        "\"resume_saving_s\"",
    ];
    check_required(path, &text, &required)
}

fn check_required(path: &Path, text: &str, required: &[&str]) -> ExitCode {
    let mut missing = Vec::new();
    for key in required {
        if !text.contains(key) {
            missing.push(key);
        }
    }
    if missing.is_empty() {
        println!("xtask faultmatrix --check: {} ok", path.display());
        ExitCode::SUCCESS
    } else {
        for key in missing {
            eprintln!("xtask faultmatrix --check: {} missing {key}", path.display());
        }
        ExitCode::FAILURE
    }
}
