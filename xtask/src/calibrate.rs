//! `cargo xtask calibrate` — validate the simulator against real silicon.
//!
//! Runs the identical verified P-AutoClass search on both communication
//! backends — the simulated multicomputer (`mpsim`, virtual LogGP time)
//! and the native shared-memory machine (`shmcomm`, one OS thread per
//! rank, wall-clock time) — at a series of processor counts, and emits a
//! calibration report comparing the two:
//!
//! * **Bitwise gates (hard)** — per P, the classifications, their
//!   log-likelihoods and CS scores, the per-try cycle counts, and the
//!   FNV-1a replication hashes of every flat parameter vector must be
//!   identical to the last bit across backends. This is the tentpole
//!   contract: the machine spec picks schedules, never numbers.
//! * **Phase-ratio table** — per P and per phase (`estep`, `mstep`,
//!   `allreduce`, residual `search`), the fraction of elapsed time the
//!   phase claims on each backend, plus the ratio between them. Virtual
//!   and wall-clock fractions legitimately differ (the LogGP model is not
//!   this host), so the gate is structural: every fraction finite, in
//!   [0, 1], and on every native rank the phase buckets partition the
//!   rank's measured elapsed time.
//! * **Speedup curves** — elapsed(P=1)/elapsed(P) for both backends side
//!   by side, with the LogGP closed-form allreduce prediction from the
//!   same formula `xtask report` gates on. Wall-clock speedup on a shared
//!   CI host is noisy, so the gate is again structural (finite, positive)
//!   rather than a pinned curve.
//!
//! Flags: `--smoke` (P ∈ {1,2,4}, smaller dataset — the CI
//! configuration), `--out PATH` (default `CALIBRATE.json` in the repo
//! root), `--check PATH` (validate an existing artifact instead of
//! running).

use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;

use autoclass::model::classes_to_flat;
use autoclass::search::SearchConfig;
use mpsim::{hash_f64s, predicted_allreduce_cost, presets, RankStats, SimOptions};
use pautoclass::{
    run_search_native, run_search_with, Exchange, ParallelConfig, ParallelOutcome, Partitioning,
    Strategy,
};
use shmcomm::NativeOptions;

/// Phases the driver attributes time to, in display order. Anything not
/// claimed by the first three lands in the enclosing `search` bucket.
const PHASES: [&str; 4] = ["estep", "mstep", "allreduce", "search"];

pub fn calibrate(args: &[String]) -> ExitCode {
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    if let Some(path) = flag_value("--check") {
        return check(Path::new(path));
    }
    let root = crate::repo_root();
    let out_path =
        flag_value("--out").map(Into::into).unwrap_or_else(|| root.join("CALIBRATE.json"));

    let rows = match run_series(smoke) {
        Ok(rows) => rows,
        Err(msg) => {
            eprintln!("xtask calibrate: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let json = assemble_json(smoke, &rows);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("xtask calibrate: cannot write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    print_tables(&rows);
    println!("xtask calibrate: wrote {}", out_path.display());
    ExitCode::SUCCESS
}

/// One processor count's calibration measurements, all gates already
/// enforced by [`run_series`].
struct CalRow {
    p: usize,
    cycles: usize,
    /// Virtual seconds of the simulated run.
    sim_elapsed_s: f64,
    /// Measured wall-clock seconds of the native run.
    native_elapsed_s: f64,
    /// LogGP closed-form prediction for the total allreduce time — the
    /// same per-payload formula `xtask report` gates the simulator on.
    loggp_allreduce_s: f64,
    /// `(phase, sim fraction of elapsed, native fraction of elapsed)`.
    phase_fracs: Vec<(&'static str, f64, f64)>,
}

/// Max-over-ranks total of one phase bucket.
fn phase_time(ranks: &[RankStats], name: &str) -> f64 {
    ranks.iter().filter_map(|r| r.phase(name).map(|ph| ph.total())).fold(0.0, f64::max)
}

/// Hashes of every stored classification's flat parameters — the same
/// FNV-1a the in-run replication verifier uses.
fn outcome_hashes(out: &ParallelOutcome) -> Vec<u64> {
    out.all.iter().map(|c| hash_f64s(&classes_to_flat(&c.classes))).collect()
}

fn run_series(smoke: bool) -> Result<Vec<CalRow>, String> {
    let (n, ps): (usize, &[usize]) = if smoke { (800, &[1, 2, 4]) } else { (2_000, &[1, 2, 4, 8]) };
    let data = datagen::paper_dataset(n, 11);
    let config = ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![4],
            tries_per_j: 1,
            max_cycles: if smoke { 6 } else { 10 },
            rel_delta_ll: 0.0,
            min_class_weight: 0.0,
            seed: 42,
            max_stored: 1,
        },
        strategy: Strategy::Full { exchange: Exchange::Fused },
        partition: Partitioning::Block,
        correlated_blocks: Vec::new(),
    };
    let mut rows = Vec::new();
    for &p in ps {
        let spec = presets::meiko_cs2(p);
        let sim = run_search_with(&data, &spec, &config, &SimOptions::verified())
            .map_err(|e| format!("P={p} sim: {e}"))?;
        let native = run_search_native(&data, &spec, &config, &NativeOptions::verified())
            .map_err(|e| format!("P={p} native: {e}"))?;

        // Hard gate: backends must agree to the last bit.
        let ll_ok =
            sim.best.approx.log_likelihood.to_bits() == native.best.approx.log_likelihood.to_bits();
        let score_ok = sim.best.score().to_bits() == native.best.score().to_bits();
        let hashes_ok = outcome_hashes(&sim) == outcome_hashes(&native);
        if !(ll_ok && score_ok && hashes_ok && sim.cycles == native.cycles) {
            return Err(format!(
                "P={p}: backends diverged (ll bits {} vs {}, cycles {} vs {}, hashes equal: \
                 {hashes_ok}) — the determinism contract is broken",
                sim.best.approx.log_likelihood,
                native.best.approx.log_likelihood,
                sim.cycles,
                native.cycles
            ));
        }
        // Structural gate: native phase buckets partition measured time.
        for (r, rs) in native.ranks.iter().enumerate() {
            let sum: f64 = rs.phases.iter().map(|ph| ph.total()).sum();
            let rel = (sum - rs.elapsed).abs() / rs.elapsed.max(1e-12);
            if !(rel < 1e-6) {
                return Err(format!(
                    "P={p} rank {r}: native phase totals {sum:.6e}s do not partition \
                     elapsed {:.6e}s",
                    rs.elapsed
                ));
            }
        }
        if !(sim.elapsed > 0.0 && native.elapsed > 0.0 && native.elapsed.is_finite()) {
            return Err(format!(
                "P={p}: degenerate elapsed times (sim {:.3e}, native {:.3e})",
                sim.elapsed, native.elapsed
            ));
        }
        let phase_fracs = PHASES
            .iter()
            .map(|&name| {
                let sf = phase_time(&sim.ranks, name) / sim.elapsed;
                let nf = phase_time(&native.ranks, name) / native.elapsed;
                (name, sf, nf)
            })
            .collect::<Vec<_>>();
        for &(name, sf, nf) in &phase_fracs {
            // Per-phase max-over-ranks can slightly exceed the max-rank
            // elapsed only through a bug, not noise; allow epsilon.
            if !(sf.is_finite()
                && nf.is_finite()
                && (0.0..=1.0 + 1e-9).contains(&sf)
                && (0.0..=1.0 + 1e-9).contains(&nf))
            {
                return Err(format!("P={p}: phase '{name}' fraction out of range ({sf}, {nf})"));
            }
        }
        // LogGP prediction for the run's allreduce traffic: per cycle, one
        // w_j-sized and one fused-statistics-sized combine (see `driver`);
        // sizes are recovered from the run itself so the formula tracks
        // whatever the search actually exchanged.
        let j = sim.best.n_classes();
        let stats_len = classes_to_flat(&sim.best.classes).len();
        let per_cycle = [j, stats_len + 2]
            .iter()
            .map(|&m| predicted_allreduce_cost(spec.allreduce, p, m, &spec.network))
            .sum::<f64>();
        let loggp_allreduce_s = sim.cycles as f64 * per_cycle;
        rows.push(CalRow {
            p,
            cycles: sim.cycles,
            sim_elapsed_s: sim.elapsed,
            native_elapsed_s: native.elapsed,
            loggp_allreduce_s,
            phase_fracs,
        });
    }
    // Speedup structural gate, both backends: finite and positive.
    let (s1, n1) = (rows[0].sim_elapsed_s, rows[0].native_elapsed_s);
    for r in &rows {
        let ss = s1 / r.sim_elapsed_s;
        let ns = n1 / r.native_elapsed_s;
        if !(ss.is_finite() && ss > 0.0 && ns.is_finite() && ns > 0.0) {
            return Err(format!("P={}: degenerate speedup (sim {ss:.3}, native {ns:.3})", r.p));
        }
    }
    Ok(rows)
}

fn print_tables(rows: &[CalRow]) {
    let (s1, n1) = (rows[0].sim_elapsed_s, rows[0].native_elapsed_s);
    println!("speedup curves (elapsed P=1 / elapsed P):");
    println!(
        "{:>4} {:>10} {:>14} {:>12} {:>14} {:>16}",
        "P", "cycles", "sim elapsed", "sim spd", "native elapsed", "native spd"
    );
    for r in rows {
        println!(
            "{:>4} {:>10} {:>13.6}s {:>12.3} {:>13.6}s {:>16.3}",
            r.p,
            r.cycles,
            r.sim_elapsed_s,
            s1 / r.sim_elapsed_s,
            r.native_elapsed_s,
            n1 / r.native_elapsed_s
        );
    }
    println!("\nphase fractions of elapsed (sim / native):");
    for r in rows {
        let cols = r
            .phase_fracs
            .iter()
            .map(|(name, sf, nf)| format!("{name} {:.3}/{:.3}", sf, nf))
            .collect::<Vec<_>>()
            .join("  ");
        println!("  P={:<3} {cols}", r.p);
    }
    println!();
}

fn assemble_json(smoke: bool, rows: &[CalRow]) -> String {
    let (s1, n1) = (rows[0].sim_elapsed_s, rows[0].native_elapsed_s);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"kind\": \"calibrate\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"backends\": [\"mpsim\", \"shmcomm\"],");
    out.push_str("  \"gates\": {\n");
    // Enforced in run_series; reaching here means they all held. Recorded
    // so --check (and CI) can assert on the artifact alone.
    let _ = writeln!(out, "    \"bitwise_identical\": true,");
    let _ = writeln!(out, "    \"phase_sums_ok\": true,");
    let _ = writeln!(out, "    \"fractions_ok\": true,");
    let _ = writeln!(out, "    \"speedup_finite\": true");
    out.push_str("  },\n");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"p\": {},", r.p);
        let _ = writeln!(out, "      \"cycles\": {},", r.cycles);
        let _ = writeln!(out, "      \"sim_elapsed_s\": {:.9},", r.sim_elapsed_s);
        let _ = writeln!(out, "      \"native_elapsed_s\": {:.9},", r.native_elapsed_s);
        let _ = writeln!(out, "      \"sim_speedup\": {:.6},", s1 / r.sim_elapsed_s);
        let _ = writeln!(out, "      \"native_speedup\": {:.6},", n1 / r.native_elapsed_s);
        let _ = writeln!(out, "      \"loggp_allreduce_s\": {:.9},", r.loggp_allreduce_s);
        out.push_str("      \"phases\": [\n");
        for (k, (name, sf, nf)) in r.phase_fracs.iter().enumerate() {
            let pc = if k + 1 < r.phase_fracs.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "        {{\"name\": \"{name}\", \"sim_frac\": {sf:.6}, \
                 \"native_frac\": {nf:.6}}}{pc}"
            );
        }
        out.push_str("      ]\n");
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ]\n}\n");
    out
}

/// Structural validation of a calibration artifact: required keys exist
/// and every gate reads `true`. Wall-clock numbers are host-dependent and
/// deliberately not pinned.
fn check(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask calibrate --check: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let required = [
        "\"schema_version\": 1",
        "\"kind\": \"calibrate\"",
        "\"backends\": [\"mpsim\", \"shmcomm\"]",
        "\"gates\"",
        "\"bitwise_identical\": true",
        "\"phase_sums_ok\": true",
        "\"fractions_ok\": true",
        "\"speedup_finite\": true",
        "\"rows\"",
        "\"sim_elapsed_s\"",
        "\"native_elapsed_s\"",
        "\"sim_speedup\"",
        "\"native_speedup\"",
        "\"loggp_allreduce_s\"",
        "\"phases\"",
        "\"sim_frac\"",
        "\"native_frac\"",
        "\"estep\"",
        "\"mstep\"",
        "\"allreduce\"",
        "\"search\"",
    ];
    let mut missing = Vec::new();
    for key in required {
        if !text.contains(key) {
            missing.push(key);
        }
    }
    if missing.is_empty() {
        println!("xtask calibrate --check: {} ok", path.display());
        ExitCode::SUCCESS
    } else {
        for key in missing {
            eprintln!("xtask calibrate --check: {} missing {key}", path.display());
        }
        ExitCode::FAILURE
    }
}
