//! `cargo xtask report` — reproduce the paper's evaluation tables.
//!
//! Runs the verified P-AutoClass search (all verification layers on) at a
//! series of processor counts on the calibrated Meiko CS-2 model, collects
//! the per-rank phase-attributed statistics, and renders the paper-style
//! tables — per-phase time, speedup, efficiency, comm/compute ratio, and
//! the max-vs-mean critical-path summary — through [`mpsim::Report`] as
//! aligned text, CSV, and JSON artifacts.
//!
//! The harness also checks these invariants and records them as gates in
//! the JSON artifact:
//!
//! 1. **Phase accounting** — on every rank the phase buckets sum to the
//!    rank's elapsed virtual time within 1e-9 (enforced by
//!    [`mpsim::Report::build`]), and speedup at P = 1 is exactly 1.0.
//! 2. **Traffic symmetry** — world-wide send and receive totals match
//!    ([`mpsim::RunStats::check_message_symmetry`]); the search is
//!    collective-only, so any surplus means dropped accounting.
//! 3. **Determinism** — the entire series is run twice and the rendered
//!    JSON must be bit-identical.
//! 4. **LogGP consistency** — the measured `"allreduce"` phase time is
//!    compared against [`mpsim::predicted_allreduce_cost`] applied to the
//!    run's actual payload sizes and cycle count. The closed-form model is
//!    a critical-path approximation, not the simulation, so the gate is a
//!    generous ratio band that catches gross attribution bugs (a dropped
//!    bucket, a mistagged collective) rather than modeling error.
//! 5. **Overlap** — the pipelined (non-blocking) exchange produces a
//!    bitwise-identical search outcome to the blocking Fused series and,
//!    at every P > 1, exposes strictly less `"allreduce"` time (the
//!    hidden remainder is reported per P in `overlap_allreduce`).
//!
//! Flags: `--smoke` (P ∈ {1,2,4}, small dataset — the CI configuration),
//! `--out DIR` (default `report/` in the repo root), `--check PATH`
//! (validate an existing `report.json` or `report_largep.json` instead of
//! running — the schema is sniffed from the artifact), `--largep` (run
//! the large-`P` series instead: the verified search under the
//! **cooperative** engine on the hierarchical fat-tree cluster at
//! P ∈ {64, 256, 1024} against a P = 1 baseline, writing
//! `report_largep.json`/`.txt` — the processor counts the thread-per-rank
//! engine cannot carry).

use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;

use autoclass::data::GlobalStats;
use autoclass::model::{Model, StatLayout};
use autoclass::search::SearchConfig;
use mpsim::{predicted_allreduce_cost, presets, Engine, Report, RunRecord, RunStats, SimOptions};
use pautoclass::{run_search_with, Exchange, ParallelConfig, Partitioning, Strategy};

/// Accepted band for measured/predicted allreduce time, P > 1. The LogGP
/// linear-allreduce formula serializes the whole exchange while the
/// simulation overlaps latency across ranks, so the two legitimately
/// differ by a model-dependent constant; outside this band something is
/// misattributed, not merely approximated.
const LOGGP_RATIO_MIN: f64 = 0.2;
const LOGGP_RATIO_MAX: f64 = 5.0;

pub fn report(args: &[String]) -> ExitCode {
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    if let Some(path) = flag_value("--check") {
        return check(Path::new(path));
    }
    let root = crate::repo_root();
    let out_dir = flag_value("--out").map(Into::into).unwrap_or_else(|| root.join("report"));
    if args.iter().any(|a| a == "--largep") {
        return report_largep(smoke, &out_dir);
    }

    let (first, loggp, overlap) = match run_series(smoke) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("xtask report: {msg}");
            return ExitCode::FAILURE;
        }
    };
    // Determinism gate: the sim is virtual-time-deterministic, so a second
    // identical series must render bit-identical artifacts.
    let deterministic = match run_series(smoke) {
        Ok((second, _, _)) => second.to_json() == first.to_json(),
        Err(msg) => {
            eprintln!("xtask report: repeat run failed: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if !deterministic {
        eprintln!("xtask report: repeated series rendered different artifacts");
        return ExitCode::FAILURE;
    }

    let json = assemble_json(smoke, &first, &loggp, &overlap, deterministic);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("xtask report: cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let artifacts = [
        ("report.json", json),
        ("report.txt", first.to_text()),
        ("report_summary.csv", first.summary_csv()),
        ("report_phases.csv", first.phases_csv()),
    ];
    for (name, content) in &artifacts {
        let path = out_dir.join(name);
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!("xtask report: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    print!("{}", first.to_text());
    println!("\nxtask report: wrote 4 artifacts to {}", out_dir.display());
    ExitCode::SUCCESS
}

/// Exposed (non-hidden) allreduce time of the overlapped cycle against
/// the blocking Fused baseline at one processor count.
struct OverlapRow {
    p: usize,
    fused_exposed_s: f64,
    piped_exposed_s: f64,
    hidden_s: f64,
}

/// Measured-vs-predicted allreduce time at one processor count.
struct LoggpRow {
    p: usize,
    cycles: usize,
    measured_s: f64,
    predicted_s: f64,
}

impl LoggpRow {
    fn ratio(&self) -> f64 {
        if self.predicted_s > 0.0 {
            self.measured_s / self.predicted_s
        } else {
            0.0
        }
    }

    fn ok(&self) -> bool {
        self.p == 1 || (self.ratio() >= LOGGP_RATIO_MIN && self.ratio() <= LOGGP_RATIO_MAX)
    }
}

fn run_series(smoke: bool) -> Result<(Report, Vec<LoggpRow>, Vec<OverlapRow>), String> {
    let (n, j, cycles, ps): (usize, usize, usize, &[usize]) =
        if smoke { (1_200, 4, 6, &[1, 2, 4]) } else { (6_000, 4, 10, &[1, 2, 4, 6, 8, 10]) };
    let data = datagen::paper_dataset(n, 11);
    let config = ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![j],
            tries_per_j: 1,
            max_cycles: cycles,
            rel_delta_ll: 0.0,
            min_class_weight: 0.0,
            seed: 42,
            max_stored: 1,
        },
        strategy: Strategy::Full { exchange: Exchange::Fused },
        partition: Partitioning::Block,
        correlated_blocks: Vec::new(),
    };
    // Payload sizes of the per-cycle allreduces (the Fused exchange): the
    // class weights w_j and the fused statistics vector with the two score
    // scalars piggybacked on its end — plus one global-statistics combine
    // in model setup.
    let gstats = GlobalStats::compute(&data.full_view());
    let model = Model::new(data.schema().clone(), &gstats);
    let stats_len = StatLayout::new(&model, j).len();
    let gstats_len = gstats.to_flat().len();

    let mut records = Vec::new();
    let mut loggp = Vec::new();
    let mut overlap = Vec::new();
    for &p in ps {
        let spec = presets::meiko_cs2(p);
        let out = run_search_with(&data, &spec, &config, &SimOptions::verified())
            .map_err(|e| format!("P={p}: {e}"))?;
        let agg = RunStats::from_ranks(&out.ranks);
        agg.check_message_symmetry().map_err(|e| format!("P={p}: {e}"))?;
        let measured_s = out
            .ranks
            .iter()
            .filter_map(|r| r.phase("allreduce").map(|ph| ph.total()))
            .fold(0.0, f64::max);
        let per_cycle = [j, stats_len + 2]
            .iter()
            .map(|&m| predicted_allreduce_cost(spec.allreduce, p, m, &spec.network))
            .sum::<f64>();
        let predicted_s = out.cycles as f64 * per_cycle
            + predicted_allreduce_cost(spec.allreduce, p, gstats_len, &spec.network);
        let row = LoggpRow { p, cycles: out.cycles, measured_s, predicted_s };
        if !row.ok() {
            return Err(format!(
                "P={p}: allreduce phase {measured_s:.6e}s vs LogGP prediction \
                 {predicted_s:.6e}s (ratio {:.3}) outside [{LOGGP_RATIO_MIN}, \
                 {LOGGP_RATIO_MAX}] — phase attribution is suspect",
                row.ratio()
            ));
        }
        // The overlapped cycle against the blocking series just measured:
        // bitwise-identical search outcome, strictly less *exposed*
        // communication (the allreduce bucket, which excludes hidden time)
        // for every P > 1.
        let piped_cfg = ParallelConfig {
            strategy: Strategy::Full { exchange: Exchange::Pipelined },
            ..config.clone()
        };
        let piped = run_search_with(&data, &spec, &piped_cfg, &SimOptions::verified())
            .map_err(|e| format!("pipelined P={p}: {e}"))?;
        let piped_exposed_s = piped
            .ranks
            .iter()
            .filter_map(|r| r.phase("allreduce").map(|ph| ph.total()))
            .fold(0.0, f64::max);
        let hidden_s = piped.ranks.iter().map(|r| r.hidden_comm).fold(0.0, f64::max);
        let matches = piped.best.approx.log_likelihood.to_bits()
            == out.best.approx.log_likelihood.to_bits()
            && piped.cycles == out.cycles;
        if !matches {
            return Err(format!(
                "P={p}: pipelined search diverged from blocking Fused \
                 (ll {} vs {}, cycles {} vs {})",
                piped.best.approx.log_likelihood,
                out.best.approx.log_likelihood,
                piped.cycles,
                out.cycles
            ));
        }
        if p > 1 && piped_exposed_s >= measured_s {
            return Err(format!(
                "P={p}: pipelined exposed allreduce time {piped_exposed_s:.6e}s is not \
                 below the blocking Fused {measured_s:.6e}s — overlap is not happening"
            ));
        }
        overlap.push(OverlapRow { p, fused_exposed_s: measured_s, piped_exposed_s, hidden_s });
        loggp.push(row);
        records.push(RunRecord { p, elapsed: out.elapsed, ranks: out.ranks });
    }
    let report = Report::build(&records)?;
    // Acceptance: the baseline row must report a speedup of exactly 1.0.
    let p1_exact =
        report.rows.iter().find(|r| r.p == 1).and_then(|r| r.speedup).is_some_and(|s| s == 1.0);
    if !p1_exact {
        return Err("P=1 speedup is not exactly 1.0".to_string());
    }
    Ok((report, loggp, overlap))
}

fn assemble_json(
    smoke: bool,
    report: &Report,
    loggp: &[LoggpRow],
    overlap: &[OverlapRow],
    deterministic: bool,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    out.push_str("  \"gates\": {\n");
    // All gates were enforced in run_series; reaching here means true, but
    // record them so --check (and CI) can assert on the artifact alone.
    let _ = writeln!(out, "    \"phase_sums_ok\": true,");
    let _ = writeln!(out, "    \"speedup_p1_exact\": true,");
    let _ = writeln!(out, "    \"symmetry_ok\": true,");
    let _ = writeln!(out, "    \"loggp_ok\": true,");
    let _ = writeln!(out, "    \"overlap_ok\": true,");
    let _ = writeln!(out, "    \"pipelined_matches_fused\": true,");
    let _ = writeln!(out, "    \"deterministic\": {deterministic}");
    out.push_str("  },\n");
    out.push_str("  \"overlap_allreduce\": [\n");
    for (i, r) in overlap.iter().enumerate() {
        let comma = if i + 1 < overlap.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"p\": {}, \"fused_exposed_s\": {:.9}, \"pipelined_exposed_s\": {:.9}, \
             \"hidden_s\": {:.9}}}{comma}",
            r.p, r.fused_exposed_s, r.piped_exposed_s, r.hidden_s
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"loggp_allreduce\": [\n");
    for (i, r) in loggp.iter().enumerate() {
        let comma = if i + 1 < loggp.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"p\": {}, \"cycles\": {}, \"measured_s\": {:.9}, \
             \"predicted_s\": {:.9}, \"ratio\": {:.6}}}{comma}",
            r.p,
            r.cycles,
            r.measured_s,
            r.predicted_s,
            r.ratio()
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"report\": ");
    // Indent the embedded report object to match its nesting level.
    let embedded = report.to_json();
    for (i, line) in embedded.lines().enumerate() {
        if i > 0 {
            out.push_str("  ");
        }
        out.push_str(line);
        out.push('\n');
    }
    // Replace the report's closing brace line ("  }") terminator.
    out.truncate(out.trim_end().len());
    out.push_str("\n}\n");
    out
}

/// One processor count of the large-`P` series.
struct LargePRow {
    p: usize,
    elapsed_s: f64,
    speedup: f64,
    efficiency: f64,
    cycles: usize,
    allreduce_s: f64,
}

/// The large-`P` series: the verified search under the cooperative engine
/// on the hierarchical fat-tree cluster, at processor counts far beyond
/// what the thread-per-rank engine tolerates. Enforces the same phase /
/// symmetry / determinism invariants as the main series and renders the
/// paper-style speedup curve (Fig. 7's shape, extended to P = 1024).
fn run_largep_series(smoke: bool) -> Result<Vec<LargePRow>, String> {
    let (n, j, cycles) = if smoke { (2_048, 4, 3) } else { (8_192, 4, 6) };
    let ps: [usize; 4] = [1, 64, 256, 1024];
    let data = datagen::paper_dataset(n, 11);
    let config = ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![j],
            tries_per_j: 1,
            max_cycles: cycles,
            rel_delta_ll: 0.0,
            min_class_weight: 0.0,
            seed: 42,
            max_stored: 1,
        },
        strategy: Strategy::Full { exchange: Exchange::Fused },
        partition: Partitioning::Block,
        correlated_blocks: Vec::new(),
    };
    let opts = SimOptions { engine: Engine::Cooperative, ..SimOptions::verified() };
    let mut rows = Vec::new();
    let mut base_elapsed = 0.0_f64;
    for p in ps {
        let spec = presets::hier_cluster(p, 8);
        let out =
            run_search_with(&data, &spec, &config, &opts).map_err(|e| format!("P={p}: {e}"))?;
        let agg = RunStats::from_ranks(&out.ranks);
        agg.check_message_symmetry().map_err(|e| format!("P={p}: {e}"))?;
        for r in &out.ranks {
            let sum = r.phases_total();
            if (sum - r.elapsed).abs() > 1e-9 {
                return Err(format!(
                    "P={p} rank {}: phase buckets {sum:.12} do not partition elapsed {:.12}",
                    r.rank, r.elapsed
                ));
            }
        }
        let allreduce_s = out
            .ranks
            .iter()
            .filter_map(|r| r.phase("allreduce").map(|ph| ph.total()))
            .fold(0.0, f64::max);
        if p == 1 {
            base_elapsed = out.elapsed;
        }
        let speedup = if out.elapsed > 0.0 { base_elapsed / out.elapsed } else { 0.0 };
        rows.push(LargePRow {
            p,
            elapsed_s: out.elapsed,
            speedup,
            efficiency: speedup / p as f64,
            cycles: out.cycles,
            allreduce_s,
        });
    }
    // The curve must start at exactly 1.0 and actually scale: a fixed-size
    // problem this compute-heavy must beat the serial run at P = 64 (the
    // paper's regime), even if efficiency then decays toward P = 1024.
    if rows[0].speedup != 1.0 {
        return Err("P=1 speedup is not exactly 1.0".to_string());
    }
    if rows[1].speedup <= 1.0 {
        return Err(format!("P=64 speedup {:.3} does not beat the serial run", rows[1].speedup));
    }
    Ok(rows)
}

fn largep_json(smoke: bool, rows: &[LargePRow], deterministic: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"kind\": \"largep\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"engine\": \"cooperative\",");
    let _ = writeln!(out, "  \"machine\": \"hier_cluster\",");
    out.push_str("  \"gates\": {\n");
    // Enforced in run_largep_series; recorded for --check and CI.
    let _ = writeln!(out, "    \"phase_sums_ok\": true,");
    let _ = writeln!(out, "    \"symmetry_ok\": true,");
    let _ = writeln!(out, "    \"speedup_p1_exact\": true,");
    let _ = writeln!(out, "    \"scales_at_p64\": true,");
    let _ = writeln!(out, "    \"deterministic\": {deterministic}");
    out.push_str("  },\n");
    out.push_str("  \"series\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"p\": {}, \"elapsed_s\": {:.9}, \"speedup\": {:.6}, \
             \"efficiency\": {:.6}, \"cycles\": {}, \"allreduce_s\": {:.9}}}{comma}",
            r.p, r.elapsed_s, r.speedup, r.efficiency, r.cycles, r.allreduce_s
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn largep_text(rows: &[LargePRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "large-P series (cooperative engine, hier_cluster fat-tree, verified search)"
    );
    let _ = writeln!(
        out,
        "{:>5} {:>14} {:>10} {:>11} {:>7} {:>14}",
        "P", "elapsed_s", "speedup", "efficiency", "cycles", "allreduce_s"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>5} {:>14.9} {:>10.3} {:>11.4} {:>7} {:>14.9}",
            r.p, r.elapsed_s, r.speedup, r.efficiency, r.cycles, r.allreduce_s
        );
    }
    out
}

fn report_largep(smoke: bool, out_dir: &Path) -> ExitCode {
    let first = match run_largep_series(smoke) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("xtask report --largep: {msg}");
            return ExitCode::FAILURE;
        }
    };
    // Determinism gate: virtual time must not depend on host scheduling,
    // and the cooperative engine doubly so — the artifact must re-render
    // bit-identically.
    let deterministic = match run_largep_series(smoke) {
        Ok(second) => largep_json(smoke, &second, true) == largep_json(smoke, &first, true),
        Err(msg) => {
            eprintln!("xtask report --largep: repeat run failed: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if !deterministic {
        eprintln!("xtask report --largep: repeated series rendered different artifacts");
        return ExitCode::FAILURE;
    }
    let json = largep_json(smoke, &first, deterministic);
    let text = largep_text(&first);
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("xtask report --largep: cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    for (name, content) in [("report_largep.json", &json), ("report_largep.txt", &text)] {
        let path = out_dir.join(name);
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!("xtask report --largep: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    print!("{text}");
    println!("\nxtask report --largep: wrote 2 artifacts to {}", out_dir.display());
    ExitCode::SUCCESS
}

/// Required keys for the large-`P` artifact (`report_largep.json`).
const LARGEP_REQUIRED: [&str; 13] = [
    "\"schema_version\": 1",
    "\"kind\": \"largep\"",
    "\"engine\": \"cooperative\"",
    "\"machine\": \"hier_cluster\"",
    "\"phase_sums_ok\": true",
    "\"symmetry_ok\": true",
    "\"speedup_p1_exact\": true",
    "\"scales_at_p64\": true",
    "\"deterministic\": true",
    "\"series\"",
    "\"p\": 1024",
    "\"speedup\"",
    "\"efficiency\"",
];

/// Structural validation of a report artifact: required keys exist and
/// every gate reads `true`. Numeric values are machine-model outputs and
/// deliberately not pinned here.
fn check(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask report --check: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if text.contains("\"kind\": \"largep\"") {
        let mut missing = Vec::new();
        for key in LARGEP_REQUIRED {
            if !text.contains(key) {
                missing.push(key);
            }
        }
        return if missing.is_empty() {
            println!("xtask report --check: {} ok", path.display());
            ExitCode::SUCCESS
        } else {
            for key in missing {
                eprintln!("xtask report --check: {} missing {key}", path.display());
            }
            ExitCode::FAILURE
        };
    }
    let required = [
        "\"schema_version\": 1",
        "\"gates\"",
        "\"phase_sums_ok\": true",
        "\"speedup_p1_exact\": true",
        "\"symmetry_ok\": true",
        "\"loggp_ok\": true",
        "\"overlap_ok\": true",
        "\"pipelined_matches_fused\": true",
        "\"deterministic\": true",
        "\"overlap_allreduce\"",
        "\"pipelined_exposed_s\"",
        "\"hidden_s\"",
        "\"loggp_allreduce\"",
        "\"report\"",
        "\"runs\"",
        "\"phases\"",
        "\"speedup\"",
        "\"efficiency\"",
        "\"comm_compute_ratio\"",
        "\"estep\"",
        "\"mstep\"",
        "\"allreduce\"",
        "\"search\"",
    ];
    let mut missing = Vec::new();
    for key in required {
        if !text.contains(key) {
            missing.push(key);
        }
    }
    if missing.is_empty() {
        println!("xtask report --check: {} ok", path.display());
        ExitCode::SUCCESS
    } else {
        for key in missing {
            eprintln!("xtask report --check: {} missing {key}", path.display());
        }
        ExitCode::FAILURE
    }
}
