//! `cargo xtask bench` — the repeatable benchmark harness behind
//! `BENCH_2.json`.
//!
//! Two measurements, both run in a single process so the comparison is
//! apples-to-apples:
//!
//! 1. **E-step kernels** (host wall time): the retained pre-blocking
//!    reference `update_wts_naive` versus the cache-blocked fused
//!    `update_wts_into` with a reused workspace, reported as items/s
//!    (items × classes per second). The harness also proves the two
//!    kernels numerically equivalent (final-rounding ulps) and their op
//!    accounting consistent with `estep_ops`, so the virtual-time model
//!    is unaffected by the optimization.
//! 2. **Virtual cycle times** (simulated seconds): `run_fixed_j` per
//!    strategy × P on the calibrated Meiko CS-2 model, plus a
//!    `full_fused_auto` row with the size-adaptive allreduce selector.
//!
//! A second artifact, `BENCH_4.json`, holds the communication-overlap
//! ablation: per-cycle virtual time and hidden (overlapped) communication
//! for the blocking per-term exchange, the blocking fused exchange, and
//! the non-blocking pipelined cycle, gated on (a) the fused single-pass
//! E+M kernel being *bitwise* equal to the two-pass form and (b) the
//! pipelined cycle being no slower than blocking Fused at P ≥ 4 with the
//! identical log likelihood.
//!
//! A third artifact, `BENCH_7.json` (written by `--native`), measures the
//! same three E-step kernels on **real silicon**: wall-clock items/s at
//! P ∈ {1,2,4,8} OS threads through the `shmcomm` native backend, plus a
//! sim-vs-native speedup-ratio table for the fused-exchange EM cycle —
//! how the LogGP-predicted scaling curve compares to what this host
//! actually delivers.
//!
//! A fourth artifact, `BENCH_8.json` (written by `--engines`), is the
//! engine-overhead table: host wall-clock of the identical verified
//! search under the thread-per-rank engine versus the cooperative
//! virtual-time engine at P ∈ {1,2,4,8,64}, gated on the two engines
//! agreeing **bitwise** (log likelihood and virtual elapsed time), plus
//! cooperative-only large-`P` rows at P ∈ {64,256,1024} on the
//! hierarchical fat-tree cluster — the sizes the threaded engine cannot
//! carry.
//!
//! A fifth artifact, `BENCH_9.json` (written by `--ensemble`), measures
//! the fleet-parallel model search — G concurrent sub-searches over split
//! communicators — against the serial search at P ∈ {8,64,256} ×
//! G ∈ {1,2,4,8}: candidates per virtual second, duplicate-elimination
//! hits, work steals, and the ensemble-consensus agreement, gated on the
//! fleet winner being bitwise the serial winner when the schedules are
//! identical and never worse elsewhere.
//!
//! Flags: `--smoke` (small sizes for CI), `--native` (run the native
//! wall-clock benchmark instead, default output `BENCH_7.json`),
//! `--engines` (run the engine-overhead benchmark instead, default output
//! `BENCH_8.json`), `--ensemble` (run the fleet-search benchmark instead,
//! default output `BENCH_9.json`), `--out PATH` (default `BENCH_2.json`
//! in the repo root), `--out4 PATH` (default `BENCH_4.json`), `--check
//! PATH` (validate an existing results file of any of the five schemas
//! instead of benchmarking).

use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use autoclass::data::{block_partition, GlobalStats};
use autoclass::model::{
    estep_ops, init_classes, update_wts_and_stats_into, update_wts_into, update_wts_naive, Model,
    StatLayout, SuffStats,
};
use autoclass::model::{EStepScratch, WtsMatrix};
use autoclass::search::SearchConfig;
use mpsim::{presets, AllreduceAlgo, Engine, MachineSpec, SimOptions};
use pautoclass::driver::{build_model, init_classes_parallel, parallel_base_cycle};
use pautoclass::{
    run_fixed_j, run_search_fleet_with, run_search_with, Consensus, Exchange, FleetConfig,
    ParallelConfig, Partitioning, Strategy,
};
use shmcomm::{run_native, NativeOptions};

pub fn bench(args: &[String]) -> ExitCode {
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    if let Some(path) = flag_value("--check") {
        return check(Path::new(path));
    }
    let root = crate::repo_root();
    if args.iter().any(|a| a == "--engines") {
        let out_path =
            flag_value("--out").map(Into::into).unwrap_or_else(|| root.join("BENCH_8.json"));
        let json = match run_engine_benchmarks(smoke) {
            Ok(j) => j,
            Err(msg) => {
                eprintln!("xtask bench --engines: {msg}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(&out_path, &json) {
            eprintln!("xtask bench --engines: cannot write {}: {e}", out_path.display());
            return ExitCode::FAILURE;
        }
        println!("xtask bench --engines: wrote {}", out_path.display());
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--ensemble") {
        let out_path =
            flag_value("--out").map(Into::into).unwrap_or_else(|| root.join("BENCH_9.json"));
        let json = match run_ensemble_benchmarks(smoke) {
            Ok(j) => j,
            Err(msg) => {
                eprintln!("xtask bench --ensemble: {msg}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(&out_path, &json) {
            eprintln!("xtask bench --ensemble: cannot write {}: {e}", out_path.display());
            return ExitCode::FAILURE;
        }
        println!("xtask bench --ensemble: wrote {}", out_path.display());
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--native") {
        let out_path =
            flag_value("--out").map(Into::into).unwrap_or_else(|| root.join("BENCH_7.json"));
        let json = match run_native_benchmarks(smoke) {
            Ok(j) => j,
            Err(msg) => {
                eprintln!("xtask bench --native: {msg}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(&out_path, &json) {
            eprintln!("xtask bench --native: cannot write {}: {e}", out_path.display());
            return ExitCode::FAILURE;
        }
        println!("xtask bench --native: wrote {}", out_path.display());
        return ExitCode::SUCCESS;
    }
    let default_out = root.join("BENCH_2.json");
    let out_path = flag_value("--out").map(Into::into).unwrap_or(default_out);
    let default_out4 = root.join("BENCH_4.json");
    let out4_path = flag_value("--out4").map(Into::into).unwrap_or(default_out4);

    let json = match run_benchmarks(smoke) {
        Ok(j) => j,
        Err(msg) => {
            eprintln!("xtask bench: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("xtask bench: cannot write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("xtask bench: wrote {}", out_path.display());

    let json4 = match run_overlap_benchmarks(smoke) {
        Ok(j) => j,
        Err(msg) => {
            eprintln!("xtask bench (overlap): {msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out4_path, &json4) {
        eprintln!("xtask bench: cannot write {}: {e}", out4_path.display());
        return ExitCode::FAILURE;
    }
    println!("xtask bench: wrote {}", out4_path.display());
    ExitCode::SUCCESS
}

/// One strategy row of the virtual-cycle table.
struct CycleRow {
    strategy: &'static str,
    allreduce: &'static str,
    p: usize,
    per_cycle_s: f64,
    log_likelihood: f64,
}

fn run_benchmarks(smoke: bool) -> Result<String, String> {
    // ---- E-step kernel comparison (host time) -----------------------
    let (n, j, reps) = if smoke { (2_000, 8, 3) } else { (150_000, 16, 5) };
    eprintln!("xtask bench: estep kernels n={n} j={j} reps={reps}");
    let data = datagen::paper_dataset(n, 1);
    let view = data.full_view();
    let gstats = GlobalStats::compute(&view);
    let model = Model::new(data.schema().clone(), &gstats);
    let classes = init_classes(&model, &view, j, 7);

    let mut wts_a = WtsMatrix::new(0, 0);
    let mut wts_b = WtsMatrix::new(0, 0);
    let mut scratch = EStepScratch::default();

    // Correctness first: the blocked kernel must reproduce the reference
    // to final-rounding precision (phase 2 uses one `fast_exp` + multiply
    // where the reference calls libm `exp` twice, so agreement is a few
    // ulps, not bitwise), and both must report the op count the
    // virtual-time model charges for an E-step of these dimensions.
    let ref_out = update_wts_naive(&model, &view, &classes, &mut wts_a);
    let blk_out = update_wts_into(&model, &view, &classes, &mut wts_b, &mut scratch);
    let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(b.abs()).max(1e-300);
    let mut max_rel_err = rel(ref_out.log_likelihood, blk_out.log_likelihood)
        .max(rel(ref_out.complete_ll, blk_out.complete_ll));
    for (a, b) in ref_out.class_weight_sums.iter().zip(&scratch.class_weight_sums) {
        max_rel_err = max_rel_err.max(rel(*a, *b));
    }
    for c in 0..j {
        for (a, b) in wts_a.class_column(c).iter().zip(wts_b.class_column(c)) {
            if a.abs().max(b.abs()) > 1e-100 {
                max_rel_err = max_rel_err.max(rel(*a, *b));
            }
        }
    }
    let kernels_match = max_rel_err < 1e-11;
    if !kernels_match {
        return Err(format!(
            "blocked E-step diverged from the naive reference: max rel err {max_rel_err:e}"
        ));
    }
    let expected_ops = estep_ops(n, j, model.n_attrs());
    let estep_ops_match = ref_out.ops == expected_ops && blk_out.ops == expected_ops;
    if !estep_ops_match {
        return Err(format!(
            "op accounting drifted: naive={} blocked={} estep_ops={}",
            ref_out.ops, blk_out.ops, expected_ops
        ));
    }

    // Throughput: best-of-reps wall time per kernel (both warmed above).
    let time_best = |mut f: Box<dyn FnMut() + '_>| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let naive_s = time_best(Box::new(|| {
        update_wts_naive(&model, &view, &classes, &mut wts_a);
    }));
    let blocked_s = time_best(Box::new(|| {
        update_wts_into(&model, &view, &classes, &mut wts_b, &mut scratch);
    }));
    let elems = (n * j) as f64;
    let naive_items_per_s = elems / naive_s;
    let blocked_items_per_s = elems / blocked_s;
    let speedup = naive_s / blocked_s;
    eprintln!(
        "xtask bench: naive {naive_items_per_s:.3e} items/s, \
         blocked {blocked_items_per_s:.3e} items/s ({speedup:.2}x)"
    );

    // ---- Virtual cycle times (simulated seconds) --------------------
    let (cn, cj, cycles) = if smoke { (800, 8, 2) } else { (5_000, 8, 5) };
    eprintln!("xtask bench: virtual cycles n={cn} j={cj} cycles={cycles}");
    let cdata = datagen::paper_dataset(cn, 2);
    let mk_config = |strategy: Strategy| ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![cj],
            tries_per_j: 1,
            max_cycles: cycles,
            rel_delta_ll: 0.0,
            min_class_weight: 0.0,
            seed: 42,
            max_stored: 1,
        },
        strategy,
        partition: Partitioning::Block,
        correlated_blocks: Vec::new(),
    };
    type SeriesRow = (&'static str, &'static str, Strategy, fn(usize) -> MachineSpec);
    let series: [SeriesRow; 4] = [
        ("full_fused", "linear", Strategy::Full { exchange: Exchange::Fused }, presets::meiko_cs2),
        (
            "full_perterm",
            "linear",
            Strategy::Full { exchange: Exchange::PerTerm },
            presets::meiko_cs2,
        ),
        ("wts_only", "linear", Strategy::WtsOnly, presets::meiko_cs2),
        ("full_fused_auto", "auto", Strategy::Full { exchange: Exchange::Fused }, |p| {
            let mut spec = presets::meiko_cs2(p);
            spec.allreduce = AllreduceAlgo::Auto;
            spec
        }),
    ];
    let mut rows: Vec<CycleRow> = Vec::new();
    for (strategy_name, allreduce, strategy, machine) in series {
        for p in [1usize, 2, 4, 8] {
            let spec = machine(p);
            let cfg = mk_config(strategy);
            let timing = run_fixed_j(&cdata, &spec, cj, cycles, 42, &cfg)
                .map_err(|e| format!("{strategy_name} P={p}: {e}"))?;
            rows.push(CycleRow {
                strategy: strategy_name,
                allreduce,
                p,
                per_cycle_s: timing.per_cycle,
                log_likelihood: timing.log_likelihood,
            });
        }
    }

    // ---- Hand-formatted JSON ----------------------------------------
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    out.push_str("  \"estep\": {\n");
    let _ = writeln!(out, "    \"n\": {n},");
    let _ = writeln!(out, "    \"j\": {j},");
    let _ = writeln!(out, "    \"reps\": {reps},");
    let _ = writeln!(out, "    \"naive_items_per_s\": {naive_items_per_s:.1},");
    let _ = writeln!(out, "    \"blocked_items_per_s\": {blocked_items_per_s:.1},");
    let _ = writeln!(out, "    \"speedup\": {speedup:.3},");
    let _ = writeln!(out, "    \"kernels_match\": {kernels_match},");
    let _ = writeln!(out, "    \"max_rel_err\": {max_rel_err:e},");
    let _ = writeln!(out, "    \"estep_ops_match\": {estep_ops_match}");
    out.push_str("  },\n");
    out.push_str("  \"cycles\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"strategy\": \"{}\", \"allreduce\": \"{}\", \"p\": {}, \
             \"per_cycle_s\": {:.6}, \"log_likelihood\": {:.6}}}{comma}",
            r.strategy, r.allreduce, r.p, r.per_cycle_s, r.log_likelihood
        );
    }
    out.push_str("  ]\n}\n");
    Ok(out)
}

/// The communication-overlap ablation behind `BENCH_4.json`.
fn run_overlap_benchmarks(smoke: bool) -> Result<String, String> {
    // ---- fused E+M kernel: bitwise equivalence (correctness gate) ----
    let (kn, kj) = if smoke { (1_500, 6) } else { (20_000, 12) };
    eprintln!("xtask bench: fused E+M kernel n={kn} j={kj}");
    let kdata = datagen::paper_dataset(kn, 3);
    let kview = kdata.full_view();
    let kgstats = GlobalStats::compute(&kview);
    let kmodel = Model::new(kdata.schema().clone(), &kgstats);
    let kclasses = init_classes(&kmodel, &kview, kj, 11);

    let mut wts_two = WtsMatrix::new(0, 0);
    let mut wts_fused = WtsMatrix::new(0, 0);
    let mut scratch_two = EStepScratch::default();
    let mut scratch_fused = EStepScratch::default();
    let layout = StatLayout::new(&kmodel, kj);
    let mut stats_two = SuffStats::zeros(layout.clone());
    let mut stats_fused = SuffStats::zeros(layout);
    let mut carry = Vec::new();

    let two_e = update_wts_into(&kmodel, &kview, &kclasses, &mut wts_two, &mut scratch_two);
    let two_ops = stats_two.accumulate(&kmodel, &kview, &wts_two);
    let (fused_e, fused_ops) = update_wts_and_stats_into(
        &kmodel,
        &kview,
        &kclasses,
        &mut wts_fused,
        &mut scratch_fused,
        &mut stats_fused,
        &mut carry,
    );
    let mut kernels_match = two_e.log_likelihood.to_bits() == fused_e.log_likelihood.to_bits()
        && two_e.complete_ll.to_bits() == fused_e.complete_ll.to_bits()
        && stats_two.data.len() == stats_fused.data.len();
    for (a, b) in stats_two.data.iter().zip(&stats_fused.data) {
        kernels_match &= a.to_bits() == b.to_bits();
    }
    for c in 0..kj {
        for (a, b) in wts_two.class_column(c).iter().zip(wts_fused.class_column(c)) {
            kernels_match &= a.to_bits() == b.to_bits();
        }
    }
    if !kernels_match {
        return Err("fused E+M kernel diverged bitwise from the two-pass form".to_string());
    }
    let stat_ops_match = two_ops == fused_ops;
    if !stat_ops_match {
        return Err(format!(
            "statistics op accounting drifted: two-pass={two_ops} fused={fused_ops}"
        ));
    }

    // ---- overlap ablation: virtual cycle times on the Meiko model ----
    let (cn, cj, cycles) = if smoke { (800, 8, 2) } else { (5_000, 8, 5) };
    eprintln!("xtask bench: overlap ablation n={cn} j={cj} cycles={cycles}");
    let cdata = datagen::paper_dataset(cn, 2);
    let mk_config = |exchange: Exchange| ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![cj],
            tries_per_j: 1,
            max_cycles: cycles,
            rel_delta_ll: 0.0,
            min_class_weight: 0.0,
            seed: 42,
            max_stored: 1,
        },
        strategy: Strategy::Full { exchange },
        partition: Partitioning::Block,
        correlated_blocks: Vec::new(),
    };
    struct OverlapRow {
        exchange: &'static str,
        p: usize,
        per_cycle_s: f64,
        hidden_s: f64,
        log_likelihood: f64,
    }
    let exchanges: [(&'static str, Exchange); 3] = [
        ("perterm", Exchange::PerTerm),
        ("fused", Exchange::Fused),
        ("pipelined", Exchange::Pipelined),
    ];
    let mut rows: Vec<OverlapRow> = Vec::new();
    for (name, exchange) in exchanges {
        for p in [1usize, 2, 4, 8] {
            let spec = presets::meiko_cs2(p);
            let timing = run_fixed_j(&cdata, &spec, cj, cycles, 42, &mk_config(exchange))
                .map_err(|e| format!("{name} P={p}: {e}"))?;
            let hidden_s = timing.ranks.iter().map(|r| r.hidden_comm).fold(0.0, f64::max);
            rows.push(OverlapRow {
                exchange: name,
                p,
                per_cycle_s: timing.per_cycle,
                hidden_s,
                log_likelihood: timing.log_likelihood,
            });
        }
    }
    // Gates: at every P ≥ 4 the pipelined cycle is no slower than blocking
    // Fused, and at every P its log likelihood is bitwise identical.
    let mut overlap_ok = true;
    let mut ll_match = true;
    for r in rows.iter().filter(|r| r.exchange == "pipelined") {
        let fused =
            rows.iter().find(|f| f.exchange == "fused" && f.p == r.p).ok_or("missing fused row")?;
        if r.p >= 4 && r.per_cycle_s > fused.per_cycle_s {
            overlap_ok = false;
        }
        ll_match &= r.log_likelihood.to_bits() == fused.log_likelihood.to_bits();
    }
    if !overlap_ok {
        return Err("pipelined cycle slower than blocking Fused at P >= 4".to_string());
    }
    if !ll_match {
        return Err("pipelined log likelihood diverged from blocking Fused".to_string());
    }

    // ---- Hand-formatted JSON ----------------------------------------
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"kind\": \"overlap\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    out.push_str("  \"fused_kernel\": {\n");
    let _ = writeln!(out, "    \"n\": {kn},");
    let _ = writeln!(out, "    \"j\": {kj},");
    let _ = writeln!(out, "    \"kernels_match\": {kernels_match},");
    let _ = writeln!(out, "    \"stat_ops_match\": {stat_ops_match}");
    out.push_str("  },\n");
    out.push_str("  \"gates\": {\n");
    let _ = writeln!(out, "    \"overlap_ok\": {overlap_ok},");
    let _ = writeln!(out, "    \"ll_bitwise_equal\": {ll_match}");
    out.push_str("  },\n");
    out.push_str("  \"cycles\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"exchange\": \"{}\", \"p\": {}, \"per_cycle_s\": {:.6}, \
             \"hidden_s\": {:.6}, \"log_likelihood\": {:.6}}}{comma}",
            r.exchange, r.p, r.per_cycle_s, r.hidden_s, r.log_likelihood
        );
    }
    out.push_str("  ]\n}\n");
    Ok(out)
}

/// The native wall-clock benchmark behind `BENCH_7.json`: the three
/// E-step kernels timed on P real OS threads through the `shmcomm`
/// backend, and the fused-exchange EM cycle's measured speedup curve
/// against the simulator's LogGP-predicted one.
fn run_native_benchmarks(smoke: bool) -> Result<String, String> {
    let ps: [usize; 4] = [1, 2, 4, 8];
    let host_threads = std::thread::available_parallelism().map_or(0, usize::from);

    // ---- kernel throughput on real threads --------------------------
    let (n, j, reps) = if smoke { (2_000, 8, 3) } else { (40_000, 16, 5) };
    eprintln!("xtask bench --native: kernels n={n} j={j} reps={reps} host_threads={host_threads}");
    let data = datagen::paper_dataset(n, 1);
    let gstats = GlobalStats::compute(&data.full_view());
    let model = Model::new(data.schema().clone(), &gstats);
    let classes = init_classes(&model, &data.full_view(), j, 7);

    struct KernelRow {
        kernel: &'static str,
        p: usize,
        items_per_s: f64,
    }
    let kernels: [&'static str; 3] = ["naive", "blocked", "fused"];
    let mut kernel_rows: Vec<KernelRow> = Vec::new();
    for kernel in kernels {
        for p in ps {
            let machine = presets::meiko_cs2(p);
            let parts = block_partition(data.len(), p);
            let out = run_native(&machine, &NativeOptions::default(), |comm| {
                let part = &parts[comm.rank()];
                let view = data.view(part.start, part.end);
                let mut wts = WtsMatrix::new(0, 0);
                let mut scratch = EStepScratch::default();
                let mut stats = SuffStats::zeros(StatLayout::new(&model, j));
                let mut carry = Vec::new();
                let mut best = f64::INFINITY;
                for _ in 0..reps {
                    // Every rank starts each repetition together, so the
                    // measured window is the collective kernel pass.
                    comm.barrier();
                    let t0 = comm.now();
                    match kernel {
                        "naive" => {
                            update_wts_naive(&model, &view, &classes, &mut wts);
                        }
                        "blocked" => {
                            update_wts_into(&model, &view, &classes, &mut wts, &mut scratch);
                        }
                        _ => {
                            update_wts_and_stats_into(
                                &model,
                                &view,
                                &classes,
                                &mut wts,
                                &mut scratch,
                                &mut stats,
                                &mut carry,
                            );
                        }
                    }
                    // Close the window with a barrier so the measurement
                    // covers the whole collective pass — not just this
                    // rank's slice, which on an oversubscribed host would
                    // overstate throughput by ~P.
                    comm.barrier();
                    best = best.min(comm.now() - t0);
                }
                best
            })
            .map_err(|e| format!("{kernel} P={p}: {e}"))?;
            // The slowest rank bounds collective throughput.
            let worst = out.per_rank.iter().copied().fold(0.0, f64::max);
            if !(worst.is_finite() && worst > 0.0) {
                return Err(format!("{kernel} P={p}: degenerate kernel time {worst}"));
            }
            kernel_rows.push(KernelRow { kernel, p, items_per_s: (n * j) as f64 / worst });
        }
    }
    for r in &kernel_rows {
        eprintln!("xtask bench --native: {} P={} {:.3e} items/s", r.kernel, r.p, r.items_per_s);
    }

    // ---- sim-vs-native speedup of the fused-exchange EM cycle -------
    let (cn, cj, cycles) = if smoke { (800, 8, 2) } else { (5_000, 8, 5) };
    eprintln!("xtask bench --native: fused cycles n={cn} j={cj} cycles={cycles}");
    let cdata = datagen::paper_dataset(cn, 2);
    let cfg = ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![cj],
            tries_per_j: 1,
            max_cycles: cycles,
            rel_delta_ll: 0.0,
            min_class_weight: 0.0,
            seed: 42,
            max_stored: 1,
        },
        strategy: Strategy::Full { exchange: Exchange::Fused },
        partition: Partitioning::Block,
        correlated_blocks: Vec::new(),
    };
    struct SpeedupRow {
        p: usize,
        sim_per_cycle_s: f64,
        native_per_cycle_s: f64,
    }
    let mut speedup_rows: Vec<SpeedupRow> = Vec::new();
    for p in ps {
        let spec = presets::meiko_cs2(p);
        let sim = run_fixed_j(&cdata, &spec, cj, cycles, 42, &cfg)
            .map_err(|e| format!("sim cycles P={p}: {e}"))?;
        let parts = block_partition(cdata.len(), p);
        let out = run_native(&spec, &NativeOptions::default(), |comm| {
            comm.enter_phase("search");
            let part = &parts[comm.rank()];
            let view = cdata.view(part.start, part.end);
            let cmodel = build_model(comm, &view, &cfg.correlated_blocks);
            let mut cls = Vec::new();
            init_classes_parallel(comm, &cmodel, &view, cj, 42, &mut cls);
            let mut ws = autoclass::model::CycleWorkspace::new();
            comm.barrier();
            let t0 = comm.now();
            for _ in 0..cycles {
                parallel_base_cycle(comm, &cmodel, &view, &mut cls, &mut ws, cfg.strategy);
            }
            let dt = comm.now() - t0;
            comm.exit_phase();
            dt
        })
        .map_err(|e| format!("native cycles P={p}: {e}"))?;
        let native_elapsed = out.per_rank.iter().copied().fold(0.0, f64::max);
        speedup_rows.push(SpeedupRow {
            p,
            sim_per_cycle_s: sim.per_cycle,
            native_per_cycle_s: native_elapsed / cycles.max(1) as f64,
        });
    }
    let sim1 = speedup_rows[0].sim_per_cycle_s;
    let nat1 = speedup_rows[0].native_per_cycle_s;
    for r in &speedup_rows {
        let (ss, ns) = (sim1 / r.sim_per_cycle_s, nat1 / r.native_per_cycle_s);
        if !(ss.is_finite() && ss > 0.0 && ns.is_finite() && ns > 0.0) {
            return Err(format!("P={}: degenerate speedup (sim {ss:.3}, native {ns:.3})", r.p));
        }
    }

    // ---- Hand-formatted JSON ----------------------------------------
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"kind\": \"native\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"host_threads\": {host_threads},");
    out.push_str("  \"gates\": {\n");
    // Enforced above; recorded so --check can assert on the artifact.
    let _ = writeln!(out, "    \"kernels_finite\": true,");
    let _ = writeln!(out, "    \"speedups_finite\": true");
    out.push_str("  },\n");
    out.push_str("  \"kernels\": [\n");
    for (i, r) in kernel_rows.iter().enumerate() {
        let comma = if i + 1 < kernel_rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"kernel\": \"{}\", \"p\": {}, \"items_per_s\": {:.1}}}{comma}",
            r.kernel, r.p, r.items_per_s
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedup_ratio\": [\n");
    for (i, r) in speedup_rows.iter().enumerate() {
        let comma = if i + 1 < speedup_rows.len() { "," } else { "" };
        let (ss, ns) = (sim1 / r.sim_per_cycle_s, nat1 / r.native_per_cycle_s);
        let _ = writeln!(
            out,
            "    {{\"p\": {}, \"sim_per_cycle_s\": {:.9}, \"native_per_cycle_s\": {:.9}, \
             \"sim_speedup\": {ss:.3}, \"native_speedup\": {ns:.3}, \"ratio\": {:.3}}}{comma}",
            r.p,
            r.sim_per_cycle_s,
            r.native_per_cycle_s,
            ns / ss
        );
    }
    out.push_str("  ]\n}\n");
    Ok(out)
}

/// The engine-overhead benchmark behind `BENCH_8.json`: the identical
/// verified search timed (host wall clock) under both execution engines,
/// gated on bitwise agreement, plus cooperative-only large-`P` rows on
/// the hierarchical fat-tree cluster.
fn run_engine_benchmarks(smoke: bool) -> Result<String, String> {
    let (n, cycles) = if smoke { (1_200, 10) } else { (4_000, 20) };
    let cfg = ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![4],
            tries_per_j: 1,
            max_cycles: cycles,
            rel_delta_ll: 0.0,
            min_class_weight: 0.0,
            seed: 42,
            max_stored: 1,
        },
        strategy: Strategy::Full { exchange: Exchange::Fused },
        partition: Partitioning::Block,
        correlated_blocks: Vec::new(),
    };

    // ---- both engines, same machine, same search --------------------
    struct OverheadRow {
        p: usize,
        threaded_host_s: f64,
        cooperative_host_s: f64,
        bitwise_equal: bool,
    }
    let data = datagen::paper_dataset(n, 2);
    let mut overhead_rows: Vec<OverheadRow> = Vec::new();
    let mut engines_bitwise_equal = true;
    for p in [1usize, 2, 4, 8, 64] {
        let spec = presets::meiko_cs2(p);
        let t0 = Instant::now();
        let threaded = run_search_with(&data, &spec, &cfg, &SimOptions::verified())
            .map_err(|e| format!("threaded P={p}: {e}"))?;
        let threaded_host_s = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let coop = run_search_with(
            &data,
            &spec,
            &cfg,
            &SimOptions { engine: Engine::Cooperative, ..SimOptions::verified() },
        )
        .map_err(|e| format!("cooperative P={p}: {e}"))?;
        let cooperative_host_s = t0.elapsed().as_secs_f64();
        let bitwise_equal = threaded.best.approx.log_likelihood.to_bits()
            == coop.best.approx.log_likelihood.to_bits()
            && threaded.elapsed.to_bits() == coop.elapsed.to_bits()
            && threaded.cycles == coop.cycles;
        engines_bitwise_equal &= bitwise_equal;
        eprintln!(
            "xtask bench --engines: P={p} threaded {threaded_host_s:.3}s, \
             cooperative {cooperative_host_s:.3}s, bitwise_equal={bitwise_equal}"
        );
        overhead_rows.push(OverheadRow { p, threaded_host_s, cooperative_host_s, bitwise_equal });
    }
    if !engines_bitwise_equal {
        return Err("the two engines disagreed bitwise on the verified search".to_string());
    }

    // ---- cooperative-only large-P rows on the fat-tree cluster ------
    struct LargePRow {
        p: usize,
        host_s: f64,
        virtual_s: f64,
        cycles: usize,
    }
    let (ln, lcycles) = if smoke { (2_048, 3) } else { (8_192, 5) };
    let lcfg = ParallelConfig {
        search: SearchConfig { max_cycles: lcycles, ..cfg.search.clone() },
        ..cfg.clone()
    };
    let ldata = datagen::paper_dataset(ln, 4);
    let mut largep_rows: Vec<LargePRow> = Vec::new();
    for p in [64usize, 256, 1024] {
        let spec = presets::hier_cluster(p, 8);
        let t0 = Instant::now();
        let out = run_search_with(
            &ldata,
            &spec,
            &lcfg,
            &SimOptions { engine: Engine::Cooperative, ..SimOptions::verified() },
        )
        .map_err(|e| format!("large-P cooperative P={p}: {e}"))?;
        let host_s = t0.elapsed().as_secs_f64();
        eprintln!(
            "xtask bench --engines: large-P P={p} host {host_s:.3}s, virtual {:.6}s",
            out.elapsed
        );
        largep_rows.push(LargePRow { p, host_s, virtual_s: out.elapsed, cycles: out.cycles });
    }
    let largep_completed = largep_rows.iter().all(|r| r.cycles > 0 && r.virtual_s > 0.0);
    if !largep_completed {
        return Err("a large-P cooperative run produced no cycles".to_string());
    }

    // ---- Hand-formatted JSON ----------------------------------------
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"kind\": \"engines\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    out.push_str("  \"gates\": {\n");
    let _ = writeln!(out, "    \"engines_bitwise_equal\": {engines_bitwise_equal},");
    let _ = writeln!(out, "    \"largep_completed\": {largep_completed}");
    out.push_str("  },\n");
    out.push_str("  \"engine_overhead\": [\n");
    for (i, r) in overhead_rows.iter().enumerate() {
        let comma = if i + 1 < overhead_rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"p\": {}, \"threaded_host_s\": {:.6}, \"cooperative_host_s\": {:.6}, \
             \"coop_over_threaded\": {:.3}, \"bitwise_equal\": {}}}{comma}",
            r.p,
            r.threaded_host_s,
            r.cooperative_host_s,
            r.cooperative_host_s / r.threaded_host_s.max(1e-12),
            r.bitwise_equal
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"largep\": [\n");
    for (i, r) in largep_rows.iter().enumerate() {
        let comma = if i + 1 < largep_rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"p\": {}, \"host_s\": {:.6}, \"virtual_s\": {:.9}, \"cycles\": {}}}{comma}",
            r.p, r.host_s, r.virtual_s, r.cycles
        );
    }
    out.push_str("  ]\n}\n");
    Ok(out)
}

/// The fleet-parallel search benchmark behind `BENCH_9.json`: the serial
/// search versus the fleet search (G concurrent sub-searches over split
/// communicators) at P ∈ {8, 64, 256} × G ∈ {1, 2, 4, 8}, gated on
/// (a) the fleet winner being *bitwise* the serial winner when the
/// schedules are identical, (b) the fleet's best log likelihood never
/// being worse than the serial search's at any (P, G), (c) duplicate
/// elimination actually firing in the overlapping-schedule scenario, and
/// (d) candidates/s growing with G at P = 64, plus an ensemble-consensus
/// row recording the co-association vote.
fn run_ensemble_benchmarks(smoke: bool) -> Result<String, String> {
    // The equivalence claims are pinned to the deterministic pair the
    // group collectives mirror: recursive-doubling + fused exchange.
    let rd_machine = |p: usize| {
        let mut m = presets::meiko_cs2(p);
        m.allreduce = AllreduceAlgo::RecursiveDoubling;
        m
    };
    let opts_for = |p: usize| {
        if p > 8 {
            SimOptions { engine: Engine::Cooperative, ..SimOptions::default() }
        } else {
            SimOptions::default()
        }
    };

    // ---- bitwise parity: fleet winner == serial winner --------------
    // Two fleets of four versus the serial search on a machine of one
    // fleet's size: same candidate schedule, same numbers, same bits.
    let pdata = datagen::paper_dataset(if smoke { 240 } else { 360 }, 11);
    let pcfg = ParallelConfig {
        search: SearchConfig::quick(vec![3, 5], 7),
        strategy: Strategy::Full { exchange: Exchange::Fused },
        ..ParallelConfig::default()
    };
    let serial_ref = run_search_with(&pdata, &rd_machine(4), &pcfg, &SimOptions::default())
        .map_err(|e| format!("parity serial p=4: {e}"))?;
    let fleet_ref = run_search_fleet_with(
        &pdata,
        &rd_machine(8),
        &pcfg,
        &FleetConfig { groups: 2, ..FleetConfig::default() },
        &SimOptions::default(),
    )
    .map_err(|e| format!("parity fleet p=8 g=2: {e}"))?;
    let fleet_bitwise_best_model = fleet_ref.outcome.best.approx.log_likelihood.to_bits()
        == serial_ref.best.approx.log_likelihood.to_bits()
        && fleet_ref.outcome.best.seed == serial_ref.best.seed
        && fleet_ref.outcome.cycles == serial_ref.cycles;
    if !fleet_bitwise_best_model {
        return Err("fleet winner diverged bitwise from the serial search".to_string());
    }
    eprintln!("xtask bench --ensemble: parity P=8 G=2 vs serial P=4 bitwise ok");

    // ---- duplicate elimination + ensemble consensus -----------------
    // Four restarts of the same J land in one basin: the cross-fleet
    // fingerprint filter must cut the twins short, and the ensemble
    // consensus must produce a replicated vote over the survivors.
    let ddata = datagen::paper_dataset(300, 21);
    let dcfg = ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![3],
            tries_per_j: 4,
            max_cycles: 60,
            rel_delta_ll: 1e-6,
            min_class_weight: 1.0,
            seed: 17,
            max_stored: 10,
        },
        strategy: Strategy::Full { exchange: Exchange::Fused },
        ..ParallelConfig::default()
    };
    let dfc = FleetConfig {
        groups: 2,
        round_cycles: 3,
        dedup_every: 1,
        consensus: Consensus::Ensemble { voters: 3 },
    };
    let dedup_out =
        run_search_fleet_with(&ddata, &rd_machine(4), &dcfg, &dfc, &SimOptions::default())
            .map_err(|e| format!("dedup fleet p=4 g=2: {e}"))?;
    let dedup_fired = dedup_out.fleet.dedup_hits > 0 && dedup_out.fleet.dedup_saved_cycles > 0;
    if !dedup_fired {
        return Err(format!(
            "overlapping schedules did not trip the duplicate filter: {:?}",
            dedup_out.fleet
        ));
    }
    let ensemble = dedup_out
        .fleet
        .ensemble
        .as_ref()
        .ok_or_else(|| "ensemble consensus ran no vote".to_string())?;
    let ensemble_ran = ensemble.voters > 0 && ensemble.agreement > 0.0 && ensemble.agreement <= 1.0;
    if !ensemble_ran {
        return Err(format!("degenerate ensemble vote: {ensemble:?}"));
    }
    eprintln!(
        "xtask bench --ensemble: dedup_hits={} saved_cycles={} agreement={:.3}",
        dedup_out.fleet.dedup_hits, dedup_out.fleet.dedup_saved_cycles, ensemble.agreement
    );

    // ---- candidates/s scaling: serial vs fleet at P × G -------------
    let (sn, max_cycles) = if smoke { (768, 4) } else { (1_536, 10) };
    let scfg = ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![2, 3, 4, 5],
            tries_per_j: 2,
            max_cycles,
            rel_delta_ll: 1e-4,
            min_class_weight: 1.0,
            seed: 33,
            max_stored: 4,
        },
        strategy: Strategy::Full { exchange: Exchange::Fused },
        ..ParallelConfig::default()
    };
    let n_candidates = scfg.search.start_j_list.len() * scfg.search.tries_per_j;
    let sdata = datagen::paper_dataset(sn, 5);
    struct SerialRow {
        p: usize,
        virtual_s: f64,
        cands_per_vs: f64,
        best_ll: f64,
    }
    struct FleetRow {
        p: usize,
        g: usize,
        virtual_s: f64,
        candidates: usize,
        cands_per_vs: f64,
        speedup_vs_serial: f64,
        best_ll: f64,
        steals: usize,
    }
    let ps: &[usize] = if smoke { &[8, 64] } else { &[8, 64, 256] };
    let gs: [usize; 4] = [1, 2, 4, 8];
    // Each fleet computes at P/G ranks, so its trajectory is the serial
    // search's at a machine of the fleet's size — run the serial
    // reference at every distinct size the table needs.
    let mut sizes: Vec<usize> = ps.iter().flat_map(|&p| gs.iter().map(move |&g| p / g)).collect();
    sizes.extend(ps.iter().copied());
    sizes.sort_unstable();
    sizes.dedup();
    let mut serial_at = std::collections::BTreeMap::new();
    for &p in &sizes {
        let serial = run_search_with(&sdata, &rd_machine(p), &scfg, &opts_for(p))
            .map_err(|e| format!("serial P={p}: {e}"))?;
        serial_at.insert(p, serial);
    }
    let mut serial_rows: Vec<SerialRow> = Vec::new();
    for &p in &sizes {
        let serial = &serial_at[&p];
        serial_rows.push(SerialRow {
            p,
            virtual_s: serial.elapsed,
            cands_per_vs: n_candidates as f64 / serial.elapsed,
            best_ll: serial.best.approx.log_likelihood,
        });
    }
    let mut fleet_rows: Vec<FleetRow> = Vec::new();
    let mut fleet_no_worse_ll = true;
    for &p in ps {
        for g in gs {
            let fc = FleetConfig { groups: g, ..FleetConfig::default() };
            let out = run_search_fleet_with(&sdata, &rd_machine(p), &scfg, &fc, &opts_for(p))
                .map_err(|e| format!("fleet P={p} G={g}: {e}"))?;
            let ll = out.outcome.best.approx.log_likelihood;
            // With abandonment off the fleet replays the serial dedup
            // chain over the same candidates, each computed at the
            // fleet's own size — the winner must match serial-at-(P/G)
            // bit for bit, which also makes "no worse" exact.
            let sub_ll = serial_at[&(p / g)].best.approx.log_likelihood;
            let ok = ll.to_bits() == sub_ll.to_bits();
            if !ok {
                eprintln!(
                    "xtask bench --ensemble: P={p} G={g} best_ll {ll:.9} differs from \
                     serial-at-{} {sub_ll:.9}",
                    p / g
                );
            }
            fleet_no_worse_ll &= ok;
            let virtual_s = out.outcome.elapsed;
            eprintln!(
                "xtask bench --ensemble: P={p} G={g} virtual {virtual_s:.4}s, \
                 {} candidates, {} steals",
                out.fleet.candidates, out.fleet.steals
            );
            fleet_rows.push(FleetRow {
                p,
                g,
                virtual_s,
                candidates: out.fleet.candidates,
                cands_per_vs: out.fleet.candidates as f64 / virtual_s,
                speedup_vs_serial: serial_at[&p].elapsed / virtual_s,
                best_ll: ll,
                steals: out.fleet.steals,
            });
        }
    }
    if !fleet_no_worse_ll {
        return Err(
            "a fleet run's winner diverged from the serial search at the fleet's size".to_string()
        );
    }
    // The second parallel axis must pay off where the paper's first one
    // saturates: more fleets, more candidates per virtual second.
    let rate = |p: usize, g: usize| {
        fleet_rows.iter().find(|r| r.p == p && r.g == g).map(|r| r.cands_per_vs)
    };
    let scale_p = 64;
    let candidates_scale_with_g = match (rate(scale_p, 1), rate(scale_p, 8)) {
        (Some(r1), Some(r8)) => r8 > r1,
        _ => false,
    };
    if !candidates_scale_with_g {
        return Err(format!("candidates/s did not grow with G at P={scale_p}"));
    }

    // ---- Hand-formatted JSON ----------------------------------------
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"kind\": \"ensemble\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    out.push_str("  \"gates\": {\n");
    let _ = writeln!(out, "    \"fleet_bitwise_best_model\": {fleet_bitwise_best_model},");
    let _ = writeln!(out, "    \"fleet_no_worse_ll\": {fleet_no_worse_ll},");
    let _ = writeln!(out, "    \"dedup_fired\": {dedup_fired},");
    let _ = writeln!(out, "    \"candidates_scale_with_g\": {candidates_scale_with_g},");
    let _ = writeln!(out, "    \"ensemble_ran\": {ensemble_ran}");
    out.push_str("  },\n");
    out.push_str("  \"dedup\": {\n");
    let _ = writeln!(out, "    \"p\": 4,");
    let _ = writeln!(out, "    \"g\": 2,");
    let _ = writeln!(out, "    \"candidates\": {},", dedup_out.fleet.candidates);
    let _ = writeln!(out, "    \"dedup_hits\": {},", dedup_out.fleet.dedup_hits);
    let _ = writeln!(out, "    \"dedup_saved_cycles\": {},", dedup_out.fleet.dedup_saved_cycles);
    let _ = writeln!(out, "    \"voters\": {},", ensemble.voters);
    let _ = writeln!(out, "    \"agreement\": {:.6},", ensemble.agreement);
    let _ = writeln!(out, "    \"label_hash\": {}", ensemble.label_hash);
    out.push_str("  },\n");
    out.push_str("  \"serial\": [\n");
    for (i, r) in serial_rows.iter().enumerate() {
        let comma = if i + 1 < serial_rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"p\": {}, \"virtual_s\": {:.6}, \"cands_per_vs\": {:.3}, \
             \"best_ll\": {:.6}}}{comma}",
            r.p, r.virtual_s, r.cands_per_vs, r.best_ll
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"scaling\": [\n");
    for (i, r) in fleet_rows.iter().enumerate() {
        let comma = if i + 1 < fleet_rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"p\": {}, \"g\": {}, \"virtual_s\": {:.6}, \"candidates\": {}, \
             \"cands_per_vs\": {:.3}, \"speedup_vs_serial\": {:.3}, \"best_ll\": {:.6}, \
             \"steals\": {}}}{comma}",
            r.p,
            r.g,
            r.virtual_s,
            r.candidates,
            r.cands_per_vs,
            r.speedup_vs_serial,
            r.best_ll,
            r.steals
        );
    }
    out.push_str("  ]\n}\n");
    Ok(out)
}

/// Required keys for the fleet-search artifact (`BENCH_9.json`).
const ENSEMBLE_REQUIRED: [&str; 12] = [
    "\"schema_version\": 1",
    "\"kind\": \"ensemble\"",
    "\"fleet_bitwise_best_model\": true",
    "\"fleet_no_worse_ll\": true",
    "\"dedup_fired\": true",
    "\"candidates_scale_with_g\": true",
    "\"ensemble_ran\": true",
    "\"dedup_hits\"",
    "\"agreement\"",
    "\"serial\"",
    "\"scaling\"",
    "\"cands_per_vs\"",
];

/// Required keys for the engine-overhead artifact (`BENCH_8.json`).
const ENGINES_REQUIRED: [&str; 9] = [
    "\"schema_version\": 1",
    "\"kind\": \"engines\"",
    "\"engines_bitwise_equal\": true",
    "\"largep_completed\": true",
    "\"engine_overhead\"",
    "\"threaded_host_s\"",
    "\"cooperative_host_s\"",
    "\"largep\"",
    "\"virtual_s\"",
];

/// Required keys for the native wall-clock artifact (`BENCH_7.json`).
const NATIVE_REQUIRED: [&str; 13] = [
    "\"schema_version\": 1",
    "\"kind\": \"native\"",
    "\"host_threads\"",
    "\"kernels_finite\": true",
    "\"speedups_finite\": true",
    "\"kernels\"",
    "\"naive\"",
    "\"blocked\"",
    "\"fused\"",
    "\"items_per_s\"",
    "\"speedup_ratio\"",
    "\"sim_speedup\"",
    "\"native_speedup\"",
];

/// Structural validation of a results file: the required keys exist and
/// the correctness gates read `true` (which set of keys depends on the
/// artifact's schema — the kernel benchmark, the overlap ablation, or the
/// native wall-clock run). Intentionally tolerant of numeric values — CI
/// checks shape and invariants, not machine speed.
fn check(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask bench --check: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if text.contains("\"kind\": \"overlap\"") {
        return check_keys(path, &text, &OVERLAP_REQUIRED);
    }
    if text.contains("\"kind\": \"native\"") {
        return check_keys(path, &text, &NATIVE_REQUIRED);
    }
    if text.contains("\"kind\": \"engines\"") {
        return check_keys(path, &text, &ENGINES_REQUIRED);
    }
    if text.contains("\"kind\": \"ensemble\"") {
        return check_keys(path, &text, &ENSEMBLE_REQUIRED);
    }
    let required = [
        "\"schema_version\": 1",
        "\"estep\"",
        "\"naive_items_per_s\"",
        "\"blocked_items_per_s\"",
        "\"speedup\"",
        "\"kernels_match\": true",
        "\"estep_ops_match\": true",
        "\"cycles\"",
        "\"per_cycle_s\"",
        "\"full_fused\"",
        "\"full_perterm\"",
        "\"wts_only\"",
        "\"full_fused_auto\"",
    ];
    check_keys(path, &text, &required)
}

/// Required keys for the overlap-ablation artifact (`BENCH_4.json`).
const OVERLAP_REQUIRED: [&str; 11] = [
    "\"schema_version\": 1",
    "\"kind\": \"overlap\"",
    "\"fused_kernel\"",
    "\"kernels_match\": true",
    "\"stat_ops_match\": true",
    "\"overlap_ok\": true",
    "\"ll_bitwise_equal\": true",
    "\"cycles\"",
    "\"perterm\"",
    "\"fused\"",
    "\"pipelined\"",
];

fn check_keys(path: &Path, text: &str, required: &[&str]) -> ExitCode {
    let mut missing = Vec::new();
    for &key in required {
        if !text.contains(key) {
            missing.push(key);
        }
    }
    if missing.is_empty() {
        println!("xtask bench --check: {} ok", path.display());
        ExitCode::SUCCESS
    } else {
        for key in missing {
            eprintln!("xtask bench --check: {} missing {key}", path.display());
        }
        ExitCode::FAILURE
    }
}
