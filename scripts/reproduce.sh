#!/usr/bin/env bash
# Regenerate every experiment in EXPERIMENTS.md into results/.
# Usage: scripts/reproduce.sh [--full]
# --full uses the paper's start_j_list (2,4,8,16,24,50,64); expect a long run.
set -euo pipefail
cd "$(dirname "$0")/.."
mode="${1:-}"
out=results
mkdir -p "$out"

run() {
    local name="$1"; shift
    echo "=== $name ==="
    cargo run --offline -p bench --bin "$name" --release -- "$@" | tee "$out/$name.txt"
}

# All dependencies are vendored in-tree (vendor/*), so the whole script
# works without registry access.
cargo build --offline --workspace --release

run fig6 $mode
run fig7 $mode
run fig8
run profile_phases
run ablation_strategy
run ablation_allreduce
run ablation_imbalance
run seq_scaling

echo "=== criterion benches ==="
cargo bench --offline --workspace | tee "$out/criterion.txt"

echo
echo "All experiment outputs are in $out/; compare against EXPERIMENTS.md."
