//! # kmeans — sequential and message-passing parallel k-means
//!
//! The hard-assignment counterpart to AutoClass, included as the
//! related-work baseline (the paper cites Stoffel & Belkoniene's parallel
//! k-means for large data sets, Euro-Par '99). The parallel version uses
//! the same SPMD pattern as P-AutoClass — block-partitioned data, one
//! Allreduce of per-cluster sums and counts per iteration — so the two
//! algorithms can be compared on identical simulated machines.
//!
//! Works on the real attributes of a dataset (k-means has no natural
//! treatment of categorical attributes; schemas with discrete columns are
//! rejected). Missing values are rejected too: Lloyd's algorithm needs
//! complete vectors.

#![warn(missing_docs)]

use autoclass::data::{block_partition, DataView, Dataset};
use mpsim::{run_spmd, Comm, MachineSpec, RankStats, ReduceOp, SimError, SimOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// k-means configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Convergence threshold on total centroid movement (L2).
    pub tol: f64,
    /// Seed for the k-means++-style initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig { k: 8, max_iters: 100, tol: 1e-6, seed: 1 }
    }
}

/// Fitted k-means model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster centroids, `k × d`.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of items to their centroids.
    pub inertia: f64,
    /// Iterations actually run.
    pub iterations: usize,
    /// Whether centroid movement fell below the tolerance.
    pub converged: bool,
}

/// Validate that the view is all-real with no missing values and return
/// its dimensionality.
fn check_dims(view: &DataView<'_>) -> usize {
    let schema = view.schema();
    for (c, a) in schema.attributes.iter().enumerate() {
        assert!(a.kind.is_real(), "k-means requires real attributes (column {c} is discrete)");
        assert!(
            !view.real_column(c).iter().any(|x| x.is_nan()),
            "k-means requires complete data (column {c} has missing values)"
        );
    }
    schema.len()
}

/// Squared Euclidean distance between an item (row `i` of `view`) and a
/// centroid.
fn dist2(view: &DataView<'_>, i: usize, centroid: &[f64]) -> f64 {
    centroid
        .iter()
        .enumerate()
        .map(|(c, &m)| {
            let d = view.real_column(c)[i] - m;
            d * d
        })
        .sum()
}

/// k-means++-style initialization over a view: first centroid uniform,
/// subsequent ones proportional to squared distance from the nearest
/// chosen centroid.
pub fn init_centroids(view: &DataView<'_>, k: usize, seed: u64) -> Vec<Vec<f64>> {
    let d = check_dims(view);
    let n = view.len();
    assert!(n > 0, "cannot initialize centroids from an empty view");
    let mut rng = StdRng::seed_from_u64(seed);
    let row = |i: usize| -> Vec<f64> { (0..d).map(|c| view.real_column(c)[i]).collect() };

    let mut centroids = vec![row(rng.gen_range(0..n))];
    let mut d2: Vec<f64> = (0..n).map(|i| dist2(view, i, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut u = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if u < w {
                    pick = i;
                    break;
                }
                u -= w;
            }
            pick
        };
        let c = row(next);
        for (i, d) in d2.iter_mut().enumerate() {
            *d = d.min(dist2(view, i, &c));
        }
        centroids.push(c);
    }
    centroids
}

/// One assignment pass: returns per-cluster (count, per-dim sums) flattened
/// as `[count_0, sums_0.., count_1, sums_1..]`, the local inertia, and the
/// assignments. The flat layout is the Allreduce payload.
fn assign_and_accumulate(
    view: &DataView<'_>,
    centroids: &[Vec<f64>],
) -> (Vec<f64>, f64, Vec<usize>) {
    let d = view.schema().len();
    let k = centroids.len();
    let stride = d + 1;
    let mut acc = vec![0.0; k * stride];
    let mut inertia = 0.0;
    let mut assign = Vec::with_capacity(view.len());
    for i in 0..view.len() {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (c, centroid) in centroids.iter().enumerate() {
            let dd = dist2(view, i, centroid);
            if dd < best_d {
                best_d = dd;
                best = c;
            }
        }
        inertia += best_d;
        assign.push(best);
        acc[best * stride] += 1.0;
        for c in 0..d {
            acc[best * stride + 1 + c] += view.real_column(c)[i];
        }
    }
    (acc, inertia, assign)
}

/// Recompute centroids from accumulated counts/sums; empty clusters keep
/// their previous centroid (a standard fix that also makes the parallel
/// and sequential paths agree exactly).
fn centroids_from_acc(acc: &[f64], d: usize, prev: &[Vec<f64>]) -> (Vec<Vec<f64>>, f64) {
    let stride = d + 1;
    let k = acc.len() / stride;
    let mut movement = 0.0;
    let centroids = (0..k)
        .map(|c| {
            let count = acc[c * stride];
            if count > 0.0 {
                let m: Vec<f64> = (0..d).map(|j| acc[c * stride + 1 + j] / count).collect();
                movement +=
                    m.iter().zip(&prev[c]).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
                m
            } else {
                prev[c].clone()
            }
        })
        .collect();
    (centroids, movement)
}

/// Sequential Lloyd's algorithm.
pub fn kmeans_seq(view: &DataView<'_>, config: &KMeansConfig) -> (KMeansResult, Vec<usize>) {
    let d = check_dims(view);
    let mut centroids = init_centroids(view, config.k, config.seed);
    let mut result_assign = Vec::new();
    let mut inertia = 0.0;
    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iters {
        let (acc, local_inertia, assign) = assign_and_accumulate(view, &centroids);
        inertia = local_inertia;
        result_assign = assign;
        let (next, movement) = centroids_from_acc(&acc, d, &centroids);
        centroids = next;
        iterations += 1;
        if movement <= config.tol {
            converged = true;
            break;
        }
    }
    (KMeansResult { centroids, inertia, iterations, converged }, result_assign)
}

/// Result of a parallel k-means run on a simulated machine.
#[derive(Debug, Clone)]
pub struct ParallelKMeans {
    /// The fitted model (identical on all ranks; rank 0's copy).
    pub result: KMeansResult,
    /// Virtual elapsed seconds.
    pub elapsed: f64,
    /// Per-rank statistics.
    pub ranks: Vec<RankStats>,
}

/// The per-rank body, exposed for composition in larger SPMD programs.
pub fn kmeans_rank_body(comm: &mut Comm, data: &Dataset, config: &KMeansConfig) -> KMeansResult {
    let parts = block_partition(data.len(), comm.size());
    let part = &parts[comm.rank()];
    let view = data.view(part.start, part.end);
    let d = view.schema().len();
    let k = config.k;

    // Rank 0 initializes from its partition and broadcasts (same pattern
    // as P-AutoClass initialization).
    let mut flat = if comm.rank() == 0 {
        let c = init_centroids(&view, k, config.seed);
        c.into_iter().flatten().collect()
    } else {
        vec![0.0; k * d]
    };
    comm.work((view.len() * k * d) as u64); // init distance scans
    comm.broadcast_f64s(0, &mut flat);
    let mut centroids: Vec<Vec<f64>> = flat.chunks_exact(d).map(|c| c.to_vec()).collect();

    let mut iterations = 0;
    let mut converged = false;
    let mut inertia = 0.0;
    while iterations < config.max_iters {
        let (mut acc, local_inertia, _) = assign_and_accumulate(&view, &centroids);
        comm.work((view.len() * k * d) as u64);
        comm.allreduce_f64s(&mut acc, ReduceOp::Sum);
        inertia = comm.allreduce_scalar(local_inertia, ReduceOp::Sum);
        let (next, movement) = centroids_from_acc(&acc, d, &centroids);
        comm.work((k * d) as u64);
        centroids = next;
        iterations += 1;
        // `movement` is computed from identical global accumulators on
        // every rank, so the loop exit is coherent without a vote.
        if movement <= config.tol {
            converged = true;
            break;
        }
    }
    KMeansResult { centroids, inertia, iterations, converged }
}

/// Run parallel k-means on the given simulated machine.
///
/// # Errors
/// Propagates engine failures.
pub fn kmeans_parallel(
    data: &Dataset,
    machine: &MachineSpec,
    config: &KMeansConfig,
) -> Result<ParallelKMeans, SimError> {
    let out =
        run_spmd(machine, &SimOptions::default(), |comm| kmeans_rank_body(comm, data, config))?;
    // lint:allow(unwrap): machines have at least one rank
    let result = out.per_rank.into_iter().next().expect("at least one rank");
    Ok(ParallelKMeans { result, elapsed: out.elapsed, ranks: out.ranks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::presets;

    fn blob_data(n: usize) -> Dataset {
        datagen::GaussianMixture::well_separated(3, 2, 20.0).generate(n, 5).0
    }

    #[test]
    fn sequential_kmeans_finds_separated_blobs() {
        let data = blob_data(600);
        let config = KMeansConfig { k: 3, seed: 2, ..KMeansConfig::default() };
        let (result, assign) = kmeans_seq(&data.full_view(), &config);
        assert!(result.converged);
        assert_eq!(assign.len(), 600);
        // With separation 20 and sigma 1, inertia per item ≈ d·sigma² = 2.
        let per_item = result.inertia / 600.0;
        assert!(per_item < 4.0, "inertia/item = {per_item}");
    }

    #[test]
    fn parallel_matches_sequential() {
        let data = blob_data(500);
        let config = KMeansConfig { k: 3, seed: 4, ..KMeansConfig::default() };
        // P=1 parallel is sequential-equivalent by construction; compare
        // higher P against it.
        let base = kmeans_parallel(&data, &presets::zero_cost(1), &config).unwrap();
        for p in [2usize, 4, 7] {
            let out = kmeans_parallel(&data, &presets::zero_cost(p), &config).unwrap();
            assert!(
                (out.result.inertia - base.result.inertia).abs()
                    < 1e-6 * base.result.inertia.max(1.0),
                "p={p}: inertia {} vs {}",
                out.result.inertia,
                base.result.inertia
            );
        }
    }

    #[test]
    fn parallel_init_note_p1_equals_seq() {
        // At P=1 the parallel body initializes exactly like the
        // sequential one, so results must agree bitwise.
        let data = blob_data(300);
        let config = KMeansConfig { k: 4, seed: 9, ..KMeansConfig::default() };
        let (seq, _) = kmeans_seq(&data.full_view(), &config);
        let par = kmeans_parallel(&data, &presets::zero_cost(1), &config).unwrap();
        assert_eq!(par.result, seq);
    }

    #[test]
    fn kmeans_scales_like_pautoclass() {
        // Same qualitative behaviour on the simulated CS-2: big data
        // scales, and 10 processors beat 1.
        let data = blob_data(20_000);
        let config = KMeansConfig { k: 8, max_iters: 5, tol: 0.0, seed: 3 };
        let t1 = kmeans_parallel(&data, &presets::meiko_cs2(1), &config).unwrap().elapsed;
        let t10 = kmeans_parallel(&data, &presets::meiko_cs2(10), &config).unwrap().elapsed;
        let speedup = t1 / t10;
        assert!(speedup > 5.0, "speedup {speedup:.2}");
    }

    #[test]
    #[should_panic(expected = "requires real attributes")]
    fn discrete_schema_rejected() {
        let (data, _) = datagen::protein_sequences(50, 3, 4, 2, 1);
        let _ = kmeans_seq(&data.full_view(), &KMeansConfig::default());
    }

    #[test]
    #[should_panic(expected = "complete data")]
    fn missing_values_rejected() {
        let data = datagen::inject_missing(&blob_data(100), 0.2, 1);
        let _ = kmeans_seq(&data.full_view(), &KMeansConfig::default());
    }

    #[test]
    fn empty_cluster_keeps_previous_centroid() {
        // Force an empty cluster: k larger than distinct points.
        let data = blob_data(10);
        let config = KMeansConfig { k: 9, max_iters: 10, seed: 1, ..KMeansConfig::default() };
        let (result, _) = kmeans_seq(&data.full_view(), &config);
        assert_eq!(result.centroids.len(), 9);
        assert!(result.centroids.iter().all(|c| c.iter().all(|x| x.is_finite())));
    }
}
