//! Phase-span attribution and collective message accounting.
//!
//! The report harness depends on two invariants checked here across every
//! allreduce algorithm at both power-of-two and non-power-of-two P:
//!
//! 1. every constituent message of a collective is counted exactly once in
//!    `RankStats`, with world-wide send and receive totals symmetric and
//!    consistent with the recorded event trace;
//! 2. the per-phase buckets partition each rank's elapsed virtual time
//!    (sum within 1e-9) and soak up the collective's messages into the
//!    enclosing span.

use mpsim::{
    presets, run_spmd, AllreduceAlgo, EventKind, ReduceOp, RunStats, SimOptions, DEFAULT_PHASE,
};

const ALGOS: [AllreduceAlgo; 6] = [
    AllreduceAlgo::Linear,
    AllreduceAlgo::OrderedLinear,
    AllreduceAlgo::RecursiveDoubling,
    AllreduceAlgo::Ring,
    AllreduceAlgo::Rabenseifner,
    AllreduceAlgo::Auto,
];

/// Both power-of-two and non-power-of-two sizes: recursive doubling and
/// Rabenseifner take the pow2-parking path at 5 and 6.
const SIZES: [usize; 4] = [2, 4, 5, 6];

#[test]
fn allreduce_messages_counted_consistently_across_algorithms() {
    for algo in ALGOS {
        for p in SIZES {
            let mut spec = presets::meiko_cs2(p);
            spec.allreduce = algo;
            let opts = SimOptions { record_events: true, ..Default::default() };
            let out = run_spmd(&spec, &opts, |c| {
                c.enter_phase("allreduce");
                let mut buf = vec![c.rank() as f64 + 1.0; 33]; // odd length
                c.allreduce_f64s(&mut buf, ReduceOp::Sum);
                c.exit_phase();
                buf[0]
            })
            .unwrap();
            let label = format!("{algo:?} P={p}");
            // World-wide symmetry: every constituent message sent was
            // received (collectives never fire-and-forget).
            let agg = RunStats::from_ranks(&out.ranks);
            agg.check_message_symmetry().unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(agg, out.stats, "{label}: engine aggregate differs");
            for (rank, (events, stats)) in out.events.iter().zip(&out.ranks).enumerate() {
                // Stats agree with the recorded trace.
                let sends = events.iter().filter(|e| e.kind == EventKind::Send).count() as u64;
                let recvs = events.iter().filter(|e| e.kind == EventKind::Recv).count() as u64;
                assert_eq!(sends, stats.msgs_sent, "{label} rank {rank} sends");
                assert_eq!(recvs, stats.msgs_recvd, "{label} rank {rank} recvs");
                // All traffic happened inside the span: the "allreduce"
                // bucket holds every message, the default bucket none.
                let ar = stats.phase("allreduce").unwrap_or_else(|| panic!("{label}: no span"));
                assert_eq!(ar.msgs_sent, stats.msgs_sent, "{label} rank {rank} phase sends");
                assert_eq!(ar.msgs_recvd, stats.msgs_recvd, "{label} rank {rank} phase recvs");
                assert_eq!(ar.bytes_sent, stats.bytes_sent, "{label} rank {rank} phase bytes");
                assert_eq!(ar.collectives, 1, "{label} rank {rank} collective count");
                let other = stats.phase(DEFAULT_PHASE).unwrap_or_else(|| panic!("{label}"));
                assert_eq!(other.msgs_sent, 0, "{label} rank {rank} default-bucket sends");
            }
            if p > 1 {
                assert!(agg.total_msgs > 0, "{label}: no messages moved");
            }
        }
    }
}

#[test]
fn phase_buckets_sum_to_elapsed_on_every_rank() {
    for algo in ALGOS {
        for p in SIZES {
            let mut spec = presets::meiko_cs2(p);
            spec.allreduce = algo;
            let opts = SimOptions { record_events: true, ..Default::default() };
            let out = run_spmd(&spec, &opts, |c| {
                // Unequal compute so some ranks idle inside the collective.
                c.enter_phase("estep");
                c.work(10_000 * (c.rank() as u64 + 1));
                c.exit_phase();
                c.enter_phase("allreduce");
                let mut buf = vec![1.0; 40];
                c.allreduce_f64s(&mut buf, ReduceOp::Sum);
                c.exit_phase();
                c.work(5_000); // default bucket
            })
            .unwrap();
            for stats in &out.ranks {
                let sum = stats.phases_total();
                assert!(
                    (sum - stats.elapsed).abs() <= 1e-9,
                    "{algo:?} P={p} rank {}: phases sum {sum:.15} vs elapsed {:.15}",
                    stats.rank,
                    stats.elapsed
                );
                // The global split agrees with the bucket split per kind.
                let compute: f64 = stats.phases.iter().map(|ph| ph.compute).sum();
                let comm: f64 = stats.phases.iter().map(|ph| ph.comm).sum();
                let idle: f64 = stats.phases.iter().map(|ph| ph.idle).sum();
                assert!((compute - stats.compute).abs() <= 1e-9, "{algo:?} P={p}");
                assert!((comm - stats.comm).abs() <= 1e-9, "{algo:?} P={p}");
                assert!((idle - stats.idle).abs() <= 1e-9, "{algo:?} P={p}");
            }
        }
    }
}

#[test]
fn nested_spans_attribute_to_the_innermost_phase() {
    let spec = presets::meiko_cs2(4);
    let out = run_spmd(&spec, &SimOptions::default(), |c| {
        c.enter_phase("search");
        c.work(1_000);
        c.enter_phase("allreduce");
        let mut buf = vec![c.rank() as f64; 8];
        c.allreduce_f64s(&mut buf, ReduceOp::Sum);
        c.exit_phase();
        c.work(2_000);
        c.exit_phase();
    })
    .unwrap();
    for stats in &out.ranks {
        let search = stats.phase("search").expect("search span");
        let ar = stats.phase("allreduce").expect("allreduce span");
        // The collective's traffic lands in the inner span only.
        assert_eq!(search.msgs_sent, 0);
        assert_eq!(ar.msgs_sent, stats.msgs_sent);
        assert!(ar.msgs_sent > 0);
        // Compute around the collective stays with the outer span.
        assert!(search.compute > 0.0);
        assert_eq!(ar.compute, 0.0);
        assert!((stats.phases_total() - stats.elapsed).abs() <= 1e-9);
    }
}

#[test]
fn reentering_a_phase_accumulates_into_one_bucket() {
    let spec = presets::meiko_cs2(2);
    let out = run_spmd(&spec, &SimOptions::default(), |c| {
        for _ in 0..3 {
            c.enter_phase("estep");
            c.work(1_000);
            c.exit_phase();
            c.enter_phase("allreduce");
            let mut buf = vec![1.0; 4];
            c.allreduce_f64s(&mut buf, ReduceOp::Sum);
            c.exit_phase();
        }
    })
    .unwrap();
    for stats in &out.ranks {
        // Exactly three buckets: other, estep, allreduce — not one per
        // iteration.
        let names: Vec<&str> = stats.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, [DEFAULT_PHASE, "estep", "allreduce"], "rank {}", stats.rank);
        let ar = stats.phase("allreduce").expect("allreduce span");
        assert_eq!(ar.collectives, 3);
    }
}

#[test]
fn unbalanced_exit_phase_is_tolerated() {
    let spec = presets::zero_cost(2);
    let out = run_spmd(&spec, &SimOptions::default(), |c| {
        c.exit_phase(); // nothing open: no-op
        c.enter_phase("estep");
        c.work(100);
        c.exit_phase();
        c.exit_phase(); // extra: no-op, stays in default bucket
        c.work(50);
        c.barrier();
    })
    .unwrap();
    for stats in &out.ranks {
        assert!(stats.phase("estep").is_some());
        assert!((stats.phases_total() - stats.elapsed).abs() <= 1e-9);
    }
}
