//! End-to-end tests of the SPMD correctness verifier: full-strength runs
//! must stay quiet on correct programs, and injected faults — mismatched
//! collectives, skipped collectives, diverging "replicated" values — must
//! be diagnosed with a precise error naming the culprit.

use std::time::{Duration, Instant};

use mpsim::{presets, run_spmd, AllreduceAlgo, ReduceOp, SimError, SimOptions, VerifyOptions};
use proptest::prelude::*;

#[test]
fn full_verification_is_quiet_on_a_correct_program() {
    // Exercise every collective (world and group) with all checks on: the
    // verifier must not produce false positives.
    let spec = presets::zero_cost(5);
    let out = run_spmd(&spec, &SimOptions::verified(), |c| {
        c.barrier();
        let mut b = vec![0.0; 4];
        if c.rank() == 0 {
            b = vec![1.0, 2.0, 3.0, 4.0];
        }
        c.broadcast_f64s(0, &mut b);
        c.verify_replicated("bcast payload", &b);
        let mut acc = vec![c.rank() as f64; 3];
        c.allreduce_f64s(&mut acc, ReduceOp::Sum);
        c.verify_replicated("allreduce payload", &acc);
        let mine = vec![c.rank() as f64; c.rank() + 1]; // ragged: allowed
        let _ = c.gather_f64s(2, &mine);
        let _ = c.allgather_f64s(&mine);
        let mut scan = vec![1.0];
        c.scan_f64s(&mut scan, ReduceOp::Sum);
        {
            let mut sub = c.split((c.rank() % 2) as u32);
            sub.barrier();
            let mut v = vec![1.0, 1.0];
            sub.allreduce_f64s(&mut v, ReduceOp::Sum);
            let mut w = vec![sub.rank() as f64];
            w[0] = 7.0;
            sub.broadcast_f64s(0, &mut w);
            let _ = sub.gather_f64s(0, &v);
        }
        acc[0]
    })
    .unwrap();
    assert!(out.per_rank.iter().all(|&v| v == 0.0 + 1.0 + 2.0 + 3.0 + 4.0));
}

#[test]
fn all_allreduce_algorithms_pass_replication_hashing() {
    for algo in [AllreduceAlgo::Linear, AllreduceAlgo::RecursiveDoubling, AllreduceAlgo::Ring] {
        for p in [1usize, 2, 3, 4, 7] {
            let spec = presets::zero_cost(p);
            run_spmd(&spec, &SimOptions::verified(), |c| {
                let mut buf: Vec<f64> =
                    (0..10).map(|i| (c.rank() * 10 + i) as f64 * 0.37).collect();
                c.allreduce_f64s_with(&mut buf, ReduceOp::Sum, algo);
                buf
            })
            .unwrap_or_else(|e| panic!("{algo:?} p={p}: {e}"));
        }
    }
}

#[test]
fn wrong_root_is_reported_as_divergence() {
    let spec = presets::zero_cost(3);
    let r = run_spmd::<(), _>(&spec, &SimOptions::verified(), |c| {
        let root = if c.rank() == 2 { 1 } else { 0 };
        let mut b = vec![0.0];
        c.broadcast_f64s(root, &mut b);
    });
    match r {
        Err(SimError::CollectiveDivergence { seq, detail, .. }) => {
            assert_eq!(seq, 1);
            assert!(detail.contains("root=0") && detail.contains("root=1"), "{detail}");
        }
        other => panic!("expected CollectiveDivergence, got {other:?}"),
    }
}

#[test]
fn wrong_reduce_op_is_reported_as_divergence() {
    let spec = presets::zero_cost(4);
    let r = run_spmd::<(), _>(&spec, &SimOptions::verified(), |c| {
        let op = if c.rank() == 3 { ReduceOp::Max } else { ReduceOp::Sum };
        let mut b = vec![1.0, 2.0];
        c.allreduce_f64s(&mut b, op);
    });
    match r {
        Err(SimError::CollectiveDivergence { detail, .. }) => {
            assert!(detail.contains("op=Sum") && detail.contains("op=Max"), "{detail}");
            assert!(detail.contains("rank 3"), "{detail}");
        }
        other => panic!("expected CollectiveDivergence, got {other:?}"),
    }
}

#[test]
fn group_collective_divergence_names_world_ranks() {
    let spec = presets::zero_cost(4);
    let r = run_spmd::<(), _>(&spec, &SimOptions::verified(), |c| {
        let me = c.rank();
        let mut sub = c.split((me % 2) as u32);
        // World rank 3 (group rank 1 of the odd group) calls a barrier
        // while its partner calls an allreduce.
        if me == 3 {
            sub.barrier();
        } else {
            let mut v = vec![1.0];
            sub.allreduce_f64s(&mut v, ReduceOp::Sum);
        }
    });
    match r {
        Err(SimError::CollectiveDivergence { detail, .. }) => {
            assert!(detail.contains("rank 3"), "{detail}");
            assert!(detail.contains("Barrier") && detail.contains("Allreduce"), "{detail}");
        }
        other => panic!("expected CollectiveDivergence, got {other:?}"),
    }
}

#[test]
fn replicated_value_divergence_is_reported_with_label() {
    let spec = presets::zero_cost(3);
    let r = run_spmd::<(), _>(&spec, &SimOptions::verified(), |c| {
        // "Replicated" model parameters that rank 1 computed differently.
        let params = if c.rank() == 1 { vec![1.0, 2.0 + 1e-15] } else { vec![1.0, 2.0] };
        c.verify_replicated("model params", &params);
    });
    match r {
        Err(SimError::ReplicationDivergence { seq, detail, .. }) => {
            assert_eq!(seq, 1);
            assert!(detail.contains("model params"), "{detail}");
            assert!(detail.contains("rank 1") || detail.contains("rank 0"), "{detail}");
        }
        other => panic!("expected ReplicationDivergence, got {other:?}"),
    }
}

#[test]
fn verification_off_keeps_legacy_behaviour() {
    // With every check disabled nothing is registered and a correct
    // program runs exactly as before.
    let spec = presets::zero_cost(4);
    let opts = SimOptions { verify: VerifyOptions::none(), ..Default::default() };
    let out = run_spmd(&spec, &opts, |c| c.allreduce_scalar(1.0, ReduceOp::Sum)).unwrap();
    assert!(out.per_rank.iter().all(|&v| v == 4.0));
}

/// What fault the proptest injects on the victim rank.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Fault {
    /// Victim calls `barrier` where everyone else calls `allreduce`.
    WrongKind,
    /// Victim passes a buffer of a different length to the allreduce.
    WrongLen,
    /// Victim skips the collective entirely and returns.
    Skip,
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Inject a random fault on a random rank after a random number of
    /// healthy collectives: the error must name the right rank, the right
    /// sequence number, and the right collective kinds.
    #[test]
    fn injected_fault_is_pinpointed(
        p in 2usize..7,
        victim_frac in 0usize..1000,
        healthy in 0u64..4,
        fault in prop_oneof![Just(Fault::WrongKind), Just(Fault::WrongLen), Just(Fault::Skip)],
    ) {
        let victim = victim_frac % p;
        let spec = presets::zero_cost(p);
        let start = Instant::now();
        let r = run_spmd::<(), _>(&spec, &SimOptions::verified(), |c| {
            for _ in 0..healthy {
                let mut v = vec![1.0, 2.0];
                c.allreduce_f64s(&mut v, ReduceOp::Sum);
            }
            let is_victim = c.rank() == victim;
            match (fault, is_victim) {
                (Fault::Skip, true) => {} // simply never joins
                (Fault::WrongKind, true) => c.barrier(),
                (Fault::WrongLen, true) => {
                    let mut v = vec![0.0; 5];
                    c.allreduce_f64s(&mut v, ReduceOp::Sum);
                }
                (_, false) => {
                    let mut v = vec![0.0; 2];
                    c.allreduce_f64s(&mut v, ReduceOp::Sum);
                }
            }
        });
        let elapsed = start.elapsed();
        let faulty_seq = healthy + 1;
        match (fault, r) {
            (Fault::WrongKind, Err(SimError::CollectiveDivergence { seq, detail, .. })) => {
                prop_assert_eq!(seq, faulty_seq, "{}", detail);
                prop_assert!(detail.contains(&format!("rank {victim}")), "{}", detail);
                prop_assert!(detail.contains("Barrier"), "{}", detail);
                prop_assert!(detail.contains("Allreduce"), "{}", detail);
            }
            (Fault::WrongLen, Err(SimError::CollectiveDivergence { seq, detail, .. })) => {
                prop_assert_eq!(seq, faulty_seq, "{}", detail);
                prop_assert!(detail.contains(&format!("rank {victim}")), "{}", detail);
                prop_assert!(detail.contains("elems=5"), "{}", detail);
                prop_assert!(detail.contains("elems=2"), "{}", detail);
            }
            (Fault::Skip, Err(SimError::Deadlock { detail, .. })) => {
                // The victim finished without joining; some rank is stuck
                // waiting on it and the detector must say so.
                prop_assert!(
                    detail.contains(&format!("waits on rank {victim}")),
                    "{}", detail
                );
                prop_assert!(detail.contains("finished"), "{}", detail);
                prop_assert!(
                    elapsed < Duration::from_secs(5),
                    "diagnosis took {:?}", elapsed
                );
            }
            (_, other) => prop_assert!(false, "fault {:?} produced {:?}", fault, other),
        }
    }
}
