//! Fault injection end-to-end: every injected fault must surface as a
//! typed error naming the culprit rank/seq/kind — never a hang, never an
//! untyped panic — across all allreduce algorithms and the non-blocking
//! paths, and must coexist with the PR 1 wait-for-graph detector.

use std::error::Error;
use std::time::Duration;

use mpsim::{
    presets, run_spmd, AllreduceAlgo, DecodeError, FaultAction, FaultPlan, FaultSpec, FaultTrigger,
    ReduceOp, SimError, SimOptions,
};
use proptest::prelude::*;

const ALGOS: [AllreduceAlgo; 5] = [
    AllreduceAlgo::Linear,
    AllreduceAlgo::RecursiveDoubling,
    AllreduceAlgo::Ring,
    AllreduceAlgo::Rabenseifner,
    AllreduceAlgo::Auto,
];

fn opts_with(plan: FaultPlan) -> SimOptions {
    SimOptions {
        // Short wall-clock backstop: these tests must *not* rely on it —
        // typed detection has to fire long before — but if detection ever
        // regressed this bounds the suite instead of hanging CI.
        recv_timeout: Duration::from_secs(20),
        fault: Some(plan),
        ..Default::default()
    }
}

/// A small SPMD body exercising collectives in a loop: work + allreduce,
/// like one EM cycle.
fn allreduce_rounds(c: &mut mpsim::Comm, rounds: usize, algo: AllreduceAlgo) -> Vec<f64> {
    let mut buf = vec![c.rank() as f64 + 1.0; 64];
    for _ in 0..rounds {
        c.work(10_000);
        c.allreduce_f64s_with(&mut buf, ReduceOp::Sum, algo);
    }
    buf
}

#[test]
fn crash_is_typed_across_all_algorithms_and_sizes() {
    for algo in ALGOS {
        for p in [2usize, 4, 5, 8] {
            let mut spec = presets::meiko_cs2(p);
            spec.allreduce = algo;
            let plan = FaultPlan::new(vec![FaultSpec {
                rank: 1,
                action: FaultAction::Crash,
                trigger: FaultTrigger::AtSendSeq(3),
            }]);
            let start = std::time::Instant::now();
            let r = run_spmd(&spec, &opts_with(plan), |c| allreduce_rounds(c, 8, algo));
            match r {
                Err(SimError::RankCrashed { rank, seq, .. }) => {
                    assert_eq!(rank, 1, "{algo:?} p={p}");
                    assert!(seq <= 3, "{algo:?} p={p}: died at seq {seq}");
                }
                other => panic!("{algo:?} p={p}: expected RankCrashed, got {other:?}"),
            }
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "{algo:?} p={p}: detection too slow ({:?})",
                start.elapsed()
            );
        }
    }
}

#[test]
fn crash_detection_works_on_nonblocking_paths() {
    let spec = presets::meiko_cs2(4);
    let plan = FaultPlan::new(vec![FaultSpec {
        rank: 2,
        action: FaultAction::Crash,
        trigger: FaultTrigger::AtSendSeq(2),
    }]);
    let r = run_spmd(&spec, &opts_with(plan), |c| {
        let mut buf = vec![c.rank() as f64; 32];
        for _ in 0..6 {
            let mut req = c.iallreduce_f64s(&mut buf, ReduceOp::Sum);
            c.work(50_000);
            c.wait(&mut req);
        }
        buf
    });
    assert!(matches!(r, Err(SimError::RankCrashed { rank: 2, .. })), "got {r:?}");
}

#[test]
fn dropped_message_names_culprit_and_seq() {
    let mut spec = presets::meiko_cs2(2);
    spec.allreduce = AllreduceAlgo::Linear;
    let plan = FaultPlan::new(vec![FaultSpec {
        rank: 1,
        action: FaultAction::Drop { dst: 0 },
        trigger: FaultTrigger::AtSendSeq(2),
    }]);
    let r = run_spmd(&spec, &opts_with(plan), |c| allreduce_rounds(c, 4, AllreduceAlgo::Linear));
    match r {
        Err(SimError::PeerFailed { peer, kind, seq, .. }) => {
            assert_eq!(peer, 1);
            assert_eq!(kind, mpsim::FaultKind::Drop);
            assert_eq!(seq, 2);
        }
        other => panic!("expected PeerFailed(drop), got {other:?}"),
    }
}

#[test]
fn delay_past_virtual_timeout_is_typed() {
    let spec = presets::meiko_cs2(2);
    let plan = FaultPlan::new(vec![FaultSpec {
        rank: 1,
        action: FaultAction::Delay { dst: 0, secs: 10.0 },
        trigger: FaultTrigger::AtSendSeq(1),
    }])
    .with_virtual_timeout(1.0);
    let r = run_spmd(&spec, &opts_with(plan), |c| allreduce_rounds(c, 3, AllreduceAlgo::Linear));
    match r {
        Err(SimError::Timeout { from, waited, limit, .. }) => {
            assert_eq!(from, 1);
            assert!(waited > limit, "waited {waited} vs limit {limit}");
            assert!((limit - 1.0).abs() < 1e-12);
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
}

#[test]
fn tolerated_delay_recovers_bit_identically_but_later() {
    let spec = presets::meiko_cs2(3);
    let baseline =
        run_spmd(&spec, &SimOptions::default(), |c| allreduce_rounds(c, 4, AllreduceAlgo::Linear))
            .unwrap();
    let plan = FaultPlan::new(vec![FaultSpec {
        rank: 1,
        action: FaultAction::Delay { dst: 0, secs: 0.25 },
        trigger: FaultTrigger::AtSendSeq(2),
    }]);
    let faulted =
        run_spmd(&spec, &opts_with(plan), |c| allreduce_rounds(c, 4, AllreduceAlgo::Linear))
            .unwrap();
    for (a, b) in baseline.per_rank.iter().zip(&faulted.per_rank) {
        let a_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
        let b_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a_bits, b_bits, "a delayed message must not change values");
    }
    assert!(
        faulted.elapsed > baseline.elapsed + 0.2,
        "delay must show up in virtual time: {} vs {}",
        faulted.elapsed,
        baseline.elapsed
    );
}

#[test]
fn degraded_link_slows_the_run_without_changing_results() {
    let spec = presets::meiko_cs2(2);
    let baseline =
        run_spmd(&spec, &SimOptions::default(), |c| allreduce_rounds(c, 4, AllreduceAlgo::Linear))
            .unwrap();
    let plan = FaultPlan::new(vec![FaultSpec {
        rank: 1,
        action: FaultAction::DegradeLink { dst: 0, factor: 100.0 },
        trigger: FaultTrigger::AtTime(0.0),
    }]);
    let degraded =
        run_spmd(&spec, &opts_with(plan), |c| allreduce_rounds(c, 4, AllreduceAlgo::Linear))
            .unwrap();
    for (a, b) in baseline.per_rank.iter().zip(&degraded.per_rank) {
        let a_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
        let b_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a_bits, b_bits);
    }
    assert!(
        degraded.elapsed > baseline.elapsed,
        "degraded link must cost virtual time: {} vs {}",
        degraded.elapsed,
        baseline.elapsed
    );
}

#[test]
fn corruption_is_caught_by_the_envelope_checksum() {
    let spec = presets::meiko_cs2(2);
    let plan = FaultPlan::new(vec![FaultSpec {
        rank: 1,
        action: FaultAction::Corrupt { dst: 0, byte: 11, mask: 0x40 },
        trigger: FaultTrigger::AtSendSeq(1),
    }]);
    let r = run_spmd(&spec, &opts_with(plan), |c| allreduce_rounds(c, 2, AllreduceAlgo::Linear));
    match &r {
        Err(e @ SimError::PayloadCorrupt { from, seq, cause, .. }) => {
            assert_eq!((*from, *seq), (1, 1));
            assert!(matches!(cause, DecodeError::ChecksumMismatch { .. }), "{cause:?}");
            // Satellite: the mpsim fault is reachable via source() chaining.
            let src = e.source().expect("PayloadCorrupt has a source");
            assert!(src.to_string().contains("checksum"), "{src}");
        }
        other => panic!("expected PayloadCorrupt, got {other:?}"),
    }
}

#[test]
fn corruption_of_an_empty_payload_is_still_caught() {
    // Barrier messages carry no bytes; the fault layer corrupts the
    // checksum itself so the fault cannot vanish.
    let spec = presets::meiko_cs2(2);
    let plan = FaultPlan::new(vec![FaultSpec {
        rank: 1,
        action: FaultAction::Corrupt { dst: 0, byte: 0, mask: 0xFF },
        trigger: FaultTrigger::AtSendSeq(1),
    }]);
    let r = run_spmd(&spec, &opts_with(plan), |c| {
        for _ in 0..3 {
            c.barrier();
        }
    });
    assert!(matches!(r, Err(SimError::PayloadCorrupt { from: 1, .. })), "got {r:?}");
}

#[test]
fn fault_detection_coexists_with_the_wait_for_graph_detector() {
    // With every verification layer on, an injected crash must still be
    // reported as the root cause — not misdiagnosed as a deadlock and not
    // drowned out by collective-fingerprint bookkeeping.
    let mut opts = SimOptions::verified();
    opts.recv_timeout = Duration::from_secs(20);
    opts.fault = Some(FaultPlan::new(vec![FaultSpec {
        rank: 1,
        action: FaultAction::Crash,
        trigger: FaultTrigger::AtSendSeq(2),
    }]));
    let spec = presets::meiko_cs2(4);
    let start = std::time::Instant::now();
    let r = run_spmd(&spec, &opts, |c| allreduce_rounds(c, 6, AllreduceAlgo::RecursiveDoubling));
    assert!(matches!(r, Err(SimError::RankCrashed { rank: 1, .. })), "got {r:?}");
    assert!(start.elapsed() < Duration::from_secs(10));
}

#[test]
fn spent_plans_do_not_refire_on_rerun() {
    // The restart-from-checkpoint contract: re-running the same options
    // after the fault fired must succeed, because one-shot faults stay
    // spent across engine runs.
    let spec = presets::meiko_cs2(2);
    let plan = FaultPlan::new(vec![FaultSpec {
        rank: 1,
        action: FaultAction::Drop { dst: 0 },
        trigger: FaultTrigger::AtSendSeq(1),
    }]);
    let opts = opts_with(plan.clone());
    let first = run_spmd(&spec, &opts, |c| allreduce_rounds(c, 2, AllreduceAlgo::Linear));
    assert!(first.is_err());
    assert_eq!(plan.fired_count(), 1);
    let second = run_spmd(&spec, &opts, |c| allreduce_rounds(c, 2, AllreduceAlgo::Linear));
    assert!(second.is_ok(), "spent fault refired: {second:?}");
}

#[test]
fn seeded_plans_run_to_a_typed_outcome() {
    // Whatever a seeded plan injects, the run must end in Ok (tolerated
    // fault) or a typed fault error — never a hang or untyped panic.
    for seed in 0..12u64 {
        let p = 2 + (seed as usize % 4);
        let spec = presets::meiko_cs2(p);
        let plan = FaultPlan::seeded(seed, p);
        let r = run_spmd(&spec, &opts_with(plan), |c| {
            allreduce_rounds(c, 6, AllreduceAlgo::RecursiveDoubling)
        });
        match r {
            Ok(_) => {}
            Err(
                SimError::RankCrashed { .. }
                | SimError::PeerFailed { .. }
                | SimError::Timeout { .. }
                | SimError::PayloadCorrupt { .. },
            ) => {}
            Err(other) => panic!("seed {seed}: untyped outcome {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    // Satellite: random byte flips never panic the harness and the error
    // always names the offending message seq.
    #[test]
    fn random_byte_flips_never_panic_and_name_the_seq(
        byte in 0usize..512,
        mask in 0u64..256,
        at_seq in 1u64..4,
    ) {
        let spec = presets::meiko_cs2(2);
        let plan = FaultPlan::new(vec![FaultSpec {
            rank: 1,
            action: FaultAction::Corrupt { dst: 0, byte, mask: mask as u8 },
            trigger: FaultTrigger::AtSendSeq(at_seq),
        }]);
        let r = run_spmd(&spec, &opts_with(plan), |c| {
            allreduce_rounds(c, 4, AllreduceAlgo::Linear)
        });
        match r {
            Err(SimError::PayloadCorrupt { from, seq, .. }) => {
                prop_assert_eq!(from, 1);
                prop_assert_eq!(seq, at_seq);
            }
            other => panic!("expected PayloadCorrupt at seq {at_seq}, got {other:?}"),
        }
    }
}
