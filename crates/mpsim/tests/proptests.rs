//! Property-based tests: collectives must agree with sequential reductions
//! for arbitrary inputs, communicator sizes, and algorithms.

use mpsim::{presets, run_spmd_default, AllreduceAlgo, ReduceOp};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = ReduceOp> {
    prop_oneof![Just(ReduceOp::Sum), Just(ReduceOp::Min), Just(ReduceOp::Max), Just(ReduceOp::Prod),]
}

fn algo_strategy() -> impl Strategy<Value = AllreduceAlgo> {
    prop_oneof![
        Just(AllreduceAlgo::Linear),
        Just(AllreduceAlgo::RecursiveDoubling),
        Just(AllreduceAlgo::Ring),
        Just(AllreduceAlgo::Rabenseifner),
        // On a flat topology every rank is its own node, so Hierarchical
        // degenerates to Rabenseifner among all ranks — still worth
        // sweeping for the degenerate-geometry edge cases.
        Just(AllreduceAlgo::Hierarchical),
        Just(AllreduceAlgo::Auto),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn allreduce_equals_sequential_fold(
        p in 1usize..9,
        n in 0usize..40,
        seed in 0u64..1_000_000,
        op in op_strategy(),
        algo in algo_strategy(),
    ) {
        // Deterministic pseudo-data per (rank, index) derived from the seed.
        let value = |rank: usize, i: usize| -> f64 {
            let h = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((rank * 40 + i) as u64);
            // Map to a modest range to keep Prod away from overflow.
            ((h >> 32) as f64 / u32::MAX as f64) * 2.0 - 1.0
        };

        let spec = presets::zero_cost(p);
        let out = run_spmd_default(&spec, |c| {
            let mut buf: Vec<f64> = (0..n).map(|i| value(c.rank(), i)).collect();
            c.allreduce_f64s_with(&mut buf, op, algo);
            buf
        }).unwrap();

        let mut expect: Vec<f64> = (0..n).map(|i| value(0, i)).collect();
        for r in 1..p {
            let other: Vec<f64> = (0..n).map(|i| value(r, i)).collect();
            op.fold(&mut expect, &other);
        }
        for rank in 0..p {
            for (a, b) in out.per_rank[rank].iter().zip(&expect) {
                prop_assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                    "rank {rank}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn gather_scatter_round_trip(
        p in 1usize..8,
        chunk in 1usize..12,
        seed in 0u64..1_000_000,
    ) {
        let value = |rank: usize, i: usize| -> f64 {
            (seed.wrapping_add((rank * chunk + i) as u64) % 1000) as f64
        };
        let spec = presets::zero_cost(p);
        let out = run_spmd_default(&spec, |c| {
            let mine: Vec<f64> = (0..chunk).map(|i| value(c.rank(), i)).collect();
            // Gather to root, then scatter back: everyone must recover
            // exactly their own block.
            let gathered = c.gather_f64s(0, &mine);
            let back = if c.rank() == 0 {
                let all = gathered.expect("root holds gathered data");
                let blocks: Vec<Vec<f64>> =
                    all.chunks(chunk).map(|b| b.to_vec()).collect();
                c.scatter_f64s(0, Some(&blocks))
            } else {
                c.scatter_f64s(0, None)
            };
            (mine, back)
        }).unwrap();
        for (mine, back) in out.per_rank {
            prop_assert_eq!(mine, back);
        }
    }

    #[test]
    fn clocks_are_monotone_and_consistent(
        p in 1usize..6,
        work in 0u64..100_000,
        msg in 0usize..256,
    ) {
        let spec = presets::meiko_cs2(p);
        let out = run_spmd_default(&spec, |c| {
            let t0 = c.now();
            c.work(work);
            let t1 = c.now();
            let mut buf = vec![c.rank() as f64; msg];
            c.allreduce_f64s(&mut buf, ReduceOp::Sum);
            let t2 = c.now();
            (t0, t1, t2)
        }).unwrap();
        for (rank, (t0, t1, t2)) in out.per_rank.iter().enumerate() {
            prop_assert!(t0 <= t1 && t1 <= t2, "rank {rank}: {t0} {t1} {t2}");
        }
        for r in &out.ranks {
            let sum = r.compute + r.comm + r.idle;
            prop_assert!((r.elapsed - sum).abs() < 1e-9);
        }
    }
}
