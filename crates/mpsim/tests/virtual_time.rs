//! Tests of the virtual-time model: determinism, monotonicity, and the
//! qualitative cost behaviour the figure harnesses rely on.

use mpsim::{presets, run_spmd_default, AllreduceAlgo, MachineSpec, ReduceOp};

fn elapsed_of(spec: &MachineSpec, body: impl Fn(&mut mpsim::Comm) + Sync) -> f64 {
    run_spmd_default(spec, |c| body(c)).unwrap().elapsed
}

#[test]
fn virtual_time_is_deterministic() {
    let spec = presets::meiko_cs2(6);
    let run = || {
        elapsed_of(&spec, |c| {
            c.work(10_000);
            let mut buf = vec![c.rank() as f64; 32];
            c.allreduce_f64s(&mut buf, ReduceOp::Sum);
            c.work(5_000);
            c.barrier();
        })
    };
    let a = run();
    let b = run();
    let c = run();
    assert!(a > 0.0);
    assert_eq!(a, b, "virtual time must not depend on host scheduling");
    assert_eq!(b, c);
}

#[test]
fn compute_time_scales_with_ops() {
    let spec = presets::meiko_cs2(1);
    let t1 = elapsed_of(&spec, |c| c.work(1_000));
    let t2 = elapsed_of(&spec, |c| c.work(2_000));
    assert!((t2 / t1 - 2.0).abs() < 1e-9, "t1={t1} t2={t2}");
}

#[test]
fn communication_costs_grow_with_message_size() {
    let spec = presets::meiko_cs2(2);
    let small = elapsed_of(&spec, |c| {
        let mut buf = vec![0.0; 8];
        c.allreduce_f64s(&mut buf, ReduceOp::Sum);
    });
    let large = elapsed_of(&spec, |c| {
        let mut buf = vec![0.0; 1 << 16];
        c.allreduce_f64s(&mut buf, ReduceOp::Sum);
    });
    assert!(large > small, "large={large} small={small}");
}

#[test]
fn linear_allreduce_latency_grows_with_p() {
    // Small message: latency-dominated; linear allreduce is O(P) latencies.
    let time_at = |p: usize| {
        let spec = presets::meiko_cs2(p);
        elapsed_of(&spec, |c| {
            let mut buf = vec![1.0; 8];
            c.allreduce_f64s_with(&mut buf, ReduceOp::Sum, AllreduceAlgo::Linear);
        })
    };
    let t2 = time_at(2);
    let t10 = time_at(10);
    assert!(t10 > 3.0 * t2, "t2={t2} t10={t10}");
}

#[test]
fn recursive_doubling_beats_linear_for_small_messages_at_scale() {
    let spec = presets::meiko_cs2(10);
    let lin = elapsed_of(&spec, |c| {
        let mut buf = vec![1.0; 8];
        c.allreduce_f64s_with(&mut buf, ReduceOp::Sum, AllreduceAlgo::Linear);
    });
    let rd = elapsed_of(&spec, |c| {
        let mut buf = vec![1.0; 8];
        c.allreduce_f64s_with(&mut buf, ReduceOp::Sum, AllreduceAlgo::RecursiveDoubling);
    });
    assert!(rd < lin, "rd={rd} lin={lin}");
}

#[test]
fn ring_beats_recursive_doubling_for_long_messages() {
    // Bandwidth-dominated regime: ring moves ~2m bytes per rank, recursive
    // doubling moves ~m log2(P).
    let spec = presets::meiko_cs2(8);
    let n = 1 << 20; // 8 MiB of f64s
    let rd = elapsed_of(&spec, |c| {
        let mut buf = vec![1.0; n];
        c.allreduce_f64s_with(&mut buf, ReduceOp::Sum, AllreduceAlgo::RecursiveDoubling);
    });
    let ring = elapsed_of(&spec, |c| {
        let mut buf = vec![1.0; n];
        c.allreduce_f64s_with(&mut buf, ReduceOp::Sum, AllreduceAlgo::Ring);
    });
    assert!(ring < rd, "ring={ring} rd={rd}");
}

#[test]
fn ideal_machine_charges_nothing_for_comm() {
    let spec = presets::ideal(8);
    let t = elapsed_of(&spec, |c| {
        let mut buf = vec![1.0; 1024];
        c.allreduce_f64s(&mut buf, ReduceOp::Sum);
        c.barrier();
    });
    assert_eq!(t, 0.0);
}

#[test]
fn stats_partition_elapsed_time() {
    let spec = presets::meiko_cs2(4);
    let out = run_spmd_default(&spec, |c| {
        c.work(50_000);
        let mut buf = vec![c.rank() as f64; 64];
        c.allreduce_f64s(&mut buf, ReduceOp::Sum);
    })
    .unwrap();
    for r in &out.ranks {
        let sum = r.compute + r.comm + r.idle;
        assert!((r.elapsed - sum).abs() < 1e-9, "rank {}: {} vs {}", r.rank, r.elapsed, sum);
        assert!(r.compute > 0.0);
    }
    assert_eq!(out.elapsed, out.ranks.iter().map(|r| r.elapsed).fold(0.0, f64::max));
    // All ranks did identical compute, so nobody should be mostly idle,
    // but the allreduce must have charged someone some comm time.
    assert!(out.stats.total_msgs > 0);
    assert!(out.stats.total_bytes > 0);
}

#[test]
fn measured_compute_advances_clock() {
    let mut spec = presets::meiko_cs2(1);
    spec.compute.wall_scale = 100.0; // make even a tiny closure visible
    let out = run_spmd_default(&spec, |c| {
        c.measured(|| {
            // A small but nonzero amount of real work.
            let mut x = 0u64;
            for i in 0..100_000u64 {
                x = x.wrapping_add(i * i);
            }
            std::hint::black_box(x);
        });
        c.now()
    })
    .unwrap();
    assert!(out.per_rank[0] > 0.0);
}

#[test]
fn skewed_compute_shows_up_as_idle_on_waiters() {
    let spec = presets::meiko_cs2(2);
    let out = run_spmd_default(&spec, |c| {
        if c.rank() == 0 {
            c.work(1_000_000); // rank 0 is the straggler
        }
        c.barrier();
    })
    .unwrap();
    assert!(out.ranks[1].idle > 0.0, "rank 1 should wait for the straggler");
    assert!(out.ranks[0].idle < out.ranks[1].idle);
    // Both ranks leave the barrier at (almost) the same virtual time.
    assert!((out.ranks[0].elapsed - out.ranks[1].elapsed).abs() < 1e-3);
}
