//! Correctness tests for the collectives: every algorithm must agree with
//! a straightforward sequential reduction for all communicator sizes.

use mpsim::{presets, run_spmd_default, AllreduceAlgo, ReduceOp};

const SIZES: &[usize] = &[1, 2, 3, 4, 5, 7, 8, 10, 13];

fn rank_vector(rank: usize, n: usize) -> Vec<f64> {
    (0..n).map(|i| (rank * 31 + i) as f64 * 0.5 - 3.0).collect()
}

fn sequential_reduce(p: usize, n: usize, op: ReduceOp) -> Vec<f64> {
    let mut acc = rank_vector(0, n);
    for r in 1..p {
        op.fold(&mut acc, &rank_vector(r, n));
    }
    acc
}

#[test]
fn allreduce_matches_sequential_for_all_algorithms() {
    for &p in SIZES {
        for &n in &[0usize, 1, 3, 8, 17, 64] {
            for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max, ReduceOp::Prod] {
                for algo in [
                    AllreduceAlgo::Linear,
                    AllreduceAlgo::OrderedLinear,
                    AllreduceAlgo::RecursiveDoubling,
                    AllreduceAlgo::Ring,
                    AllreduceAlgo::Rabenseifner,
                    AllreduceAlgo::Hierarchical,
                    AllreduceAlgo::Auto,
                ] {
                    let spec = presets::zero_cost(p);
                    let out = run_spmd_default(&spec, |c| {
                        let mut buf = rank_vector(c.rank(), n);
                        c.allreduce_f64s_with(&mut buf, op, algo);
                        buf
                    })
                    .unwrap();
                    let expect = sequential_reduce(p, n, op);
                    for (rank, got) in out.per_rank.iter().enumerate() {
                        for (a, b) in got.iter().zip(&expect) {
                            assert!(
                                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                                "p={p} n={n} op={op:?} algo={algo:?} rank={rank}: {a} vs {b}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn allreduce_results_identical_across_ranks() {
    // Whatever the floating-point association, all ranks must agree bitwise.
    for &p in SIZES {
        for algo in [
            AllreduceAlgo::Linear,
            AllreduceAlgo::RecursiveDoubling,
            AllreduceAlgo::Ring,
            AllreduceAlgo::Rabenseifner,
            AllreduceAlgo::Hierarchical,
            AllreduceAlgo::Auto,
        ] {
            let spec = presets::zero_cost(p);
            let out = run_spmd_default(&spec, |c| {
                let mut buf: Vec<f64> =
                    (0..23).map(|i| 1.0 / (1.0 + (c.rank() * 23 + i) as f64)).collect();
                c.allreduce_f64s_with(&mut buf, ReduceOp::Sum, algo);
                buf
            })
            .unwrap();
            for rank in 1..p {
                assert_eq!(
                    out.per_rank[0], out.per_rank[rank],
                    "p={p} algo={algo:?}: rank {rank} disagrees bitwise with rank 0"
                );
            }
        }
    }
}

#[test]
fn linear_allreduce_matches_sequential_bitwise() {
    // Linear folds in rank order, so it must equal the sequential left fold
    // *exactly*, independent of P.
    for &p in SIZES {
        let spec = presets::zero_cost(p);
        let out = run_spmd_default(&spec, |c| {
            let mut buf: Vec<f64> =
                (0..11).map(|i| ((c.rank() + 1) * (i + 1)) as f64 * 0.1).collect();
            c.allreduce_f64s_with(&mut buf, ReduceOp::Sum, AllreduceAlgo::Linear);
            buf
        })
        .unwrap();
        let mut expect: Vec<f64> = (0..11).map(|i| (i + 1) as f64 * 0.1).collect();
        for r in 1..p {
            let other: Vec<f64> = (0..11).map(|i| ((r + 1) * (i + 1)) as f64 * 0.1).collect();
            ReduceOp::Sum.fold(&mut expect, &other);
        }
        assert_eq!(out.per_rank[0], expect, "p={p}");
    }
}

#[test]
fn rabenseifner_matches_every_algorithm_bitwise_on_integer_data() {
    // Integer-valued f64 sums are exact, so all algorithms must produce
    // bitwise identical results regardless of reduction order — including
    // non-power-of-two P and lengths not divisible by (or shorter than) P.
    for &p in SIZES {
        for &n in &[0usize, 1, 7, 33] {
            let mut reference: Option<Vec<f64>> = None;
            for algo in [
                AllreduceAlgo::OrderedLinear,
                AllreduceAlgo::RecursiveDoubling,
                AllreduceAlgo::Ring,
                AllreduceAlgo::Rabenseifner,
                AllreduceAlgo::Hierarchical,
                AllreduceAlgo::Auto,
            ] {
                let spec = presets::zero_cost(p);
                let out = run_spmd_default(&spec, |c| {
                    let mut buf: Vec<f64> =
                        (0..n).map(|i| ((c.rank() + 1) * (i + 3)) as f64).collect();
                    c.allreduce_f64s_with(&mut buf, ReduceOp::Sum, algo);
                    buf
                })
                .unwrap();
                match &reference {
                    None => reference = Some(out.per_rank[0].clone()),
                    Some(r) => {
                        assert_eq!(&out.per_rank[0], r, "p={p} n={n} algo={algo:?}");
                    }
                }
                for rank in 1..p {
                    assert_eq!(out.per_rank[rank], out.per_rank[0], "p={p} n={n} algo={algo:?}");
                }
            }
        }
    }
}

#[test]
fn auto_allreduce_selects_by_size_and_charges_the_selected_cost() {
    // On a Meiko-like network a short vector must route through recursive
    // doubling and a long one through Rabenseifner (P=8 is a power of two);
    // the virtual times of an explicit run and an Auto run must agree
    // exactly since Auto is pure dispatch.
    let p = 8;
    for (n, expect) in
        [(2usize, AllreduceAlgo::RecursiveDoubling), (1 << 18, AllreduceAlgo::Rabenseifner)]
    {
        let spec = presets::meiko_cs2(p);
        let selected = mpsim::select_allreduce(p, n, &spec.network);
        assert_eq!(selected, expect, "n={n}");
        let run = |algo: AllreduceAlgo| {
            let spec = presets::meiko_cs2(p);
            run_spmd_default(&spec, move |c| {
                let mut buf = vec![c.rank() as f64; n];
                c.allreduce_f64s_with(&mut buf, ReduceOp::Sum, algo);
                c.now()
            })
            .unwrap()
            .per_rank
        };
        let auto = run(AllreduceAlgo::Auto);
        let explicit = run(expect);
        assert_eq!(auto, explicit, "n={n}: Auto must cost exactly its selection");
    }
}

#[test]
fn broadcast_delivers_root_data_from_any_root() {
    for &p in SIZES {
        for root in 0..p {
            let spec = presets::zero_cost(p);
            let out = run_spmd_default(&spec, |c| {
                let mut buf =
                    if c.rank() == root { vec![root as f64, 42.0, -1.0] } else { vec![0.0; 3] };
                c.broadcast_f64s(root, &mut buf);
                buf
            })
            .unwrap();
            for got in &out.per_rank {
                assert_eq!(*got, vec![root as f64, 42.0, -1.0], "p={p} root={root}");
            }
        }
    }
}

#[test]
fn reduce_collects_at_any_root() {
    for &p in SIZES {
        for root in [0, p - 1, p / 2] {
            let spec = presets::zero_cost(p);
            let out = run_spmd_default(&spec, |c| {
                let mut buf = rank_vector(c.rank(), 5);
                c.reduce_f64s(root, &mut buf, ReduceOp::Sum);
                buf
            })
            .unwrap();
            let expect = sequential_reduce(p, 5, ReduceOp::Sum);
            for (a, b) in out.per_rank[root].iter().zip(&expect) {
                assert!((a - b).abs() < 1e-9, "p={p} root={root}");
            }
        }
    }
}

#[test]
fn gather_concatenates_in_rank_order() {
    for &p in SIZES {
        let spec = presets::zero_cost(p);
        let out = run_spmd_default(&spec, |c| {
            // Variable-length contributions: rank r sends r+1 values.
            let mine: Vec<f64> = (0..=c.rank()).map(|i| (c.rank() * 100 + i) as f64).collect();
            c.gather_f64s(0, &mine)
        })
        .unwrap();
        let got = out.per_rank[0].as_ref().expect("root gets data");
        let mut expect = Vec::new();
        for r in 0..p {
            expect.extend((0..=r).map(|i| (r * 100 + i) as f64));
        }
        assert_eq!(*got, expect, "p={p}");
        for r in 1..p {
            assert!(out.per_rank[r].is_none());
        }
    }
}

#[test]
fn allgather_gives_every_rank_every_block() {
    for &p in SIZES {
        let spec = presets::zero_cost(p);
        let out = run_spmd_default(&spec, |c| {
            let mine: Vec<f64> = vec![c.rank() as f64; c.rank() % 3 + 1];
            c.allgather_f64s(&mine)
        })
        .unwrap();
        for (rank, blocks) in out.per_rank.iter().enumerate() {
            assert_eq!(blocks.len(), p, "p={p} rank={rank}");
            for (r, block) in blocks.iter().enumerate() {
                assert_eq!(*block, vec![r as f64; r % 3 + 1], "p={p} rank={rank} block={r}");
            }
        }
    }
}

#[test]
fn scatter_routes_blocks() {
    for &p in SIZES {
        let spec = presets::zero_cost(p);
        let out = run_spmd_default(&spec, |c| {
            if c.rank() == 0 {
                let blocks: Vec<Vec<f64>> =
                    (0..c.size()).map(|r| vec![r as f64 * 2.0, 1.0]).collect();
                c.scatter_f64s(0, Some(&blocks))
            } else {
                c.scatter_f64s(0, None)
            }
        })
        .unwrap();
        for (rank, got) in out.per_rank.iter().enumerate() {
            assert_eq!(*got, vec![rank as f64 * 2.0, 1.0], "p={p}");
        }
    }
}

#[test]
fn alltoall_transposes() {
    for &p in SIZES {
        let spec = presets::zero_cost(p);
        let out = run_spmd_default(&spec, |c| {
            let send: Vec<Vec<f64>> =
                (0..c.size()).map(|d| vec![(c.rank() * 10 + d) as f64]).collect();
            c.alltoall_f64s(&send)
        })
        .unwrap();
        for (rank, recv) in out.per_rank.iter().enumerate() {
            for (src, block) in recv.iter().enumerate() {
                assert_eq!(*block, vec![(src * 10 + rank) as f64], "p={p} rank={rank} src={src}");
            }
        }
    }
}

#[test]
fn scan_computes_rank_ordered_prefixes() {
    for &p in SIZES {
        let spec = presets::zero_cost(p);
        let out = run_spmd_default(&spec, |c| {
            let mut buf = vec![(c.rank() + 1) as f64];
            c.scan_f64s(&mut buf, ReduceOp::Sum);
            buf[0]
        })
        .unwrap();
        for (rank, got) in out.per_rank.iter().enumerate() {
            let expect: f64 = (1..=rank + 1).map(|v| v as f64).sum();
            assert_eq!(*got, expect, "p={p} rank={rank}");
        }
    }
}

#[test]
fn broadcast_u64_is_bit_exact() {
    let spec = presets::zero_cost(6);
    for value in [0u64, 1, u64::MAX, 0x7FF0_0000_0000_0001 /* would be a signaling NaN */] {
        let out = run_spmd_default(&spec, |c| {
            let v = if c.rank() == 2 { value } else { 0 };
            c.broadcast_u64(2, v)
        })
        .unwrap();
        assert!(out.per_rank.iter().all(|&v| v == value), "value={value:#x}");
    }
}

#[test]
fn allreduce_scalar_sums() {
    let spec = presets::zero_cost(7);
    let out =
        run_spmd_default(&spec, |c| c.allreduce_scalar(c.rank() as f64, ReduceOp::Sum)).unwrap();
    assert!(out.per_rank.iter().all(|&v| v == 21.0));
}

#[test]
fn back_to_back_collectives_do_not_cross_talk() {
    // Interleave several collectives; tag sequencing must keep them apart.
    let spec = presets::zero_cost(5);
    let out = run_spmd_default(&spec, |c| {
        let mut a = vec![c.rank() as f64];
        c.allreduce_f64s(&mut a, ReduceOp::Sum);
        c.barrier();
        let mut b = vec![1.0];
        c.allreduce_f64s(&mut b, ReduceOp::Sum);
        let s = c.allreduce_scalar(2.0, ReduceOp::Max);
        (a[0], b[0], s)
    })
    .unwrap();
    for (a, b, s) in out.per_rank {
        assert_eq!(a, 10.0);
        assert_eq!(b, 5.0);
        assert_eq!(s, 2.0);
    }
}

#[test]
fn point_to_point_tags_match_out_of_order() {
    // Rank 0 sends tag 1 then tag 2; rank 1 receives tag 2 first. The
    // stash must hold the tag-1 message until it is asked for.
    let spec = presets::zero_cost(2);
    let out = run_spmd_default(&spec, |c| {
        if c.rank() == 0 {
            c.send_f64s(1, 1, &[10.0]);
            c.send_f64s(1, 2, &[20.0]);
            (0.0, 0.0)
        } else {
            let b = c.recv_f64s(0, 2)[0];
            let a = c.recv_f64s(0, 1)[0];
            (a, b)
        }
    })
    .unwrap();
    assert_eq!(out.per_rank[1], (10.0, 20.0));
}

#[test]
fn self_send_is_allowed() {
    let spec = presets::zero_cost(3);
    let out = run_spmd_default(&spec, |c| {
        let me = c.rank();
        c.send_f64s(me, 7, &[me as f64]);
        c.recv_f64s(me, 7)[0]
    })
    .unwrap();
    assert_eq!(out.per_rank, vec![0.0, 1.0, 2.0]);
}

#[test]
fn hierarchical_allreduce_via_subcomms_matches_flat() {
    // Compose a two-level allreduce from sub-communicators (reduce within
    // node groups, allreduce across group leaders, broadcast back down) —
    // the classic hierarchy for clustered machines — and check it equals
    // the flat allreduce.
    let p = 8;
    let groups = 2; // two "nodes" of 4 ranks
    let spec = presets::zero_cost(p);
    let out = run_spmd_default(&spec, |c| {
        let mut flat: Vec<f64> = (0..5).map(|i| (c.rank() * 5 + i) as f64).collect();
        let mut hier = flat.clone();

        // Flat reference.
        c.allreduce_f64s(&mut flat, ReduceOp::Sum);

        // Hierarchical: intra-group allreduce...
        let color = (c.rank() % groups) as u32;
        {
            let mut node = c.split(color);
            node.allreduce_f64s(&mut hier, ReduceOp::Sum);
        }
        // ...then leaders (sub-rank 0 of each group) combine across
        // groups while everyone else parks in a throwaway color...
        let is_leader = c.rank() < groups; // world ranks 0..groups are the leaders
        {
            let mut leaders = c.split(if is_leader { 1000 } else { 1001 + color });
            if is_leader {
                leaders.allreduce_f64s(&mut hier, ReduceOp::Sum);
            }
        }
        // ...and each leader broadcasts the global result down its group.
        {
            let mut node = c.split(color);
            node.broadcast_f64s(0, &mut hier);
        }
        (flat, hier)
    })
    .unwrap();
    for (rank, (flat, hier)) in out.per_rank.iter().enumerate() {
        for (a, b) in flat.iter().zip(hier) {
            assert!((a - b).abs() < 1e-9, "rank {rank}: {a} vs {b}");
        }
    }
}

#[test]
fn hierarchical_allreduce_groups_by_node_on_a_hier_cluster() {
    // On the hierarchical machine the algorithm actually groups: node
    // leaders fold their node ascending, Rabenseifner runs among the
    // leaders only, and the result is broadcast back down. Integer data
    // keeps sums exact, so every rank (including a partial last node)
    // must match the sequential fold bitwise-replicated.
    for &p in &[1usize, 3, 4, 8, 13, 16] {
        let spec = presets::hier_cluster(p, 4);
        assert_eq!(spec.allreduce, AllreduceAlgo::Hierarchical);
        for &n in &[0usize, 1, 7, 33] {
            let out = run_spmd_default(&spec, |c| {
                let mut buf: Vec<f64> = (0..n).map(|i| ((c.rank() + 1) * (i + 3)) as f64).collect();
                c.allreduce_f64s(&mut buf, ReduceOp::Sum);
                buf
            })
            .unwrap();
            let mut expect: Vec<f64> = (0..n).map(|i| (i + 3) as f64).collect();
            for r in 1..p {
                let other: Vec<f64> = (0..n).map(|i| ((r + 1) * (i + 3)) as f64).collect();
                ReduceOp::Sum.fold(&mut expect, &other);
            }
            for rank in 0..p {
                assert_eq!(out.per_rank[rank], expect, "p={p} n={n} rank={rank}");
            }
        }
    }
}

#[test]
fn hierarchical_allreduce_is_cheaper_than_flat_on_a_hier_cluster() {
    // The point of the hierarchy: folding within a node rides the cheap
    // intra-node fabric and only the leaders pay inter-node latency, so in
    // the latency-bound regime (small buffers) the hierarchical schedule
    // beats running Rabenseifner flat across all ranks. (At large buffer
    // sizes flat Rabenseifner wins back on bandwidth-optimality — the
    // leader's linear intra-node gather serializes full-size buffers — so
    // the assertion is pinned to the small-message regime.)
    let p = 16;
    let n = 64;
    let elapsed_with = |algo: AllreduceAlgo| {
        let mut spec = presets::hier_cluster(p, 4);
        spec.allreduce = algo;
        run_spmd_default(&spec, |c| {
            let mut buf = vec![c.rank() as f64; n];
            c.allreduce_f64s(&mut buf, ReduceOp::Sum);
        })
        .unwrap()
        .elapsed
    };
    let hier = elapsed_with(AllreduceAlgo::Hierarchical);
    let flat = elapsed_with(AllreduceAlgo::Rabenseifner);
    assert!(
        hier < flat,
        "hierarchical {hier:.6}s should beat flat Rabenseifner {flat:.6}s on a hier_cluster"
    );
}
