//! Cooperative-engine tests: large-`P` runs that the thread-per-rank
//! engine cannot carry, the bounded-mailbox memory guarantee, and the
//! invariants (phase partition, message symmetry, cross-engine bitwise
//! agreement) that pin the two engines together.

use mpsim::{presets, run_spmd, ReduceOp, SimOptions};
use proptest::prelude::*;

/// A representative SPMD body: a phase-bucketed neighbor exchange plus an
/// allreduce, touching point-to-point, collectives, and phase accounting.
fn exchange_body(c: &mut mpsim::Comm) -> Vec<f64> {
    let me = c.rank();
    let p = c.size();
    c.enter_phase("estep");
    c.work(50 + (me as u64 % 7) * 10);
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    if p > 1 {
        c.send_f64s(right, 3, &[me as f64, (me * me) as f64]);
        let from_left = c.recv_f64s(left, 3);
        assert_eq!(from_left[0], left as f64);
    }
    c.exit_phase();
    c.enter_phase("allreduce");
    let mut sums = vec![1.0, me as f64];
    c.allreduce_f64s(&mut sums, ReduceOp::Sum);
    c.exit_phase();
    sums
}

#[test]
fn cooperative_runs_1024_ranks() {
    let spec = presets::zero_cost(1024);
    let opts = SimOptions { verify: mpsim::VerifyOptions::all(), ..SimOptions::cooperative() };
    let out = run_spmd(&spec, &opts, exchange_body).unwrap();
    let p = 1024.0_f64;
    let expect = vec![p, p * (p - 1.0) / 2.0];
    for r in &out.per_rank {
        assert_eq!(*r, expect);
    }
    out.stats.check_message_symmetry().unwrap();
}

#[test]
fn bounded_mailbox_holds_under_a_flood() {
    // A sender that fires 10_000 envelopes before the receiver drains any
    // would hold all of them in flight on an unbounded channel; the
    // cooperative mailbox bound forces the sender to park and caps the
    // peak at `max_inflight_per_pair`.
    const BOUND: usize = 8;
    const MSGS: usize = 10_000;
    let spec = presets::zero_cost(2);
    let opts = SimOptions { max_inflight_per_pair: BOUND, ..SimOptions::cooperative() };
    let out = run_spmd(&spec, &opts, |c| {
        if c.rank() == 0 {
            for i in 0..MSGS {
                c.send_f64s(1, 9, &[i as f64]);
            }
            0.0
        } else {
            let mut last = 0.0;
            for _ in 0..MSGS {
                last = c.recv_f64s(0, 9)[0];
            }
            last
        }
    })
    .unwrap();
    assert_eq!(out.per_rank[1], (MSGS - 1) as f64);
    assert!(
        out.mailbox_high_water <= BOUND,
        "high water {} exceeds bound {BOUND}",
        out.mailbox_high_water
    );
    assert!(out.mailbox_high_water > 0, "flood never used the mailbox");
}

#[test]
fn engines_agree_bitwise_on_results_and_clocks() {
    // Same body, same machine, both engines: per-rank values, elapsed
    // virtual time, and every per-rank stat must agree exactly. This is
    // the structural-parity claim the cooperative engine rests on.
    for p in [1usize, 2, 4, 8] {
        let spec = presets::meiko_cs2(p);
        let threaded = run_spmd(
            &spec,
            &SimOptions { verify: mpsim::VerifyOptions::all(), ..Default::default() },
            exchange_body,
        )
        .unwrap();
        let coop = run_spmd(
            &spec,
            &SimOptions { verify: mpsim::VerifyOptions::all(), ..SimOptions::cooperative() },
            exchange_body,
        )
        .unwrap();
        assert_eq!(threaded.per_rank, coop.per_rank, "P={p} results");
        assert_eq!(threaded.elapsed.to_bits(), coop.elapsed.to_bits(), "P={p} elapsed");
        for (t, c) in threaded.ranks.iter().zip(&coop.ranks) {
            assert_eq!(t.elapsed.to_bits(), c.elapsed.to_bits(), "P={p} rank {}", t.rank);
            assert_eq!(t.msgs_sent, c.msgs_sent, "P={p} rank {}", t.rank);
            assert_eq!(t.bytes_sent, c.bytes_sent, "P={p} rank {}", t.rank);
            assert_eq!(t.msgs_recvd, c.msgs_recvd, "P={p} rank {}", t.rank);
            assert_eq!(t.collectives, c.collectives, "P={p} rank {}", t.rank);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// At large `P` under the cooperative engine, every rank's phase
    /// buckets still partition its elapsed virtual time exactly.
    #[test]
    fn phases_partition_elapsed_at_large_p(
        pick in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let p = [64usize, 256, 1024][pick];
        let spec = presets::zero_cost(p);
        let out = run_spmd(&spec, &SimOptions::cooperative(), |c| {
            c.enter_phase("estep");
            c.work(10 + (c.rank() as u64).wrapping_mul(seed) % 97);
            c.exit_phase();
            let mut v = vec![seed as f64, c.rank() as f64];
            c.allreduce_f64s(&mut v, ReduceOp::Max);
            v
        }).unwrap();
        for stats in &out.ranks {
            let sum = stats.phases_total();
            prop_assert!(
                (sum - stats.elapsed).abs() <= 1e-9,
                "P={p} rank {}: phases sum {sum:.15} vs elapsed {:.15}",
                stats.rank,
                stats.elapsed
            );
        }
        let symmetry = out.stats.check_message_symmetry();
        prop_assert!(symmetry.is_ok(), "P={p}: {symmetry:?}");
    }

    /// The engines agree bitwise for arbitrary seeds and machine sizes.
    #[test]
    fn engines_agree_for_arbitrary_programs(
        p in 2usize..9,
        seed in 0u64..1_000_000,
    ) {
        let spec = presets::meiko_cs2(p);
        let body = |c: &mut mpsim::Comm| {
            let me = c.rank();
            c.work(seed % 1_000 + me as u64);
            let mut v = vec![
                (seed.wrapping_mul(me as u64 + 1) >> 32) as f64,
                me as f64 + seed as f64,
            ];
            c.allreduce_f64s(&mut v, ReduceOp::Sum);
            if me + 1 < c.size() {
                c.send_f64s(me + 1, 1, &v);
            }
            if me > 0 {
                let got = c.recv_f64s(me - 1, 1);
                assert_eq!(got, v, "replicated allreduce result");
            }
            v
        };
        let threaded = run_spmd(&spec, &SimOptions::default(), body).unwrap();
        let coop = run_spmd(&spec, &SimOptions::cooperative(), body).unwrap();
        prop_assert_eq!(&threaded.per_rank, &coop.per_rank);
        prop_assert_eq!(threaded.elapsed.to_bits(), coop.elapsed.to_bits());
    }
}
