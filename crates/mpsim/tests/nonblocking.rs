//! Non-blocking communication: values, timing, accounting, and misuse.
//!
//! The overlap model's contract, checked across every allreduce algorithm:
//!
//! 1. `iallreduce` installs bitwise the same result as the blocking call —
//!    the data movement runs eagerly; only *time* is deferred;
//! 2. wire time posted before a stretch of `work()` hides behind it: the
//!    post+work+wait schedule finishes no later than the blocking
//!    schedule, the hidden portion shows up in `hidden_comm`, and the
//!    compute/comm/idle buckets still partition elapsed time;
//! 3. misuse is diagnosed with the culprit rank: waiting a request twice
//!    fails with `RequestMisuse`, dropping one without waiting panics the
//!    rank, and mismatched posted lengths trip the collective fingerprint
//!    checker.

use mpsim::{presets, run_spmd, run_spmd_default, AllreduceAlgo, ReduceOp, SimError, SimOptions};

const ALGOS: [AllreduceAlgo; 6] = [
    AllreduceAlgo::Linear,
    AllreduceAlgo::OrderedLinear,
    AllreduceAlgo::RecursiveDoubling,
    AllreduceAlgo::Ring,
    AllreduceAlgo::Rabenseifner,
    AllreduceAlgo::Auto,
];

const SIZES: [usize; 4] = [1, 2, 5, 8];

fn payload(rank: usize, len: usize) -> Vec<f64> {
    (0..len).map(|i| ((rank * 31 + i * 7) % 13) as f64 - 4.0).collect()
}

#[test]
fn iallreduce_matches_blocking_bitwise_across_algorithms() {
    for algo in ALGOS {
        for p in SIZES {
            let mut spec = presets::meiko_cs2(p);
            spec.allreduce = algo;
            let label = format!("{algo:?} P={p}");
            let blocking = run_spmd(&spec, &SimOptions::verified(), |c| {
                let mut buf = payload(c.rank(), 37);
                c.allreduce_f64s(&mut buf, ReduceOp::Sum);
                buf
            })
            .unwrap_or_else(|e| panic!("{label}: {e}"));
            let nonblocking = run_spmd(&spec, &SimOptions::verified(), |c| {
                let mut buf = payload(c.rank(), 37);
                let mut req = c.iallreduce_f64s(&mut buf, ReduceOp::Sum);
                c.work(50_000); // overlap window
                c.wait(&mut req);
                buf
            })
            .unwrap_or_else(|e| panic!("{label}: {e}"));
            for (rank, (b, nb)) in blocking.per_rank.iter().zip(&nonblocking.per_rank).enumerate() {
                let b: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                let nb: Vec<u64> = nb.iter().map(|v| v.to_bits()).collect();
                assert_eq!(b, nb, "{label} rank {rank}: result bits differ");
            }
        }
    }
}

#[test]
fn posted_wire_time_hides_behind_compute() {
    // Enough compute to cover the whole wire time of a Linear allreduce on
    // the Meiko model: the non-blocking schedule must finish earlier than
    // the blocking one by exactly the hidden time, and the buckets must
    // still partition elapsed.
    let p = 4;
    let spec = presets::meiko_cs2(p);
    let work_ops: u64 = 2_000_000;
    let blocking = run_spmd_default(&spec, |c| {
        let mut buf = payload(c.rank(), 256);
        c.allreduce_f64s(&mut buf, ReduceOp::Sum);
        c.work(work_ops);
        buf[0]
    })
    .unwrap();
    let nonblocking = run_spmd_default(&spec, |c| {
        let mut buf = payload(c.rank(), 256);
        let mut req = c.iallreduce_f64s(&mut buf, ReduceOp::Sum);
        c.work(work_ops);
        c.wait(&mut req);
        buf[0]
    })
    .unwrap();
    assert!(
        nonblocking.elapsed < blocking.elapsed,
        "overlap did not shorten the run: nb {} vs blocking {}",
        nonblocking.elapsed,
        blocking.elapsed
    );
    for r in &nonblocking.ranks {
        assert!(r.hidden_comm > 0.0, "rank {}: nothing was hidden", r.rank);
        let sum = r.compute + r.comm + r.idle;
        assert!(
            (sum - r.elapsed).abs() <= 1e-9 * r.elapsed.max(1.0),
            "rank {}: buckets {} != elapsed {}",
            r.rank,
            sum,
            r.elapsed
        );
        let phases = r.phases_total();
        assert!(
            (phases - r.elapsed).abs() <= 1e-9 * r.elapsed.max(1.0),
            "rank {}: phases {} != elapsed {}",
            r.rank,
            phases,
            r.elapsed
        );
    }
    // Nothing hidden in the blocking run.
    assert!(blocking.ranks.iter().all(|r| r.hidden_comm == 0.0));
}

#[test]
fn wait_without_compute_costs_the_full_wire_time() {
    // Post-then-wait with no work in between degenerates to the blocking
    // schedule: same elapsed, nothing hidden beyond rounding.
    let spec = presets::meiko_cs2(3);
    let blocking = run_spmd_default(&spec, |c| {
        let mut buf = payload(c.rank(), 64);
        c.allreduce_f64s(&mut buf, ReduceOp::Sum);
        buf[0]
    })
    .unwrap();
    let nonblocking = run_spmd_default(&spec, |c| {
        let mut buf = payload(c.rank(), 64);
        let mut req = c.iallreduce_f64s(&mut buf, ReduceOp::Sum);
        c.wait(&mut req);
        buf[0]
    })
    .unwrap();
    assert!(
        (nonblocking.elapsed - blocking.elapsed).abs() <= 1e-12,
        "immediate wait should match blocking: nb {} vs {}",
        nonblocking.elapsed,
        blocking.elapsed
    );
}

#[test]
fn completions_stay_fifo_across_posts() {
    // Two back-to-back posts waited in order: after each wait the clock
    // must be monotone, and waiting the second first would still be legal
    // (it completes no earlier than the first's horizon).
    let spec = presets::meiko_cs2(4);
    run_spmd_default(&spec, |c| {
        let mut a = payload(c.rank(), 128);
        let mut b = payload(c.rank(), 8);
        let mut ra = c.iallreduce_f64s(&mut a, ReduceOp::Sum);
        let mut rb = c.iallreduce_f64s(&mut b, ReduceOp::Sum);
        c.work(10_000);
        // Wait out of post order: the small second collective may not
        // complete before the large first one.
        c.wait(&mut rb);
        let t_b = c.now();
        c.wait(&mut ra);
        let t_a = c.now();
        assert!(t_a >= t_b, "clock went backwards: {t_a} < {t_b}");
        (t_a, t_b)
    })
    .unwrap();
}

#[test]
fn isend_irecv_roundtrip_delivers_and_accounts() {
    let spec = presets::meiko_cs2(2);
    let opts = SimOptions { record_events: true, ..Default::default() };
    let out = run_spmd(&spec, &opts, |c| {
        if c.rank() == 0 {
            let mut req = c.isend_f64s(1, 7, &[1.5, -2.5, 3.25]);
            c.wait(&mut req);
            Vec::new()
        } else {
            let mut req = c.irecv_f64s(0, 7);
            c.work(100_000);
            let data = c.wait(&mut req).expect("recv request returns data");
            data
        }
    })
    .unwrap();
    assert_eq!(out.per_rank[1], vec![1.5, -2.5, 3.25]);
    out.stats.check_message_symmetry().unwrap();
    // The receiver overlapped the wire time behind its work.
    assert!(out.ranks[1].hidden_comm > 0.0, "receiver hid nothing");
    for r in &out.ranks {
        let sum = r.compute + r.comm + r.idle;
        assert!((sum - r.elapsed).abs() <= 1e-9 * r.elapsed.max(1.0));
    }
}

#[test]
fn wait_twice_is_diagnosed_with_rank() {
    let spec = presets::meiko_cs2(3);
    let err = run_spmd_default(&spec, |c| {
        let mut buf = payload(c.rank(), 16);
        let mut req = c.iallreduce_f64s(&mut buf, ReduceOp::Sum);
        c.wait(&mut req);
        if c.rank() == 1 {
            c.wait(&mut req); // misuse
        }
        c.barrier();
    })
    .unwrap_err();
    match err {
        SimError::RequestMisuse { rank, detail } => {
            assert_eq!(rank, 1, "culprit rank");
            assert!(detail.contains("waited twice"), "{detail}");
        }
        other => panic!("expected RequestMisuse, got {other}"),
    }
}

#[test]
fn drop_without_wait_panics_the_culprit_rank() {
    let spec = presets::meiko_cs2(3);
    let err = run_spmd_default(&spec, |c| {
        if c.rank() == 2 {
            let mut buf = payload(c.rank(), 16);
            let _dropped = c.iallreduce_f64s(&mut buf, ReduceOp::Sum);
            // falls out of scope unwaited
        } else {
            let mut buf = payload(c.rank(), 16);
            let mut req = c.iallreduce_f64s(&mut buf, ReduceOp::Sum);
            c.wait(&mut req);
        }
        c.barrier();
    })
    .unwrap_err();
    match err {
        SimError::RankPanicked { rank, message } => {
            assert_eq!(rank, 2, "culprit rank");
            assert!(message.contains("dropped without wait"), "{message}");
            assert!(message.contains("rank 2"), "{message}");
        }
        other => panic!("expected RankPanicked, got {other}"),
    }
}

#[test]
fn mismatched_posted_lengths_trip_the_fingerprint_checker() {
    let spec = presets::meiko_cs2(4);
    let err = run_spmd(&spec, &SimOptions::verified(), |c| {
        let len = if c.rank() == 3 { 9 } else { 8 };
        let mut buf = payload(c.rank(), len);
        let mut req = c.iallreduce_f64s(&mut buf, ReduceOp::Sum);
        c.wait(&mut req);
    })
    .unwrap_err();
    match err {
        SimError::CollectiveDivergence { detail, .. } => {
            assert!(detail.contains("elems") || detail.contains("9"), "{detail}");
        }
        other => panic!("expected CollectiveDivergence, got {other}"),
    }
}
