//! Tests of the optional message-event trace and heterogeneous rank
//! speeds.

use mpsim::{presets, run_spmd, run_spmd_default, EventKind, ReduceOp, SimOptions};

#[test]
fn trace_is_empty_when_disabled() {
    let spec = presets::zero_cost(3);
    let out = run_spmd_default(&spec, |c| {
        c.barrier();
    })
    .unwrap();
    assert!(out.events.iter().all(|e| e.is_empty()));
}

#[test]
fn trace_records_every_message() {
    let spec = presets::meiko_cs2(4);
    let opts = SimOptions { record_events: true, ..Default::default() };
    let out = run_spmd(&spec, &opts, |c| {
        let mut buf = vec![c.rank() as f64; 16];
        c.allreduce_f64s(&mut buf, ReduceOp::Sum);
        c.barrier();
    })
    .unwrap();
    for (rank, (events, stats)) in out.events.iter().zip(&out.ranks).enumerate() {
        let sends = events.iter().filter(|e| e.kind == EventKind::Send).count() as u64;
        let recvs = events.iter().filter(|e| e.kind == EventKind::Recv).count() as u64;
        assert_eq!(sends, stats.msgs_sent, "rank {rank} send count");
        assert_eq!(recvs, stats.msgs_recvd, "rank {rank} recv count");
        assert!(sends > 0, "rank {rank} sent nothing?");
        // Event times are monotone on each rank and within elapsed time.
        for w in events.windows(2) {
            assert!(w[0].t <= w[1].t, "rank {rank}: events out of order");
        }
        for e in events {
            assert!(e.t <= stats.elapsed + 1e-12);
            assert!(e.peer < 4);
        }
    }
    // Byte accounting matches the trace.
    for (events, stats) in out.events.iter().zip(&out.ranks) {
        let sent: u64 =
            events.iter().filter(|e| e.kind == EventKind::Send).map(|e| e.bytes as u64).sum();
        assert_eq!(sent, stats.bytes_sent);
    }
}

#[test]
fn slow_rank_takes_proportionally_longer_to_compute() {
    let spec = presets::meiko_cs2(2).with_rank_speeds(vec![0.5, 1.0]);
    let out = run_spmd_default(&spec, |c| {
        c.work(1_000_000);
        c.now()
    })
    .unwrap();
    let (t0, t1) = (out.per_rank[0], out.per_rank[1]);
    assert!((t0 / t1 - 2.0).abs() < 1e-9, "t0={t0} t1={t1}");
}

#[test]
fn invalid_speeds_fall_back_to_unit() {
    let mut spec = presets::zero_cost(2);
    spec.rank_speed = vec![f64::NAN, 0.0];
    assert_eq!(spec.speed(0), 1.0);
    assert_eq!(spec.speed(1), 1.0);
    assert_eq!(spec.speed(5), 1.0); // out of range: homogeneous default
}

#[test]
#[should_panic(expected = "one speed per rank")]
fn with_rank_speeds_validates_length() {
    let _ = presets::zero_cost(3).with_rank_speeds(vec![1.0]);
}

#[test]
fn collective_mismatch_is_detected() {
    // Scatter with the wrong number of blocks must surface as a
    // CollectiveMismatch, not a hang or silent corruption.
    let spec = presets::zero_cost(3);
    let opts =
        SimOptions { recv_timeout: std::time::Duration::from_millis(300), ..Default::default() };
    let r = run_spmd(&spec, &opts, |c| {
        if c.rank() == 0 {
            let blocks = vec![vec![1.0]; 2]; // wrong: needs 3
            c.scatter_f64s(0, Some(&blocks))
        } else {
            c.scatter_f64s(0, None)
        }
    });
    assert!(matches!(r, Err(mpsim::SimError::CollectiveMismatch { rank: 0, .. })), "got {r:?}");
}
