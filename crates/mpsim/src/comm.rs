//! The per-rank communicator: point-to-point messaging with virtual time.
//!
//! A [`Comm`] is handed to each rank's closure by the SPMD engine. It plays
//! the role of `MPI_COMM_WORLD`: it knows the rank, the communicator size,
//! and provides blocking `send`/`recv` (plus the collectives implemented in
//! [`crate::collectives`] on top of them).
//!
//! # Virtual time
//!
//! Real bytes move between real threads through channels, but *time* is
//! modeled: the sender charges endpoint overhead and stamps the message
//! with its departure time; the receiver advances to
//! `max(own clock, departure + transit)` (waiting counts as idle time) and
//! then charges its own endpoint overhead. Transit time comes from the
//! machine's [`crate::cost::NetworkModel`] and topology hop count. This is
//! a conservative parallel simulation: because every `recv` names its
//! source, virtual timestamps never need roll-back.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use crate::clock::Clock;
use crate::cost::MachineSpec;
use crate::error::SimError;
use crate::payload::{decode_f64s, decode_u64s, encode_f64s, encode_u64s};
use crate::trace::{Event, EventKind, RankStats};

/// Highest tag value available to user point-to-point messages. Collectives
/// use tags above this range so that user traffic can never be confused
/// with collective traffic.
pub const MAX_USER_TAG: u64 = (1 << 32) - 1;

/// Panic payload used internally to carry a structured error out of a rank.
pub(crate) struct AbortPanic(pub SimError);

/// A message on the simulated wire.
#[derive(Debug)]
pub(crate) struct Envelope {
    pub tag: u64,
    /// Sender's virtual time at which the message left the NIC.
    pub depart: f64,
    pub bytes: Vec<u8>,
}

/// Polling slice for blocking receives; bounds how stale the abort flag can
/// get while a rank is blocked.
const RECV_SLICE: Duration = Duration::from_millis(25);

/// Per-rank communicator for one SPMD run. Not `Clone`: exactly one per
/// rank, mirroring an MPI process.
pub struct Comm {
    rank: usize,
    size: usize,
    spec: Arc<MachineSpec>,
    clock: Clock,
    stats: RankStats,
    /// `inboxes[src]` receives messages sent by `src` to this rank.
    inboxes: Vec<Receiver<Envelope>>,
    /// Messages received out of tag order, per source, in arrival order.
    stash: Vec<VecDeque<Envelope>>,
    /// `outboxes[dst]` sends messages from this rank to `dst`.
    outboxes: Vec<Sender<Envelope>>,
    abort: Arc<AtomicBool>,
    recv_timeout: Duration,
    /// Monotone counter giving every collective call a unique tag; all
    /// ranks must invoke collectives in the same order (SPMD discipline),
    /// exactly as MPI requires.
    pub(crate) coll_seq: u64,
    /// Message event trace; `None` when tracing is disabled.
    events: Option<Vec<Event>>,
}

impl Comm {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        spec: Arc<MachineSpec>,
        inboxes: Vec<Receiver<Envelope>>,
        outboxes: Vec<Sender<Envelope>>,
        abort: Arc<AtomicBool>,
        recv_timeout: Duration,
        record_events: bool,
    ) -> Self {
        let size = spec.p;
        Comm {
            rank,
            size,
            spec,
            clock: Clock::new(),
            stats: RankStats { rank, ..Default::default() },
            inboxes,
            stash: (0..size).map(|_| VecDeque::new()).collect(),
            outboxes,
            abort,
            recv_timeout,
            coll_seq: 0,
            events: record_events.then(Vec::new),
        }
    }

    /// This rank's id in `0..size()`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The machine being simulated.
    pub fn machine(&self) -> &MachineSpec {
        &self.spec
    }

    /// Current virtual time on this rank, in seconds.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Charge `ops` abstract operations of local compute to the virtual
    /// clock (see [`crate::cost::ComputeModel::sec_per_op`]), scaled by
    /// this rank's relative speed on heterogeneous machines.
    pub fn work(&mut self, ops: u64) {
        let dt = ops as f64 * self.spec.compute.sec_per_op / self.spec.speed(self.rank);
        self.clock.advance_compute(dt);
    }

    /// Charge an exact number of virtual seconds of local compute.
    pub fn work_secs(&mut self, secs: f64) {
        self.clock.advance_compute(secs);
    }

    /// Run `f`, measure its wall-clock duration, and charge it (scaled by
    /// [`crate::cost::ComputeModel::wall_scale`]) as virtual compute time.
    pub fn measured<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        let dt = start.elapsed().as_secs_f64() * self.spec.compute.wall_scale;
        self.clock.advance_compute(dt);
        out
    }

    fn check_abort(&self) {
        if self.abort.load(Ordering::Relaxed) {
            std::panic::panic_any(AbortPanic(SimError::Aborted { rank: self.rank }));
        }
    }

    fn fail(&self, err: SimError) -> ! {
        self.abort.store(true, Ordering::Relaxed);
        std::panic::panic_any(AbortPanic(err));
    }

    /// Send `bytes` to `dst` with `tag`. Buffered and non-blocking, like an
    /// `MPI_Send` that always finds buffer space.
    ///
    /// # Panics
    /// Panics if `dst` is out of range or `tag` exceeds [`MAX_USER_TAG`]
    /// (internal collective calls may use larger tags).
    pub fn send_bytes(&mut self, dst: usize, tag: u64, bytes: Vec<u8>) {
        assert!(dst < self.size, "send to rank {dst} but size is {}", self.size);
        self.check_abort();
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes.len() as u64;
        self.clock.advance_comm(self.spec.network.overhead);
        if let Some(events) = &mut self.events {
            events.push(Event {
                t: self.clock.now(),
                kind: EventKind::Send,
                peer: dst,
                bytes: bytes.len(),
                tag,
            });
        }
        let env = Envelope { tag, depart: self.clock.now(), bytes };
        // The receiver can only be gone if the run is being torn down after
        // a failure elsewhere; surface that as an abort.
        if self.outboxes[dst].send(env).is_err() {
            self.fail(SimError::Aborted { rank: self.rank });
        }
    }

    /// Blocking receive of a message from `src` with exactly `tag`.
    /// Messages from `src` with other tags are stashed and delivered to
    /// later matching receives in arrival order.
    pub fn recv_bytes(&mut self, src: usize, tag: u64) -> Vec<u8> {
        assert!(src < self.size, "recv from rank {src} but size is {}", self.size);
        // First consume any stashed message with a matching tag.
        if let Some(pos) = self.stash[src].iter().position(|e| e.tag == tag) {
            let env = self.stash[src].remove(pos).expect("position is valid");
            return self.accept(src, env);
        }
        let deadline = Instant::now() + self.recv_timeout;
        loop {
            self.check_abort();
            match self.inboxes[src].recv_timeout(RECV_SLICE) {
                Ok(env) if env.tag == tag => return self.accept(src, env),
                Ok(env) => self.stash[src].push_back(env),
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= deadline {
                        self.fail(SimError::RecvTimeout { rank: self.rank, from: src, tag });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.fail(SimError::Aborted { rank: self.rank });
                }
            }
        }
    }

    /// Book a received envelope: advance the virtual clock to its arrival
    /// and charge endpoint overhead.
    fn accept(&mut self, src: usize, env: Envelope) -> Vec<u8> {
        let transit = self.spec.transit(env.bytes.len(), src, self.rank);
        self.clock.wait_until(env.depart + transit);
        self.clock.advance_comm(self.spec.network.overhead);
        self.stats.msgs_recvd += 1;
        self.stats.bytes_recvd += env.bytes.len() as u64;
        if let Some(events) = &mut self.events {
            events.push(Event {
                t: self.clock.now(),
                kind: EventKind::Recv,
                peer: src,
                bytes: env.bytes.len(),
                tag: env.tag,
            });
        }
        env.bytes
    }

    /// Typed send of an `f64` slice.
    pub fn send_f64s(&mut self, dst: usize, tag: u64, values: &[f64]) {
        self.send_bytes(dst, tag, encode_f64s(values));
    }

    /// Typed receive of an `f64` vector.
    pub fn recv_f64s(&mut self, src: usize, tag: u64) -> Vec<f64> {
        decode_f64s(&self.recv_bytes(src, tag))
    }

    /// Typed send of a `u64` slice.
    pub fn send_u64s(&mut self, dst: usize, tag: u64, values: &[u64]) {
        self.send_bytes(dst, tag, encode_u64s(values));
    }

    /// Typed receive of a `u64` vector.
    pub fn recv_u64s(&mut self, src: usize, tag: u64) -> Vec<u64> {
        decode_u64s(&self.recv_bytes(src, tag))
    }

    /// Snapshot of this rank's statistics with the clock folded in.
    pub fn stats(&self) -> RankStats {
        let mut s = self.stats.clone();
        s.elapsed = self.clock.now();
        s.compute = self.clock.compute();
        s.comm = self.clock.comm();
        s.idle = self.clock.idle();
        s
    }

    /// Take the recorded event trace (empty when tracing was disabled).
    pub(crate) fn take_events(&mut self) -> Vec<Event> {
        self.events.take().unwrap_or_default()
    }

    /// Raise a collective-argument-mismatch error (used by collectives when
    /// they can detect inconsistency cheaply).
    pub(crate) fn mismatch(&self, detail: String) -> ! {
        self.fail(SimError::CollectiveMismatch { rank: self.rank, detail })
    }
}
