//! The per-rank communicator: point-to-point messaging with virtual time.
//!
//! A [`Comm`] is handed to each rank's closure by the SPMD engine. It plays
//! the role of `MPI_COMM_WORLD`: it knows the rank, the communicator size,
//! and provides blocking `send`/`recv` (plus the collectives implemented in
//! [`crate::collectives`] on top of them).
//!
//! # Virtual time
//!
//! Real bytes move between real threads through channels, but *time* is
//! modeled: the sender charges endpoint overhead and stamps the message
//! with its departure time; the receiver advances to
//! `max(own clock, departure + transit)` (waiting counts as idle time) and
//! then charges its own endpoint overhead. Transit time comes from the
//! machine's [`crate::cost::NetworkModel`] and topology hop count. This is
//! a conservative parallel simulation: because every `recv` names its
//! source, virtual timestamps never need roll-back.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::clock::Clock;
use crate::coop::{CoopShared, Deposit};
use crate::cost::MachineSpec;
use crate::error::SimError;
use crate::fault::FaultState;
use crate::payload::{checksum, decode_f64s, decode_u64s, encode_f64s, encode_u64s, DecodeError};
use crate::trace::{Event, EventKind, PhaseStats, RankStats};
use crate::verify::{hash_f64s, CollFingerprint, VerifyState, USER_REPL_COMM, WORLD_COMM};

/// Highest tag value available to user point-to-point messages. Collectives
/// use tags above this range so that user traffic can never be confused
/// with collective traffic.
pub const MAX_USER_TAG: u64 = (1 << 32) - 1;

/// Panic payload used internally to carry a structured error out of a rank.
pub(crate) struct AbortPanic(pub SimError);

/// A message on the simulated wire.
#[derive(Debug)]
pub(crate) struct Envelope {
    pub tag: u64,
    /// Sender's virtual time at which the message left the NIC.
    pub depart: f64,
    /// Sender's per-rank message sequence number (1-based), so integrity
    /// and failure errors can name the exact message.
    pub seq: u64,
    /// FNV-1a checksum of `bytes` as sent; stamped only when a fault plan
    /// is active, verified on arrival.
    pub checksum: Option<u64>,
    pub bytes: Vec<u8>,
}

/// Polling slice for blocking receives; bounds how stale the abort flag can
/// get while a rank is blocked.
const RECV_SLICE: Duration = Duration::from_millis(25);

/// How a [`Comm`]'s envelopes physically move between ranks. Everything
/// else — virtual clocks, statistics, verification, fault injection — is
/// shared between the variants, which is what makes the two engines
/// bitwise identical.
pub(crate) enum Transport {
    /// Thread-per-rank engine: a full mesh of unbounded `mpsc` channels,
    /// blocked receives polling in wall-clock slices.
    Mesh {
        /// `inboxes[src]` receives messages sent by `src` to this rank.
        inboxes: Vec<Receiver<Envelope>>,
        /// `outboxes[dst]` sends messages from this rank to `dst`.
        outboxes: Vec<Sender<Envelope>>,
    },
    /// Cooperative engine: lazily created per-pair mailboxes inside the
    /// shared scheduler state; blocked ranks park on a condvar.
    Coop(Arc<CoopShared>),
}

/// What a [`Request`] is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqKind {
    /// A buffered send: complete at post (like `MPI_Isend` with unlimited
    /// buffering); `wait` never blocks.
    Send,
    /// A posted receive: the envelope is pulled off the wire at `wait`.
    Recv { src: usize, tag: u64 },
    /// A non-blocking collective whose data movement already ran eagerly;
    /// only its remaining wire time is pending.
    Coll,
}

/// Handle for a non-blocking operation posted on a [`Comm`].
///
/// The operation progresses in *virtual* time while the rank keeps
/// computing: endpoint overhead (LogGP `o`) was charged on the CPU clock at
/// post, and the wire time (`L`/`g`/`G`) elapses concurrently with
/// subsequent [`Comm::work`]. [`Comm::wait`] blocks only for whatever wire
/// time has not yet been hidden, and credits the hidden portion to the
/// clock's overlap shadow accounting.
///
/// Every request must be retired by exactly one [`Comm::wait`] (or
/// [`Comm::waitall`]): waiting twice fails the run with
/// [`SimError::RequestMisuse`], and dropping an unwaited request panics the
/// owning rank — both name the culprit rank.
#[derive(Debug)]
#[must_use = "non-blocking requests must be retired with Comm::wait / Comm::waitall"]
pub struct Request {
    rank: usize,
    kind: ReqKind,
    /// Virtual time at post (after idle retraction): start of the window
    /// during which the operation's wire time can hide behind other work.
    window_start: f64,
    /// Virtual time at which the operation's wire activity finishes.
    /// Unknown at post for receives (the envelope carries it); `wait`
    /// computes it on arrival.
    completion: f64,
    done: bool,
}

impl Request {
    /// Whether this request has been retired by a `wait`.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The rank that posted this request.
    pub fn rank(&self) -> usize {
        self.rank
    }
}

impl Drop for Request {
    fn drop(&mut self) {
        // Dropping an unretired request loses its completion accounting
        // (and, for receives, strands an envelope): fail loudly, naming
        // the culprit rank. Suppressed while already panicking so request
        // cleanup during an abort cannot mask the original error.
        if !self.done && !std::thread::panicking() {
            panic!("rank {}: non-blocking request dropped without wait", self.rank);
        }
    }
}

/// Name of the implicit phase bucket that holds everything outside an
/// explicit [`Comm::enter_phase`] span.
pub const DEFAULT_PHASE: &str = "other";

/// Per-phase message counters mirroring the time buckets in
/// [`crate::clock::Clock`]; merged with them into
/// [`crate::trace::PhaseStats`] when stats are snapshotted.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseCounters {
    msgs_sent: u64,
    bytes_sent: u64,
    msgs_recvd: u64,
    bytes_recvd: u64,
    collectives: u64,
}

/// Per-rank communicator for one SPMD run. Not `Clone`: exactly one per
/// rank, mirroring an MPI process.
pub struct Comm {
    rank: usize,
    size: usize,
    spec: Arc<MachineSpec>,
    clock: Clock,
    stats: RankStats,
    /// The message-movement backend (see [`Transport`]).
    transport: Transport,
    /// Messages received out of tag order, keyed by source, in arrival
    /// order. Lazily created so an idle pair costs nothing at large `P`.
    stash: BTreeMap<usize, VecDeque<Envelope>>,
    abort: Arc<AtomicBool>,
    recv_timeout: Duration,
    /// Monotone counter giving every collective call a unique tag; all
    /// ranks must invoke collectives in the same order (SPMD discipline),
    /// exactly as MPI requires.
    pub(crate) coll_seq: u64,
    /// Monotone counter for user-level [`Comm::verify_replicated`] calls.
    repl_seq: u64,
    /// Phase names, parallel to the clock's time buckets; `[0]` is the
    /// implicit [`DEFAULT_PHASE`] bucket.
    phase_names: Vec<String>,
    /// Per-phase message counters, parallel to `phase_names`.
    phase_counters: Vec<PhaseCounters>,
    /// Stack of open `enter_phase` spans (bucket indices).
    phase_stack: Vec<usize>,
    /// Message event trace; `None` when tracing is disabled.
    events: Option<Vec<Event>>,
    /// Shared verification state; `None` when every check is disabled.
    pub(crate) verify: Option<Arc<VerifyState>>,
    /// Shared fault-injection state; `None` when no fault plan is active.
    fault: Option<Arc<FaultState>>,
    /// Shared in-flight replay log (see [`crate::replay`]); `None` when
    /// no localized-recovery supervisor installed one.
    replay: Option<crate::replay::ReplayLog>,
    /// `pulled_from[src]`: envelopes this rank has taken off the channel
    /// from `src` (stashed or matched); compared against the fault layer's
    /// delivered-send count to prove a wait is for a dropped message.
    pulled_from: Vec<u64>,
    /// Completion horizon of non-blocking collectives already posted:
    /// later posts may not complete before earlier ones (the wire is
    /// FIFO per endpoint), so each new completion is clamped to at least
    /// this value.
    nb_horizon: f64,
}

impl Comm {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        spec: Arc<MachineSpec>,
        transport: Transport,
        abort: Arc<AtomicBool>,
        recv_timeout: Duration,
        record_events: bool,
        verify: Option<Arc<VerifyState>>,
        fault: Option<Arc<FaultState>>,
        replay: Option<crate::replay::ReplayLog>,
    ) -> Self {
        let size = spec.p;
        Comm {
            rank,
            size,
            spec,
            clock: Clock::new(),
            stats: RankStats { rank, ..Default::default() },
            transport,
            stash: BTreeMap::new(),
            abort,
            recv_timeout,
            coll_seq: 0,
            repl_seq: 0,
            phase_names: vec![DEFAULT_PHASE.to_string()],
            phase_counters: vec![PhaseCounters::default()],
            phase_stack: Vec::new(),
            events: record_events.then(Vec::new),
            verify,
            fault,
            replay,
            pulled_from: vec![0; size],
            nb_horizon: 0.0,
        }
    }

    /// This rank's id in `0..size()`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The machine being simulated.
    pub fn machine(&self) -> &MachineSpec {
        &self.spec
    }

    /// Current virtual time on this rank, in seconds.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Charge `ops` abstract operations of local compute to the virtual
    /// clock (see [`crate::cost::ComputeModel::sec_per_op`]), scaled by
    /// this rank's relative speed on heterogeneous machines.
    pub fn work(&mut self, ops: u64) {
        self.fault_checkpoint();
        let dt = ops as f64 * self.spec.compute.sec_per_op / self.spec.speed(self.rank);
        self.clock.advance_compute(dt);
    }

    /// Charge an exact number of virtual seconds of local compute.
    pub fn work_secs(&mut self, secs: f64) {
        self.clock.advance_compute(secs);
    }

    /// Run `f`, measure its wall-clock duration, and charge it (scaled by
    /// [`crate::cost::ComputeModel::wall_scale`]) as virtual compute time.
    pub fn measured<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        let dt = start.elapsed().as_secs_f64() * self.spec.compute.wall_scale;
        self.clock.advance_compute(dt);
        out
    }

    /// Open a named phase span: until the matching [`Comm::exit_phase`],
    /// every clock advance (compute, comm endpoint work, idle waits) and
    /// every message/collective on this rank is attributed to the bucket
    /// named `name`.
    ///
    /// Spans nest (an `"allreduce"` span inside an `"estep"` span takes
    /// over attribution until it closes), and re-entering a name later
    /// accumulates into the same bucket, so a phase entered once per EM
    /// cycle reports its total across the run. Phase buckets always
    /// partition the rank's elapsed time: whatever runs outside any span
    /// lands in the implicit [`DEFAULT_PHASE`] bucket.
    pub fn enter_phase(&mut self, name: &str) {
        let idx = match self.phase_names.iter().position(|n| n == name) {
            Some(idx) => idx,
            None => {
                let idx = self.clock.push_phase();
                self.phase_names.push(name.to_string());
                self.phase_counters.push(PhaseCounters::default());
                debug_assert_eq!(self.phase_names.len(), idx + 1);
                idx
            }
        };
        self.phase_stack.push(idx);
        self.clock.set_phase(idx);
    }

    /// Close the innermost open phase span, returning attribution to the
    /// enclosing span (or the default bucket when none is open). Calling
    /// with no span open is a no-op, so a helper that always pairs
    /// enter/exit stays safe even if its caller already unwound the stack.
    pub fn exit_phase(&mut self) {
        self.phase_stack.pop();
        self.clock.set_phase(self.phase_stack.last().copied().unwrap_or(0));
    }

    /// Name of the phase currently receiving attribution.
    pub fn current_phase(&self) -> &str {
        &self.phase_names[self.clock.current_phase()]
    }

    fn check_abort(&self) {
        if self.abort.load(Ordering::Relaxed) {
            std::panic::panic_any(AbortPanic(SimError::Aborted { rank: self.rank }));
        }
    }

    pub(crate) fn fail(&self, err: SimError) -> ! {
        self.abort.store(true, Ordering::Relaxed);
        std::panic::panic_any(AbortPanic(err));
    }

    /// Fault-injection checkpoint: die here when the plan says this rank
    /// crashes now. Deliberately does *not* set the shared abort flag —
    /// the peers must detect the failure through the fault records (that
    /// detection path is the machinery under test), not be torn down by
    /// the engine.
    fn fault_checkpoint(&mut self) {
        let Some(fs) = &self.fault else { return };
        if let Some(rec) =
            fs.crash_due(self.rank, self.stats.msgs_sent, self.clock.now(), self.current_phase())
        {
            std::panic::panic_any(AbortPanic(SimError::RankCrashed {
                rank: self.rank,
                seq: rec.seq,
                phase: rec.phase,
            }));
        }
    }

    /// Virtual-time timeout and checksum verification for an arriving
    /// envelope; `arrival` is the virtual time the receiver would have to
    /// wait until. No-op without an active fault plan.
    fn integrity_check(&mut self, src: usize, env: &Envelope, arrival: f64) {
        let Some(fs) = self.fault.clone() else { return };
        if let Some(limit) = fs.virtual_timeout() {
            let waited = arrival - self.clock.now();
            if waited > limit {
                let phase = self.current_phase().to_string();
                self.fail(SimError::Timeout {
                    rank: self.rank,
                    from: src,
                    seq: env.seq,
                    waited,
                    limit,
                    phase,
                });
            }
        }
        if let Some(expected) = env.checksum {
            let found = checksum(&env.bytes);
            if found != expected {
                self.fail(SimError::PayloadCorrupt {
                    rank: self.rank,
                    from: src,
                    seq: env.seq,
                    cause: DecodeError::ChecksumMismatch { expected, found },
                });
            }
        }
    }

    /// Send `bytes` to `dst` with `tag`. Buffered and non-blocking, like an
    /// `MPI_Send` that always finds buffer space.
    ///
    /// # Panics
    /// Panics if `dst` is out of range or `tag` exceeds [`MAX_USER_TAG`]
    /// (internal collective calls may use larger tags).
    pub fn send_bytes(&mut self, dst: usize, tag: u64, bytes: Vec<u8>) {
        assert!(dst < self.size, "send to rank {dst} but size is {}", self.size);
        self.check_abort();
        self.fault_checkpoint();
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes.len() as u64;
        let cur = self.clock.current_phase();
        self.phase_counters[cur].msgs_sent += 1;
        self.phase_counters[cur].bytes_sent += bytes.len() as u64;
        self.clock.advance_comm(self.spec.network.overhead);
        if let Some(events) = &mut self.events {
            events.push(Event {
                t: self.clock.now(),
                kind: EventKind::Send,
                peer: dst,
                bytes: bytes.len(),
                tag,
            });
        }
        let seq = self.stats.msgs_sent;
        let mut bytes = bytes;
        let mut depart = self.clock.now();
        let mut sum = None;
        if let Some(fs) = self.fault.clone() {
            let phase = self.current_phase().to_string();
            let d = fs.on_send(self.rank, dst, seq, depart, &phase);
            let clean = checksum(&bytes);
            sum = Some(clean);
            depart += d.extra_delay;
            if let Some(factor) = d.degrade_factor {
                // Inflate departure by the extra per-byte wire time of the
                // degraded link; latency and endpoint overhead are as built.
                let per_byte = self.spec.transit(bytes.len(), self.rank, dst)
                    - self.spec.transit(0, self.rank, dst);
                depart += (factor - 1.0) * per_byte;
            }
            if let Some((byte, mask)) = d.corrupt {
                if bytes.is_empty() {
                    // Nothing to flip: corrupt the checksum instead so the
                    // fault is still observable on arrival.
                    sum = Some(clean ^ u64::from(mask));
                } else {
                    let i = byte % bytes.len();
                    bytes[i] ^= mask;
                }
            }
            if d.dropped {
                // The sender has charged all its costs and believes the
                // message left; the wire loses it. Never recorded with the
                // verifier, so the deadlock detector does not count it as
                // in flight.
                return;
            }
        }
        let env = Envelope { tag, depart, seq, checksum: sum, bytes };
        // Count the send before the envelope becomes visible, so the
        // deadlock detector can never see a quiescent edge with a message
        // actually in flight.
        if let Some(v) = &self.verify {
            v.record_send(self.rank, dst);
        }
        // A gone receiver means the run is aborting after a failure
        // elsewhere, or `dst` already finished its body and will never
        // receive again. The latter is legal for a buffered send (the
        // bytes are simply never read), but the verifier must not keep
        // counting it as in flight or the deadlock detector would treat
        // the edge to the finished rank as forever busy.
        match &self.transport {
            Transport::Mesh { outboxes, .. } => {
                if outboxes[dst].send(env).is_err() {
                    if let Some(v) = &self.verify {
                        v.unrecord_send(self.rank, dst);
                    }
                    self.check_abort();
                }
            }
            Transport::Coop(coop) => {
                let coop = Arc::clone(coop);
                match coop.deposit(self.rank, dst, env, self.clock.now()) {
                    Ok(Deposit::Delivered) => {}
                    Ok(Deposit::Closed) => {
                        if let Some(v) = &self.verify {
                            v.unrecord_send(self.rank, dst);
                        }
                        self.check_abort();
                    }
                    // Woken with a typed error (stall rescue or abort
                    // cascade) while parked on a full mailbox: the
                    // envelope never got in flight.
                    Err(err) => {
                        if let Some(v) = &self.verify {
                            v.unrecord_send(self.rank, dst);
                        }
                        self.fail(err);
                    }
                }
            }
        }
    }

    /// Blocking receive of a message from `src` with exactly `tag`.
    /// Messages from `src` with other tags are stashed and delivered to
    /// later matching receives in arrival order.
    pub fn recv_bytes(&mut self, src: usize, tag: u64) -> Vec<u8> {
        let env = self.pull_envelope(src, tag);
        self.accept(src, env)
    }

    /// Take the next envelope from `src` with exactly `tag` off the wire
    /// (or the stash), blocking in *wall-clock* time only. No virtual-time
    /// or statistics bookkeeping happens here; callers pair this with
    /// [`Comm::accept`] (blocking receive) or the non-blocking completion
    /// path in [`Comm::wait`].
    fn pull_envelope(&mut self, src: usize, tag: u64) -> Envelope {
        assert!(src < self.size, "recv from rank {src} but size is {}", self.size);
        self.fault_checkpoint();
        // First consume any stashed message with a matching tag.
        if let Some(q) = self.stash.get_mut(&src) {
            if let Some(pos) = q.iter().position(|e| e.tag == tag) {
                // lint:allow(unwrap): the index came from position() on the same deque
                return q.remove(pos).expect("position is valid");
            }
        }
        let detect = self.verify.as_ref().filter(|v| v.opts().detect_deadlock).cloned();
        if let Some(v) = &detect {
            v.register_wait(self.rank, src, tag);
        }
        if let Transport::Coop(coop) = &self.transport {
            // The cooperative scheduler needs no wall-clock deadline: a
            // wait that can never be satisfied is detected structurally
            // the moment the run has no runnable rank, and surfaces here
            // as a typed error.
            let coop = Arc::clone(coop);
            loop {
                self.check_abort();
                match coop.pull_or_block(
                    self.rank,
                    src,
                    tag,
                    self.pulled_from[src],
                    self.clock.now(),
                ) {
                    Ok(env) => {
                        self.pulled_from[src] += 1;
                        let matched = env.tag == tag;
                        if let Some(v) = &detect {
                            v.record_pull(self.rank, src, matched);
                        }
                        if matched {
                            return env;
                        }
                        self.stash.entry(src).or_default().push_back(env);
                    }
                    Err(err) => {
                        if let Some(v) = &detect {
                            v.clear_wait(self.rank);
                        }
                        self.fail(err);
                    }
                }
            }
        }
        let deadline = Instant::now() + self.recv_timeout;
        loop {
            self.check_abort();
            let polled = match &self.transport {
                Transport::Mesh { inboxes, .. } => inboxes[src].recv_timeout(RECV_SLICE),
                Transport::Coop(_) => unreachable!("cooperative pulls handled above"),
            };
            match polled {
                Ok(env) => {
                    self.pulled_from[src] += 1;
                    let matched = env.tag == tag;
                    if let Some(v) = &detect {
                        v.record_pull(self.rank, src, matched);
                    }
                    if matched {
                        return env;
                    }
                    self.stash.entry(src).or_default().push_back(env);
                }
                Err(RecvTimeoutError::Timeout) => {
                    // A quiet slice: first ask the fault layer whether this
                    // wait is provably hopeless (peer crashed, or the only
                    // unaccounted message on the link was dropped) — the
                    // typed replacement for a hang.
                    if let Some(err) = self
                        .fault
                        .as_ref()
                        .and_then(|fs| fs.diagnose_wait(self.rank, src, self.pulled_from[src]))
                    {
                        if let Some(v) = &detect {
                            v.clear_wait(self.rank);
                        }
                        self.fail(err);
                    }
                    // Then look for a provable deadlock before (long
                    // before) the wall-clock timeout trips — unless a
                    // fatal fault is on record. A crash or drop leaves a
                    // wait-for cycle in its wake (the victim's peers wait
                    // on each other through the missing message), and
                    // which rank's poll tick fires first is a wall-clock
                    // race; standing down keeps the diagnosis typed and
                    // deterministic, with the recv timeout as backstop.
                    let fault_pending = self.fault.as_ref().is_some_and(|fs| fs.has_fatal_record());
                    if !fault_pending {
                        if let Some(err) =
                            detect.as_ref().and_then(|v| v.scan_for_deadlock(self.rank))
                        {
                            self.fail(err);
                        }
                    }
                    if Instant::now() >= deadline {
                        if let Some(v) = &detect {
                            v.clear_wait(self.rank);
                        }
                        self.fail(SimError::RecvTimeout {
                            rank: self.rank,
                            from: src,
                            tag,
                            budget: self.recv_timeout,
                        });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // The sender's half is gone. If the fault layer knows
                    // why, report the culprit instead of a bare abort.
                    if let Some(err) = self
                        .fault
                        .as_ref()
                        .and_then(|fs| fs.diagnose_wait(self.rank, src, self.pulled_from[src]))
                    {
                        self.fail(err);
                    }
                    self.fail(SimError::Aborted { rank: self.rank });
                }
            }
        }
    }

    /// Book a received envelope: advance the virtual clock to its arrival
    /// and charge endpoint overhead.
    fn accept(&mut self, src: usize, env: Envelope) -> Vec<u8> {
        let transit = self.spec.transit(env.bytes.len(), src, self.rank);
        self.integrity_check(src, &env, env.depart + transit);
        self.clock.wait_until(env.depart + transit);
        self.clock.advance_comm(self.spec.network.overhead);
        self.stats.msgs_recvd += 1;
        self.stats.bytes_recvd += env.bytes.len() as u64;
        let cur = self.clock.current_phase();
        self.phase_counters[cur].msgs_recvd += 1;
        self.phase_counters[cur].bytes_recvd += env.bytes.len() as u64;
        if let Some(events) = &mut self.events {
            events.push(Event {
                t: self.clock.now(),
                kind: EventKind::Recv,
                peer: src,
                bytes: env.bytes.len(),
                tag: env.tag,
            });
        }
        self.replay_record(src, env.tag, env.seq, env.checksum, env.bytes.len());
        env.bytes
    }

    /// Log a delivered envelope's coordinates into the replay ring (when
    /// one is installed) and charge the bounded-ring write on this rank's
    /// clock — recovery logging is not free.
    fn replay_record(&mut self, src: usize, tag: u64, seq: u64, checksum: Option<u64>, len: usize) {
        let Some(log) = &self.replay else { return };
        log.record(
            self.rank,
            crate::replay::ReplayEntry { src, tag, seq, checksum: checksum.unwrap_or(0), len },
        );
        let dt = crate::replay::ReplayLog::WRITE_OPS as f64 * self.spec.compute.sec_per_op
            / self.spec.speed(self.rank);
        self.clock.advance_compute(dt);
    }

    /// Drop this rank's replay-ring entries: the checkpoint that was just
    /// published covers everything delivered so far, so none of it can
    /// need replaying. No-op when no log is installed.
    pub fn replay_truncate(&mut self) {
        if let Some(log) = &self.replay {
            log.truncate(self.rank);
        }
    }

    /// Typed send of an `f64` slice.
    pub fn send_f64s(&mut self, dst: usize, tag: u64, values: &[f64]) {
        self.send_bytes(dst, tag, encode_f64s(values));
    }

    /// Typed receive of an `f64` vector.
    pub fn recv_f64s(&mut self, src: usize, tag: u64) -> Vec<f64> {
        let env = self.pull_envelope(src, tag);
        let seq = env.seq;
        let bytes = self.accept(src, env);
        match decode_f64s(&bytes) {
            Ok(v) => v,
            Err(cause) => {
                self.fail(SimError::PayloadCorrupt { rank: self.rank, from: src, seq, cause })
            }
        }
    }

    /// Typed send of a `u64` slice.
    pub fn send_u64s(&mut self, dst: usize, tag: u64, values: &[u64]) {
        self.send_bytes(dst, tag, encode_u64s(values));
    }

    /// Typed receive of a `u64` vector.
    pub fn recv_u64s(&mut self, src: usize, tag: u64) -> Vec<u64> {
        let env = self.pull_envelope(src, tag);
        let seq = env.seq;
        let bytes = self.accept(src, env);
        match decode_u64s(&bytes) {
            Ok(v) => v,
            Err(cause) => {
                self.fail(SimError::PayloadCorrupt { rank: self.rank, from: src, seq, cause })
            }
        }
    }

    /// Non-blocking send of an `f64` slice. The message departs
    /// immediately (buffered, like [`Comm::send_f64s`]); the returned
    /// request completes at once, so `wait` never blocks — it exists to
    /// keep the post/wait protocol uniform across operation kinds.
    pub fn isend_f64s(&mut self, dst: usize, tag: u64, values: &[f64]) -> Request {
        self.send_f64s(dst, tag, values);
        let now = self.clock.now();
        Request {
            rank: self.rank,
            kind: ReqKind::Send,
            window_start: now,
            completion: now,
            done: false,
        }
    }

    /// Post a non-blocking receive of an `f64` vector from `src` with
    /// `tag`. The receive-side endpoint overhead (LogGP `o`) is charged on
    /// the CPU clock *now*; the message's wire time then elapses
    /// concurrently with subsequent [`Comm::work`]. The matching
    /// [`Comm::wait`] returns `Some(values)` after blocking only for
    /// whatever wire time was not hidden.
    pub fn irecv_f64s(&mut self, src: usize, tag: u64) -> Request {
        assert!(src < self.size, "irecv from rank {src} but size is {}", self.size);
        self.check_abort();
        self.fault_checkpoint();
        self.clock.advance_comm(self.spec.network.overhead);
        let now = self.clock.now();
        Request {
            rank: self.rank,
            kind: ReqKind::Recv { src, tag },
            window_start: now,
            completion: now, // provisional: the envelope carries the real one
            done: false,
        }
    }

    /// Retire a non-blocking request: advance the virtual clock over the
    /// operation's *exposed* remainder (idle), credit the portion that
    /// already elapsed behind other work to the overlap shadow accounting,
    /// and — for receives — deliver the payload (`Some`); sends and
    /// collectives return `None`.
    ///
    /// Waiting on a request twice fails the run with
    /// [`SimError::RequestMisuse`] naming this rank.
    pub fn wait(&mut self, req: &mut Request) -> Option<Vec<f64>> {
        if req.done {
            self.fail(SimError::RequestMisuse {
                rank: self.rank,
                detail: format!(
                    "request posted at t={:.9}s waited twice (kind {:?})",
                    req.window_start, req.kind
                ),
            });
        }
        req.done = true;
        match req.kind {
            ReqKind::Send | ReqKind::Coll => {
                self.finish_window(req.window_start, req.completion);
                None
            }
            ReqKind::Recv { src, tag } => {
                let env = self.pull_envelope(src, tag);
                let transit = self.spec.transit(env.bytes.len(), src, self.rank);
                let completion = (env.depart + transit).max(req.window_start);
                req.completion = completion;
                self.integrity_check(src, &env, completion);
                self.finish_window(req.window_start, completion);
                // Count the receive where it completes. Endpoint overhead
                // was already charged at post, so none is charged here.
                self.stats.msgs_recvd += 1;
                self.stats.bytes_recvd += env.bytes.len() as u64;
                let cur = self.clock.current_phase();
                self.phase_counters[cur].msgs_recvd += 1;
                self.phase_counters[cur].bytes_recvd += env.bytes.len() as u64;
                if let Some(events) = &mut self.events {
                    events.push(Event {
                        t: self.clock.now(),
                        kind: EventKind::Recv,
                        peer: src,
                        bytes: env.bytes.len(),
                        tag: env.tag,
                    });
                }
                self.replay_record(src, env.tag, env.seq, env.checksum, env.bytes.len());
                match decode_f64s(&env.bytes) {
                    Ok(v) => Some(v),
                    Err(cause) => self.fail(SimError::PayloadCorrupt {
                        rank: self.rank,
                        from: src,
                        seq: env.seq,
                        cause,
                    }),
                }
            }
        }
    }

    /// Retire every request in order, collecting each `wait`'s result.
    pub fn waitall(&mut self, reqs: &mut [Request]) -> Vec<Option<Vec<f64>>> {
        reqs.iter_mut().map(|r| self.wait(r)).collect()
    }

    /// Split a completed overlap window `[window_start, completion]` into
    /// its hidden part (elapsed behind other work since the post — shadow
    /// accounting) and its exposed remainder (charged as idle).
    fn finish_window(&mut self, window_start: f64, completion: f64) {
        let now = self.clock.now();
        let hidden = (completion.min(now) - window_start).max(0.0);
        self.clock.add_overlap(hidden);
        self.clock.wait_until(completion);
    }

    /// Snapshot the clock's idle accumulator before a non-blocking
    /// collective's eager data movement (see [`Comm::nb_retract`]).
    pub(crate) fn nb_idle_snapshot(&self) -> f64 {
        self.clock.idle()
    }

    /// Turn an eagerly-executed collective into a non-blocking request.
    ///
    /// The caller ran the full blocking movement (so buffers, messages,
    /// fingerprints, and replication hashes are exactly those of the
    /// blocking call); this retracts the idle the movement charged —
    /// leaving endpoint overhead on the CPU clock per LogGP — and records
    /// the as-if-blocking finish as the request's completion, clamped to
    /// the FIFO horizon of earlier posts.
    pub(crate) fn nb_retract(&mut self, idle_before: f64) -> Request {
        let finish = self.clock.now();
        let idle_delta = self.clock.idle() - idle_before;
        self.clock.retract_idle(idle_delta);
        let completion = finish.max(self.nb_horizon);
        self.nb_horizon = completion;
        Request {
            rank: self.rank,
            kind: ReqKind::Coll,
            window_start: self.clock.now(),
            completion,
            done: false,
        }
    }

    /// Snapshot of this rank's statistics with the clock folded in.
    pub fn stats(&self) -> RankStats {
        let mut s = self.stats.clone();
        s.elapsed = self.clock.now();
        s.compute = self.clock.compute();
        s.comm = self.clock.comm();
        s.idle = self.clock.idle();
        s.hidden_comm = self.clock.overlap();
        s.phases = self
            .phase_names
            .iter()
            .zip(self.clock.phase_times())
            .zip(&self.phase_counters)
            .map(|((name, t), c)| PhaseStats {
                name: name.clone(),
                compute: t.compute,
                comm: t.comm,
                idle: t.idle,
                hidden_comm: t.overlap,
                msgs_sent: c.msgs_sent,
                bytes_sent: c.bytes_sent,
                msgs_recvd: c.msgs_recvd,
                bytes_recvd: c.bytes_recvd,
                collectives: c.collectives,
            })
            .collect();
        s
    }

    /// Take the recorded event trace (empty when tracing was disabled).
    pub(crate) fn take_events(&mut self) -> Vec<Event> {
        self.events.take().unwrap_or_default()
    }

    /// Raise a collective-argument-mismatch error (used by collectives when
    /// they can detect inconsistency cheaply).
    pub(crate) fn mismatch(&self, detail: String) -> ! {
        self.fail(SimError::CollectiveMismatch { rank: self.rank, detail })
    }

    /// Enter a collective: allocate its unique tag, count it, and — when
    /// collective checking is enabled — cross-validate this rank's
    /// fingerprint against the other ranks' claims for the same sequence
    /// number, failing the run on divergence.
    pub(crate) fn coll_enter(&mut self, fp: CollFingerprint) -> u64 {
        self.coll_seq += 1;
        self.stats.collectives += 1;
        self.phase_counters[self.clock.current_phase()].collectives += 1;
        if let Some(v) = &self.verify {
            if v.opts().check_collectives {
                if let Err(e) =
                    v.check_collective(self.rank, WORLD_COMM, self.coll_seq, self.size, fp)
                {
                    self.fail(e);
                }
            }
        }
        crate::collectives::COLL_TAG_BASE + self.coll_seq
    }

    /// Hash a collective's replicated result buffer and cross-check it
    /// against the other ranks (no-op unless replication checking is on).
    pub(crate) fn check_replicated_result(&mut self, label: &str, buf: &[f64]) {
        let Some(v) = &self.verify else { return };
        if !v.opts().check_replication {
            return;
        }
        let hash = hash_f64s(buf);
        if let Err(e) =
            v.check_replication(self.rank, WORLD_COMM, self.coll_seq, self.size, label, hash)
        {
            self.fail(e);
        }
    }

    /// Whether replication-invariant hashing is enabled for this run.
    /// Lets callers skip assembling a flattened buffer for
    /// [`verify_replicated`](Self::verify_replicated) when it is off.
    pub fn checks_replication(&self) -> bool {
        self.verify.as_ref().is_some_and(|v| v.opts().check_replication)
    }

    /// Assert that `data` is bitwise identical on every rank.
    ///
    /// Must be called by **all** ranks, in the same program order (like a
    /// collective); each call hashes the local buffer and cross-checks the
    /// digest against the other ranks'. A mismatch fails the run with
    /// [`SimError::ReplicationDivergence`] naming the diverging ranks and
    /// hashes. No-op (beyond one branch) unless
    /// [`crate::verify::VerifyOptions::check_replication`] is enabled, so
    /// calls can stay in production code paths.
    pub fn verify_replicated(&mut self, label: &str, data: &[f64]) {
        let Some(v) = &self.verify else { return };
        if !v.opts().check_replication {
            return;
        }
        self.repl_seq += 1;
        let hash = hash_f64s(data);
        if let Err(e) =
            v.check_replication(self.rank, USER_REPL_COMM, self.repl_seq, self.size, label, hash)
        {
            self.fail(e);
        }
    }
}
