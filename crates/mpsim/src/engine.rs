//! The SPMD launcher: one closure per rank, on either of two engines.
//!
//! [`run_spmd`] hands each rank a [`Comm`] and harvests results and
//! per-rank statistics. A panic on any rank aborts the whole run and is
//! reported as a [`SimError`]. Two execution engines share every layer of
//! bookkeeping (clocks, verification, fault injection) and therefore
//! produce bitwise-identical results:
//!
//! - [`Engine::Threaded`]: one free-running OS thread per rank with a full
//!   `P x P` mesh of channels; blocked receives poll a shared abort flag
//!   in wall-clock slices. Simple and truly parallel, but both the mesh
//!   and the polling stop scaling around a few hundred ranks.
//! - [`Engine::Cooperative`]: ranks are cooperatively scheduled tasks on
//!   a virtual-time-ordered run queue with lazily created per-pair
//!   mailboxes (see [`crate::coop`]); exactly one rank runs at a time and
//!   a blocked receive costs nothing. This is the engine for `P = 1024+`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicBool;
use std::sync::mpsc::channel;
use std::sync::{Arc, Once};
use std::time::Duration;

use crate::comm::{AbortPanic, Comm, Envelope, Transport};
use crate::coop::CoopShared;
use crate::cost::MachineSpec;
use crate::error::SimError;
use crate::fault::{FaultPlan, FaultState};
use crate::trace::{RankStats, RunStats};
use crate::verify::{VerifyOptions, VerifyState};

/// Which execution engine carries the ranks (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// One free-running OS thread per rank, full channel mesh.
    #[default]
    Threaded,
    /// Cooperative virtual-time scheduler with lazy per-pair mailboxes;
    /// required beyond a few hundred ranks.
    Cooperative,
}

/// Stack reserved per rank thread under the cooperative engine. The
/// address space is only reserved, not committed, so `P = 1024` costs
/// 1 GiB of *virtual* memory — cheap on any 64-bit host — while still
/// leaving room for the EM search's deepest call chains.
const COOP_STACK_BYTES: usize = 1 << 20;

/// Engine knobs that are about the *simulation host*, not the modeled
/// machine (which lives in [`MachineSpec`]).
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Execution engine carrying the ranks.
    pub engine: Engine,
    /// Wall-clock time a blocking receive may wait before the run is
    /// declared deadlocked. Raise this for very long-running rank bodies.
    ///
    /// This is a *total* budget for the run's patience, not a per-rank
    /// one: the effective per-receive deadline is scaled down with `P`
    /// (to `recv_timeout / P`, floored at 2 s) so that a 1024-rank run
    /// whose ranks time out one after another fails in seconds rather
    /// than in `P x recv_timeout`. The cooperative engine ignores it
    /// entirely — stalls there are detected structurally, with no timer.
    pub recv_timeout: Duration,
    /// Most envelopes allowed in flight on any single (sender, receiver)
    /// pair under the cooperative engine; a sender at the bound parks
    /// until the receiver drains. Bounds the simulator's memory on
    /// send-heavy programs at large `P` (the threaded engine's channels
    /// remain unbounded: its free-running senders cannot park without
    /// risking untimed hangs).
    pub max_inflight_per_pair: usize,
    /// Record a per-rank message event trace (see
    /// [`crate::trace::Event`]); returned in [`SpmdOutput::events`].
    pub record_events: bool,
    /// Which correctness checks run alongside the program (see
    /// [`crate::verify`]). The default enables only deadlock detection,
    /// which costs nothing until a receive has already stalled.
    pub verify: VerifyOptions,
    /// Deterministic fault plan to inject into the run (see
    /// [`crate::fault`]); `None` simulates perfectly reliable hardware.
    /// Because the plan's fired flags are shared across clones, a
    /// supervisor can re-run the same options after a recovery without
    /// one-shot faults recurring.
    pub fault: Option<FaultPlan>,
    /// In-flight replay log (see [`crate::replay`]): when set, every
    /// delivered envelope's coordinates are recorded into the rank's
    /// bounded ring (and a small virtual-time write cost is charged), so
    /// a localized-recovery supervisor can replay a failed rank's traffic
    /// since its last checkpoint instead of rolling the world back.
    /// Shared across clones, like [`SimOptions::fault`].
    pub replay: Option<crate::replay::ReplayLog>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            engine: Engine::default(),
            recv_timeout: Duration::from_secs(120),
            max_inflight_per_pair: 1024,
            record_events: false,
            verify: VerifyOptions::default(),
            fault: None,
            replay: None,
        }
    }
}

impl SimOptions {
    /// Options with every verification layer enabled: collective
    /// fingerprinting, deadlock detection, and replication hashing.
    pub fn verified() -> Self {
        SimOptions { verify: VerifyOptions::all(), ..Default::default() }
    }

    /// Default options on the cooperative engine.
    pub fn cooperative() -> Self {
        SimOptions { engine: Engine::Cooperative, ..Default::default() }
    }
}

/// Per-receive wall-clock deadline for a run of `p` ranks: the configured
/// budget scaled down by `P` (ranks that time out do so one after
/// another), floored at 2 s so small machines keep slack for slow hosts,
/// and never *above* the configured budget (a caller who asked for 200 ms
/// gets 200 ms).
fn effective_recv_timeout(configured: Duration, p: usize) -> Duration {
    const FLOOR: Duration = Duration::from_secs(2);
    let scaled = configured.checked_div(p.max(1) as u32).unwrap_or(configured);
    scaled.max(FLOOR).min(configured)
}

/// Everything a finished SPMD run produces.
#[derive(Debug)]
pub struct SpmdOutput<T> {
    /// Each rank's return value, indexed by rank.
    pub per_rank: Vec<T>,
    /// Elapsed virtual time: the maximum final clock over all ranks.
    pub elapsed: f64,
    /// Per-rank statistics, including the per-phase breakdown fed by
    /// [`Comm::enter_phase`](crate::Comm::enter_phase) spans.
    pub ranks: Vec<RankStats>,
    /// Aggregate statistics (both send- and receive-side traffic totals;
    /// see [`RunStats::check_message_symmetry`]).
    pub stats: RunStats,
    /// Per-rank message event traces; empty vectors unless
    /// [`SimOptions::record_events`] was set.
    pub events: Vec<Vec<crate::trace::Event>>,
    /// Largest number of envelopes any single (sender, receiver) mailbox
    /// held at once, against [`SimOptions::max_inflight_per_pair`].
    /// Always 0 under the threaded engine (its channels are unbounded and
    /// untracked).
    pub mailbox_high_water: usize,
    /// One row per warm spare slot ([`MachineSpec::spares`]), rank ids
    /// `p..p+spares`. Spares park outside the rank mesh for the whole run
    /// — they are not collective participants and never execute a timed
    /// receive, so they are exempt from the P-scaled receive-timeout
    /// diagnosis by construction — and accrue no virtual time until a
    /// recovery supervisor promotes their slot into a failed logical
    /// rank. Kept out of [`SpmdOutput::ranks`] so aggregate statistics
    /// and symmetry checks keep describing the `p` working ranks.
    pub spare_ranks: Vec<RankStats>,
}

/// Run `f` as an SPMD program on the machine described by `spec`.
///
/// `f` is invoked once per rank with that rank's [`Comm`]; it may borrow
/// from the caller's stack (the ranks run on scoped threads), which is how
/// a shared read-only dataset is distributed without copying.
///
/// # Errors
/// Returns the first rank failure by severity: a user panic beats a receive
/// timeout beats a follow-on abort, so the root cause is reported rather
/// than a symptom.
pub fn run_spmd<T, F>(
    spec: &MachineSpec,
    opts: &SimOptions,
    f: F,
) -> Result<SpmdOutput<T>, SimError>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    let p = spec.p;
    if p == 0 {
        return Err(SimError::InvalidMachine("machine must have at least 1 rank".into()));
    }
    install_panic_capture();
    let spec = Arc::new(spec.clone());
    let abort = Arc::new(AtomicBool::new(false));
    let verify = opts.verify.any().then(|| Arc::new(VerifyState::new(p, opts.verify.clone())));
    let fault = opts.fault.as_ref().map(|plan| Arc::new(FaultState::new(plan.clone(), p)));

    // Warm spares: one parked thread per spare slot, alive for the whole
    // run so a hot standby really is warm. They hang off a harness-level
    // control channel — not the rank mesh, not the cooperative baton —
    // and block on an *undeadlined* receive that the harness releases by
    // dropping its sender when the engine returns. Because a parked spare
    // never executes a timed receive and never registers with the
    // deadlock scanner, the P-scaled receive-timeout diagnosis cannot
    // fire on it no matter how long the run takes.
    let (results, mailbox_high_water, spare_ranks) = std::thread::scope(|scope| {
        let mut park_txs = Vec::with_capacity(spec.spares);
        let mut spare_handles = Vec::with_capacity(spec.spares);
        for i in 0..spec.spares {
            let (tx, rx) = channel::<()>();
            park_txs.push(tx);
            let slot = p + i;
            spare_handles.push(scope.spawn(move || {
                // Err(RecvError) when the harness drops its sender — the
                // normal "run over, stand down" signal.
                let _ = rx.recv();
                RankStats { rank: slot, ..RankStats::default() }
            }));
        }
        let (results, high_water) = match opts.engine {
            Engine::Threaded => (run_threaded(&spec, opts, &abort, &verify, &fault, &f), 0),
            Engine::Cooperative => run_cooperative(&spec, opts, &abort, &verify, &fault, &f),
        };
        drop(park_txs);
        let spare_ranks: Vec<RankStats> = spare_handles
            .into_iter()
            .enumerate()
            .map(|(i, h)| {
                h.join().unwrap_or_else(|_| RankStats { rank: p + i, ..RankStats::default() })
            })
            .collect();
        (results, high_water, spare_ranks)
    });

    let mut first_error: Option<SimError> = None;
    let mut per_rank = Vec::with_capacity(p);
    let mut ranks = Vec::with_capacity(p);
    let mut events = Vec::with_capacity(p);
    for r in results {
        match r {
            Ok((value, stats, ev)) => {
                per_rank.push(value);
                ranks.push(stats);
                events.push(ev);
            }
            Err(e) => {
                let sev = severity(&e);
                match &first_error {
                    Some(cur) if severity(cur) >= sev => {}
                    _ => first_error = Some(e),
                }
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }

    let stats = RunStats::from_ranks(&ranks);
    Ok(SpmdOutput {
        elapsed: stats.elapsed,
        per_rank,
        ranks,
        stats,
        events,
        mailbox_high_water,
        spare_ranks,
    })
}

type RankOutcome<T> = Result<(T, RankStats, Vec<crate::trace::Event>), SimError>;

/// Finish one rank's run: classify the outcome, keep the verifier's
/// done/abort bookkeeping in the order the detectors rely on. Shared by
/// both engines — this is where their behavior is pinned together.
fn settle_rank<T>(
    rank: usize,
    outcome: std::thread::Result<T>,
    comm: &mut Comm,
    abort: &AtomicBool,
    verify: &Option<Arc<VerifyState>>,
) -> RankOutcome<T> {
    match outcome {
        Ok(value) => {
            // Mark completion before releasing the rank so the deadlock
            // detector can tell "will never send again" apart from
            // "still running".
            if let Some(v) = verify {
                v.mark_done(rank);
            }
            Ok((value, comm.stats(), comm.take_events()))
        }
        Err(payload) => {
            let err = classify_panic(rank, payload);
            // An injected crash must not tear the other ranks down from
            // the outside: turning the silent death into a typed error is
            // the failure-detection path's job, and the first detector
            // sets the abort flag itself.
            if !matches!(err, SimError::RankCrashed { .. }) {
                abort.store(true, std::sync::atomic::Ordering::Relaxed);
            }
            Err(err)
        }
    }
}

/// Defensive join fallback: the worker itself never panics outside
/// `catch_unwind`, but report it as a rank panic if it somehow does.
fn join_rank<T>(rank: usize, joined: std::thread::Result<RankOutcome<T>>) -> RankOutcome<T> {
    joined.unwrap_or_else(|_| {
        Err(SimError::RankPanicked {
            rank,
            message: "worker thread died outside catch_unwind".into(),
        })
    })
}

/// The thread-per-rank engine: a full mesh of channels, every rank truly
/// concurrent.
#[allow(clippy::needless_range_loop)] // (src, dst) index pairs read clearer
fn run_threaded<T, F>(
    spec: &Arc<MachineSpec>,
    opts: &SimOptions,
    abort: &Arc<AtomicBool>,
    verify: &Option<Arc<VerifyState>>,
    fault: &Option<Arc<FaultState>>,
    f: &F,
) -> Vec<RankOutcome<T>>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    let p = spec.p;
    // Full mesh of unbounded channels: matrix[src][dst].
    let mut senders: Vec<Vec<std::sync::mpsc::Sender<Envelope>>> = Vec::with_capacity(p);
    let mut receivers: Vec<Vec<Option<std::sync::mpsc::Receiver<Envelope>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for src in 0..p {
        let mut row = Vec::with_capacity(p);
        for dst in 0..p {
            let (tx, rx) = channel();
            row.push(tx);
            receivers[dst][src] = Some(rx);
        }
        senders.push(row);
    }

    let recv_timeout = effective_recv_timeout(opts.recv_timeout, p);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for rank in 0..p {
            let spec = Arc::clone(spec);
            let abort = Arc::clone(abort);
            let outboxes = senders[rank].clone();
            let inboxes: Vec<_> = receivers[rank]
                .iter_mut()
                // lint:allow(unwrap): each receiver is taken exactly once, by construction
                .map(|r| r.take().expect("receiver already taken"))
                .collect();
            let record_events = opts.record_events;
            let verify = verify.clone();
            let fault = fault.clone();
            let replay = opts.replay.clone();
            handles.push(scope.spawn(move || {
                let mut comm = Comm::new(
                    rank,
                    spec,
                    Transport::Mesh { inboxes, outboxes },
                    abort.clone(),
                    recv_timeout,
                    record_events,
                    verify.clone(),
                    fault,
                    replay,
                );
                let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut comm)));
                settle_rank(rank, outcome, &mut comm, &abort, &verify)
            }));
        }
        handles.into_iter().enumerate().map(|(rank, h)| join_rank(rank, h.join())).collect()
    })
}

/// The cooperative engine: one parked thread per rank, a single baton,
/// lazily created mailboxes (see [`crate::coop`]). Returns the results
/// plus the mailbox high-water mark.
fn run_cooperative<T, F>(
    spec: &Arc<MachineSpec>,
    opts: &SimOptions,
    abort: &Arc<AtomicBool>,
    verify: &Option<Arc<VerifyState>>,
    fault: &Option<Arc<FaultState>>,
    f: &F,
) -> (Vec<RankOutcome<T>>, usize)
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    let p = spec.p;
    let coop = Arc::new(CoopShared::new(
        p,
        opts.max_inflight_per_pair,
        verify.clone(),
        fault.clone(),
        Arc::clone(abort),
    ));
    let recv_timeout = effective_recv_timeout(opts.recv_timeout, p);
    let results = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for rank in 0..p {
            let spec = Arc::clone(spec);
            let abort = Arc::clone(abort);
            let coop = Arc::clone(&coop);
            let record_events = opts.record_events;
            let verify = verify.clone();
            let fault = fault.clone();
            let replay = opts.replay.clone();
            let builder = std::thread::Builder::new()
                .name(format!("coop-rank-{rank}"))
                .stack_size(COOP_STACK_BYTES);
            let handle = builder
                .spawn_scoped(scope, move || {
                    // Park until first scheduled: from here on at most one
                    // rank thread is ever runnable at a time.
                    coop.wait_first_turn(rank);
                    let mut comm = Comm::new(
                        rank,
                        spec,
                        Transport::Coop(Arc::clone(&coop)),
                        abort.clone(),
                        recv_timeout,
                        record_events,
                        verify.clone(),
                        fault,
                        replay,
                    );
                    let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut comm)));
                    let res = settle_rank(rank, outcome, &mut comm, &abort, &verify);
                    // Release the baton *after* settle_rank's mark_done /
                    // abort bookkeeping: the next scheduled rank's
                    // detectors must already see this rank's fate.
                    coop.finish(rank, res.is_err());
                    res
                })
                // lint:allow(unwrap): thread spawn only fails on resource exhaustion
                .expect("spawn cooperative rank thread");
            handles.push(handle);
        }
        handles.into_iter().enumerate().map(|(rank, h)| join_rank(rank, h.join())).collect()
    });
    let high_water = coop.high_water();
    (results, high_water)
}

/// Convenience wrapper using default options.
pub fn run_spmd_default<T, F>(spec: &MachineSpec, f: F) -> Result<SpmdOutput<T>, SimError>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    run_spmd(spec, &SimOptions::default(), f)
}

fn severity(e: &SimError) -> u8 {
    match e {
        SimError::RankPanicked { .. } => 3,
        SimError::CollectiveMismatch { .. } => 3,
        SimError::CollectiveDivergence { .. } => 3,
        SimError::Deadlock { .. } => 3,
        SimError::ReplicationDivergence { .. } => 3,
        SimError::RequestMisuse { .. } => 3,
        // Root causes of injected faults outrank the errors they cascade
        // into, so the report always names the culprit.
        SimError::RankCrashed { .. } => 3,
        SimError::PayloadCorrupt { .. } => 3,
        SimError::PeerFailed { .. } => 2,
        SimError::Timeout { .. } => 2,
        SimError::RecvTimeout { .. } => 2,
        SimError::InvalidMachine(_) => 2,
        SimError::Aborted { .. } => 1,
    }
}

thread_local! {
    /// `file:line:column` of the last panic thrown on this thread,
    /// captured by the hook below. Read by [`classify_panic`], which runs
    /// on the panicking rank's own thread in both engines.
    static LAST_PANIC_LOCATION: std::cell::RefCell<Option<String>> =
        const { std::cell::RefCell::new(None) };
}

static PANIC_CAPTURE: Once = Once::new();

/// Install (once, process-wide) a panic hook that remembers each panic's
/// source location per thread, and silences the default stderr report for
/// the engine's own [`AbortPanic`] payloads — those carry structured
/// errors that the harvest reports properly; printing them would spam
/// every aborted rank's backtrace.
fn install_panic_capture() {
    PANIC_CAPTURE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(loc) = info.location() {
                let rendered = format!("{}:{}:{}", loc.file(), loc.line(), loc.column());
                LAST_PANIC_LOCATION.with(|c| *c.borrow_mut() = Some(rendered));
            }
            if info.payload().downcast_ref::<AbortPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

fn classify_panic(rank: usize, payload: Box<dyn std::any::Any + Send>) -> SimError {
    match payload.downcast::<AbortPanic>() {
        Ok(abort) => abort.0,
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                // `panic_any` with a custom type: the payload cannot be
                // rendered (stable Rust cannot name a `dyn Any`'s concrete
                // type), but the hook captured where it was thrown —
                // report that identity instead of discarding it.
                match LAST_PANIC_LOCATION.with(|c| c.borrow_mut().take()) {
                    Some(loc) => format!("non-string panic payload thrown at {loc}"),
                    None => "non-string panic payload".to_string(),
                }
            };
            SimError::RankPanicked { rank, message }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::presets;

    #[test]
    fn zero_ranks_is_invalid() {
        let mut spec = presets::zero_cost(1);
        spec.p = 0;
        let r = run_spmd_default(&spec, |c| c.rank());
        assert!(matches!(r, Err(SimError::InvalidMachine(_))));
    }

    #[test]
    fn single_rank_runs() {
        let spec = presets::zero_cost(1);
        let out = run_spmd_default(&spec, |c| c.rank() + 10).unwrap();
        assert_eq!(out.per_rank, vec![10]);
        assert_eq!(out.elapsed, 0.0);
    }

    #[test]
    fn ranks_see_distinct_ids() {
        let spec = presets::zero_cost(5);
        let out = run_spmd_default(&spec, |c| (c.rank(), c.size())).unwrap();
        for (i, (r, s)) in out.per_rank.iter().enumerate() {
            assert_eq!(*r, i);
            assert_eq!(*s, 5);
        }
    }

    #[test]
    fn user_panic_is_reported_with_rank() {
        let spec = presets::zero_cost(3);
        let r = run_spmd_default::<(), _>(&spec, |c| {
            if c.rank() == 1 {
                panic!("deliberate test failure");
            }
            // Other ranks block so the abort path is exercised.
            c.barrier();
        });
        match r {
            Err(SimError::RankPanicked { rank, message }) => {
                assert_eq!(rank, 1);
                assert!(message.contains("deliberate"));
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
    }

    #[test]
    fn mismatched_collective_is_diagnosed_as_deadlock() {
        // Rank 1 skips the barrier and finishes; rank 0 blocks forever.
        // The default-on detector must prove the deadlock long before the
        // receive timeout (set far above the asserted bound) would fire.
        let spec = presets::zero_cost(2);
        let opts = SimOptions { recv_timeout: Duration::from_secs(120), ..Default::default() };
        let start = std::time::Instant::now();
        let r = run_spmd::<(), _>(&spec, &opts, |c| {
            if c.rank() == 0 {
                c.barrier(); // rank 1 never joins
            }
        });
        let elapsed = start.elapsed();
        match r {
            Err(SimError::Deadlock { detail, .. }) => {
                assert!(detail.contains("rank 0 waits on rank 1"), "{detail}");
                assert!(detail.contains("finished"), "{detail}");
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
        assert!(elapsed < Duration::from_secs(1), "diagnosis took {elapsed:?}");
    }

    #[test]
    fn mismatched_collective_times_out_without_detection() {
        // With the detector off, the old wall-clock timeout is the
        // backstop (kept as a regression test for that path). The
        // P-scaling must leave a small explicit budget alone.
        let spec = presets::zero_cost(2);
        let opts = SimOptions {
            recv_timeout: Duration::from_millis(200),
            verify: crate::verify::VerifyOptions::none(),
            ..Default::default()
        };
        let r = run_spmd::<(), _>(&spec, &opts, |c| {
            if c.rank() == 0 {
                c.barrier(); // rank 1 never joins
            }
        });
        match r {
            Err(SimError::RecvTimeout { budget, .. }) => {
                assert_eq!(budget, Duration::from_millis(200));
            }
            other => panic!("expected RecvTimeout, got {other:?}"),
        }
    }

    #[test]
    fn effective_recv_timeout_scales_with_p() {
        let s = Duration::from_secs;
        // Large machines divide the budget down to the 2 s floor...
        assert_eq!(effective_recv_timeout(s(120), 1024), s(2));
        assert_eq!(effective_recv_timeout(s(120), 64), s(2));
        // ...mid-sized machines scale proportionally...
        assert_eq!(effective_recv_timeout(s(120), 8), s(15));
        // ...and an explicit budget below the floor is honored as-is.
        assert_eq!(
            effective_recv_timeout(Duration::from_millis(200), 2),
            Duration::from_millis(200)
        );
        assert_eq!(effective_recv_timeout(s(1), 1024), s(1));
        assert_eq!(effective_recv_timeout(s(120), 1), s(120));
    }

    #[test]
    fn recv_timeout_fails_fast_on_a_large_machine() {
        // Satellite regression: at P = 64 the default 120 s budget
        // becomes a 2 s per-receive deadline, so an undetected mismatch
        // fails in seconds instead of two minutes.
        let spec = presets::zero_cost(64);
        let opts =
            SimOptions { verify: crate::verify::VerifyOptions::none(), ..Default::default() };
        let start = std::time::Instant::now();
        let r = run_spmd::<(), _>(&spec, &opts, |c| {
            if c.rank() == 0 {
                let _ = c.recv_f64s(1, 7); // rank 1 never sends
            }
        });
        let elapsed = start.elapsed();
        match r {
            Err(SimError::RecvTimeout { budget, .. }) => {
                assert_eq!(budget, Duration::from_secs(2));
            }
            other => panic!("expected RecvTimeout, got {other:?}"),
        }
        assert!(elapsed < Duration::from_secs(30), "took {elapsed:?}");
    }

    #[test]
    fn parked_spares_are_exempt_from_the_receive_timeout() {
        // Satellite regression: warm spares idle for the whole run. With a
        // 200 ms explicit budget (honored as-is by the P-scaling) and a
        // run lasting several times that, spares implemented as mesh
        // ranks spinning in a timed receive loop would be diagnosed as
        // RecvTimeout; parked control-channel spares must not be.
        let spec = presets::zero_cost(2).with_spares(2);
        let opts = SimOptions {
            recv_timeout: Duration::from_millis(200),
            verify: crate::verify::VerifyOptions::none(),
            ..Default::default()
        };
        let out = run_spmd(&spec, &opts, |c| {
            // Wall-clock work far beyond the per-receive deadline, with no
            // blocked receives among the working ranks.
            std::thread::sleep(Duration::from_millis(700));
            c.rank()
        })
        .unwrap();
        assert_eq!(out.per_rank, vec![0, 1]);
        assert_eq!(out.ranks.len(), 2, "aggregates must keep describing the working ranks");
        let ids: Vec<usize> = out.spare_ranks.iter().map(|r| r.rank).collect();
        assert_eq!(ids, vec![2, 3], "one stats row per spare slot");
        for s in &out.spare_ranks {
            assert_eq!(s.elapsed, 0.0, "a parked spare accrues no virtual time");
        }
    }

    #[test]
    fn cooperative_engine_carries_spares_outside_the_baton() {
        let spec = presets::zero_cost(3).with_spares(1);
        let out = run_spmd(&spec, &SimOptions::cooperative(), |c| {
            c.barrier();
            c.rank()
        })
        .unwrap();
        assert_eq!(out.per_rank, vec![0, 1, 2]);
        assert_eq!(out.spare_ranks.len(), 1);
        assert_eq!(out.spare_ranks[0].rank, 3);
    }

    #[test]
    fn non_string_panic_payload_is_identified_by_location() {
        struct Custom {
            #[allow(dead_code)]
            code: u32,
        }
        let spec = presets::zero_cost(1);
        let r = run_spmd_default::<(), _>(&spec, |_c| {
            std::panic::panic_any(Custom { code: 42 });
        });
        match r {
            Err(SimError::RankPanicked { rank, message }) => {
                assert_eq!(rank, 0);
                // The message names where the payload was thrown, so a
                // custom panic type is traceable instead of anonymous.
                assert!(message.contains("engine.rs"), "message was: {message}");
                assert!(message.contains("non-string panic payload"), "message was: {message}");
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
    }

    // ---- cooperative engine ----

    #[test]
    fn cooperative_ranks_see_distinct_ids() {
        let spec = presets::zero_cost(5);
        let out = run_spmd(&spec, &SimOptions::cooperative(), |c| (c.rank(), c.size())).unwrap();
        for (i, (r, s)) in out.per_rank.iter().enumerate() {
            assert_eq!(*r, i);
            assert_eq!(*s, 5);
        }
    }

    #[test]
    fn cooperative_ring_passes_a_token() {
        let spec = presets::zero_cost(4);
        let out = run_spmd(&spec, &SimOptions::cooperative(), |c| {
            let p = c.size();
            let me = c.rank();
            if me == 0 {
                c.send_f64s(1, 5, &[1.0]);
                c.recv_f64s(p - 1, 5)[0]
            } else {
                let v = c.recv_f64s(me - 1, 5)[0];
                c.send_f64s((me + 1) % p, 5, &[v + 1.0]);
                v
            }
        })
        .unwrap();
        assert_eq!(out.per_rank, vec![4.0, 1.0, 2.0, 3.0]);
        assert!(out.mailbox_high_water >= 1);
    }

    #[test]
    fn cooperative_user_panic_is_reported_with_rank() {
        let spec = presets::zero_cost(3);
        let r = run_spmd::<(), _>(&spec, &SimOptions::cooperative(), |c| {
            if c.rank() == 1 {
                panic!("deliberate test failure");
            }
            c.barrier();
        });
        match r {
            Err(SimError::RankPanicked { rank, message }) => {
                assert_eq!(rank, 1);
                assert!(message.contains("deliberate"));
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
    }

    #[test]
    fn cooperative_mismatched_collective_is_diagnosed_as_deadlock() {
        let spec = presets::zero_cost(2);
        let start = std::time::Instant::now();
        let r = run_spmd::<(), _>(&spec, &SimOptions::cooperative(), |c| {
            if c.rank() == 0 {
                c.barrier(); // rank 1 never joins
            }
        });
        let elapsed = start.elapsed();
        match r {
            Err(SimError::Deadlock { detail, .. }) => {
                assert!(detail.contains("rank 0 waits on rank 1"), "{detail}");
                assert!(detail.contains("finished"), "{detail}");
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
        // Structural: no polling, no timer — diagnosis is immediate.
        assert!(elapsed < Duration::from_secs(1), "diagnosis took {elapsed:?}");
    }

    #[test]
    fn cooperative_send_recv_cycle_is_diagnosed_with_full_wait_graph() {
        let spec = presets::zero_cost(3);
        let r = run_spmd::<(), _>(&spec, &SimOptions::cooperative(), |c| {
            let from = (c.rank() + 1) % c.size();
            let _ = c.recv_f64s(from, 7);
        });
        match r {
            Err(SimError::Deadlock { cycle, detail, .. }) => {
                let mut cycle = cycle;
                cycle.sort_unstable();
                assert_eq!(cycle, vec![0, 1, 2], "{detail}");
                for rank in 0..3 {
                    assert!(
                        detail.contains(&format!("rank {rank} waits on rank {}", (rank + 1) % 3)),
                        "{detail}"
                    );
                }
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn cooperative_detects_deadlock_even_without_verification() {
        // With every verifier off the threaded engine can only time out;
        // the cooperative scheduler still proves the stall structurally
        // and reports a typed deadlock naming the cycle.
        let spec = presets::zero_cost(3);
        let opts = SimOptions {
            verify: crate::verify::VerifyOptions::none(),
            ..SimOptions::cooperative()
        };
        let start = std::time::Instant::now();
        let r = run_spmd::<(), _>(&spec, &opts, |c| {
            let from = (c.rank() + 1) % c.size();
            let _ = c.recv_f64s(from, 7);
        });
        let elapsed = start.elapsed();
        match r {
            Err(SimError::Deadlock { cycle, detail, .. }) => {
                let mut cycle = cycle;
                cycle.sort_unstable();
                assert_eq!(cycle, vec![0, 1, 2], "{detail}");
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
        assert!(elapsed < Duration::from_secs(1), "diagnosis took {elapsed:?}");
    }

    #[test]
    fn send_recv_cycle_is_diagnosed_with_full_wait_graph() {
        // Classic head-to-head deadlock: every rank receives from its right
        // neighbour before sending anything.
        let spec = presets::zero_cost(3);
        let opts = SimOptions { recv_timeout: Duration::from_secs(120), ..Default::default() };
        let start = std::time::Instant::now();
        let r = run_spmd::<(), _>(&spec, &opts, |c| {
            let from = (c.rank() + 1) % c.size();
            let _ = c.recv_f64s(from, 7);
        });
        let elapsed = start.elapsed();
        match r {
            Err(SimError::Deadlock { cycle, detail, .. }) => {
                let mut cycle = cycle;
                cycle.sort_unstable();
                assert_eq!(cycle, vec![0, 1, 2], "{detail}");
                for rank in 0..3 {
                    assert!(
                        detail.contains(&format!("rank {rank} waits on rank {}", (rank + 1) % 3)),
                        "{detail}"
                    );
                }
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
        assert!(elapsed < Duration::from_secs(1), "diagnosis took {elapsed:?}");
    }
}
