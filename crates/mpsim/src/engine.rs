//! The SPMD launcher: runs one closure per rank on real threads.
//!
//! [`run_spmd`] spawns `spec.p` scoped threads, wires a full mesh of
//! channels between them, hands each a [`Comm`], and harvests results and
//! per-rank statistics. A panic on any rank aborts the whole run and is
//! reported as a [`SimError`]; the other ranks are unblocked via a shared
//! abort flag polled by blocking receives.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicBool;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Duration;

use crate::comm::{AbortPanic, Comm, Envelope};
use crate::cost::MachineSpec;
use crate::error::SimError;
use crate::fault::{FaultPlan, FaultState};
use crate::trace::{RankStats, RunStats};
use crate::verify::{VerifyOptions, VerifyState};

/// Engine knobs that are about the *simulation host*, not the modeled
/// machine (which lives in [`MachineSpec`]).
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Wall-clock time a blocking receive may wait before the run is
    /// declared deadlocked. Raise this for very long-running rank bodies.
    pub recv_timeout: Duration,
    /// Record a per-rank message event trace (see
    /// [`crate::trace::Event`]); returned in [`SpmdOutput::events`].
    pub record_events: bool,
    /// Which correctness checks run alongside the program (see
    /// [`crate::verify`]). The default enables only deadlock detection,
    /// which costs nothing until a receive has already stalled.
    pub verify: VerifyOptions,
    /// Deterministic fault plan to inject into the run (see
    /// [`crate::fault`]); `None` simulates perfectly reliable hardware.
    /// Because the plan's fired flags are shared across clones, a
    /// supervisor can re-run the same options after a recovery without
    /// one-shot faults recurring.
    pub fault: Option<FaultPlan>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            recv_timeout: Duration::from_secs(120),
            record_events: false,
            verify: VerifyOptions::default(),
            fault: None,
        }
    }
}

impl SimOptions {
    /// Options with every verification layer enabled: collective
    /// fingerprinting, deadlock detection, and replication hashing.
    pub fn verified() -> Self {
        SimOptions { verify: VerifyOptions::all(), ..Default::default() }
    }
}

/// Everything a finished SPMD run produces.
#[derive(Debug)]
pub struct SpmdOutput<T> {
    /// Each rank's return value, indexed by rank.
    pub per_rank: Vec<T>,
    /// Elapsed virtual time: the maximum final clock over all ranks.
    pub elapsed: f64,
    /// Per-rank statistics, including the per-phase breakdown fed by
    /// [`Comm::enter_phase`](crate::Comm::enter_phase) spans.
    pub ranks: Vec<RankStats>,
    /// Aggregate statistics (both send- and receive-side traffic totals;
    /// see [`RunStats::check_message_symmetry`]).
    pub stats: RunStats,
    /// Per-rank message event traces; empty vectors unless
    /// [`SimOptions::record_events`] was set.
    pub events: Vec<Vec<crate::trace::Event>>,
}

/// Run `f` as an SPMD program on the machine described by `spec`.
///
/// `f` is invoked once per rank with that rank's [`Comm`]; it may borrow
/// from the caller's stack (the ranks run on scoped threads), which is how
/// a shared read-only dataset is distributed without copying.
///
/// # Errors
/// Returns the first rank failure by severity: a user panic beats a receive
/// timeout beats a follow-on abort, so the root cause is reported rather
/// than a symptom.
#[allow(clippy::needless_range_loop)] // (src, dst) index pairs read clearer
pub fn run_spmd<T, F>(
    spec: &MachineSpec,
    opts: &SimOptions,
    f: F,
) -> Result<SpmdOutput<T>, SimError>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    let p = spec.p;
    if p == 0 {
        return Err(SimError::InvalidMachine("machine must have at least 1 rank".into()));
    }
    let spec = Arc::new(spec.clone());
    let abort = Arc::new(AtomicBool::new(false));
    let verify = opts.verify.any().then(|| Arc::new(VerifyState::new(p, opts.verify.clone())));
    let fault = opts.fault.as_ref().map(|plan| Arc::new(FaultState::new(plan.clone(), p)));

    // Full mesh of unbounded channels: matrix[src][dst].
    let mut senders: Vec<Vec<std::sync::mpsc::Sender<Envelope>>> = Vec::with_capacity(p);
    let mut receivers: Vec<Vec<Option<std::sync::mpsc::Receiver<Envelope>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for src in 0..p {
        let mut row = Vec::with_capacity(p);
        for dst in 0..p {
            let (tx, rx) = channel();
            row.push(tx);
            receivers[dst][src] = Some(rx);
        }
        senders.push(row);
    }

    type RankOutcome<T> = Result<(T, RankStats, Vec<crate::trace::Event>), SimError>;
    let results: Vec<RankOutcome<T>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for rank in 0..p {
            let spec = Arc::clone(&spec);
            let abort = Arc::clone(&abort);
            let outboxes = senders[rank].clone();
            let inboxes: Vec<_> = receivers[rank]
                .iter_mut()
                // lint:allow(unwrap): each receiver is taken exactly once, by construction
                .map(|r| r.take().expect("receiver already taken"))
                .collect();
            let f = &f;
            let recv_timeout = opts.recv_timeout;
            let record_events = opts.record_events;
            let verify = verify.clone();
            let fault = fault.clone();
            handles.push(scope.spawn(move || {
                let mut comm = Comm::new(
                    rank,
                    spec,
                    inboxes,
                    outboxes,
                    abort.clone(),
                    recv_timeout,
                    record_events,
                    verify.clone(),
                    fault,
                );
                let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut comm)));
                match outcome {
                    Ok(value) => {
                        // Mark completion before dropping the comm so the
                        // deadlock detector can tell "will never send
                        // again" apart from "still running".
                        if let Some(v) = &verify {
                            v.mark_done(rank);
                        }
                        Ok((value, comm.stats(), comm.take_events()))
                    }
                    Err(payload) => {
                        let err = classify_panic(rank, payload);
                        // An injected crash must not tear the other ranks
                        // down from the outside: turning the silent death
                        // into a typed error is the failure-detection
                        // path's job, and the first detector sets the
                        // abort flag itself.
                        if !matches!(err, SimError::RankCrashed { .. }) {
                            abort.store(true, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(err)
                    }
                }
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| {
                h.join().unwrap_or_else(|_| {
                    // The worker itself never panics outside catch_unwind,
                    // but be defensive: report it as a rank panic, with the
                    // actual rank (the handles are in spawn = rank order).
                    Err::<(T, RankStats, Vec<crate::trace::Event>), _>(SimError::RankPanicked {
                        rank,
                        message: "worker thread died outside catch_unwind".into(),
                    })
                })
            })
            .collect()
    });

    let mut first_error: Option<SimError> = None;
    let mut per_rank = Vec::with_capacity(p);
    let mut ranks = Vec::with_capacity(p);
    let mut events = Vec::with_capacity(p);
    for r in results {
        match r {
            Ok((value, stats, ev)) => {
                per_rank.push(value);
                ranks.push(stats);
                events.push(ev);
            }
            Err(e) => {
                let sev = severity(&e);
                match &first_error {
                    Some(cur) if severity(cur) >= sev => {}
                    _ => first_error = Some(e),
                }
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }

    let stats = RunStats::from_ranks(&ranks);
    Ok(SpmdOutput { elapsed: stats.elapsed, per_rank, ranks, stats, events })
}

/// Convenience wrapper using default options.
pub fn run_spmd_default<T, F>(spec: &MachineSpec, f: F) -> Result<SpmdOutput<T>, SimError>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    run_spmd(spec, &SimOptions::default(), f)
}

fn severity(e: &SimError) -> u8 {
    match e {
        SimError::RankPanicked { .. } => 3,
        SimError::CollectiveMismatch { .. } => 3,
        SimError::CollectiveDivergence { .. } => 3,
        SimError::Deadlock { .. } => 3,
        SimError::ReplicationDivergence { .. } => 3,
        SimError::RequestMisuse { .. } => 3,
        // Root causes of injected faults outrank the errors they cascade
        // into, so the report always names the culprit.
        SimError::RankCrashed { .. } => 3,
        SimError::PayloadCorrupt { .. } => 3,
        SimError::PeerFailed { .. } => 2,
        SimError::Timeout { .. } => 2,
        SimError::RecvTimeout { .. } => 2,
        SimError::InvalidMachine(_) => 2,
        SimError::Aborted { .. } => 1,
    }
}

fn classify_panic(rank: usize, payload: Box<dyn std::any::Any + Send>) -> SimError {
    match payload.downcast::<AbortPanic>() {
        Ok(abort) => abort.0,
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            SimError::RankPanicked { rank, message }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::presets;

    #[test]
    fn zero_ranks_is_invalid() {
        let mut spec = presets::zero_cost(1);
        spec.p = 0;
        let r = run_spmd_default(&spec, |c| c.rank());
        assert!(matches!(r, Err(SimError::InvalidMachine(_))));
    }

    #[test]
    fn single_rank_runs() {
        let spec = presets::zero_cost(1);
        let out = run_spmd_default(&spec, |c| c.rank() + 10).unwrap();
        assert_eq!(out.per_rank, vec![10]);
        assert_eq!(out.elapsed, 0.0);
    }

    #[test]
    fn ranks_see_distinct_ids() {
        let spec = presets::zero_cost(5);
        let out = run_spmd_default(&spec, |c| (c.rank(), c.size())).unwrap();
        for (i, (r, s)) in out.per_rank.iter().enumerate() {
            assert_eq!(*r, i);
            assert_eq!(*s, 5);
        }
    }

    #[test]
    fn user_panic_is_reported_with_rank() {
        let spec = presets::zero_cost(3);
        let r = run_spmd_default::<(), _>(&spec, |c| {
            if c.rank() == 1 {
                panic!("deliberate test failure");
            }
            // Other ranks block so the abort path is exercised.
            c.barrier();
        });
        match r {
            Err(SimError::RankPanicked { rank, message }) => {
                assert_eq!(rank, 1);
                assert!(message.contains("deliberate"));
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
    }

    #[test]
    fn mismatched_collective_is_diagnosed_as_deadlock() {
        // Rank 1 skips the barrier and finishes; rank 0 blocks forever.
        // The default-on detector must prove the deadlock long before the
        // receive timeout (set far above the asserted bound) would fire.
        let spec = presets::zero_cost(2);
        let opts = SimOptions { recv_timeout: Duration::from_secs(120), ..Default::default() };
        let start = std::time::Instant::now();
        let r = run_spmd::<(), _>(&spec, &opts, |c| {
            if c.rank() == 0 {
                c.barrier(); // rank 1 never joins
            }
        });
        let elapsed = start.elapsed();
        match r {
            Err(SimError::Deadlock { detail, .. }) => {
                assert!(detail.contains("rank 0 waits on rank 1"), "{detail}");
                assert!(detail.contains("finished"), "{detail}");
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
        assert!(elapsed < Duration::from_secs(1), "diagnosis took {elapsed:?}");
    }

    #[test]
    fn mismatched_collective_times_out_without_detection() {
        // With the detector off, the old wall-clock timeout is the
        // backstop (kept as a regression test for that path).
        let spec = presets::zero_cost(2);
        let opts = SimOptions {
            recv_timeout: Duration::from_millis(200),
            verify: crate::verify::VerifyOptions::none(),
            ..Default::default()
        };
        let r = run_spmd::<(), _>(&spec, &opts, |c| {
            if c.rank() == 0 {
                c.barrier(); // rank 1 never joins
            }
        });
        assert!(matches!(r, Err(SimError::RecvTimeout { .. })), "got {r:?}");
    }

    #[test]
    fn send_recv_cycle_is_diagnosed_with_full_wait_graph() {
        // Classic head-to-head deadlock: every rank receives from its right
        // neighbour before sending anything.
        let spec = presets::zero_cost(3);
        let opts = SimOptions { recv_timeout: Duration::from_secs(120), ..Default::default() };
        let start = std::time::Instant::now();
        let r = run_spmd::<(), _>(&spec, &opts, |c| {
            let from = (c.rank() + 1) % c.size();
            let _ = c.recv_f64s(from, 7);
        });
        let elapsed = start.elapsed();
        match r {
            Err(SimError::Deadlock { cycle, detail, .. }) => {
                let mut cycle = cycle;
                cycle.sort_unstable();
                assert_eq!(cycle, vec![0, 1, 2], "{detail}");
                for rank in 0..3 {
                    assert!(
                        detail.contains(&format!("rank {rank} waits on rank {}", (rank + 1) % 3)),
                        "{detail}"
                    );
                }
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
        assert!(elapsed < Duration::from_secs(1), "diagnosis took {elapsed:?}");
    }
}
