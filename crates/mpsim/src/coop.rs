//! Cooperative virtual-time scheduler: the large-`P` execution engine.
//!
//! The threaded engine runs every rank as a free-running OS thread and
//! wires a full `P x P` mesh of `mpsc` channels, which stops scaling long
//! before `P = 1024`: the mesh alone is a million channels, and blocked
//! receives burn wall-clock time polling in 25 ms slices. This module
//! replaces both mechanisms. Ranks still live on OS threads (Rust has no
//! stable coroutines), but at most **one rank runs at a time**: a single
//! baton is handed from rank to rank, every other thread is parked on its
//! own condvar, and a blocked receive costs nothing until its message
//! arrives. Mailboxes are created lazily per communicating pair, so memory
//! scales with the communication graph actually used, not with `P^2`.
//!
//! # Scheduling discipline
//!
//! A rank runs until it *blocks* — a receive with an empty mailbox, or a
//! send into a mailbox at its in-flight bound — and then hands the baton
//! to the runnable rank with the smallest frozen virtual clock (rank id
//! breaks ties). Because this is a conservative simulation in which every
//! receive names its source, the virtual-time results are schedule
//! independent: the run queue's ordering is a memory/locality heuristic
//! (it keeps per-rank clocks advancing roughly together), **not** a
//! correctness requirement, which is why the cooperative engine is
//! bitwise identical to the threaded one.
//!
//! # Stall rescue
//!
//! When no rank is runnable and at least one is blocked, the run can never
//! make progress — the cooperative scheduler *knows* this structurally, so
//! unlike the threaded engine it needs no wall-clock timeout. The blocked
//! rank diagnosed first (ascending rank order, mirroring the threaded
//! engine's harvest tiebreak) is woken with a typed error: the fault layer
//! gets the first word (crashed/dropped peers), then the wait-for-graph
//! verifier, then a structural fallback that always finds either a wait on
//! a finished rank or a cycle.

use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::comm::Envelope;
use crate::error::SimError;
use crate::fault::FaultState;
use crate::verify::VerifyState;

/// Outcome of a [`CoopShared::deposit`] that did not fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Deposit {
    /// The envelope is in the destination's mailbox.
    Delivered,
    /// The destination already finished or failed; the envelope was
    /// discarded (the cooperative analogue of an `mpsc` disconnect).
    Closed,
}

/// Where a rank is in its lifecycle, from the scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RankStatus {
    /// Runnable; has exactly one entry on the run queue.
    Ready,
    /// Holds the baton.
    Running,
    /// Parked in a blocking receive from `src` with `tag`; `pulled` is how
    /// many envelopes this rank has taken off the `(src, me)` mailbox, the
    /// number the fault layer compares against delivered sends to prove a
    /// wait is for a dropped message.
    RecvWait { src: usize, tag: u64, pulled: u64 },
    /// Parked in a send to `dst` whose mailbox is at the in-flight bound.
    SendWait { dst: usize },
    /// Returned from its body normally.
    Done,
    /// Unwound with an error.
    Failed,
}

impl RankStatus {
    fn is_blocked(&self) -> bool {
        matches!(self, RankStatus::RecvWait { .. } | RankStatus::SendWait { .. })
    }

    fn is_gone(&self) -> bool {
        matches!(self, RankStatus::Done | RankStatus::Failed)
    }
}

/// Run-queue entry: orders by smallest virtual clock, then smallest rank.
/// `BinaryHeap` is a max-heap, so the comparison is reversed here.
struct HeapEntry {
    clock: f64,
    rank: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.clock.total_cmp(&self.clock).then_with(|| other.rank.cmp(&self.rank))
    }
}

struct CoopState {
    /// The rank currently holding the baton; `None` only transiently
    /// inside a handoff (or at the end of the run).
    running: Option<usize>,
    status: Vec<RankStatus>,
    /// Each rank's virtual clock, frozen when it last gave up the baton;
    /// the run-queue key. Invariant: a `Ready` rank has exactly one heap
    /// entry, pushed with its current frozen clock, so entries are never
    /// stale.
    clocks: Vec<f64>,
    ready: BinaryHeap<HeapEntry>,
    /// Lazily created mailboxes: `(src, dst)` to the FIFO of envelopes in
    /// flight on that link.
    mail: BTreeMap<(usize, usize), VecDeque<Envelope>>,
    /// Error to hand a rank the next time it is scheduled (stall rescue or
    /// abort cascade).
    pending: Vec<Option<SimError>>,
    /// Largest number of envelopes any single mailbox ever held.
    high_water: usize,
}

/// Shared state of one cooperative run: the scheduler proper plus the
/// verification/fault layers it consults when the run stalls.
pub(crate) struct CoopShared {
    state: Mutex<CoopState>,
    /// One condvar per rank: each parked thread waits only on its own, so
    /// a handoff wakes exactly the intended thread.
    cvs: Vec<Condvar>,
    /// Per-pair in-flight envelope bound; a sender at the bound parks
    /// until the receiver drains (see
    /// [`crate::SimOptions::max_inflight_per_pair`]).
    max_inflight: usize,
    verify: Option<Arc<VerifyState>>,
    fault: Option<Arc<FaultState>>,
    abort: Arc<AtomicBool>,
}

impl CoopShared {
    pub(crate) fn new(
        p: usize,
        max_inflight: usize,
        verify: Option<Arc<VerifyState>>,
        fault: Option<Arc<FaultState>>,
        abort: Arc<AtomicBool>,
    ) -> Self {
        assert!(p > 0, "cooperative scheduler needs at least one rank");
        let mut status = vec![RankStatus::Ready; p];
        // Seed the run queue with every rank at clock zero except rank 0,
        // which is born holding the baton.
        status[0] = RankStatus::Running;
        let ready = (1..p).map(|rank| HeapEntry { clock: 0.0, rank }).collect();
        CoopShared {
            state: Mutex::new(CoopState {
                running: Some(0),
                status,
                clocks: vec![0.0; p],
                ready,
                mail: BTreeMap::new(),
                pending: (0..p).map(|_| None).collect(),
                high_water: 0,
            }),
            cvs: (0..p).map(|_| Condvar::new()).collect(),
            max_inflight: max_inflight.max(1),
            verify,
            fault,
            abort,
        }
    }

    /// The scheduler never panics while holding the lock, so a poisoned
    /// mutex still guards consistent state; recover it rather than
    /// cascading a secondary panic through every parked rank.
    fn lock(&self) -> MutexGuard<'_, CoopState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn wait_for_baton<'a>(
        &'a self,
        me: usize,
        mut state: MutexGuard<'a, CoopState>,
    ) -> MutexGuard<'a, CoopState> {
        while state.running != Some(me) {
            state = self.cvs[me].wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        state
    }

    /// Park the calling rank's thread until it is first scheduled.
    pub(crate) fn wait_first_turn(&self, me: usize) {
        let state = self.lock();
        drop(self.wait_for_baton(me, state));
    }

    /// Largest per-pair mailbox depth observed over the whole run.
    pub(crate) fn high_water(&self) -> usize {
        self.lock().high_water
    }

    fn make_ready(state: &mut CoopState, rank: usize) {
        debug_assert!(state.status[rank].is_blocked(), "only blocked ranks re-enter the queue");
        state.status[rank] = RankStatus::Ready;
        let clock = state.clocks[rank];
        state.ready.push(HeapEntry { clock, rank });
    }

    /// Hand the baton to the runnable rank with the smallest virtual
    /// clock; if none is runnable but some rank is blocked, the run has
    /// stalled for good — wake a victim with a typed diagnosis instead.
    fn schedule_next(&self, state: &mut CoopState) {
        debug_assert!(state.running.is_none());
        if let Some(e) = state.ready.pop() {
            state.status[e.rank] = RankStatus::Running;
            state.running = Some(e.rank);
            self.cvs[e.rank].notify_one();
            return;
        }
        if state.status.iter().any(RankStatus::is_blocked) {
            let (victim, err) = self.diagnose_stall(state);
            state.pending[victim] = Some(err);
            state.status[victim] = RankStatus::Running;
            state.running = Some(victim);
            self.cvs[victim].notify_one();
        }
    }

    /// Pick the victim of a provable stall and its typed error, in the
    /// priority order the threaded engine's poll loop uses: fault layer,
    /// then wait-for-graph verifier, then a structural fallback on the
    /// scheduler's own wait edges. Total: at a stall every blocked rank's
    /// wait chain ends in a finished rank or a cycle.
    fn diagnose_stall(&self, state: &CoopState) -> (usize, SimError) {
        let p = state.status.len();
        if let Some(fs) = &self.fault {
            for r in 0..p {
                if let RankStatus::RecvWait { src, pulled, .. } = state.status[r] {
                    if let Some(err) = fs.diagnose_wait(r, src, pulled) {
                        return (r, err);
                    }
                }
            }
        }
        // Same stand-down rule as the threaded poll loop: with a fatal
        // fault on record the wait-for scan would race the fault layer's
        // typed diagnosis, so it yields.
        let fault_pending = self.fault.as_ref().is_some_and(|fs| fs.has_fatal_record());
        if !fault_pending {
            if let Some(v) = self.verify.as_ref().filter(|v| v.opts().detect_deadlock) {
                for r in 0..p {
                    if matches!(state.status[r], RankStatus::RecvWait { .. }) {
                        if let Some(err) = v.scan_for_deadlock(r) {
                            return (r, err);
                        }
                    }
                }
            }
        }
        self.structural_stall(state)
    }

    /// Fallback diagnosis from the scheduler's own wait edges, for runs
    /// with verification off (or stalls the verifier cannot see, e.g. a
    /// cycle through a bounded-mailbox send). Blocked ranks' mailboxes
    /// from their named source are empty by construction, so a wait on a
    /// finished rank is hopeless and a cycle is a deadlock.
    fn structural_stall(&self, state: &CoopState) -> (usize, SimError) {
        let p = state.status.len();
        let target = |r: usize| -> Option<usize> {
            match state.status[r] {
                RankStatus::RecvWait { src, .. } => Some(src),
                RankStatus::SendWait { dst } => Some(dst),
                _ => None,
            }
        };
        let edge = |r: usize| -> String {
            match state.status[r] {
                RankStatus::RecvWait { src, tag, .. } => {
                    format!("rank {r} waits on rank {src} (tag {tag:#x})")
                }
                RankStatus::SendWait { dst } => {
                    format!("rank {r} waits to send to rank {dst} (mailbox at bound)")
                }
                _ => format!("rank {r}"),
            }
        };
        for r in 0..p {
            if let Some(on) = target(r) {
                if state.status[on].is_gone() {
                    let detail =
                        format!("{} which already finished; no message can ever arrive", edge(r));
                    return (r, SimError::Deadlock { rank: r, cycle: Vec::new(), detail });
                }
            }
        }
        // Every blocked rank waits on another blocked rank, so a walk from
        // the lowest blocked rank must close a cycle.
        let first_blocked = (0..p).find(|&r| state.status[r].is_blocked());
        // lint:allow(unwrap): at least one blocked rank exists at a stall
        let start = first_blocked.expect("stall has a blocked rank");
        let mut path = vec![start];
        let mut cur = start;
        let cycle = loop {
            // lint:allow(unwrap): blocked ranks always have a wait target
            let next = target(cur).expect("blocked rank has a wait target");
            if let Some(pos) = path.iter().position(|&r| r == next) {
                break path.split_off(pos);
            }
            path.push(next);
            cur = next;
        };
        // lint:allow(unwrap): a cycle is non-empty
        let victim = *cycle.iter().min().expect("cycle is non-empty");
        let detail = format!(
            "wait-for cycle: {}",
            cycle.iter().map(|&r| edge(r)).collect::<Vec<_>>().join("; ")
        );
        (victim, SimError::Deadlock { rank: victim, cycle, detail })
    }

    /// Take the next envelope `src` has in flight to `me`, or park until
    /// one arrives (or a stall rescue / abort cascade wakes `me` with an
    /// error). `pulled` and `now` freeze this rank's receive progress and
    /// virtual clock for the scheduler.
    ///
    /// The mailbox check and the park happen under one lock acquisition,
    /// so a deposit can never slip between "saw it empty" and "parked"
    /// (the classic lost wakeup).
    pub(crate) fn pull_or_block(
        &self,
        me: usize,
        src: usize,
        tag: u64,
        pulled: u64,
        now: f64,
    ) -> Result<Envelope, SimError> {
        let mut state = self.lock();
        loop {
            if let Some(err) = state.pending[me].take() {
                return Err(err);
            }
            if let Some(env) = state.mail.get_mut(&(src, me)).and_then(VecDeque::pop_front) {
                // Draining may reopen a mailbox the sender is parked on.
                if state.status[src] == (RankStatus::SendWait { dst: me }) {
                    Self::make_ready(&mut state, src);
                }
                return Ok(env);
            }
            state.status[me] = RankStatus::RecvWait { src, tag, pulled };
            state.clocks[me] = now;
            state.running = None;
            self.schedule_next(&mut state);
            state = self.wait_for_baton(me, state);
        }
    }

    /// Put `env` in flight from `me` to `dst`, parking while the mailbox
    /// is at the in-flight bound. Depositing to a finished rank reports
    /// [`Deposit::Closed`] (a buffered send to a rank that will never
    /// receive again is legal; the caller unwinds its bookkeeping).
    pub(crate) fn deposit(
        &self,
        me: usize,
        dst: usize,
        env: Envelope,
        now: f64,
    ) -> Result<Deposit, SimError> {
        let mut state = self.lock();
        let mut env = Some(env);
        loop {
            if let Some(err) = state.pending[me].take() {
                return Err(err);
            }
            if state.status[dst].is_gone() {
                return Ok(Deposit::Closed);
            }
            let q = state.mail.entry((me, dst)).or_default();
            if q.len() < self.max_inflight {
                // lint:allow(unwrap): env is only taken on this returning path
                q.push_back(env.take().expect("envelope deposited once"));
                let depth = q.len();
                state.high_water = state.high_water.max(depth);
                if matches!(state.status[dst], RankStatus::RecvWait { src, .. } if src == me) {
                    Self::make_ready(&mut state, dst);
                }
                return Ok(Deposit::Delivered);
            }
            state.status[me] = RankStatus::SendWait { dst };
            state.clocks[me] = now;
            state.running = None;
            self.schedule_next(&mut state);
            state = self.wait_for_baton(me, state);
        }
    }

    /// Retire `me` from the run: mark it done or failed, wake senders
    /// parked on its mailboxes (their deposit observes the closed
    /// endpoint), cascade the abort to every parked rank when the run is
    /// aborting (parked ranks no longer poll the abort flag, so the flag
    /// alone cannot reach them), and hand the baton on.
    ///
    /// Call order matters for the verifier: the engine must
    /// `mark_done`/set the abort flag *before* this releases the baton.
    pub(crate) fn finish(&self, me: usize, failed: bool) {
        let mut state = self.lock();
        state.status[me] = if failed { RankStatus::Failed } else { RankStatus::Done };
        state.pending[me] = None;
        let p = state.status.len();
        for r in 0..p {
            if state.status[r] == (RankStatus::SendWait { dst: me }) {
                Self::make_ready(&mut state, r);
            }
        }
        if failed && self.abort.load(Ordering::Relaxed) {
            // An injected RankCrashed does not set the abort flag, so the
            // peers live on and the failure-detection machinery (stall
            // rescue via the fault layer) gets to do its job.
            for r in 0..p {
                if state.status[r].is_blocked() {
                    state.pending[r] = Some(SimError::Aborted { rank: r });
                    Self::make_ready(&mut state, r);
                }
            }
        }
        if state.running == Some(me) {
            state.running = None;
            self.schedule_next(&mut state);
        }
    }
}
