//! Interconnect topologies and hop-count models.
//!
//! The network cost model charges a per-hop cost in addition to latency and
//! serialization time, so the topology only needs to answer one question:
//! how many hops separate two ranks?

/// Interconnection network shape. Ranks are numbered `0..p` and mapped onto
/// the topology in the natural order described per variant.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are documented in the variant docs
pub enum Topology {
    /// Full crossbar: every pair of distinct ranks is one hop apart.
    Crossbar,
    /// Unidirectional distances on a bidirectional ring: the hop count is
    /// the shorter way around.
    Ring,
    /// 2-D mesh with the given number of columns; ranks are laid out
    /// row-major. Hop count is the Manhattan distance.
    Mesh2D { cols: usize },
    /// Fat tree with the given down-link arity, as in the Meiko CS-2
    /// (arity-4 fat tree). Ranks are leaves; a message climbs to the lowest
    /// common ancestor and back down, so the hop count is twice the LCA
    /// level. Contention is not modeled (a fat tree provides full bisection
    /// bandwidth by construction).
    FatTree { arity: usize },
    /// Hierarchical machine: a fat tree whose leaves are *multicore nodes*
    /// of `node_size` ranks each (ranks `0..node_size` share node 0, and so
    /// on). Two ranks on the same node are one hop apart over the node's
    /// internal fabric (costed by [`crate::cost::MachineSpec::intra`] when
    /// set); ranks on different nodes pay the fat-tree climb between their
    /// *nodes* plus one hop into and out of each node.
    HierFatTree { node_size: usize, arity: usize },
}

fn ring_hops(p: usize, a: usize, b: usize) -> usize {
    let d = a.abs_diff(b);
    d.min(p - d)
}

fn mesh_hops(cols: usize, a: usize, b: usize) -> usize {
    let (ar, ac) = (a / cols, a % cols);
    let (br, bc) = (b / cols, b % cols);
    ar.abs_diff(br) + ac.abs_diff(bc)
}

fn fat_tree_hops(arity: usize, a: usize, b: usize) -> usize {
    debug_assert!(arity >= 2, "fat tree arity must be at least 2");
    let (mut x, mut y) = (a, b);
    let mut level = 0usize;
    while x != y {
        x /= arity;
        y /= arity;
        level += 1;
    }
    2 * level
}

impl Topology {
    /// Hop count between `a` and `b` in a communicator of `p` ranks.
    ///
    /// This is the entry point the cost model uses; `p` is needed by the
    /// ring (to take the shorter direction).
    pub fn hops_with_size(&self, p: usize, a: usize, b: usize) -> usize {
        debug_assert!(a < p && b < p, "ranks must be < p");
        if a == b {
            return 0;
        }
        match *self {
            Topology::Crossbar => 1,
            Topology::Ring => ring_hops(p, a, b),
            Topology::Mesh2D { cols } => mesh_hops(cols.max(1), a, b),
            Topology::FatTree { arity } => fat_tree_hops(arity.max(2), a, b),
            Topology::HierFatTree { node_size, arity } => {
                let ns = node_size.max(1);
                if a / ns == b / ns {
                    1 // same node: one hop over the intra-node fabric
                } else {
                    // Node-to-node fat-tree climb, plus the NIC hop out of
                    // the source node and into the destination node.
                    2 + fat_tree_hops(arity.max(2), a / ns, b / ns)
                }
            }
        }
    }

    /// Whether two ranks share a physical node. Only the hierarchical
    /// topology groups ranks into nodes; everywhere else each rank is its
    /// own node.
    pub fn colocated(&self, a: usize, b: usize) -> bool {
        match *self {
            Topology::HierFatTree { node_size, .. } => {
                let ns = node_size.max(1);
                a / ns == b / ns
            }
            _ => a == b,
        }
    }

    /// Ranks per physical node (1 for the flat topologies).
    pub fn node_size(&self) -> usize {
        match *self {
            Topology::HierFatTree { node_size, .. } => node_size.max(1),
            _ => 1,
        }
    }

    /// Largest hop count between any pair of ranks in a communicator of
    /// `p` ranks. Useful for upper-bounding collective costs.
    pub fn diameter(&self, p: usize) -> usize {
        if p <= 1 {
            return 0;
        }
        match *self {
            Topology::Crossbar => 1,
            Topology::Ring => p / 2,
            Topology::Mesh2D { cols } => {
                let cols = cols.max(1);
                let rows = p.div_ceil(cols);
                (rows - 1) + (cols - 1).min(p - 1)
            }
            Topology::FatTree { arity } => {
                let arity = arity.max(2);
                let mut levels = 0usize;
                let mut span = 1usize;
                while span < p {
                    span *= arity;
                    levels += 1;
                }
                2 * levels
            }
            Topology::HierFatTree { node_size, arity } => {
                let ns = node_size.max(1);
                let nodes = p.div_ceil(ns);
                if nodes <= 1 {
                    1
                } else {
                    2 + Topology::FatTree { arity }.diameter(nodes)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_is_single_hop() {
        let t = Topology::Crossbar;
        assert_eq!(t.hops_with_size(8, 0, 0), 0);
        assert_eq!(t.hops_with_size(8, 0, 7), 1);
        assert_eq!(t.hops_with_size(8, 3, 4), 1);
        assert_eq!(t.diameter(8), 1);
    }

    #[test]
    fn ring_takes_short_way() {
        let t = Topology::Ring;
        assert_eq!(t.hops_with_size(10, 0, 1), 1);
        assert_eq!(t.hops_with_size(10, 0, 9), 1); // wrap-around
        assert_eq!(t.hops_with_size(10, 0, 5), 5);
        assert_eq!(t.hops_with_size(10, 2, 8), 4);
        assert_eq!(t.diameter(10), 5);
    }

    #[test]
    fn mesh_uses_manhattan_distance() {
        let t = Topology::Mesh2D { cols: 4 };
        // rank 0 = (0,0), rank 5 = (1,1), rank 15 = (3,3)
        assert_eq!(t.hops_with_size(16, 0, 5), 2);
        assert_eq!(t.hops_with_size(16, 0, 15), 6);
        assert_eq!(t.hops_with_size(16, 7, 4), 3);
    }

    #[test]
    fn fat_tree_counts_up_and_down() {
        let t = Topology::FatTree { arity: 4 };
        // Same leaf group of 4: LCA at level 1 -> 2 hops.
        assert_eq!(t.hops_with_size(16, 0, 3), 2);
        // Different groups: LCA at level 2 -> 4 hops.
        assert_eq!(t.hops_with_size(16, 0, 4), 4);
        assert_eq!(t.hops_with_size(16, 0, 15), 4);
        assert_eq!(t.hops_with_size(16, 1, 1), 0);
    }

    #[test]
    fn fat_tree_diameter_covers_all_pairs() {
        let t = Topology::FatTree { arity: 4 };
        for p in [1usize, 2, 4, 5, 10, 16, 17] {
            let d = t.diameter(p);
            for a in 0..p {
                for b in 0..p {
                    assert!(t.hops_with_size(p, a, b) <= d, "p={p} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn hier_fat_tree_separates_intra_and_inter_node() {
        let t = Topology::HierFatTree { node_size: 4, arity: 4 };
        // Same node: single intra-node hop.
        assert_eq!(t.hops_with_size(32, 0, 3), 1);
        assert!(t.colocated(0, 3));
        assert!(!t.colocated(3, 4));
        // Adjacent nodes under one leaf switch: 2 NIC hops + 2 tree hops.
        assert_eq!(t.hops_with_size(32, 0, 4), 4);
        // Distant nodes climb higher: nodes 0 and 7 have LCA at level 2.
        assert_eq!(t.hops_with_size(32, 0, 31), 6);
        assert_eq!(t.node_size(), 4);
        assert_eq!(Topology::Crossbar.node_size(), 1);
        assert!(Topology::Crossbar.colocated(2, 2));
        assert!(!Topology::Crossbar.colocated(2, 3));
    }

    #[test]
    fn hier_fat_tree_diameter_covers_all_pairs() {
        let t = Topology::HierFatTree { node_size: 3, arity: 2 };
        for p in [1usize, 2, 3, 4, 7, 12, 13] {
            let d = t.diameter(p);
            for a in 0..p {
                for b in 0..p {
                    assert!(t.hops_with_size(p, a, b) <= d, "p={p} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn hops_are_symmetric() {
        for t in [
            Topology::Crossbar,
            Topology::Ring,
            Topology::Mesh2D { cols: 3 },
            Topology::FatTree { arity: 2 },
            Topology::HierFatTree { node_size: 2, arity: 2 },
        ] {
            for a in 0..9 {
                for b in 0..9 {
                    assert_eq!(
                        t.hops_with_size(9, a, b),
                        t.hops_with_size(9, b, a),
                        "topology {t:?} not symmetric at ({a},{b})"
                    );
                }
            }
        }
    }
}
