//! Sub-communicators: the `MPI_Comm_split` analogue.
//!
//! [`Comm::split`] partitions the world by a `color`; ranks sharing a
//! color form a sub-communicator with dense ranks `0..group size` ordered
//! by world rank. The returned [`SubComm`] borrows the world communicator
//! and offers the core collectives over the group, with a disjoint tag
//! space so group traffic can never be confused with world traffic.
//!
//! As with MPI, `split` is itself collective: every rank of the world
//! communicator must call it (with whatever color), in the same relative
//! order with respect to other collectives.

use crate::collectives::ReduceOp;
use crate::comm::Comm;
use crate::verify::{CollFingerprint, CollKind};

/// Tag-space marker for sub-communicator traffic (bit 63).
const SUB_TAG_BASE: u64 = 1 << 63;

/// Marker bit (bit 30 of the color key) for groups formed by splitting a
/// [`SubComm`] — keeps a nested group's tags and verifier registry ids
/// disjoint from every first-level split's, whatever colors are used.
const NESTED_COLOR_BIT: u32 = 1 << 30;

/// The color key a nested group stamps into its tag space: parent and
/// child colors packed side by side (15 bits each) under the nested
/// marker bit. Two levels of splitting with colors below 2^15 are
/// supported — far beyond the fleet hierarchy's needs — and the native
/// backend computes the identical key, keeping tags bitwise aligned
/// across backends.
pub(crate) fn nested_color_key(parent: u32, child: u32) -> u32 {
    NESTED_COLOR_BIT | ((parent & 0x7FFF) << 15) | (child & 0x7FFF)
}

/// A communicator over a subset of the world's ranks.
pub struct SubComm<'a> {
    world: &'a mut Comm,
    /// World ranks of the members, ascending; index = sub rank.
    members: Vec<usize>,
    /// This rank's position within `members`.
    rank: usize,
    /// Color the group was formed with (part of the tag space).
    color: u32,
    /// Per-group collective sequence number.
    seq: u64,
    /// Registry id for the verifier: distinguishes this group from the
    /// world communicator and from groups of other splits/colors.
    comm_id: u64,
}

impl Comm {
    /// Split the world communicator by color: ranks passing equal colors
    /// form a group. Collective over the world communicator.
    pub fn split(&mut self, color: u32) -> SubComm<'_> {
        // Allgather (world) of colors to agree on the membership.
        let mine = [color as f64];
        let all = self.allgather_f64s(&mine);
        let members: Vec<usize> =
            all.iter().enumerate().filter(|(_, c)| c[0] as u32 == color).map(|(r, _)| r).collect();
        let rank = members
            .iter()
            .position(|&r| r == self.rank())
            // lint:allow(unwrap): the allgather included this rank's own color
            .expect("calling rank is in its own color group");
        // All members observed the same split allgather, so they agree on
        // the world collective sequence number and derive the same id;
        // including it keeps successive same-color splits distinct in the
        // verifier's registry.
        let comm_id = SUB_TAG_BASE | (u64::from(color) << 32) | self.coll_seq;
        SubComm { world: self, members, rank, color, seq: 0, comm_id }
    }
}

impl SubComm<'_> {
    /// This rank's id within the group.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// World ranks of the group, ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Access the underlying world communicator (e.g. for `work`).
    pub fn world(&mut self) -> &mut Comm {
        self.world
    }

    /// Charge local compute on the member's clock; forwards to
    /// [`Comm::work`] so group-local algorithms (e.g. a shrunk EM resume
    /// after a rank failure) read naturally without reaching for
    /// [`SubComm::world`] on every step.
    pub fn work(&mut self, ops: u64) {
        self.world.work(ops);
    }

    /// Allreduce of a single scalar over the group; the group analogue of
    /// [`Comm::allreduce_scalar`].
    pub fn allreduce_scalar(&mut self, value: f64, op: ReduceOp) -> f64 {
        let mut buf = [value];
        self.allreduce_f64s(&mut buf, op);
        buf[0]
    }

    fn next_tag(&mut self) -> u64 {
        self.seq += 1;
        SUB_TAG_BASE | (u64::from(self.color) << 32) | self.seq
    }

    /// Enter a group collective: allocate its tag and cross-validate the
    /// fingerprint against the other group members (world-rank labelled,
    /// so divergence reports stay unambiguous).
    fn coll_enter(
        &mut self,
        kind: CollKind,
        root: Option<usize>,
        op: Option<ReduceOp>,
        elems: usize,
    ) -> u64 {
        let tag = self.next_tag();
        let world_rank = self.members[self.rank];
        if let Some(v) = &self.world.verify {
            if v.opts().check_collectives {
                let fp = CollFingerprint { kind, root, op, elems: Some(elems) };
                if let Err(e) =
                    v.check_collective(world_rank, self.comm_id, self.seq, self.members.len(), fp)
                {
                    self.world.fail(e);
                }
            }
        }
        tag
    }

    /// Hash a group collective's replicated result and cross-check it
    /// within the group (no-op unless replication checking is on).
    fn check_replicated_result(&mut self, label: &str, buf: &[f64]) {
        let world_rank = self.members[self.rank];
        let Some(v) = &self.world.verify else { return };
        if !v.opts().check_replication {
            return;
        }
        let hash = crate::verify::hash_f64s(buf);
        if let Err(e) =
            v.check_replication(world_rank, self.comm_id, self.seq, self.members.len(), label, hash)
        {
            self.world.fail(e);
        }
    }

    fn send(&mut self, sub_dst: usize, tag: u64, values: &[f64]) {
        let dst = self.members[sub_dst];
        self.world.send_f64s(dst, tag, values);
    }

    fn recv(&mut self, sub_src: usize, tag: u64) -> Vec<f64> {
        let src = self.members[sub_src];
        self.world.recv_f64s(src, tag)
    }

    /// Synchronize the group (dissemination barrier over group ranks).
    pub fn barrier(&mut self) {
        let p = self.size();
        if p <= 1 {
            return;
        }
        let tag = self.coll_enter(CollKind::Barrier, None, None, 0);
        let me = self.rank;
        let mut k = 1usize;
        while k < p {
            self.send((me + k) % p, tag, &[]);
            let _ = self.recv((me + p - k) % p, tag);
            k <<= 1;
        }
    }

    /// Broadcast from the group-rank `root` to the group (binomial tree).
    pub fn broadcast_f64s(&mut self, root: usize, buf: &mut [f64]) {
        let p = self.size();
        if p <= 1 {
            return;
        }
        let tag = self.coll_enter(CollKind::Broadcast, Some(root), None, buf.len());
        let me = self.rank;
        let vrank = (me + p - root) % p;
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let src = (me + p - mask) % p;
                let data = self.recv(src, tag);
                buf.copy_from_slice(&data);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank + mask < p {
                let dst = (me + mask) % p;
                let copy = buf.to_vec();
                self.send(dst, tag, &copy);
            }
            mask >>= 1;
        }
        self.check_replicated_result("group broadcast result", buf);
    }

    /// Allreduce over the group (recursive doubling with the standard
    /// non-power-of-two pre/post steps).
    pub fn allreduce_f64s(&mut self, buf: &mut [f64], op: ReduceOp) {
        let p = self.size();
        if p <= 1 {
            return;
        }
        let tag = self.coll_enter(CollKind::Allreduce, None, Some(op), buf.len());
        let me = self.rank;
        let pow2 = if p.is_power_of_two() { p } else { p.next_power_of_two() / 2 };
        let rem = p - pow2;

        if me >= pow2 {
            let partner = me - pow2;
            let copy = buf.to_vec();
            self.send(partner, tag, &copy);
            let data = self.recv(partner, tag);
            buf.copy_from_slice(&data);
            self.check_replicated_result("group allreduce result", buf);
            return;
        }
        if me < rem {
            let data = self.recv(me + pow2, tag);
            op.fold(buf, &data);
        }
        let mut mask = 1usize;
        while mask < pow2 {
            let partner = me ^ mask;
            let copy = buf.to_vec();
            self.send(partner, tag, &copy);
            let data = self.recv(partner, tag);
            op.fold(buf, &data);
            mask <<= 1;
        }
        if me < rem {
            let copy = buf.to_vec();
            self.send(me + pow2, tag, &copy);
        }
        self.check_replicated_result("group allreduce result", buf);
    }

    /// Gather variable-length vectors to the group-rank `root`,
    /// concatenated in group-rank order. `Some` on the root.
    pub fn gather_f64s(&mut self, root: usize, mine: &[f64]) -> Option<Vec<f64>> {
        let p = self.size();
        let tag = self.coll_enter(CollKind::Gather, Some(root), None, mine.len());
        if self.rank == root {
            let mut all = Vec::with_capacity(mine.len() * p);
            for src in 0..p {
                if src == self.rank {
                    all.extend_from_slice(mine);
                } else {
                    let data = self.recv(src, tag);
                    all.extend_from_slice(&data);
                }
            }
            Some(all)
        } else {
            self.send(root, tag, mine);
            None
        }
    }

    /// Split this group by color: members passing equal colors form a
    /// nested sub-communicator (`MPI_Comm_split` on a non-world
    /// communicator), with dense ranks ordered by parent group rank. The
    /// membership exchange runs as a group gather + broadcast — schedules
    /// both backends already share — so nested splits stay bitwise
    /// aligned across backends too. Collective over this group.
    pub fn split(&mut self, color: u32) -> SubComm<'_> {
        let p = self.size();
        let mut all = vec![0.0; p];
        if let Some(gathered) = self.gather_f64s(0, &[f64::from(color)]) {
            all.copy_from_slice(&gathered);
        }
        self.broadcast_f64s(0, &mut all);
        let members_sub: Vec<usize> =
            all.iter().enumerate().filter(|(_, c)| **c as u32 == color).map(|(r, _)| r).collect();
        let rank = members_sub
            .iter()
            .position(|&r| r == self.rank)
            // lint:allow(unwrap): the gather included this rank's own color
            .expect("calling rank is in its own color group");
        // Child membership in *world* ranks, so the nested group talks
        // straight over the world communicator like any first-level group.
        let members: Vec<usize> = members_sub.iter().map(|&r| self.members[r]).collect();
        let key = nested_color_key(self.color, color);
        // All members agree on the parent's collective sequence here (they
        // just ran the same gather + broadcast), so they derive the same
        // registry id; including it keeps successive same-color nested
        // splits distinct in the verifier's registry.
        let comm_id = SUB_TAG_BASE | (u64::from(key) << 32) | self.seq;
        SubComm { world: &mut *self.world, members, rank, color: key, seq: 0, comm_id }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::presets;
    use crate::engine::run_spmd_default;

    #[test]
    fn split_forms_dense_groups() {
        let spec = presets::zero_cost(7);
        let out = run_spmd_default(&spec, |c| {
            let color = (c.rank() % 2) as u32;
            let sub = c.split(color);
            (color, sub.rank(), sub.size(), sub.members().to_vec())
        })
        .unwrap();
        // Even group: world ranks 0,2,4,6; odd group: 1,3,5.
        for (rank, (color, sub_rank, size, members)) in out.per_rank.iter().enumerate() {
            if *color == 0 {
                assert_eq!(*size, 4);
                assert_eq!(*members, vec![0, 2, 4, 6]);
                assert_eq!(*sub_rank, rank / 2);
            } else {
                assert_eq!(*size, 3);
                assert_eq!(*members, vec![1, 3, 5]);
                assert_eq!(*sub_rank, rank / 2);
            }
        }
    }

    #[test]
    fn group_allreduce_stays_within_the_group() {
        let spec = presets::zero_cost(6);
        let out = run_spmd_default(&spec, |c| {
            let color = (c.rank() % 2) as u32;
            let mut sub = c.split(color);
            let mut buf = vec![1.0];
            sub.allreduce_f64s(&mut buf, ReduceOp::Sum);
            buf[0]
        })
        .unwrap();
        // Each group has 3 members; sums must not leak across groups.
        assert!(out.per_rank.iter().all(|&v| v == 3.0), "{:?}", out.per_rank);
    }

    #[test]
    fn group_broadcast_and_gather() {
        let spec = presets::zero_cost(5);
        let out = run_spmd_default(&spec, |c| {
            let color = u32::from(c.rank() >= 2); // {0,1} and {2,3,4}
            let mut sub = c.split(color);
            let mut buf = vec![0.0];
            if sub.rank() == 0 {
                buf[0] = 100.0 + f64::from(color);
            }
            sub.broadcast_f64s(0, &mut buf);
            let gathered = sub.gather_f64s(0, &[sub.rank() as f64]);
            (buf[0], gathered)
        })
        .unwrap();
        for (rank, (b, g)) in out.per_rank.iter().enumerate() {
            let color = usize::from(rank >= 2);
            assert_eq!(*b, 100.0 + color as f64, "rank {rank}");
            if rank == 0 {
                assert_eq!(g.as_deref(), Some(&[0.0, 1.0][..]));
            } else if rank == 2 {
                assert_eq!(g.as_deref(), Some(&[0.0, 1.0, 2.0][..]));
            } else {
                assert!(g.is_none());
            }
        }
    }

    #[test]
    fn group_barrier_and_world_collectives_interleave() {
        // Sub-collectives must not corrupt world collectives run after.
        let spec = presets::zero_cost(4);
        let out = run_spmd_default(&spec, |c| {
            {
                let mut sub = c.split((c.rank() / 2) as u32);
                sub.barrier();
                let mut v = vec![sub.rank() as f64];
                sub.allreduce_f64s(&mut v, ReduceOp::Sum);
                assert_eq!(v[0], 1.0); // 0 + 1 within each pair
            }
            c.allreduce_scalar(1.0, ReduceOp::Sum)
        })
        .unwrap();
        assert!(out.per_rank.iter().all(|&v| v == 4.0));
    }

    #[test]
    fn nested_split_forms_dense_groups() {
        // World {0..8} -> halves by rank/4 -> pairs by (rank/2)%2.
        let spec = presets::zero_cost(8);
        let out = run_spmd_default(&spec, |c| {
            let inner_color = ((c.rank() / 2) % 2) as u32;
            let mut sub = c.split((c.rank() / 4) as u32);
            let mut inner = sub.split(inner_color);
            let mut v = vec![inner.members()[inner.rank()] as f64];
            inner.allreduce_f64s(&mut v, ReduceOp::Sum);
            (inner.rank(), inner.size(), inner.members().to_vec(), v[0])
        })
        .unwrap();
        for (rank, (sub_rank, size, members, sum)) in out.per_rank.iter().enumerate() {
            // Pairs {0,1},{2,3},{4,5},{6,7} in world ranks.
            let base = rank - rank % 2;
            assert_eq!(*size, 2, "rank {rank}");
            assert_eq!(*members, vec![base, base + 1], "rank {rank}");
            assert_eq!(*sub_rank, rank % 2, "rank {rank}");
            assert_eq!(*sum, (base + base + 1) as f64, "rank {rank}");
        }
    }

    #[test]
    fn nested_split_ragged_groups_and_world_interleave() {
        // World of 7 -> {0,1,2,3} / {4,5,6} -> inner ragged splits; then a
        // world collective must still line up.
        let spec = presets::zero_cost(7);
        let out = run_spmd_default(&spec, |c| {
            let me = c.rank();
            let inner_sum = {
                let mut sub = c.split(u32::from(me >= 4));
                let inner_color = u32::from(sub.rank() == 0);
                let mut inner = sub.split(inner_color);
                inner.barrier();
                let mut v = vec![1.0];
                inner.allreduce_f64s(&mut v, ReduceOp::Sum);
                let gathered = inner.gather_f64s(0, &[me as f64]);
                if let Some(g) = &gathered {
                    assert_eq!(g.len(), inner.size());
                }
                v[0]
            };
            (inner_sum, c.allreduce_scalar(1.0, ReduceOp::Sum))
        })
        .unwrap();
        for (rank, (inner_sum, world_sum)) in out.per_rank.iter().enumerate() {
            // Group {0,1,2,3}: inner groups {0} and {1,2,3}; group
            // {4,5,6}: inner groups {4} and {5,6}.
            let expect = match rank {
                0 | 4 => 1.0,
                1..=3 => 3.0,
                _ => 2.0,
            };
            assert_eq!(*inner_sum, expect, "rank {rank}");
            assert_eq!(*world_sum, 7.0, "rank {rank}");
        }
    }

    #[test]
    fn singleton_groups_are_fine() {
        let spec = presets::zero_cost(3);
        let out = run_spmd_default(&spec, |c| {
            let mut sub = c.split(c.rank() as u32); // every rank alone
            sub.barrier();
            let mut v = vec![7.0];
            sub.allreduce_f64s(&mut v, ReduceOp::Sum);
            (sub.size(), v[0])
        })
        .unwrap();
        assert!(out.per_rank.iter().all(|&(s, v)| s == 1 && v == 7.0));
    }
}
