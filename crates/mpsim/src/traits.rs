//! Backend-neutral communication traits: the surface the P-AutoClass
//! driver actually uses, abstracted away from the simulator.
//!
//! [`Communicator`] captures exactly the operations `pautoclass::driver`,
//! `run`, and `recover` perform on a world communicator — point-to-point
//! sends/receives, the allreduce family (blocking and non-blocking),
//! broadcast/gather, phase spans, replication checks, and `split` — and
//! [`GroupCommunicator`] captures the subset a post-split group supports.
//! [`crate::Comm`] / [`crate::SubComm`] are the first implementors (the
//! simulated backend); the `shmcomm` crate provides a wall-clock native
//! backend over OS threads implementing the same traits with the same
//! collective schedules, so one generic SPMD driver runs on either.
//!
//! # Determinism contract
//!
//! An implementation must fold reductions in a *fixed, rank-ordered or
//! tree-ordered* sequence that depends only on `(algorithm, P, length)` —
//! never on arrival order, scheduling, or wall-clock races — so that two
//! backends running the same driver produce bitwise-identical `f64`
//! results. The schedules in [`crate::collectives`] define the reference
//! fold orders.
//!
//! # Errors
//!
//! Backends surface failures as [`CommError`], a backend-neutral type:
//! the simulator's typed [`SimError`]s pass through as
//! [`CommError::Sim`], while native-backend failure modes that have no
//! simulated analogue (a disconnected channel, a poisoned mutex) get
//! their own variants instead of escaping as raw panics.

use crate::collectives::ReduceOp;
use crate::comm::{Comm, Request};
use crate::cost::{AllreduceAlgo, MachineSpec};
use crate::error::SimError;
use crate::subcomm::SubComm;

/// A backend-neutral communication failure.
///
/// Every backend maps its failure modes here: the simulated engine's
/// errors arrive as [`CommError::Sim`] (preserving rank/sequence
/// diagnostics), and the native backend's shared-memory failure modes —
/// which the simulator cannot produce — get typed variants so callers
/// never have to parse panic strings.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CommError {
    /// A simulated-engine failure (rank panic, deadlock, verifier
    /// divergence, injected fault) with its full diagnostics.
    Sim(SimError),
    /// A rank's thread panicked with an unstructured payload.
    RankPanicked {
        /// The panicking rank, when identifiable.
        rank: usize,
        /// The panic message.
        detail: String,
    },
    /// A channel to a peer disconnected while traffic was still expected
    /// (the peer's thread is gone without a recorded cause).
    Disconnected {
        /// The rank that observed the disconnection.
        rank: usize,
        /// The peer whose endpoint vanished.
        peer: usize,
        /// What the rank was doing when the channel died.
        detail: String,
    },
    /// A shared lock was poisoned by a panic on another thread.
    Poisoned {
        /// The rank that found the lock poisoned.
        rank: usize,
        /// Which lock, and during what operation.
        detail: String,
    },
    /// A replicated value diverged across ranks on the native backend.
    Replication {
        /// The rank that detected the divergence.
        rank: usize,
        /// The caller-supplied label of the replicated value.
        label: String,
        /// Hash diagnostics.
        detail: String,
    },
    /// A non-blocking request was misused (waited twice).
    Request {
        /// The offending rank.
        rank: usize,
        /// What went wrong.
        detail: String,
    },
    /// A blocking receive exceeded the backend's wall-clock timeout.
    Timeout {
        /// The waiting rank.
        rank: usize,
        /// The peer it was waiting on.
        from: usize,
        /// The message tag it was waiting for.
        tag: u64,
    },
    /// The machine specification cannot be executed (e.g. zero ranks).
    InvalidMachine {
        /// Why the specification was rejected.
        detail: String,
    },
    /// The backend cannot express the requested mechanism (e.g. the
    /// native backend has no in-flight replay log, so
    /// `RecoveryPolicy::LocalReplay` is refused with this variant rather
    /// than silently degraded).
    Unsupported {
        /// The mechanism that was requested.
        what: String,
        /// Which backend refused it.
        backend: &'static str,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Sim(e) => write!(f, "{e}"),
            CommError::RankPanicked { rank, detail } => {
                write!(f, "rank {rank} panicked: {detail}")
            }
            CommError::Disconnected { rank, peer, detail } => {
                write!(f, "rank {rank}: channel to rank {peer} disconnected ({detail})")
            }
            CommError::Poisoned { rank, detail } => {
                write!(f, "rank {rank}: poisoned lock: {detail}")
            }
            CommError::Replication { rank, label, detail } => {
                write!(f, "rank {rank}: replicated value {label:?} diverged: {detail}")
            }
            CommError::Request { rank, detail } => {
                write!(f, "rank {rank}: request misuse: {detail}")
            }
            CommError::Timeout { rank, from, tag } => {
                write!(f, "rank {rank}: receive from rank {from} (tag {tag}) timed out")
            }
            CommError::InvalidMachine { detail } => write!(f, "invalid machine: {detail}"),
            CommError::Unsupported { what, backend } => {
                write!(f, "the {backend} backend does not support {what}")
            }
        }
    }
}

impl std::error::Error for CommError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CommError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CommError {
    fn from(e: SimError) -> Self {
        CommError::Sim(e)
    }
}

/// The world-communicator surface the SPMD driver is generic over.
///
/// Implementations: [`crate::Comm`] (simulated virtual time) and
/// `shmcomm::NativeComm` (wall-clock OS threads). All methods carry the
/// SPMD discipline of their concrete counterparts: collectives must be
/// called by every rank in the same order with compatible arguments, and
/// every non-blocking request must be retired by exactly one
/// [`Communicator::wait`] / [`Communicator::waitall`].
pub trait Communicator {
    /// Handle for a non-blocking operation posted on this backend.
    type Req;
    /// The sub-communicator type [`Communicator::split`] produces; borrows
    /// the world communicator for its lifetime, exactly like
    /// [`crate::SubComm`].
    type Group<'g>: GroupCommunicator
    where
        Self: 'g;

    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;
    /// Number of ranks in the communicator.
    fn size(&self) -> usize;
    /// The machine description (used for algorithm selection; on the
    /// native backend it describes the machine being *compared against*,
    /// so both backends take identical algorithm-choice branches).
    fn machine(&self) -> &MachineSpec;
    /// Current time on this rank, in seconds (virtual or wall-clock,
    /// depending on the backend).
    fn now(&self) -> f64;
    /// Account `ops` abstract operations of local compute. The simulator
    /// charges virtual time; the native backend measures real time
    /// implicitly, so this is free there.
    fn work(&mut self, ops: u64);
    /// Open a named phase span (see [`crate::Comm::enter_phase`]).
    fn enter_phase(&mut self, name: &str);
    /// Close the innermost open phase span.
    fn exit_phase(&mut self);

    /// Blocking typed send of an `f64` slice.
    fn send_f64s(&mut self, dst: usize, tag: u64, values: &[f64]);
    /// Blocking typed receive of an `f64` vector.
    fn recv_f64s(&mut self, src: usize, tag: u64) -> Vec<f64>;
    /// Non-blocking send; the returned request must be waited.
    fn isend_f64s(&mut self, dst: usize, tag: u64, values: &[f64]) -> Self::Req;
    /// Post a non-blocking receive; the matching wait yields the payload.
    fn irecv_f64s(&mut self, src: usize, tag: u64) -> Self::Req;
    /// Retire a non-blocking request (receives yield `Some(payload)`).
    fn wait(&mut self, req: &mut Self::Req) -> Option<Vec<f64>>;
    /// Retire every request in order, collecting each wait's result.
    fn waitall(&mut self, reqs: &mut [Self::Req]) -> Vec<Option<Vec<f64>>>;

    /// Synchronize all ranks.
    fn barrier(&mut self);
    /// Broadcast `buf` from `root` to all ranks.
    fn broadcast_f64s(&mut self, root: usize, buf: &mut [f64]);
    /// Gather each rank's vector to `root`, concatenated in rank order.
    fn gather_f64s(&mut self, root: usize, mine: &[f64]) -> Option<Vec<f64>>;
    /// Allreduce with the machine's default algorithm.
    fn allreduce_f64s(&mut self, buf: &mut [f64], op: ReduceOp);
    /// Allreduce with an explicit algorithm (`Auto` resolves identically
    /// on every rank and backend).
    fn allreduce_f64s_with(&mut self, buf: &mut [f64], op: ReduceOp, algo: AllreduceAlgo);
    /// Allreduce of a single scalar; returns the reduced value.
    fn allreduce_scalar(&mut self, value: f64, op: ReduceOp) -> f64 {
        let mut buf = [value];
        self.allreduce_f64s(&mut buf, op);
        buf[0]
    }
    /// Non-blocking allreduce with the machine's default algorithm.
    fn iallreduce_f64s(&mut self, buf: &mut [f64], op: ReduceOp) -> Self::Req;
    /// Non-blocking allreduce with an explicit algorithm. Data movement
    /// may run eagerly (both current backends do), which keeps results
    /// bitwise identical to the blocking call; only completion timing is
    /// deferred.
    fn iallreduce_f64s_with(
        &mut self,
        buf: &mut [f64],
        op: ReduceOp,
        algo: AllreduceAlgo,
    ) -> Self::Req;

    /// Drop this rank's in-flight replay-log entries (called by a
    /// checkpoint publisher right after a snapshot is stored: nothing
    /// delivered before the snapshot can need replaying). Default no-op
    /// for backends without a replay log, mirroring how
    /// [`Communicator::work`] is free on the native backend.
    fn replay_truncate(&mut self) {}

    /// Whether replication-invariant hashing is enabled for this run.
    fn checks_replication(&self) -> bool;
    /// Assert that `data` is bitwise identical on every rank (collective;
    /// no-op unless replication checking is enabled).
    fn verify_replicated(&mut self, label: &str, data: &[f64]);

    /// Split the communicator by color; ranks passing equal colors form a
    /// group. Collective over the world communicator.
    fn split(&mut self, color: u32) -> Self::Group<'_>;
}

/// The group-communicator surface a [`Communicator::split`] result
/// supports: the collectives the shrink-and-redistribute recovery path
/// uses, plus phase attribution on the underlying world clock.
pub trait GroupCommunicator {
    /// The nested sub-communicator type [`GroupCommunicator::split`]
    /// produces; borrows this group (and through it the world
    /// communicator) for its lifetime.
    type Child<'c>: GroupCommunicator
    where
        Self: 'c;

    /// This rank's id within the group.
    fn rank(&self) -> usize;
    /// Group size.
    fn size(&self) -> usize;
    /// World ranks of the group, ascending.
    fn members(&self) -> &[usize];
    /// Account local compute on the member's world clock.
    fn work(&mut self, ops: u64);
    /// Open a named phase span on the underlying world communicator.
    fn enter_phase(&mut self, name: &str);
    /// Close the innermost open phase span on the world communicator.
    fn exit_phase(&mut self);
    /// Synchronize the group.
    fn barrier(&mut self);
    /// Broadcast from the group-rank `root` to the group.
    fn broadcast_f64s(&mut self, root: usize, buf: &mut [f64]);
    /// Allreduce over the group.
    fn allreduce_f64s(&mut self, buf: &mut [f64], op: ReduceOp);
    /// Allreduce of a single scalar over the group.
    fn allreduce_scalar(&mut self, value: f64, op: ReduceOp) -> f64 {
        let mut buf = [value];
        self.allreduce_f64s(&mut buf, op);
        buf[0]
    }
    /// Gather variable-length vectors to the group-rank `root`.
    fn gather_f64s(&mut self, root: usize, mine: &[f64]) -> Option<Vec<f64>>;
    /// Split this group by color: members passing equal colors form a
    /// nested sub-communicator (`MPI_Comm_split` on a non-world
    /// communicator). Collective over this group.
    fn split(&mut self, color: u32) -> Self::Child<'_>;
}

impl Communicator for Comm {
    type Req = Request;
    type Group<'g> = SubComm<'g>;

    fn rank(&self) -> usize {
        Comm::rank(self)
    }
    fn size(&self) -> usize {
        Comm::size(self)
    }
    fn machine(&self) -> &MachineSpec {
        Comm::machine(self)
    }
    fn now(&self) -> f64 {
        Comm::now(self)
    }
    fn work(&mut self, ops: u64) {
        Comm::work(self, ops);
    }
    fn enter_phase(&mut self, name: &str) {
        Comm::enter_phase(self, name);
    }
    fn exit_phase(&mut self) {
        Comm::exit_phase(self);
    }
    fn send_f64s(&mut self, dst: usize, tag: u64, values: &[f64]) {
        Comm::send_f64s(self, dst, tag, values);
    }
    fn recv_f64s(&mut self, src: usize, tag: u64) -> Vec<f64> {
        Comm::recv_f64s(self, src, tag)
    }
    fn isend_f64s(&mut self, dst: usize, tag: u64, values: &[f64]) -> Request {
        Comm::isend_f64s(self, dst, tag, values)
    }
    fn irecv_f64s(&mut self, src: usize, tag: u64) -> Request {
        Comm::irecv_f64s(self, src, tag)
    }
    fn wait(&mut self, req: &mut Request) -> Option<Vec<f64>> {
        Comm::wait(self, req)
    }
    fn waitall(&mut self, reqs: &mut [Request]) -> Vec<Option<Vec<f64>>> {
        Comm::waitall(self, reqs)
    }
    fn barrier(&mut self) {
        Comm::barrier(self);
    }
    fn broadcast_f64s(&mut self, root: usize, buf: &mut [f64]) {
        Comm::broadcast_f64s(self, root, buf);
    }
    fn gather_f64s(&mut self, root: usize, mine: &[f64]) -> Option<Vec<f64>> {
        Comm::gather_f64s(self, root, mine)
    }
    fn allreduce_f64s(&mut self, buf: &mut [f64], op: ReduceOp) {
        Comm::allreduce_f64s(self, buf, op);
    }
    fn allreduce_f64s_with(&mut self, buf: &mut [f64], op: ReduceOp, algo: AllreduceAlgo) {
        Comm::allreduce_f64s_with(self, buf, op, algo);
    }
    fn allreduce_scalar(&mut self, value: f64, op: ReduceOp) -> f64 {
        Comm::allreduce_scalar(self, value, op)
    }
    fn iallreduce_f64s(&mut self, buf: &mut [f64], op: ReduceOp) -> Request {
        Comm::iallreduce_f64s(self, buf, op)
    }
    fn iallreduce_f64s_with(
        &mut self,
        buf: &mut [f64],
        op: ReduceOp,
        algo: AllreduceAlgo,
    ) -> Request {
        Comm::iallreduce_f64s_with(self, buf, op, algo)
    }
    fn replay_truncate(&mut self) {
        Comm::replay_truncate(self);
    }
    fn checks_replication(&self) -> bool {
        Comm::checks_replication(self)
    }
    fn verify_replicated(&mut self, label: &str, data: &[f64]) {
        Comm::verify_replicated(self, label, data);
    }
    fn split(&mut self, color: u32) -> SubComm<'_> {
        Comm::split(self, color)
    }
}

impl GroupCommunicator for SubComm<'_> {
    type Child<'c>
        = SubComm<'c>
    where
        Self: 'c;

    fn rank(&self) -> usize {
        SubComm::rank(self)
    }
    fn size(&self) -> usize {
        SubComm::size(self)
    }
    fn members(&self) -> &[usize] {
        SubComm::members(self)
    }
    fn work(&mut self, ops: u64) {
        SubComm::work(self, ops);
    }
    fn enter_phase(&mut self, name: &str) {
        self.world().enter_phase(name);
    }
    fn exit_phase(&mut self) {
        self.world().exit_phase();
    }
    fn barrier(&mut self) {
        SubComm::barrier(self);
    }
    fn broadcast_f64s(&mut self, root: usize, buf: &mut [f64]) {
        SubComm::broadcast_f64s(self, root, buf);
    }
    fn allreduce_f64s(&mut self, buf: &mut [f64], op: ReduceOp) {
        SubComm::allreduce_f64s(self, buf, op);
    }
    fn allreduce_scalar(&mut self, value: f64, op: ReduceOp) -> f64 {
        SubComm::allreduce_scalar(self, value, op)
    }
    fn gather_f64s(&mut self, root: usize, mine: &[f64]) -> Option<Vec<f64>> {
        SubComm::gather_f64s(self, root, mine)
    }
    fn split(&mut self, color: u32) -> SubComm<'_> {
        SubComm::split(self, color)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::presets;
    use crate::engine::run_spmd_default;

    /// A generic SPMD body exercising the trait surface end to end on the
    /// simulated backend.
    fn generic_body<C: Communicator>(comm: &mut C) -> (f64, f64, usize) {
        comm.enter_phase("trait-test");
        let me = comm.rank() as f64;
        let sum = comm.allreduce_scalar(me + 1.0, ReduceOp::Sum);
        let mut buf = vec![me; 3];
        comm.allreduce_f64s_with(&mut buf, ReduceOp::Max, AllreduceAlgo::RecursiveDoubling);
        let mut req = comm.iallreduce_f64s(&mut buf, ReduceOp::Sum);
        comm.work(10);
        comm.wait(&mut req);
        let sub_size = {
            let sub = comm.split((comm.rank() % 2) as u32);
            sub.size()
        };
        comm.exit_phase();
        (sum, buf[0], sub_size)
    }

    #[test]
    fn comm_implements_the_trait() {
        let spec = presets::zero_cost(4);
        let out = run_spmd_default(&spec, |c| generic_body(c)).unwrap();
        for (rank, (sum, m, sub)) in out.per_rank.iter().enumerate() {
            assert_eq!(*sum, 10.0, "rank {rank}");
            // max over ranks = 3, then summed over 4 ranks by iallreduce.
            assert_eq!(*m, 12.0, "rank {rank}");
            assert_eq!(*sub, 2, "rank {rank}");
        }
    }

    #[test]
    fn comm_error_display_names_causes() {
        let e = CommError::from(SimError::Aborted { rank: 1 });
        assert!(std::error::Error::source(&e).is_some());
        let d = CommError::Disconnected { rank: 0, peer: 2, detail: "recv".into() };
        assert!(d.to_string().contains("rank 2"));
        let p = CommError::Poisoned { rank: 1, detail: "replication registry".into() };
        assert!(p.to_string().contains("poisoned"));
    }
}
