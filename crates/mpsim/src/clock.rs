//! Per-rank virtual clocks with phase accounting.
//!
//! Each rank owns a [`Clock`]. Local computation advances it by modeled
//! compute time; communication advances it by endpoint overhead and, on the
//! receive side, possibly by *idle* time spent waiting for a message whose
//! virtual arrival is later than the receiver's current time. The elapsed
//! time of an SPMD run is the maximum final clock across ranks.

/// A virtual clock, in seconds, split into compute / communication / idle
/// components. The invariant `now == compute + comm + idle` always holds
/// (up to floating-point rounding) because every advance goes through one
/// of the three typed methods.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Clock {
    now: f64,
    compute: f64,
    comm: f64,
    idle: f64,
}

impl Clock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Clock::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Time spent computing.
    pub fn compute(&self) -> f64 {
        self.compute
    }

    /// Time spent in communication endpoint work (send/recv overhead).
    pub fn comm(&self) -> f64 {
        self.comm
    }

    /// Time spent blocked waiting for messages.
    pub fn idle(&self) -> f64 {
        self.idle
    }

    /// Advance by `dt` seconds of computation. Negative or non-finite
    /// durations are clamped to zero (a measured duration can round to a
    /// denormal; the clock must stay monotone).
    pub fn advance_compute(&mut self, dt: f64) {
        let dt = sanitize(dt);
        self.now += dt;
        self.compute += dt;
    }

    /// Advance by `dt` seconds of communication endpoint work.
    pub fn advance_comm(&mut self, dt: f64) {
        let dt = sanitize(dt);
        self.now += dt;
        self.comm += dt;
    }

    /// Wait (idle) until at least time `t`. No-op if `t` is in the past.
    pub fn wait_until(&mut self, t: f64) {
        if t > self.now {
            self.idle += t - self.now;
            self.now = t;
        }
    }
}

fn sanitize(dt: f64) -> f64 {
    if dt.is_finite() && dt > 0.0 {
        dt
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = Clock::new();
        assert_eq!(c.now(), 0.0);
        assert_eq!(c.compute() + c.comm() + c.idle(), 0.0);
    }

    #[test]
    fn advances_accumulate_by_kind() {
        let mut c = Clock::new();
        c.advance_compute(1.5);
        c.advance_comm(0.25);
        c.wait_until(3.0);
        assert_eq!(c.now(), 3.0);
        assert_eq!(c.compute(), 1.5);
        assert_eq!(c.comm(), 0.25);
        assert_eq!(c.idle(), 3.0 - 1.75);
    }

    #[test]
    fn wait_until_past_is_noop() {
        let mut c = Clock::new();
        c.advance_compute(2.0);
        c.wait_until(1.0);
        assert_eq!(c.now(), 2.0);
        assert_eq!(c.idle(), 0.0);
    }

    #[test]
    fn negative_and_nan_durations_are_clamped() {
        let mut c = Clock::new();
        c.advance_compute(-1.0);
        c.advance_comm(f64::NAN);
        c.advance_compute(f64::INFINITY);
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    fn components_sum_to_now() {
        let mut c = Clock::new();
        for i in 0..100 {
            c.advance_compute(0.001 * i as f64);
            c.advance_comm(0.0005);
            c.wait_until(c.now() + if i % 3 == 0 { 0.01 } else { 0.0 });
        }
        let sum = c.compute() + c.comm() + c.idle();
        assert!((c.now() - sum).abs() < 1e-9, "now={} sum={}", c.now(), sum);
    }
}
