//! Per-rank virtual clocks with phase accounting.
//!
//! Each rank owns a [`Clock`]. Local computation advances it by modeled
//! compute time; communication advances it by endpoint overhead and, on the
//! receive side, possibly by *idle* time spent waiting for a message whose
//! virtual arrival is later than the receiver's current time. The elapsed
//! time of an SPMD run is the maximum final clock across ranks.

/// Compute / comm / idle seconds attributed to one named phase bucket.
///
/// Bucket 0 is the *default* bucket: everything not under an explicit
/// phase span lands there, so the buckets always partition the clock —
/// `Σ buckets == now` to the same rounding the global split enjoys.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Seconds of modeled computation in this phase.
    pub compute: f64,
    /// Seconds of communication endpoint work in this phase.
    pub comm: f64,
    /// Seconds spent blocked waiting for messages in this phase.
    pub idle: f64,
    /// Seconds of in-flight communication hidden behind other work in this
    /// phase (non-blocking operations whose wire time elapsed while the
    /// rank kept computing). Overlap is a *shadow* measure of the same wall
    /// interval already counted as compute/comm/idle, so it is **not**
    /// part of [`PhaseTimes::total`] — the partition invariant is
    /// unaffected.
    pub overlap: f64,
}

impl PhaseTimes {
    /// Total seconds attributed to this phase (overlap excluded: it
    /// shadows time already counted in the three primary components).
    pub fn total(&self) -> f64 {
        self.compute + self.comm + self.idle
    }
}

/// A virtual clock, in seconds, split into compute / communication / idle
/// components. The invariant `now == compute + comm + idle` always holds
/// (up to floating-point rounding) because every advance goes through one
/// of the three typed methods.
///
/// Each advance is additionally attributed to the *current phase bucket*
/// (see [`Clock::push_phase`] / [`Clock::set_phase`]); the communicator's
/// `enter_phase`/`exit_phase` span API sits on top of this.
#[derive(Debug, Clone, PartialEq)]
pub struct Clock {
    now: f64,
    compute: f64,
    comm: f64,
    idle: f64,
    /// In-flight communication hidden behind other work; a shadow measure
    /// outside the `now == compute + comm + idle` partition.
    overlap: f64,
    /// Per-phase time buckets; index 0 is the default bucket.
    phases: Vec<PhaseTimes>,
    /// Index of the bucket currently receiving advances.
    cur: usize,
}

impl Default for Clock {
    fn default() -> Self {
        Clock {
            now: 0.0,
            compute: 0.0,
            comm: 0.0,
            idle: 0.0,
            overlap: 0.0,
            phases: vec![PhaseTimes::default()],
            cur: 0,
        }
    }
}

impl Clock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Clock::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Time spent computing.
    pub fn compute(&self) -> f64 {
        self.compute
    }

    /// Time spent in communication endpoint work (send/recv overhead).
    pub fn comm(&self) -> f64 {
        self.comm
    }

    /// Time spent blocked waiting for messages.
    pub fn idle(&self) -> f64 {
        self.idle
    }

    /// In-flight communication time hidden behind other work (non-blocking
    /// operations). A shadow measure of intervals already counted in the
    /// three primary components; never part of `now`.
    pub fn overlap(&self) -> f64 {
        self.overlap
    }

    /// Advance by `dt` seconds of computation. Negative or non-finite
    /// durations are clamped to zero (a measured duration can round to a
    /// denormal; the clock must stay monotone).
    pub fn advance_compute(&mut self, dt: f64) {
        let dt = sanitize(dt);
        self.now += dt;
        self.compute += dt;
        self.phases[self.cur].compute += dt;
    }

    /// Advance by `dt` seconds of communication endpoint work.
    pub fn advance_comm(&mut self, dt: f64) {
        let dt = sanitize(dt);
        self.now += dt;
        self.comm += dt;
        self.phases[self.cur].comm += dt;
    }

    /// Wait (idle) until at least time `t`. No-op if `t` is in the past.
    pub fn wait_until(&mut self, t: f64) {
        if t > self.now {
            self.idle += t - self.now;
            self.phases[self.cur].idle += t - self.now;
            self.now = t;
        }
    }

    /// Record `dt` seconds of hidden (overlapped) communication. Does not
    /// move `now`; the interval is already counted as compute/comm/idle.
    pub fn add_overlap(&mut self, dt: f64) {
        let dt = sanitize(dt);
        self.overlap += dt;
        self.phases[self.cur].overlap += dt;
    }

    /// Roll back up to `dt` seconds of idle time most recently charged to
    /// the *current* phase bucket, rewinding `now` by the same amount.
    ///
    /// This is the primitive behind non-blocking collectives: the movement
    /// runs eagerly (charging idle as if blocking), then the idle portion
    /// is retracted so the caller's clock reads as if the wire time had
    /// not yet been waited for. The retraction is capped at both the
    /// global and the current bucket's accumulated idle, so the
    /// `now == compute + comm + idle` partition stays exact.
    ///
    /// Returns the amount actually retracted.
    pub fn retract_idle(&mut self, dt: f64) -> f64 {
        let dt = sanitize(dt).min(self.idle).min(self.phases[self.cur].idle);
        self.now -= dt;
        self.idle -= dt;
        self.phases[self.cur].idle -= dt;
        dt
    }

    /// Allocate a new phase bucket and return its index. The new bucket
    /// does **not** become current; call [`Clock::set_phase`] for that.
    pub fn push_phase(&mut self) -> usize {
        self.phases.push(PhaseTimes::default());
        self.phases.len() - 1
    }

    /// Direct subsequent advances into bucket `idx`.
    ///
    /// # Panics
    /// Panics if `idx` was not returned by [`Clock::push_phase`] (or 0).
    pub fn set_phase(&mut self, idx: usize) {
        assert!(idx < self.phases.len(), "phase index {idx} out of range");
        self.cur = idx;
    }

    /// Index of the bucket currently receiving advances (0 = default).
    pub fn current_phase(&self) -> usize {
        self.cur
    }

    /// The per-phase time buckets; index 0 is the default bucket.
    pub fn phase_times(&self) -> &[PhaseTimes] {
        &self.phases
    }
}

fn sanitize(dt: f64) -> f64 {
    if dt.is_finite() && dt > 0.0 {
        dt
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = Clock::new();
        assert_eq!(c.now(), 0.0);
        assert_eq!(c.compute() + c.comm() + c.idle(), 0.0);
    }

    #[test]
    fn advances_accumulate_by_kind() {
        let mut c = Clock::new();
        c.advance_compute(1.5);
        c.advance_comm(0.25);
        c.wait_until(3.0);
        assert_eq!(c.now(), 3.0);
        assert_eq!(c.compute(), 1.5);
        assert_eq!(c.comm(), 0.25);
        assert_eq!(c.idle(), 3.0 - 1.75);
    }

    #[test]
    fn wait_until_past_is_noop() {
        let mut c = Clock::new();
        c.advance_compute(2.0);
        c.wait_until(1.0);
        assert_eq!(c.now(), 2.0);
        assert_eq!(c.idle(), 0.0);
    }

    #[test]
    fn negative_and_nan_durations_are_clamped() {
        let mut c = Clock::new();
        c.advance_compute(-1.0);
        c.advance_comm(f64::NAN);
        c.advance_compute(f64::INFINITY);
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    fn phase_buckets_partition_the_clock() {
        let mut c = Clock::new();
        c.advance_compute(1.0); // default bucket
        let a = c.push_phase();
        let b = c.push_phase();
        c.set_phase(a);
        c.advance_compute(2.0);
        c.advance_comm(0.5);
        c.set_phase(b);
        c.wait_until(5.0);
        c.set_phase(0);
        c.advance_comm(0.25);
        let phases = c.phase_times();
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[0].compute, 1.0);
        assert_eq!(phases[0].comm, 0.25);
        assert_eq!(phases[a].compute, 2.0);
        assert_eq!(phases[a].comm, 0.5);
        assert_eq!(phases[b].idle, 5.0 - 3.5);
        let sum: f64 = phases.iter().map(PhaseTimes::total).sum();
        assert!((sum - c.now()).abs() < 1e-12, "sum={} now={}", sum, c.now());
    }

    #[test]
    #[should_panic(expected = "phase index")]
    fn set_phase_rejects_unknown_bucket() {
        let mut c = Clock::new();
        c.set_phase(3);
    }

    #[test]
    fn retract_idle_rewinds_only_charged_idle() {
        let mut c = Clock::new();
        c.advance_compute(1.0);
        c.wait_until(1.5);
        // More than was charged: capped at the 0.5 s of idle.
        assert_eq!(c.retract_idle(2.0), 0.5);
        assert_eq!(c.now(), 1.0);
        assert_eq!(c.idle(), 0.0);
        // Nothing left to retract.
        assert_eq!(c.retract_idle(0.1), 0.0);
        assert_eq!(c.now(), 1.0);
    }

    #[test]
    fn retract_idle_is_capped_by_current_bucket() {
        let mut c = Clock::new();
        c.wait_until(1.0); // idle in default bucket
        let a = c.push_phase();
        c.set_phase(a);
        c.wait_until(1.25); // 0.25 s idle in bucket a
        assert_eq!(c.retract_idle(1.0), 0.25);
        assert_eq!(c.phase_times()[a].idle, 0.0);
        assert_eq!(c.phase_times()[0].idle, 1.0);
        let sum: f64 = c.phase_times().iter().map(PhaseTimes::total).sum();
        assert!((sum - c.now()).abs() < 1e-12);
    }

    #[test]
    fn overlap_is_a_shadow_measure() {
        let mut c = Clock::new();
        c.advance_compute(2.0);
        c.add_overlap(0.75);
        c.add_overlap(-1.0); // clamped
        assert_eq!(c.now(), 2.0);
        assert_eq!(c.overlap(), 0.75);
        assert_eq!(c.phase_times()[0].overlap, 0.75);
        // total() excludes overlap, preserving the partition invariant.
        assert_eq!(c.phase_times()[0].total(), 2.0);
    }

    #[test]
    fn components_sum_to_now() {
        let mut c = Clock::new();
        for i in 0..100 {
            c.advance_compute(0.001 * i as f64);
            c.advance_comm(0.0005);
            c.wait_until(c.now() + if i % 3 == 0 { 0.01 } else { 0.0 });
        }
        let sum = c.compute() + c.comm() + c.idle();
        assert!((c.now() - sum).abs() < 1e-9, "now={} sum={}", c.now(), sum);
    }
}
