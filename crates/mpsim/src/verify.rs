//! SPMD correctness verification: collective fingerprinting, wait-for-graph
//! deadlock detection, and replication-invariant hashing.
//!
//! A simulated SPMD program can go wrong in ways that a real MPI program
//! would only reveal as a hang or as silently wrong numbers: a rank calling
//! a different collective than its peers, a send/recv cycle, or a
//! supposedly replicated value drifting apart across ranks. This module
//! turns each of those into a precise, fast [`SimError`]:
//!
//! * **Collective fingerprinting** ([`VerifyOptions::check_collectives`]):
//!   every collective call posts a [`CollFingerprint`] — kind, root,
//!   reduction operator, element count — into a per-run registry keyed by
//!   `(communicator, sequence number)`. The first rank to arrive sets the
//!   reference; any later rank whose fingerprint differs fails the run
//!   immediately, naming both ranks and both calls.
//! * **Deadlock detection** ([`VerifyOptions::detect_deadlock`], on by
//!   default): every blocking receive registers which rank it waits on.
//!   The detector piggybacks on the receive polling loop and reports a
//!   [`SimError::Deadlock`] with the full wait-for graph as soon as it
//!   finds a cycle of quiescent waits, or a rank waiting on a peer whose
//!   body already returned — typically within one 25 ms polling slice
//!   instead of the 120 s receive timeout.
//! * **Replication hashing** ([`VerifyOptions::check_replication`]):
//!   allreduce and broadcast results — which the simulator guarantees to be
//!   bitwise identical on every rank — are hashed per rank and
//!   cross-checked; [`crate::Comm::verify_replicated`] extends the same
//!   check to any value the program asserts is replicated (P-AutoClass
//!   uses it on the model parameters across the EM loop).
//!
//! # Why the deadlock detector cannot false-positive
//!
//! An edge `r → s` ("r blocked receiving from s") is *quiescent* when `r`
//! has pulled every message `s` ever enqueued to it. Send counters are
//! bumped before the envelope enters the channel, and a rank's pull counter
//! and wait registration are updated under the same mutex the detector
//! locks, so a quiescent edge means there is genuinely nothing in flight.
//! A rank only registers as waiting *after* its preceding sends, so if the
//! detector sees every rank of a cycle registered and every edge quiescent,
//! none of them can ever be woken: that is a proof of deadlock, not a
//! timeout heuristic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::collectives::ReduceOp;
use crate::error::SimError;

/// Lock a verifier mutex, recovering from poisoning: a rank that panics
/// (e.g. while aborting the run) may die holding a lock, and the detectors
/// on surviving ranks must keep working through the teardown rather than
/// cascade the panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Which verification layers run during an SPMD run (see
/// [`crate::SimOptions::verify`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyOptions {
    /// Cross-validate every collective call's fingerprint across ranks.
    pub check_collectives: bool,
    /// Detect send/recv cycles and waits on finished ranks; on by default
    /// (it costs nothing until a receive has already stalled for a slice).
    pub detect_deadlock: bool,
    /// Hash allreduce/broadcast results (and explicit
    /// [`crate::Comm::verify_replicated`] buffers) per rank and require
    /// bitwise identity.
    pub check_replication: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions { check_collectives: false, detect_deadlock: true, check_replication: false }
    }
}

impl VerifyOptions {
    /// Every check enabled.
    pub fn all() -> Self {
        VerifyOptions { check_collectives: true, detect_deadlock: true, check_replication: true }
    }

    /// Every check disabled (the fast path: no shared state is consulted).
    pub fn none() -> Self {
        VerifyOptions { check_collectives: false, detect_deadlock: false, check_replication: false }
    }

    pub(crate) fn any(&self) -> bool {
        self.check_collectives || self.detect_deadlock || self.check_replication
    }
}

/// The kind of collective a rank invoked (part of a [`CollFingerprint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variants mirror the Comm methods one-to-one
pub enum CollKind {
    Barrier,
    Broadcast,
    Reduce,
    Allreduce,
    Gather,
    Allgather,
    Scatter,
    Alltoall,
    Scan,
}

impl CollKind {
    /// Whether every rank must pass the same element count (gather-style
    /// collectives legitimately take different lengths per rank).
    fn uniform_len(self) -> bool {
        matches!(
            self,
            CollKind::Barrier
                | CollKind::Broadcast
                | CollKind::Reduce
                | CollKind::Allreduce
                | CollKind::Scan
        )
    }
}

/// What one rank claimed the collective at a given sequence number was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollFingerprint {
    /// Which collective was called.
    pub kind: CollKind,
    /// Root rank, for rooted collectives.
    pub root: Option<usize>,
    /// Reduction operator, for reductions.
    pub op: Option<ReduceOp>,
    /// Number of `f64` elements in the caller's buffer (compared only for
    /// collectives whose length must be uniform across ranks).
    pub elems: Option<usize>,
}

impl CollFingerprint {
    fn describe(&self) -> String {
        let mut s = format!("{:?}", self.kind);
        let mut args = Vec::new();
        if let Some(root) = self.root {
            args.push(format!("root={root}"));
        }
        if let Some(op) = self.op {
            args.push(format!("op={op:?}"));
        }
        if let Some(elems) = self.elems {
            args.push(format!("elems={elems}"));
        }
        if !args.is_empty() {
            s.push('(');
            s.push_str(&args.join(", "));
            s.push(')');
        }
        s
    }

    fn matches(&self, other: &CollFingerprint) -> bool {
        self.kind == other.kind
            && self.root == other.root
            && self.op == other.op
            && (!self.kind.uniform_len() || self.elems == other.elems)
    }
}

/// One blocked receive: the waiting rank's target and tag.
#[derive(Debug, Clone, Copy)]
struct Wait {
    on: usize,
    tag: u64,
}

/// Wait table and pull counters, kept under one mutex so the detector
/// always sees a consistent snapshot (see the module docs).
struct WaitTable {
    /// `waits[r]` is `Some` while rank `r` is blocked in `recv`.
    waits: Vec<Option<Wait>>,
    /// `pulled[dst][src]`: envelopes rank `dst` has taken off its channel
    /// from `src` (whether or not the tag matched).
    pulled: Vec<Vec<u64>>,
}

/// First poster's claim for one `(comm, seq)` slot of the registry.
struct Slot<T> {
    value: T,
    first_rank: usize,
    posted: usize,
    expected: usize,
}

/// A registry of first-poster claims, keyed by `(communicator, sequence)`.
type SlotRegistry<T> = Mutex<BTreeMap<(u64, u64), Slot<T>>>;

/// Shared verification state for one SPMD run.
pub(crate) struct VerifyState {
    opts: VerifyOptions,
    /// `sent[src][dst]`: envelopes `src` has enqueued toward `dst`,
    /// counted before the envelope enters the channel.
    sent: Vec<Vec<AtomicU64>>,
    /// Ranks whose body returned normally.
    done: Vec<AtomicBool>,
    table: Mutex<WaitTable>,
    fingerprints: SlotRegistry<CollFingerprint>,
    /// Replication hashes; the value carries (hash, label).
    hashes: SlotRegistry<(u64, String)>,
}

/// Communicator id of the world communicator in the verification registry.
pub(crate) const WORLD_COMM: u64 = 0;
/// Communicator id for user-level [`crate::Comm::verify_replicated`] calls.
pub(crate) const USER_REPL_COMM: u64 = u64::MAX;

impl VerifyState {
    pub(crate) fn new(p: usize, opts: VerifyOptions) -> Self {
        VerifyState {
            opts,
            sent: (0..p).map(|_| (0..p).map(|_| AtomicU64::new(0)).collect()).collect(),
            done: (0..p).map(|_| AtomicBool::new(false)).collect(),
            table: Mutex::new(WaitTable { waits: vec![None; p], pulled: vec![vec![0; p]; p] }),
            fingerprints: Mutex::new(BTreeMap::new()),
            hashes: Mutex::new(BTreeMap::new()),
        }
    }

    pub(crate) fn opts(&self) -> &VerifyOptions {
        &self.opts
    }

    /// Note that `rank`'s body returned; any rank still blocked on it can
    /// now be diagnosed. Ordering: the SeqCst store happens after all of
    /// the rank's sends, so a detector that reads `done == true` also sees
    /// the final send counters.
    pub(crate) fn mark_done(&self, rank: usize) {
        self.done[rank].store(true, Ordering::SeqCst);
    }

    /// Count an envelope about to be enqueued from `src` to `dst`.
    pub(crate) fn record_send(&self, src: usize, dst: usize) {
        self.sent[src][dst].fetch_add(1, Ordering::SeqCst);
    }

    /// Undo a [`record_send`](Self::record_send) whose envelope never made
    /// it into the channel (the receiver was already gone): the bytes were
    /// never visible, so no receiver can have pulled them.
    pub(crate) fn unrecord_send(&self, src: usize, dst: usize) {
        self.sent[src][dst].fetch_sub(1, Ordering::SeqCst);
    }

    /// Count an envelope pulled off `dst`'s channel from `src`; when its
    /// tag matched the blocked receive, the wait registration is cleared in
    /// the same critical section (so the detector can never see a consumed
    /// message alongside a stale wait).
    pub(crate) fn record_pull(&self, dst: usize, src: usize, matched: bool) {
        let mut t = lock(&self.table);
        t.pulled[dst][src] += 1;
        if matched {
            t.waits[dst] = None;
        }
    }

    /// Register that `rank` is entering a blocking receive on `on`.
    pub(crate) fn register_wait(&self, rank: usize, on: usize, tag: u64) {
        let mut t = lock(&self.table);
        t.waits[rank] = Some(Wait { on, tag });
    }

    /// Clear `rank`'s wait registration (timeout/failure exit paths).
    pub(crate) fn clear_wait(&self, rank: usize) {
        let mut t = lock(&self.table);
        t.waits[rank] = None;
    }

    /// Look for a provable deadlock involving `me` (called from the receive
    /// polling loop after a slice elapsed with no message). Returns the
    /// error to raise, or `None` if progress is still possible.
    pub(crate) fn scan_for_deadlock(&self, me: usize) -> Option<SimError> {
        let t = lock(&self.table);
        let p = t.waits.len();
        // Quiescent edge: nothing in flight from the wait target. Reading
        // `sent` after locking the table is safe because a registered
        // waiter's sends all precede its registration (see module docs).
        let quiescent =
            |r: usize, w: &Wait| t.pulled[r][w.on] == self.sent[w.on][r].load(Ordering::SeqCst);

        let render = |t: &WaitTable| -> String {
            let edges: Vec<String> = t
                .waits
                .iter()
                .enumerate()
                .filter_map(|(r, w)| {
                    w.as_ref().map(|w| {
                        let state = if self.done[w.on].load(Ordering::SeqCst) {
                            " [finished]"
                        } else if quiescent(r, w) {
                            ""
                        } else {
                            " [message in flight]"
                        };
                        format!("rank {r} waits on rank {}{state} (tag {:#x})", w.on, w.tag)
                    })
                })
                .collect();
            format!("wait-for graph: {}", edges.join("; "))
        };

        // Case 1: some rank waits (quiescently) on a rank that finished.
        for (r, w) in t.waits.iter().enumerate() {
            if let Some(w) = w {
                if self.done[w.on].load(Ordering::SeqCst) && quiescent(r, w) {
                    return Some(SimError::Deadlock {
                        rank: me,
                        cycle: Vec::new(),
                        detail: format!(
                            "rank {r} waits on rank {} which already finished; {}",
                            w.on,
                            render(&t)
                        ),
                    });
                }
            }
        }

        // Case 2: a cycle of quiescent waits. Follow the successor function
        // from each rank; a walk of length > p must have closed a cycle.
        let step = |r: usize| -> Option<usize> {
            t.waits[r].as_ref().filter(|w| quiescent(r, w)).map(|w| w.on)
        };
        let mut cur = me;
        let mut path = vec![me];
        while let Some(next) = step(cur) {
            if let Some(pos) = path.iter().position(|&r| r == next) {
                let cycle = path[pos..].to_vec();
                return Some(SimError::Deadlock { rank: me, cycle, detail: render(&t) });
            }
            path.push(next);
            cur = next;
            if path.len() > p {
                break; // unreachable: a repeat must occur first
            }
        }
        None
    }

    /// Post `fp` as `world_rank`'s claim for collective number `seq` on
    /// communicator `comm` (`expected` = number of ranks that will post).
    pub(crate) fn check_collective(
        &self,
        world_rank: usize,
        comm: u64,
        seq: u64,
        expected: usize,
        fp: CollFingerprint,
    ) -> Result<(), SimError> {
        let mut reg = lock(&self.fingerprints);
        post(&mut reg, world_rank, comm, seq, expected, fp, |mine, slot| {
            mine.matches(&slot.value).then_some(()).ok_or_else(|| SimError::CollectiveDivergence {
                rank: world_rank,
                seq,
                detail: format!(
                    "rank {} called {} but rank {} called {}{}",
                    slot.first_rank,
                    slot.value.describe(),
                    world_rank,
                    mine.describe(),
                    if comm == WORLD_COMM { String::new() } else { format!(" (comm {comm:#x})") },
                ),
            })
        })
    }

    /// Post `hash` as `world_rank`'s digest of a value that must be
    /// bitwise identical on all `expected` ranks of `comm`.
    pub(crate) fn check_replication(
        &self,
        world_rank: usize,
        comm: u64,
        seq: u64,
        expected: usize,
        label: &str,
        hash: u64,
    ) -> Result<(), SimError> {
        let mut reg = lock(&self.hashes);
        post(&mut reg, world_rank, comm, seq, expected, (hash, label.to_string()), |mine, slot| {
            (mine.0 == slot.value.0 && mine.1 == slot.value.1).then_some(()).ok_or_else(|| {
                SimError::ReplicationDivergence {
                    rank: world_rank,
                    seq,
                    detail: format!(
                        "\"{}\" hashed {:#018x} on rank {} but \"{}\" hashed {:#018x} on rank {}",
                        slot.value.1, slot.value.0, slot.first_rank, mine.1, mine.0, world_rank,
                    ),
                }
            })
        })
    }
}

/// Post a value into a `(comm, seq)` slot registry: the first poster sets
/// the reference, later posters are compared against it by `check`, and the
/// slot is garbage-collected once all expected ranks have posted.
fn post<T: Clone, F>(
    reg: &mut BTreeMap<(u64, u64), Slot<T>>,
    rank: usize,
    comm: u64,
    seq: u64,
    expected: usize,
    value: T,
    check: F,
) -> Result<(), SimError>
where
    F: FnOnce(&T, &Slot<T>) -> Result<(), SimError>,
{
    match reg.get_mut(&(comm, seq)) {
        None => {
            reg.insert((comm, seq), Slot { value, first_rank: rank, posted: 1, expected });
            Ok(())
        }
        Some(slot) => {
            check(&value, slot)?;
            slot.posted += 1;
            if slot.posted >= slot.expected {
                reg.remove(&(comm, seq));
            }
            Ok(())
        }
    }
}

/// FNV-1a over the bit patterns of an `f64` slice: cheap, deterministic,
/// and collision-resistant enough for divergence *detection* (a divergence
/// missed by a 64-bit hash collision is astronomically unlikely).
///
/// Public so other backends (and cross-backend gates like
/// `cargo xtask calibrate`) compute replication hashes with the exact
/// same function the simulated verifier uses.
pub fn hash_f64s(values: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for byte in v.to_bits().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(kind: CollKind) -> CollFingerprint {
        CollFingerprint { kind, root: None, op: None, elems: Some(4) }
    }

    #[test]
    fn fingerprints_match_on_equal_calls() {
        let v = VerifyState::new(3, VerifyOptions::all());
        for rank in 0..3 {
            v.check_collective(rank, WORLD_COMM, 1, 3, fp(CollKind::Allreduce)).unwrap();
        }
        // Slot was garbage-collected, so the same seq can be reused by a
        // later (sub)communicator generation without a stale comparison.
        assert!(v.fingerprints.lock().unwrap().is_empty());
    }

    #[test]
    fn fingerprint_divergence_names_both_ranks() {
        let v = VerifyState::new(2, VerifyOptions::all());
        v.check_collective(0, WORLD_COMM, 1, 2, fp(CollKind::Allreduce)).unwrap();
        let err = v.check_collective(1, WORLD_COMM, 1, 2, fp(CollKind::Barrier)).unwrap_err();
        match err {
            SimError::CollectiveDivergence { rank, seq, detail } => {
                assert_eq!(rank, 1);
                assert_eq!(seq, 1);
                assert!(detail.contains("rank 0"), "{detail}");
                assert!(detail.contains("Allreduce"), "{detail}");
                assert!(detail.contains("Barrier"), "{detail}");
            }
            other => panic!("expected CollectiveDivergence, got {other:?}"),
        }
    }

    #[test]
    fn gather_style_lengths_may_vary() {
        let v = VerifyState::new(2, VerifyOptions::all());
        let a = CollFingerprint { kind: CollKind::Gather, root: Some(0), op: None, elems: Some(3) };
        let b = CollFingerprint { elems: Some(7), ..a };
        v.check_collective(0, WORLD_COMM, 1, 2, a).unwrap();
        v.check_collective(1, WORLD_COMM, 1, 2, b).unwrap();
    }

    #[test]
    fn uniform_lengths_must_match() {
        let v = VerifyState::new(2, VerifyOptions::all());
        let a = CollFingerprint {
            kind: CollKind::Allreduce,
            root: None,
            op: Some(ReduceOp::Sum),
            elems: Some(3),
        };
        let b = CollFingerprint { elems: Some(7), ..a };
        v.check_collective(0, WORLD_COMM, 1, 2, a).unwrap();
        let err = v.check_collective(1, WORLD_COMM, 1, 2, b).unwrap_err();
        assert!(matches!(err, SimError::CollectiveDivergence { seq: 1, .. }), "{err:?}");
    }

    #[test]
    fn replication_divergence_reports_hashes() {
        let v = VerifyState::new(2, VerifyOptions::all());
        v.check_replication(0, WORLD_COMM, 1, 2, "wj", 0xAB).unwrap();
        let err = v.check_replication(1, WORLD_COMM, 1, 2, "wj", 0xCD).unwrap_err();
        match err {
            SimError::ReplicationDivergence { rank, seq, detail } => {
                assert_eq!(rank, 1);
                assert_eq!(seq, 1);
                assert!(detail.contains("wj"), "{detail}");
                assert!(detail.contains("rank 0"), "{detail}");
            }
            other => panic!("expected ReplicationDivergence, got {other:?}"),
        }
    }

    #[test]
    fn wait_cycle_is_detected_and_in_flight_messages_defer() {
        let v = VerifyState::new(2, VerifyOptions::all());
        v.register_wait(0, 1, 7);
        v.register_wait(1, 0, 7);
        // A message from 1 to 0 is in flight, so rank 0 may yet be woken:
        // edge 0→1 is not quiescent and nothing may be reported.
        v.record_send(1, 0);
        assert!(v.scan_for_deadlock(0).is_none(), "in-flight message must defer detection");
        // Rank 0 pulls it (wrong tag, stays blocked): now truly circular.
        v.record_pull(0, 1, false);
        let err = v.scan_for_deadlock(0).expect("cycle should be detected");
        match err {
            SimError::Deadlock { cycle, detail, .. } => {
                let mut c = cycle;
                c.sort_unstable();
                assert_eq!(c, vec![0, 1]);
                assert!(detail.contains("rank 0 waits on rank 1"), "{detail}");
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn wait_on_finished_rank_is_detected() {
        let v = VerifyState::new(3, VerifyOptions::all());
        v.register_wait(0, 2, 9);
        v.mark_done(2);
        let err = v.scan_for_deadlock(0).expect("finished peer should be detected");
        match err {
            SimError::Deadlock { cycle, detail, .. } => {
                assert!(cycle.is_empty());
                assert!(detail.contains("already finished"), "{detail}");
                assert!(detail.contains("rank 0 waits on rank 2"), "{detail}");
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn matched_pull_clears_the_wait() {
        let v = VerifyState::new(2, VerifyOptions::all());
        v.register_wait(0, 1, 7);
        v.record_send(1, 0);
        v.record_pull(0, 1, true);
        v.register_wait(1, 0, 8);
        v.mark_done(0); // rank 0 finished after its receive
        assert!(v.scan_for_deadlock(1).is_some(), "1 waits on finished 0");
        assert!(v.table.lock().unwrap().waits[0].is_none());
    }

    #[test]
    fn hash_distinguishes_values_and_orders() {
        assert_ne!(hash_f64s(&[1.0, 2.0]), hash_f64s(&[2.0, 1.0]));
        assert_ne!(hash_f64s(&[0.0]), hash_f64s(&[-0.0])); // bitwise, not ==
        assert_eq!(hash_f64s(&[1.5, -3.25]), hash_f64s(&[1.5, -3.25]));
    }
}
