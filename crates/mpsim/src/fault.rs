//! Deterministic fault injection for the simulated multicomputer.
//!
//! A [`FaultPlan`] describes, ahead of a run, a set of failures to inject
//! at the channel/endpoint layer: a rank crash, a dropped / delayed /
//! corrupted message, or a degraded link. Every fault is pinned to a
//! deterministic trigger — the culprit's *n*-th sent message or a virtual
//! time — so the same plan against the same program produces the same
//! failure, the same detection, and the same typed error on every run.
//!
//! Faults are injected by [`crate::Comm`] at three checkpoints (send
//! entry, receive entry, [`crate::Comm::work`]); detection happens on the
//! *receiving* side, where a wait that can provably never be satisfied
//! surfaces as [`crate::SimError::PeerFailed`] naming the culprit rank,
//! message seq, kind, and phase — instead of a hang. Delays additionally
//! interact with the plan's optional *virtual-time timeout*: a message
//! whose arrival would force the receiver to idle longer than the limit
//! fails the run with [`crate::SimError::Timeout`].
//!
//! One-shot faults (crash, drop, delay, corrupt) are spent when they fire
//! and — because the fired flags are shared by [`FaultPlan::clone`] — stay
//! spent across engine re-runs, which is what lets a restart-from-checkpoint
//! replay the same plan without the fault recurring. A degraded link is
//! persistent once triggered: it models broken hardware, not a transient.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::SimError;

/// The kind of an injected fault; the label typed errors carry so a
/// supervisor can tell what happened without parsing strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// A rank died.
    Crash,
    /// A message was silently discarded in transit.
    Drop,
    /// A message's departure was delayed.
    Delay,
    /// A message's payload was flipped in transit.
    Corrupt,
    /// A link's effective bandwidth was permanently reduced.
    DegradeLink,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::Crash => "crash",
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Corrupt => "corrupt",
            FaultKind::DegradeLink => "degraded link",
        };
        f.write_str(s)
    }
}

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum FaultAction {
    /// The culprit rank dies at the next injection checkpoint. Its peers
    /// are *not* torn down by the engine; they must detect the failure,
    /// which is the point of the exercise.
    Crash,
    /// The culprit's next message to `dst` is discarded after the sender
    /// has charged its endpoint costs (the sender believes it sent).
    Drop {
        /// Destination rank of the discarded message.
        dst: usize,
    },
    /// The culprit's next message to `dst` departs `secs` virtual seconds
    /// late. Payloads are untouched, so a run that tolerates the delay
    /// finishes with bit-identical results, just later.
    Delay {
        /// Destination rank of the delayed message.
        dst: usize,
        /// Extra virtual seconds added to the departure time.
        secs: f64,
    },
    /// The culprit's next message to `dst` has one payload byte XOR-ed
    /// with `mask` *after* the sender computes the envelope checksum, so
    /// the receiver detects it on arrival. For empty payloads the
    /// checksum itself is corrupted instead.
    Corrupt {
        /// Destination rank of the corrupted message.
        dst: usize,
        /// Payload byte index to flip (taken modulo the payload length).
        byte: usize,
        /// XOR mask applied to that byte (`0` is promoted to `1` so the
        /// fault can never be a no-op).
        mask: u8,
    },
    /// From the trigger onward, every message on the link to `dst` pays
    /// `factor`× its per-byte wire cost. Persistent: degraded hardware
    /// does not heal on restart.
    DegradeLink {
        /// Destination rank of the degraded link.
        dst: usize,
        /// Bandwidth slowdown factor (≥ 1.0).
        factor: f64,
    },
}

impl FaultAction {
    /// The kind label this action surfaces in typed errors.
    pub fn kind(&self) -> FaultKind {
        match self {
            FaultAction::Crash => FaultKind::Crash,
            FaultAction::Drop { .. } => FaultKind::Drop,
            FaultAction::Delay { .. } => FaultKind::Delay,
            FaultAction::Corrupt { .. } => FaultKind::Corrupt,
            FaultAction::DegradeLink { .. } => FaultKind::DegradeLink,
        }
    }
}

/// When an injected fault fires.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum FaultTrigger {
    /// At the culprit's `n`-th sent message (1-based, counted across all
    /// destinations). Message faults fire on the first matching send with
    /// seq ≥ `n`; a crash fires at the first injection checkpoint that
    /// reaches this send count.
    AtSendSeq(u64),
    /// At the first injection checkpoint at or after virtual time `t`
    /// seconds on the culprit's clock.
    AtTime(f64),
}

/// One planned fault: who misbehaves, how, and when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The culprit rank.
    pub rank: usize,
    /// What happens.
    pub action: FaultAction,
    /// When it happens.
    pub trigger: FaultTrigger,
}

/// A deterministic, shareable fault plan for one or more engine runs.
///
/// Cloning shares the fired flags, so a supervisor that re-runs the same
/// plan after a recovery (restart from checkpoint, shrink and resume) sees
/// one-shot faults exactly once. Call [`FaultPlan::reset`] to re-arm.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    specs: Arc<Vec<FaultSpec>>,
    fired: Arc<Vec<AtomicBool>>,
    virtual_timeout: Option<f64>,
}

impl FaultPlan {
    /// A plan injecting the given faults.
    pub fn new(specs: Vec<FaultSpec>) -> Self {
        let fired = (0..specs.len()).map(|_| AtomicBool::new(false)).collect();
        FaultPlan { specs: Arc::new(specs), fired: Arc::new(fired), virtual_timeout: None }
    }

    /// Enable the virtual-time timeout: any receive whose message would
    /// force the receiver to idle more than `secs` virtual seconds fails
    /// the run with [`crate::SimError::Timeout`] instead of absorbing the
    /// wait. Applies to every collective too, since they are built on the
    /// same receive path.
    pub fn with_virtual_timeout(mut self, secs: f64) -> Self {
        self.virtual_timeout = Some(secs);
        self
    }

    /// The configured virtual-time receive timeout, if any.
    pub fn virtual_timeout(&self) -> Option<f64> {
        self.virtual_timeout
    }

    /// The planned faults.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// How many of the planned faults have fired so far (across every run
    /// sharing this plan).
    pub fn fired_count(&self) -> usize {
        self.fired.iter().filter(|f| f.load(Ordering::Relaxed)).count()
    }

    /// Re-arm every fault (for reusing one plan across unrelated runs).
    pub fn reset(&self) {
        for f in self.fired.iter() {
            f.store(false, Ordering::Relaxed);
        }
    }

    /// One-shot crash probe for backends that carry no engine-side
    /// `FaultState` (the native backend calls this at each send entry).
    /// `seq` is the rank's current send count and the semantics mirror
    /// the simulator's injection checkpoints: a crash spec fires when the
    /// *next* send would reach its trigger. The shared fired flags keep
    /// each fault one-shot across a supervisor's re-runs, exactly like
    /// the simulated path.
    pub fn crash_now(&self, rank: usize, seq: u64, now: f64) -> bool {
        for (i, s) in self.specs.iter().enumerate() {
            let due = match s.trigger {
                FaultTrigger::AtSendSeq(n) => seq + 1 >= n,
                FaultTrigger::AtTime(t) => now >= t,
            };
            if s.rank == rank
                && matches!(s.action, FaultAction::Crash)
                && due
                && !self.fired[i].swap(true, Ordering::Relaxed)
            {
                return true;
            }
        }
        false
    }

    /// A deterministic pseudo-random single-fault plan: `seed` fully
    /// determines the culprit, kind, destination, and trigger for a
    /// machine of `p` ranks. Useful for randomized robustness sweeps that
    /// must stay reproducible.
    pub fn seeded(seed: u64, p: usize) -> Self {
        assert!(p > 0, "fault plan needs at least one rank");
        let mut s = seed;
        let mut next = move || {
            // splitmix64: the same generator the search uses to derive
            // per-try seeds, so plans are portable across hosts.
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let rank = (next() % p as u64) as usize;
        let dst = if p == 1 { 0 } else { (rank + 1 + (next() % (p as u64 - 1)) as usize) % p };
        let action = match next() % 5 {
            0 => FaultAction::Crash,
            1 => FaultAction::Drop { dst },
            2 => FaultAction::Delay { dst, secs: 1.0 + (next() % 100) as f64 / 10.0 },
            3 => {
                FaultAction::Corrupt { dst, byte: (next() % 64) as usize, mask: (next() as u8) | 1 }
            }
            _ => FaultAction::DegradeLink { dst, factor: 2.0 + (next() % 8) as f64 },
        };
        let trigger = FaultTrigger::AtSendSeq(1 + next() % 32);
        FaultPlan::new(vec![FaultSpec { rank, action, trigger }])
    }
}

/// Record of a fault that actually fired, kept so *other* ranks can later
/// explain a hopeless wait with the culprit's coordinates.
#[derive(Debug, Clone)]
pub(crate) struct FailureRecord {
    pub kind: FaultKind,
    /// The culprit's message seq at the moment the fault fired.
    pub seq: u64,
    /// The culprit's active phase at the moment the fault fired.
    pub phase: String,
}

/// What the fault layer tells `send_bytes` to do with one message.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SendDirective {
    /// `false`: discard the envelope instead of enqueueing it.
    pub dropped: bool,
    /// Extra virtual seconds added to the departure time.
    pub extra_delay: f64,
    /// Flip payload byte `.0 % len` with XOR mask `.1` (after checksum).
    pub corrupt: Option<(usize, u8)>,
    /// Active bandwidth slowdown on this link, if degraded.
    pub degrade_factor: Option<f64>,
}

/// Shared per-run fault state built by the engine from a [`FaultPlan`].
pub(crate) struct FaultState {
    plan: FaultPlan,
    p: usize,
    /// Per-rank failure record; set by the culprit *before* it dies so a
    /// peer can never observe the death without its explanation.
    failed: Mutex<Vec<Option<FailureRecord>>>,
    /// First dropped message per (src, dst) link.
    dropped: Mutex<BTreeMap<(usize, usize), FailureRecord>>,
    /// `sent_ok[src*p + dst]`: envelopes actually enqueued on the link
    /// (drops excluded); compared against the receiver's pull count to
    /// prove a wait can only be for the dropped message.
    sent_ok: Vec<AtomicU64>,
    /// `degrade[src*p + dst]`: bits of the active slowdown factor; 0 = ok.
    degrade: Vec<AtomicU64>,
}

impl FaultState {
    pub fn new(plan: FaultPlan, p: usize) -> Self {
        FaultState {
            plan,
            p,
            failed: Mutex::new(vec![None; p]),
            dropped: Mutex::new(BTreeMap::new()),
            sent_ok: (0..p * p).map(|_| AtomicU64::new(0)).collect(),
            degrade: (0..p * p).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub fn virtual_timeout(&self) -> Option<f64> {
        self.plan.virtual_timeout
    }

    /// Has a *fatal* fault (crash or drop) fired in this run? While true,
    /// the wait-for-graph deadlock scanner stands down: the fault's wake
    /// forms wait cycles, and racing the generic deadlock verdict against
    /// the typed per-rank diagnosis would make the surfaced error depend
    /// on wall-clock poll order. Delays and degraded links leave no
    /// record — they are absorbed, not diagnosed.
    pub fn has_fatal_record(&self) -> bool {
        // lint:allow(unwrap): mutex poisoning only follows another panic
        self.failed.lock().expect("fault state lock").iter().any(Option::is_some)
            // lint:allow(unwrap): mutex poisoning only follows another panic
            || !self.dropped.lock().expect("fault state lock").is_empty()
    }

    fn try_fire(&self, idx: usize) -> bool {
        !self.plan.fired[idx].swap(true, Ordering::Relaxed)
    }

    fn hit(trigger: FaultTrigger, seq: u64, now: f64) -> bool {
        match trigger {
            FaultTrigger::AtSendSeq(n) => seq >= n,
            FaultTrigger::AtTime(t) => now >= t,
        }
    }

    /// Check crash specs for `rank` at an injection checkpoint. `seq` is
    /// the rank's current send count (the next send would be `seq + 1`).
    /// On the first hit the failure record is published, then returned so
    /// the comm layer can die with a typed error.
    pub fn crash_due(&self, rank: usize, seq: u64, now: f64, phase: &str) -> Option<FailureRecord> {
        for (i, s) in self.plan.specs.iter().enumerate() {
            if s.rank == rank
                && matches!(s.action, FaultAction::Crash)
                && Self::hit(s.trigger, seq + 1, now)
                && self.try_fire(i)
            {
                let rec = FailureRecord { kind: FaultKind::Crash, seq, phase: phase.to_string() };
                // lint:allow(unwrap): mutex poisoning only follows another panic
                self.failed.lock().expect("fault state lock")[rank] = Some(rec.clone());
                return Some(rec);
            }
        }
        None
    }

    /// Apply message-level faults to the send `src → dst` with seq `seq`,
    /// and account the message on the link if it is actually delivered.
    pub fn on_send(
        &self,
        src: usize,
        dst: usize,
        seq: u64,
        now: f64,
        phase: &str,
    ) -> SendDirective {
        let mut d = SendDirective::default();
        for (i, s) in self.plan.specs.iter().enumerate() {
            if s.rank != src {
                continue;
            }
            match s.action {
                FaultAction::Drop { dst: d2 }
                    if d2 == dst && Self::hit(s.trigger, seq, now) && self.try_fire(i) =>
                {
                    d.dropped = true;
                    let rec =
                        FailureRecord { kind: FaultKind::Drop, seq, phase: phase.to_string() };
                    // lint:allow(unwrap): mutex poisoning only follows another panic
                    self.dropped.lock().expect("fault state lock").insert((src, dst), rec);
                }
                FaultAction::Delay { dst: d2, secs }
                    if d2 == dst && Self::hit(s.trigger, seq, now) && self.try_fire(i) =>
                {
                    d.extra_delay += secs;
                }
                FaultAction::Corrupt { dst: d2, byte, mask }
                    if d2 == dst && Self::hit(s.trigger, seq, now) && self.try_fire(i) =>
                {
                    d.corrupt = Some((byte, mask | 1));
                }
                FaultAction::DegradeLink { dst: d2, factor }
                    if d2 == dst && Self::hit(s.trigger, seq, now) && self.try_fire(i) =>
                {
                    self.degrade[src * self.p + d2].store(factor.to_bits(), Ordering::Relaxed);
                }
                _ => {}
            }
        }
        let bits = self.degrade[src * self.p + dst].load(Ordering::Relaxed);
        if bits != 0 {
            d.degrade_factor = Some(f64::from_bits(bits));
        }
        if !d.dropped {
            self.sent_ok[src * self.p + dst].fetch_add(1, Ordering::Relaxed);
        }
        d
    }

    /// Explain why `me`'s wait on `src` can never be satisfied, if the
    /// fault record proves it: either `src` failed, or the only message
    /// unaccounted for on the link is one that was dropped
    /// (`pulled_from_src` counts envelopes `me` has taken off this link).
    pub fn diagnose_wait(&self, me: usize, src: usize, pulled_from_src: u64) -> Option<SimError> {
        // lint:allow(unwrap): mutex poisoning only follows another panic
        if let Some(rec) = &self.failed.lock().expect("fault state lock")[src] {
            return Some(SimError::PeerFailed {
                rank: me,
                peer: src,
                kind: rec.kind,
                seq: rec.seq,
                phase: rec.phase.clone(),
            });
        }
        // lint:allow(unwrap): mutex poisoning only follows another panic
        let dropped = self.dropped.lock().expect("fault state lock");
        if let Some(rec) = dropped.get(&(src, me)) {
            if self.sent_ok[src * self.p + me].load(Ordering::Relaxed) == pulled_from_src {
                return Some(SimError::PeerFailed {
                    rank: me,
                    peer: src,
                    kind: FaultKind::Drop,
                    seq: rec.seq,
                    phase: rec.phase.clone(),
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_faults_fire_once_and_stay_spent_across_clones() {
        let plan = FaultPlan::new(vec![FaultSpec {
            rank: 1,
            action: FaultAction::Drop { dst: 0 },
            trigger: FaultTrigger::AtSendSeq(3),
        }]);
        let st = FaultState::new(plan.clone(), 2);
        assert!(!st.on_send(1, 0, 2, 0.0, "p").dropped);
        assert!(st.on_send(1, 0, 3, 0.0, "p").dropped);
        assert!(!st.on_send(1, 0, 4, 0.0, "p").dropped, "one-shot must not refire");
        // A fresh state over a *clone* of the plan sees the fault spent.
        let st2 = FaultState::new(plan.clone(), 2);
        assert!(!st2.on_send(1, 0, 3, 0.0, "p").dropped);
        assert_eq!(plan.fired_count(), 1);
        plan.reset();
        assert_eq!(plan.fired_count(), 0);
    }

    #[test]
    fn degraded_link_is_persistent() {
        let plan = FaultPlan::new(vec![FaultSpec {
            rank: 0,
            action: FaultAction::DegradeLink { dst: 1, factor: 4.0 },
            trigger: FaultTrigger::AtTime(1.0),
        }]);
        let st = FaultState::new(plan, 2);
        assert_eq!(st.on_send(0, 1, 1, 0.5, "p").degrade_factor, None);
        assert_eq!(st.on_send(0, 1, 2, 1.5, "p").degrade_factor, Some(4.0));
        // Still degraded long after the trigger fired once.
        assert_eq!(st.on_send(0, 1, 3, 9.0, "p").degrade_factor, Some(4.0));
    }

    #[test]
    fn drop_is_diagnosed_only_when_the_link_is_drained() {
        let plan = FaultPlan::new(vec![FaultSpec {
            rank: 1,
            action: FaultAction::Drop { dst: 0 },
            trigger: FaultTrigger::AtSendSeq(1),
        }]);
        let st = FaultState::new(plan, 2);
        assert!(st.on_send(1, 0, 1, 0.0, "estep").dropped);
        assert!(!st.on_send(1, 0, 2, 0.0, "estep").dropped);
        // One delivered message not yet pulled: the wait might be for it.
        assert!(st.diagnose_wait(0, 1, 0).is_none());
        // Link drained: the wait can only be for the dropped message.
        match st.diagnose_wait(0, 1, 1) {
            Some(SimError::PeerFailed { rank, peer, kind, seq, phase }) => {
                assert_eq!((rank, peer, kind, seq), (0, 1, FaultKind::Drop, 1));
                assert_eq!(phase, "estep");
            }
            other => panic!("expected PeerFailed, got {other:?}"),
        }
    }

    #[test]
    fn crash_record_names_seq_and_phase() {
        let plan = FaultPlan::new(vec![FaultSpec {
            rank: 2,
            action: FaultAction::Crash,
            trigger: FaultTrigger::AtTime(5.0),
        }]);
        let st = FaultState::new(plan, 4);
        assert!(st.crash_due(2, 7, 4.9, "mstep").is_none());
        let rec = st.crash_due(2, 7, 5.1, "mstep").expect("crash fires");
        assert_eq!((rec.kind, rec.seq, rec.phase.as_str()), (FaultKind::Crash, 7, "mstep"));
        assert!(st.crash_due(2, 8, 6.0, "mstep").is_none(), "crash is one-shot");
        // Peers asking about rank 2 get the record.
        assert!(matches!(
            st.diagnose_wait(0, 2, 0),
            Some(SimError::PeerFailed { peer: 2, kind: FaultKind::Crash, seq: 7, .. })
        ));
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 6);
        let b = FaultPlan::seeded(42, 6);
        assert_eq!(a.specs(), b.specs());
        let c = FaultPlan::seeded(43, 6);
        // Different seed, different plan (overwhelmingly likely; pinned).
        assert_ne!(a.specs(), c.specs());
        assert!(a.specs()[0].rank < 6);
    }
}
