//! Paper-style report tables from per-rank statistics.
//!
//! The paper's evaluation (Section 4) is a set of tables over P ∈ 1..10:
//! per-phase times for the E-step and M-step, speedup, efficiency, and the
//! communication/computation balance. This module rebuilds those tables
//! from [`RankStats`] collected at several processor counts — one
//! [`RunRecord`] per P — and renders them as aligned text, CSV, and JSON.
//!
//! Construction validates the phase-accounting invariant: on every rank the
//! named phase buckets (plus the implicit `"other"` bucket) must sum to the
//! rank's elapsed virtual time within `1e-9 · max(1, elapsed)` — a bucket
//! that leaks time would silently misattribute cost and invalidate the
//! tables. Speedup is `T(1)/T(P)` against the P = 1 record when present,
//! with the P = 1 row pinned to exactly 1.0.
//!
//! All numeric output is formatted with fixed precision from a
//! deterministic simulation, so repeated runs on the same inputs produce
//! bit-identical artifacts.

use std::fmt::Write as _;

use crate::trace::RankStats;

/// Relative tolerance for the phase-buckets-sum-to-elapsed invariant.
const PHASE_SUM_TOL: f64 = 1e-9;

/// The per-rank statistics of one run at a fixed processor count: the raw
/// input to [`Report::build`].
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Number of processors simulated.
    pub p: usize,
    /// Elapsed virtual time of the run, max over ranks, seconds.
    pub elapsed: f64,
    /// Per-rank statistics (must have `p` entries).
    pub ranks: Vec<RankStats>,
}

/// One phase's aggregate across the ranks of a run. `max_s` versus
/// `mean_s` is the critical-path summary: the gap between the slowest
/// rank's phase time and the average exposes load imbalance.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    /// Phase name.
    pub name: String,
    /// Max over ranks of the phase's total time, seconds.
    pub max_s: f64,
    /// Mean over ranks of the phase's total time, seconds.
    pub mean_s: f64,
    /// Mean over ranks of compute seconds in this phase.
    pub compute_s: f64,
    /// Mean over ranks of comm endpoint seconds in this phase.
    pub comm_s: f64,
    /// Mean over ranks of idle seconds in this phase.
    pub idle_s: f64,
    /// Mean over ranks of non-blocking communication seconds hidden
    /// behind other work in this phase (shadow measure; not part of the
    /// phase total, so the partition invariant is unaffected).
    pub hidden_s: f64,
    /// Total messages sent from within this phase, all ranks.
    pub msgs_sent: u64,
    /// Total payload bytes sent from within this phase, all ranks.
    pub bytes_sent: u64,
    /// Total collectives entered from within this phase, all ranks.
    pub collectives: u64,
}

impl PhaseRow {
    /// Critical-path imbalance: max over ranks divided by the mean
    /// (1.0 when perfectly balanced; 0.0 for an empty phase).
    pub fn imbalance(&self) -> f64 {
        if self.mean_s > 0.0 {
            self.max_s / self.mean_s
        } else {
            0.0
        }
    }
}

/// One run's row of the report: scalar figures plus per-phase breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRow {
    /// Number of processors.
    pub p: usize,
    /// Elapsed virtual time, seconds (max over ranks).
    pub elapsed: f64,
    /// `T(1)/T(P)`; `None` when no P = 1 record was supplied or its
    /// elapsed time is zero. Exactly 1.0 for the P = 1 row itself.
    pub speedup: Option<f64>,
    /// Speedup divided by P.
    pub efficiency: Option<f64>,
    /// Run-wide `(Σ comm + Σ idle) / Σ compute` over ranks (0.0 when no
    /// compute was recorded).
    pub comm_compute_ratio: f64,
    /// Max rank elapsed divided by mean rank elapsed.
    pub time_imbalance: f64,
    /// Per-phase aggregates, phase-creation order (default bucket first).
    pub phases: Vec<PhaseRow>,
}

/// The assembled report over all processor counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// One row per run, ascending in P.
    pub rows: Vec<RunRow>,
}

impl Report {
    /// Validate the records and assemble the report.
    ///
    /// # Errors
    /// Returns a description of the first inconsistency found: an empty
    /// record set, a rank-count mismatch, a duplicate P, or a rank whose
    /// phase buckets do not sum to its elapsed time within
    /// `1e-9 · max(1, elapsed)`.
    pub fn build(records: &[RunRecord]) -> Result<Report, String> {
        if records.is_empty() {
            return Err("no run records supplied".to_string());
        }
        let mut sorted: Vec<&RunRecord> = records.iter().collect();
        sorted.sort_by_key(|r| r.p);
        for pair in sorted.windows(2) {
            if pair[0].p == pair[1].p {
                return Err(format!("duplicate record for P = {}", pair[0].p));
            }
        }
        for rec in &sorted {
            if rec.p == 0 {
                return Err("record with P = 0".to_string());
            }
            if rec.ranks.len() != rec.p {
                return Err(format!("P = {} record has {} rank entries", rec.p, rec.ranks.len()));
            }
            for r in &rec.ranks {
                if r.phases.is_empty() {
                    continue;
                }
                let sum = r.phases_total();
                let tol = PHASE_SUM_TOL * r.elapsed.abs().max(1.0);
                if (sum - r.elapsed).abs() > tol {
                    return Err(format!(
                        "P = {} rank {}: phase buckets sum to {sum:.12e} \
                         but elapsed is {:.12e} (tolerance {tol:.3e})",
                        rec.p, r.rank, r.elapsed
                    ));
                }
            }
        }
        let base = sorted.iter().find(|r| r.p == 1 && r.elapsed > 0.0).map(|r| r.elapsed);
        let rows = sorted.iter().map(|rec| build_row(rec, base)).collect();
        Ok(Report { rows })
    }

    /// Render the report as aligned, human-readable text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("P-AutoClass phase report\n");
        out.push_str("========================\n\n");
        out.push_str("  P    elapsed_s        speedup   efficiency  comm/compute  imbalance\n");
        for r in &self.rows {
            let speed = match r.speedup {
                Some(s) => format!("{s:8.4}"),
                None => "       -".to_string(),
            };
            let eff = match r.efficiency {
                Some(e) => format!("{e:10.4}"),
                None => "         -".to_string(),
            };
            let _ = writeln!(
                out,
                "  {:<4} {:<16.9} {speed}  {eff}  {:>12.6}  {:>9.4}",
                r.p, r.elapsed, r.comm_compute_ratio, r.time_imbalance
            );
        }
        for r in &self.rows {
            let _ = writeln!(out, "\nP = {} — per-phase critical path", r.p);
            out.push_str(
                "  phase        max_s            mean_s           imbalance  \
                 compute_s        comm_s           idle_s           hidden_s         \
                 msgs      bytes        colls\n",
            );
            for ph in &r.phases {
                let _ = writeln!(
                    out,
                    "  {:<12} {:<16.9} {:<16.9} {:>9.4}  {:<16.9} {:<16.9} {:<16.9} {:<16.9} \
                     {:<9} {:<12} {}",
                    ph.name,
                    ph.max_s,
                    ph.mean_s,
                    ph.imbalance(),
                    ph.compute_s,
                    ph.comm_s,
                    ph.idle_s,
                    ph.hidden_s,
                    ph.msgs_sent,
                    ph.bytes_sent,
                    ph.collectives
                );
            }
        }
        out
    }

    /// Render the per-run summary table (one row per P) as CSV.
    pub fn summary_csv(&self) -> String {
        let mut out =
            String::from("p,elapsed_s,speedup,efficiency,comm_compute_ratio,time_imbalance\n");
        for r in &self.rows {
            let speed = r.speedup.map(|s| format!("{s:.6}")).unwrap_or_default();
            let eff = r.efficiency.map(|e| format!("{e:.6}")).unwrap_or_default();
            let _ = writeln!(
                out,
                "{},{:.9},{speed},{eff},{:.6},{:.6}",
                r.p, r.elapsed, r.comm_compute_ratio, r.time_imbalance
            );
        }
        out
    }

    /// Render the per-phase table (one row per P × phase) as CSV.
    pub fn phases_csv(&self) -> String {
        let mut out = String::from(
            "p,phase,max_s,mean_s,imbalance,compute_s,comm_s,idle_s,hidden_s,\
             msgs_sent,bytes_sent,collectives\n",
        );
        for r in &self.rows {
            for ph in &r.phases {
                let _ = writeln!(
                    out,
                    "{},{},{:.9},{:.9},{:.6},{:.9},{:.9},{:.9},{:.9},{},{},{}",
                    r.p,
                    ph.name,
                    ph.max_s,
                    ph.mean_s,
                    ph.imbalance(),
                    ph.compute_s,
                    ph.comm_s,
                    ph.idle_s,
                    ph.hidden_s,
                    ph.msgs_sent,
                    ph.bytes_sent,
                    ph.collectives
                );
            }
        }
        out
    }

    /// Render the report as a JSON object (hand-formatted; the whole
    /// workspace is dependency-free by design).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"runs\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"p\": {},", r.p);
            let _ = writeln!(out, "      \"elapsed_s\": {:.9},", r.elapsed);
            match r.speedup {
                Some(s) => {
                    let _ = writeln!(out, "      \"speedup\": {s:.6},");
                }
                None => out.push_str("      \"speedup\": null,\n"),
            }
            match r.efficiency {
                Some(e) => {
                    let _ = writeln!(out, "      \"efficiency\": {e:.6},");
                }
                None => out.push_str("      \"efficiency\": null,\n"),
            }
            let _ = writeln!(out, "      \"comm_compute_ratio\": {:.6},", r.comm_compute_ratio);
            let _ = writeln!(out, "      \"time_imbalance\": {:.6},", r.time_imbalance);
            out.push_str("      \"phases\": [\n");
            for (j, ph) in r.phases.iter().enumerate() {
                let comma = if j + 1 < r.phases.len() { "," } else { "" };
                let _ = writeln!(
                    out,
                    "        {{\"name\": \"{}\", \"max_s\": {:.9}, \"mean_s\": {:.9}, \
                     \"imbalance\": {:.6}, \"compute_s\": {:.9}, \"comm_s\": {:.9}, \
                     \"idle_s\": {:.9}, \"hidden_s\": {:.9}, \"msgs_sent\": {}, \
                     \"bytes_sent\": {}, \"collectives\": {}}}{comma}",
                    ph.name,
                    ph.max_s,
                    ph.mean_s,
                    ph.imbalance(),
                    ph.compute_s,
                    ph.comm_s,
                    ph.idle_s,
                    ph.hidden_s,
                    ph.msgs_sent,
                    ph.bytes_sent,
                    ph.collectives
                );
            }
            out.push_str("      ]\n");
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(out, "    }}{comma}");
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn build_row(rec: &RunRecord, base: Option<f64>) -> RunRow {
    let n = rec.ranks.len() as f64;
    let speedup = match base {
        // The P = 1 run is its own baseline: pin the ratio to exactly 1.0
        // rather than trusting x/x division.
        Some(_) if rec.p == 1 => Some(1.0),
        Some(t1) if rec.elapsed > 0.0 => Some(t1 / rec.elapsed),
        _ => None,
    };
    let efficiency = speedup.map(|s| s / rec.p as f64);
    let compute: f64 = rec.ranks.iter().map(|r| r.compute).sum();
    let overhead: f64 = rec.ranks.iter().map(|r| r.comm + r.idle).sum();
    let comm_compute_ratio = if compute > 0.0 { overhead / compute } else { 0.0 };
    let mean_elapsed = rec.ranks.iter().map(|r| r.elapsed).sum::<f64>() / n;
    let max_elapsed = rec.ranks.iter().map(|r| r.elapsed).fold(0.0, f64::max);
    let time_imbalance = if mean_elapsed > 0.0 { max_elapsed / mean_elapsed } else { 0.0 };
    RunRow {
        p: rec.p,
        elapsed: rec.elapsed,
        speedup,
        efficiency,
        comm_compute_ratio,
        time_imbalance,
        phases: aggregate_phases(&rec.ranks),
    }
}

/// Union of phase names across ranks (first-seen order, which on an SPMD
/// program is identical on every rank), aggregated max/mean/sum.
fn aggregate_phases(ranks: &[RankStats]) -> Vec<PhaseRow> {
    let n = ranks.len() as f64;
    let mut names: Vec<&str> = Vec::new();
    for r in ranks {
        for ph in &r.phases {
            if !names.iter().any(|&n| n == ph.name) {
                names.push(&ph.name);
            }
        }
    }
    names
        .into_iter()
        .map(|name| {
            let mut row = PhaseRow {
                name: name.to_string(),
                max_s: 0.0,
                mean_s: 0.0,
                compute_s: 0.0,
                comm_s: 0.0,
                idle_s: 0.0,
                hidden_s: 0.0,
                msgs_sent: 0,
                bytes_sent: 0,
                collectives: 0,
            };
            for r in ranks {
                let Some(ph) = r.phase(name) else { continue };
                row.max_s = row.max_s.max(ph.total());
                row.mean_s += ph.total() / n;
                row.compute_s += ph.compute / n;
                row.comm_s += ph.comm / n;
                row.idle_s += ph.idle / n;
                row.hidden_s += ph.hidden_comm / n;
                row.msgs_sent += ph.msgs_sent;
                row.bytes_sent += ph.bytes_sent;
                row.collectives += ph.collectives;
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::PhaseStats;

    fn rank(rank: usize, phases: &[(&str, f64, f64, f64)]) -> RankStats {
        let ps: Vec<PhaseStats> = phases
            .iter()
            .map(|&(name, compute, comm, idle)| PhaseStats {
                name: name.to_string(),
                compute,
                comm,
                idle,
                msgs_sent: 2,
                bytes_sent: 64,
                collectives: 1,
                ..Default::default()
            })
            .collect();
        let compute = ps.iter().map(|p| p.compute).sum();
        let comm = ps.iter().map(|p| p.comm).sum();
        let idle = ps.iter().map(|p| p.idle).sum();
        let elapsed = ps.iter().map(PhaseStats::total).sum();
        RankStats { rank, elapsed, compute, comm, idle, phases: ps, ..Default::default() }
    }

    fn record(p: usize, per_rank_scale: f64) -> RunRecord {
        let ranks: Vec<RankStats> = (0..p)
            .map(|r| {
                rank(
                    r,
                    &[
                        ("other", 0.1 * per_rank_scale, 0.0, 0.0),
                        ("estep", 1.0 * per_rank_scale, 0.1, 0.05),
                        ("allreduce", 0.0, 0.2, 0.1 * (r as f64 + 1.0)),
                    ],
                )
            })
            .collect();
        let elapsed = ranks.iter().map(|r| r.elapsed).fold(0.0, f64::max);
        RunRecord { p, elapsed, ranks }
    }

    #[test]
    fn speedup_is_exactly_one_at_p1() {
        let recs = [record(1, 4.0), record(2, 2.0), record(4, 1.0)];
        let rep = Report::build(&recs).unwrap();
        assert_eq!(rep.rows[0].p, 1);
        assert_eq!(rep.rows[0].speedup, Some(1.0));
        assert_eq!(rep.rows[0].efficiency, Some(1.0));
        let s2 = rep.rows[1].speedup.unwrap();
        assert!(s2 > 1.0, "P=2 should speed up, got {s2}");
    }

    #[test]
    fn missing_baseline_leaves_speedup_empty() {
        let rep = Report::build(&[record(2, 1.0)]).unwrap();
        assert_eq!(rep.rows[0].speedup, None);
        assert_eq!(rep.rows[0].efficiency, None);
        assert!(rep.to_text().contains('-'));
        assert!(rep.to_json().contains("\"speedup\": null"));
    }

    #[test]
    fn leaky_phase_buckets_are_rejected() {
        let mut rec = record(2, 1.0);
        rec.ranks[1].elapsed += 1e-3;
        let err = Report::build(&[rec]).unwrap_err();
        assert!(err.contains("rank 1"), "{err}");
        assert!(err.contains("phase buckets"), "{err}");
    }

    #[test]
    fn duplicate_and_mismatched_records_are_rejected() {
        let err = Report::build(&[record(2, 1.0), record(2, 1.0)]).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let mut rec = record(4, 1.0);
        rec.ranks.pop();
        let err = Report::build(&[rec]).unwrap_err();
        assert!(err.contains("rank entries"), "{err}");
        assert!(Report::build(&[]).is_err());
    }

    #[test]
    fn phase_aggregation_takes_max_and_mean() {
        let rep = Report::build(&[record(2, 1.0)]).unwrap();
        let row = &rep.rows[0];
        let ar = row.phases.iter().find(|p| p.name == "allreduce").unwrap();
        // idle is 0.1 on rank 0 and 0.2 on rank 1, plus 0.2 comm each.
        assert!((ar.max_s - 0.4).abs() < 1e-12);
        assert!((ar.mean_s - 0.35).abs() < 1e-12);
        assert!(ar.imbalance() > 1.0);
        assert_eq!(ar.msgs_sent, 4);
        assert_eq!(ar.collectives, 2);
    }

    #[test]
    fn renderings_are_deterministic_and_structured() {
        let recs = [record(1, 2.0), record(2, 1.0)];
        let rep = Report::build(&recs).unwrap();
        assert_eq!(rep.to_text(), Report::build(&recs).unwrap().to_text());
        assert_eq!(rep.to_json(), Report::build(&recs).unwrap().to_json());
        let csv = rep.summary_csv();
        assert!(csv.starts_with("p,elapsed_s,speedup"));
        assert_eq!(csv.lines().count(), 3);
        let pcsv = rep.phases_csv();
        assert!(pcsv.lines().count() > 4);
        let json = rep.to_json();
        assert!(json.contains("\"runs\""));
        assert!(json.contains("\"speedup\": 1.000000"));
    }
}
