//! Byte-level encoding of typed message payloads.
//!
//! Messages on the simulated wire are plain byte vectors, exactly as they
//! would be with MPI. This module provides the little-endian codecs the
//! typed `Comm` helpers use. Encoding is infallible; decoding validates
//! lengths and returns a typed [`DecodeError`] on corruption, so an
//! injected wire fault (see [`crate::fault`]) surfaces as a diagnosable
//! error naming the offending message instead of a panic.

use std::fmt;

/// Why a received payload could not be decoded. Embedded in
/// [`crate::SimError::PayloadCorrupt`] and reachable through
/// [`std::error::Error::source`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The payload length is not a multiple of the 8-byte element size.
    RaggedLength {
        /// Observed payload length in bytes.
        len: usize,
    },
    /// The payload length does not match the caller's buffer.
    LengthMismatch {
        /// Observed payload length in bytes.
        len: usize,
        /// Expected payload length in bytes.
        expected: usize,
    },
    /// The envelope checksum does not match the received bytes.
    ChecksumMismatch {
        /// Checksum the sender stamped on the envelope.
        expected: u64,
        /// Checksum of the bytes as received.
        found: u64,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::RaggedLength { len } => {
                write!(f, "payload length {len} is not a multiple of 8")
            }
            DecodeError::LengthMismatch { len, expected } => {
                write!(f, "payload length {len} does not match expected {expected}")
            }
            DecodeError::ChecksumMismatch { expected, found } => {
                write!(f, "checksum mismatch: envelope says {expected:#018x}, bytes hash to {found:#018x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// FNV-1a hash of a byte buffer; the envelope checksum used to detect
/// in-transit corruption when a fault plan is active.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Encode a slice of `f64` little-endian.
pub fn encode_f64s(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a byte buffer produced by [`encode_f64s`].
///
/// # Errors
/// [`DecodeError::RaggedLength`] if the length is not a multiple of 8.
pub fn decode_f64s(bytes: &[u8]) -> Result<Vec<f64>, DecodeError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(DecodeError::RaggedLength { len: bytes.len() });
    }
    Ok(bytes
        .chunks_exact(8)
        // lint:allow(unwrap): chunks_exact(8) yields 8-byte chunks
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect())
}

/// Decode into an existing buffer (must already have the right length);
/// avoids an allocation in hot reduction loops.
///
/// # Errors
/// [`DecodeError::LengthMismatch`] if `bytes.len() != out.len() * 8`.
pub fn decode_f64s_into(bytes: &[u8], out: &mut [f64]) -> Result<(), DecodeError> {
    if bytes.len() != out.len() * 8 {
        return Err(DecodeError::LengthMismatch { len: bytes.len(), expected: out.len() * 8 });
    }
    for (c, o) in bytes.chunks_exact(8).zip(out.iter_mut()) {
        // lint:allow(unwrap): chunks_exact(8) yields 8-byte chunks
        *o = f64::from_le_bytes(c.try_into().expect("chunk is 8 bytes"));
    }
    Ok(())
}

/// Encode a slice of `u64` little-endian.
pub fn encode_u64s(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a byte buffer produced by [`encode_u64s`].
///
/// # Errors
/// [`DecodeError::RaggedLength`] if the length is not a multiple of 8.
pub fn decode_u64s(bytes: &[u8]) -> Result<Vec<u64>, DecodeError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(DecodeError::RaggedLength { len: bytes.len() });
    }
    Ok(bytes
        .chunks_exact(8)
        // lint:allow(unwrap): chunks_exact(8) yields 8-byte chunks
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trip() {
        let v = vec![0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, std::f64::consts::PI];
        assert_eq!(decode_f64s(&encode_f64s(&v)).unwrap(), v);
    }

    #[test]
    fn f64_round_trip_preserves_nan_bits() {
        let v = [f64::NAN];
        let back = decode_f64s(&encode_f64s(&v)).unwrap();
        assert!(back[0].is_nan());
    }

    #[test]
    fn u64_round_trip() {
        let v = vec![0u64, 1, u64::MAX, 0xDEAD_BEEF];
        assert_eq!(decode_u64s(&encode_u64s(&v)).unwrap(), v);
    }

    #[test]
    fn decode_into_matches_decode() {
        let v = vec![1.0, 2.0, 3.0];
        let bytes = encode_f64s(&v);
        let mut out = vec![0.0; 3];
        decode_f64s_into(&bytes, &mut out).unwrap();
        assert_eq!(out, v);
    }

    #[test]
    fn ragged_payload_is_a_typed_error() {
        assert_eq!(decode_f64s(&[1, 2, 3]), Err(DecodeError::RaggedLength { len: 3 }));
        assert_eq!(decode_u64s(&[1, 2, 3, 4, 5]), Err(DecodeError::RaggedLength { len: 5 }));
        let mut out = vec![0.0; 2];
        assert_eq!(
            decode_f64s_into(&[0; 8], &mut out),
            Err(DecodeError::LengthMismatch { len: 8, expected: 16 })
        );
    }

    #[test]
    fn empty_round_trip() {
        assert!(decode_f64s(&encode_f64s(&[])).unwrap().is_empty());
        assert!(decode_u64s(&encode_u64s(&[])).unwrap().is_empty());
    }

    #[test]
    fn checksum_detects_any_single_byte_flip() {
        let bytes = encode_f64s(&[1.5, -2.25, 1e300]);
        let sum = checksum(&bytes);
        for i in 0..bytes.len() {
            for mask in [1u8, 0x80, 0xFF] {
                let mut flipped = bytes.clone();
                flipped[i] ^= mask;
                assert_ne!(checksum(&flipped), sum, "flip at byte {i} mask {mask:#x}");
            }
        }
        assert_eq!(checksum(&bytes), sum, "checksum is a pure function");
    }
}
