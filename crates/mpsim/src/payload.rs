//! Byte-level encoding of typed message payloads.
//!
//! Messages on the simulated wire are plain byte vectors, exactly as they
//! would be with MPI. This module provides the little-endian codecs the
//! typed `Comm` helpers use. Encoding is infallible; decoding validates
//! lengths and panics on corruption (a corrupt message inside the simulator
//! is a bug, not an input error).

/// Encode a slice of `f64` little-endian.
pub fn encode_f64s(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a byte buffer produced by [`encode_f64s`].
///
/// # Panics
/// Panics if the length is not a multiple of 8.
pub fn decode_f64s(bytes: &[u8]) -> Vec<f64> {
    assert!(
        bytes.len().is_multiple_of(8),
        "f64 payload length {} not a multiple of 8",
        bytes.len()
    );
    bytes
        .chunks_exact(8)
        // lint:allow(unwrap): chunks_exact(8) yields 8-byte chunks
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect()
}

/// Decode into an existing buffer (must already have the right length);
/// avoids an allocation in hot reduction loops.
///
/// # Panics
/// Panics if `bytes.len() != out.len() * 8`.
pub fn decode_f64s_into(bytes: &[u8], out: &mut [f64]) {
    assert_eq!(bytes.len(), out.len() * 8, "payload/buffer length mismatch");
    for (c, o) in bytes.chunks_exact(8).zip(out.iter_mut()) {
        // lint:allow(unwrap): chunks_exact(8) yields 8-byte chunks
        *o = f64::from_le_bytes(c.try_into().expect("chunk is 8 bytes"));
    }
}

/// Encode a slice of `u64` little-endian.
pub fn encode_u64s(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a byte buffer produced by [`encode_u64s`].
///
/// # Panics
/// Panics if the length is not a multiple of 8.
pub fn decode_u64s(bytes: &[u8]) -> Vec<u64> {
    assert!(
        bytes.len().is_multiple_of(8),
        "u64 payload length {} not a multiple of 8",
        bytes.len()
    );
    bytes
        .chunks_exact(8)
        // lint:allow(unwrap): chunks_exact(8) yields 8-byte chunks
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trip() {
        let v = vec![0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, std::f64::consts::PI];
        assert_eq!(decode_f64s(&encode_f64s(&v)), v);
    }

    #[test]
    fn f64_round_trip_preserves_nan_bits() {
        let v = [f64::NAN];
        let back = decode_f64s(&encode_f64s(&v));
        assert!(back[0].is_nan());
    }

    #[test]
    fn u64_round_trip() {
        let v = vec![0u64, 1, u64::MAX, 0xDEAD_BEEF];
        assert_eq!(decode_u64s(&encode_u64s(&v)), v);
    }

    #[test]
    fn decode_into_matches_decode() {
        let v = vec![1.0, 2.0, 3.0];
        let bytes = encode_f64s(&v);
        let mut out = vec![0.0; 3];
        decode_f64s_into(&bytes, &mut out);
        assert_eq!(out, v);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn ragged_payload_panics() {
        decode_f64s(&[1, 2, 3]);
    }

    #[test]
    fn empty_round_trip() {
        assert!(decode_f64s(&encode_f64s(&[])).is_empty());
        assert!(decode_u64s(&encode_u64s(&[])).is_empty());
    }
}
