//! # mpsim — a deterministic simulated message-passing multicomputer
//!
//! This crate is the substrate under the P-AutoClass reproduction: an
//! MPI-like SPMD environment in which *computation is real* (each rank is
//! an OS thread running the actual algorithm on its data partition, and
//! real bytes flow between ranks) while *time is virtual* (per-rank clocks
//! advance according to calibrated compute and network cost models).
//!
//! This lets a single-core host reproduce the scaling behaviour of a
//! 10-processor Meiko CS-2 deterministically: the numerical results are
//! exactly those of the parallel algorithm, and the reported elapsed time,
//! speedup and scaleup come from the machine model rather than from the
//! host's scheduler.
//!
//! ## Quick tour
//!
//! ```
//! use mpsim::{presets, run_spmd_default, ReduceOp};
//!
//! let machine = presets::meiko_cs2(4);
//! let out = run_spmd_default(&machine, |comm| {
//!     // SPMD body: run on every rank.
//!     let mut local = vec![comm.rank() as f64 + 1.0];
//!     comm.work(1_000);                        // model local compute
//!     comm.allreduce_f64s(&mut local, ReduceOp::Sum);
//!     local[0]
//! })
//! .unwrap();
//! assert!(out.per_rank.iter().all(|&v| v == 1.0 + 2.0 + 3.0 + 4.0));
//! assert!(out.elapsed > 0.0); // virtual seconds, deterministic
//! ```
//!
//! ## Modules
//! * [`topology`] — interconnect shapes and hop counts
//! * [`cost`] — LogGP-style network model, compute model, machine presets
//! * [`clock`] — per-rank virtual clocks with compute/comm/idle accounting
//! * [`comm`] — point-to-point messaging ([`Comm`]), blocking and
//!   non-blocking ([`Request`] handles with `wait`/`waitall`)
//! * [`collectives`] — Barrier/Bcast/Reduce/Allreduce/Gather/… on top of
//!   point-to-point, with textbook algorithms
//! * [`subcomm`] — sub-communicators (`MPI_Comm_split` analogue)
//! * [`engine`] — the SPMD launcher ([`run_spmd`]) and its two execution
//!   engines: thread-per-rank ([`Engine::Threaded`]) and the cooperative
//!   virtual-time scheduler ([`Engine::Cooperative`]) for `P = 1024+`
//! * [`fault`] — deterministic fault injection ([`FaultPlan`]: crashes,
//!   drops, delays, corruption, degraded links) and receive-side failure
//!   detection that turns hangs into typed errors naming the culprit
//! * [`replay`] — bounded per-rank rings of delivered-envelope
//!   coordinates ([`ReplayLog`]) that let a localized-recovery supervisor
//!   replay a single failed rank instead of rolling the world back
//! * [`trace`] — per-rank and aggregate statistics, including per-phase
//!   buckets fed by the [`Comm::enter_phase`] span API
//! * [`report`] — paper-style tables (per-phase time, speedup, efficiency,
//!   critical path) rendered from per-rank stats as text/CSV/JSON
//! * [`traits`] — the backend-neutral [`Communicator`] /
//!   [`GroupCommunicator`] traits (plus [`CommError`]) that let the same
//!   SPMD driver run on this simulator or on a wall-clock native backend
//! * [`verify`] — opt-in SPMD correctness verification: collective
//!   fingerprint cross-validation, wait-for-graph deadlock detection, and
//!   replication-invariant hashing (see [`SimOptions::verified`])

#![warn(missing_docs)]

pub mod clock;
pub mod collectives;
pub mod comm;
mod coop;
pub mod cost;
pub mod engine;
pub mod error;
pub mod fault;
pub mod payload;
pub mod replay;
pub mod report;
pub mod subcomm;
pub mod topology;
pub mod trace;
pub mod traits;
pub mod verify;

pub use clock::PhaseTimes;
pub use collectives::ReduceOp;
pub use comm::{Comm, Request, DEFAULT_PHASE, MAX_USER_TAG};
pub use cost::{
    predicted_allreduce_cost, presets, select_allreduce, AllreduceAlgo, ComputeModel, MachineSpec,
    NetworkModel,
};
pub use engine::{run_spmd, run_spmd_default, Engine, SimOptions, SpmdOutput};
pub use error::SimError;
pub use fault::{FaultAction, FaultKind, FaultPlan, FaultSpec, FaultTrigger};
pub use payload::DecodeError;
pub use replay::{ReplayEntry, ReplayLog};
pub use report::{PhaseRow, Report, RunRecord, RunRow};
pub use subcomm::SubComm;
pub use topology::Topology;
pub use trace::{Event, EventKind, PhaseStats, RankStats, RunStats, RECOVERY_PHASE};
pub use traits::{CommError, Communicator, GroupCommunicator};
pub use verify::{hash_f64s, CollFingerprint, CollKind, VerifyOptions};
