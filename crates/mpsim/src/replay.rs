//! In-flight message replay log for localized recovery.
//!
//! Each rank keeps a bounded ring of the envelopes *delivered to it*
//! since its last checkpoint: the sender, tag, per-pair sequence number,
//! payload length, and the payload's FNV-1a checksum. The log answers
//! the question a localized-recovery supervisor asks after a single-rank
//! failure — "what traffic does the failed rank have to re-derive to
//! catch back up to the surviving ranks' horizon?" — without holding the
//! payload bytes themselves (the replay re-executes the deterministic
//! rank body from the checkpoint, so coordinates are all that is needed
//! to size and charge the replay).
//!
//! The log is shared [`ReplayLog`]-handle-style exactly like
//! [`crate::FaultPlan`]: clones see the same rings, so the supervisor
//! that installed the log in [`crate::SimOptions::replay`] can read the
//! failed rank's ring after the run dies. Writes are charged a small
//! virtual-time cost on the receiving rank (see
//! [`ReplayLog::WRITE_OPS`]) — durability is not free, and the
//! `faultmatrix` gates compare recovery times across policies honestly
//! only if the logging tax is on the books.
//!
//! Rings are truncated by [`crate::Comm::replay_truncate`] (called by
//! the checkpoint publisher) — entries older than the last checkpoint
//! can never need replaying. When a ring overflows its capacity the
//! oldest entry is evicted and counted: an eviction since the last
//! checkpoint means the log no longer covers the full gap, and the
//! supervisor must fall back to a full restart for correctness.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Coordinates of one delivered envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayEntry {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: u64,
    /// Per-(sender, receiver) sequence number.
    pub seq: u64,
    /// FNV-1a checksum of the payload bytes (0 when the sender did not
    /// stamp one).
    pub checksum: u64,
    /// Payload length in bytes.
    pub len: usize,
}

#[derive(Debug, Default)]
struct Ring {
    entries: VecDeque<ReplayEntry>,
    /// Entries evicted by capacity pressure since the last truncate.
    evicted: u64,
}

#[derive(Debug)]
struct Inner {
    capacity: usize,
    /// One ring per rank, grown on first use.
    rings: Mutex<Vec<Ring>>,
}

/// Shared handle to the per-rank delivery rings (see the module docs).
/// Clones share state, like [`crate::FaultPlan`].
#[derive(Debug, Clone)]
pub struct ReplayLog {
    inner: Arc<Inner>,
}

impl ReplayLog {
    /// Abstract compute ops charged on the receiving rank per logged
    /// entry (a bounded-ring append of five words).
    pub const WRITE_OPS: u64 = 4;

    /// A log whose per-rank rings hold at most `capacity` entries
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        ReplayLog {
            inner: Arc::new(Inner { capacity: capacity.max(1), rings: Mutex::new(Vec::new()) }),
        }
    }

    /// Ring capacity per rank.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    fn with_ring<R>(&self, rank: usize, f: impl FnOnce(&mut Ring) -> R) -> R {
        // lint:allow(unwrap): mutex poisoning only follows another panic
        let mut rings = self.inner.rings.lock().expect("replay log lock");
        if rings.len() <= rank {
            rings.resize_with(rank + 1, Ring::default);
        }
        f(&mut rings[rank])
    }

    /// Append a delivered envelope's coordinates to `rank`'s ring,
    /// evicting the oldest entry at capacity.
    pub fn record(&self, rank: usize, entry: ReplayEntry) {
        let capacity = self.inner.capacity;
        self.with_ring(rank, |ring| {
            if ring.entries.len() == capacity {
                ring.entries.pop_front();
                ring.evicted += 1;
            }
            ring.entries.push_back(entry);
        });
    }

    /// Drop everything logged for `rank` (its checkpoint just made the
    /// entries unnecessary) and clear its eviction count.
    pub fn truncate(&self, rank: usize) {
        self.with_ring(rank, |ring| {
            ring.entries.clear();
            ring.evicted = 0;
        });
    }

    /// Entries currently logged for `rank`.
    pub fn len(&self, rank: usize) -> usize {
        self.with_ring(rank, |ring| ring.entries.len())
    }

    /// Whether `rank`'s ring is empty.
    pub fn is_empty(&self, rank: usize) -> bool {
        self.len(rank) == 0
    }

    /// Entries evicted from `rank`'s ring since its last truncate. A
    /// non-zero count means the ring no longer covers the gap back to
    /// the checkpoint.
    pub fn evicted(&self, rank: usize) -> u64 {
        self.with_ring(rank, |ring| ring.evicted)
    }

    /// Snapshot of `rank`'s ring, oldest first.
    pub fn snapshot(&self, rank: usize) -> Vec<ReplayEntry> {
        self.with_ring(rank, |ring| ring.entries.iter().copied().collect())
    }

    /// Clear every ring (a fresh recovery epoch).
    pub fn reset(&self) {
        // lint:allow(unwrap): mutex poisoning only follows another panic
        let mut rings = self.inner.rings.lock().expect("replay log lock");
        rings.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(src: usize, seq: u64) -> ReplayEntry {
        ReplayEntry { src, tag: 7, seq, checksum: 0xFEED, len: 24 }
    }

    #[test]
    fn records_in_order_and_snapshots() {
        let log = ReplayLog::new(8);
        log.record(2, e(0, 1));
        log.record(2, e(1, 1));
        assert_eq!(log.len(2), 2);
        assert_eq!(log.len(0), 0);
        let snap = log.snapshot(2);
        assert_eq!(snap[0].src, 0);
        assert_eq!(snap[1].src, 1);
        assert_eq!(log.evicted(2), 0);
    }

    #[test]
    fn capacity_evicts_oldest_and_counts() {
        let log = ReplayLog::new(3);
        for seq in 1..=5 {
            log.record(0, e(1, seq));
        }
        assert_eq!(log.len(0), 3);
        assert_eq!(log.evicted(0), 2);
        let snap = log.snapshot(0);
        assert_eq!(snap.iter().map(|x| x.seq).collect::<Vec<_>>(), vec![3, 4, 5]);
    }

    #[test]
    fn truncate_clears_entries_and_evictions() {
        let log = ReplayLog::new(2);
        for seq in 1..=4 {
            log.record(1, e(0, seq));
        }
        assert_eq!(log.evicted(1), 2);
        log.truncate(1);
        assert!(log.is_empty(1));
        assert_eq!(log.evicted(1), 0);
        // Other ranks' rings are untouched by a per-rank truncate.
        log.record(0, e(1, 9));
        log.truncate(1);
        assert_eq!(log.len(0), 1);
    }

    #[test]
    fn clones_share_the_rings() {
        let log = ReplayLog::new(4);
        let alias = log.clone();
        alias.record(3, e(0, 1));
        assert_eq!(log.len(3), 1);
        log.reset();
        assert_eq!(alias.len(3), 0);
    }
}
