//! Machine cost models: network (LogGP-style) and compute.
//!
//! The simulator executes the real algorithm and charges *virtual time* for
//! compute and communication. The network model follows the LogGP family:
//! a message of `m` bytes over `h` hops costs
//!
//! ```text
//! t = latency + m * byte_time + h * per_hop
//! ```
//!
//! with a fixed CPU `overhead` charged on both the sending and receiving
//! rank. Compute is charged per abstract "op" reported by the algorithm
//! (see [`crate::Comm::work`]); what counts as one op is up to the caller
//! and calibrated per preset.
//!
//! # Calibration
//!
//! The `meiko_cs2` preset is *shape*-calibrated to the P-AutoClass paper
//! (IPPS 2000): link bandwidth 50 MB/s is from the paper; MPI latency and
//! the per-op cost are chosen so that one `base_cycle` over 10 000
//! two-attribute tuples with 8 classes takes roughly the paper's ~0.45 s
//! on one processor, and so that speedup for small datasets saturates
//! around 4–8 processors as the paper's Figure 7 shows. Absolute numbers
//! are not claimed to match the 1999 hardware.

use crate::topology::Topology;

/// Network timing parameters (seconds).
///
/// Under non-blocking operations (see [`crate::Request`]) only the *wire*
/// components — `latency`, `byte_time`, `per_hop` (LogGP `L`/`G` and hop
/// cost) — can hide behind concurrent compute; `overhead` (LogGP `o`) is
/// CPU time and is always charged on the posting rank's clock at post.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// Per-message start-up latency (the LogGP `L`).
    pub latency: f64,
    /// Seconds per payload byte (inverse bandwidth, the LogGP `G`).
    pub byte_time: f64,
    /// Additional cost per network hop (switch traversal).
    pub per_hop: f64,
    /// CPU time charged on each endpoint per message (the LogGP `o`).
    pub overhead: f64,
}

impl NetworkModel {
    /// Transit time of an `bytes`-byte message over `hops` hops. Messages a
    /// rank sends to itself (0 hops) bypass the network and cost nothing in
    /// transit (endpoint overhead is still charged by the communicator).
    pub fn transit(&self, bytes: usize, hops: usize) -> f64 {
        if hops == 0 {
            return 0.0;
        }
        self.latency + bytes as f64 * self.byte_time + hops as f64 * self.per_hop
    }

    /// A zero-cost network (useful for ideal-machine comparisons).
    pub fn ideal() -> Self {
        NetworkModel { latency: 0.0, byte_time: 0.0, per_hop: 0.0, overhead: 0.0 }
    }
}

/// Compute timing parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeModel {
    /// Seconds per abstract op reported through [`crate::Comm::work`].
    pub sec_per_op: f64,
    /// Multiplier applied to wall-clock time measured through
    /// [`crate::Comm::measured`]; lets a fast host impersonate slow
    /// historical CPUs (or vice versa).
    pub wall_scale: f64,
}

impl ComputeModel {
    /// Zero-cost compute model (virtual time advances only for comm).
    pub fn ideal() -> Self {
        ComputeModel { sec_per_op: 0.0, wall_scale: 0.0 }
    }
}

/// Algorithm used by `Allreduce` (and `Reduce`/`Bcast` pick the matching
/// tree shapes). Early-1990s MPI implementations commonly used linear
/// gather+broadcast reductions; modern ones use recursive doubling or ring
/// algorithms. The choice changes the latency/bandwidth trade-off and is
/// one of the ablations in the bench crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllreduceAlgo {
    /// Gather everything to rank 0, reduce there, broadcast back. Costs
    /// `O(P)` message latencies; best only for tiny communicators.
    Linear,
    /// Recursive doubling: `ceil(log2 P)` rounds of pairwise exchanges of
    /// the full vector. Latency-optimal for short messages.
    RecursiveDoubling,
    /// Reduce-scatter + allgather over a ring: `2(P-1)` rounds of `m/P`
    /// sized messages. Bandwidth-optimal for long messages.
    Ring,
    /// Behavioural alias of `Linear` kept for call-site intent: `Linear`
    /// already folds in rank order, so its floating-point result is
    /// deterministic and matches a sequential left fold regardless of P.
    /// Tests that require bitwise reproducibility use this name.
    OrderedLinear,
    /// Rabenseifner's algorithm: recursive-halving reduce-scatter followed
    /// by a recursive-doubling allgather. `2·ceil(log2 P)` rounds moving
    /// `~2m(P−1)/P` bytes per rank — the ring's bandwidth optimality with
    /// logarithmic instead of linear latency. The best of both worlds for
    /// long vectors on machines where latency still matters.
    Rabenseifner,
    /// Hierarchical allreduce for machines built from multicore nodes
    /// (see [`crate::Topology::HierFatTree`]): an ascending-order linear
    /// fold to each node's leader over the cheap intra-node fabric,
    /// Rabenseifner among the node leaders over the inter-node network,
    /// then an intra-node broadcast of the result. On a flat topology
    /// (node size 1) it degenerates to plain Rabenseifner. Never chosen by
    /// `Auto` — like `OrderedLinear`, it is an explicit request, because
    /// its advantage only exists when the machine actually has an
    /// intra-node fast path.
    Hierarchical,
    /// Pick the predicted-cheapest concrete algorithm per call from the
    /// machine's LogGP parameters, the communicator size, and the vector
    /// length (see [`select_allreduce`]). The selection depends only on
    /// values identical on every rank, so all ranks pick the same
    /// algorithm.
    Auto,
}

/// Predicted virtual cost (seconds) of one allreduce of `elems` f64s on
/// `p` ranks under `net`, per algorithm. These are the standard LogGP-style
/// estimates with per-message cost `l = L + m·G + 2o` (topology hops are
/// deliberately ignored: selection only needs the relative ordering, and
/// hop counts vary per pair):
///
/// ```text
/// linear:       2(P−1)·(l + mG)            gather to root + broadcast
/// rec-doubling: ceil(log2 P)·(l + mG)      + 2(l + mG) if P not a power of 2
/// ring:         2(P−1)·(l + (m/P)G)        reduce-scatter + allgather
/// rabenseifner: 2·Σ_{r=1..log2 P'}(l + (m/2^r)G)
///               ≈ 2·log2 P'·l + 2m(1−1/P')G, + 2(l + mG) if P not a power of 2
/// ```
///
/// where `m = 8·elems` bytes and `P'` is the largest power of two ≤ P.
/// `Auto` evaluates to the cost of the algorithm [`select_allreduce`]
/// picks; `OrderedLinear` costs the same as `Linear`.
pub fn predicted_allreduce_cost(
    algo: AllreduceAlgo,
    p: usize,
    elems: usize,
    net: &NetworkModel,
) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let m = (elems * 8) as f64;
    let pf = p as f64;
    // One message of `bytes` payload: latency + wire time + both endpoints'
    // CPU overhead.
    let msg = |bytes: f64| net.latency + bytes * net.byte_time + 2.0 * net.overhead;
    // Largest power of two ≤ p, and the extra two full-vector messages the
    // pow2-based algorithms pay to park the remainder ranks.
    let pow2 = if p.is_power_of_two() { p } else { p.next_power_of_two() / 2 };
    let park = if p.is_power_of_two() { 0.0 } else { 2.0 * msg(m) };
    match algo {
        AllreduceAlgo::Linear | AllreduceAlgo::OrderedLinear => 2.0 * (pf - 1.0) * msg(m),
        AllreduceAlgo::RecursiveDoubling => {
            let rounds = pow2.trailing_zeros() as f64;
            rounds * msg(m) + park
        }
        AllreduceAlgo::Ring => 2.0 * (pf - 1.0) * msg(m / pf),
        AllreduceAlgo::Rabenseifner => {
            // Halving message sizes m/2, m/4, … in the reduce-scatter, the
            // same sizes again in the allgather.
            let mut cost = park;
            let mut sz = m / 2.0;
            for _ in 0..pow2.trailing_zeros() {
                cost += 2.0 * msg(sz);
                sz /= 2.0;
            }
            cost
        }
        AllreduceAlgo::Hierarchical => {
            // The true cost depends on the node grouping, which this
            // topology-blind estimator cannot see; approximate by the
            // inter-node stage (Rabenseifner over the leaders). Adequate
            // because Hierarchical is only ever chosen explicitly.
            predicted_allreduce_cost(AllreduceAlgo::Rabenseifner, p, elems, net)
        }
        AllreduceAlgo::Auto => {
            predicted_allreduce_cost(select_allreduce(p, elems, net), p, elems, net)
        }
    }
}

/// Resolve [`AllreduceAlgo::Auto`]: the concrete algorithm with the lowest
/// predicted LogGP cost for this (P, vector length, network). Deterministic
/// — strict `<` with a fixed candidate order breaks ties — and a pure
/// function of values that are identical on every rank (the collective
/// fingerprint already enforces equal lengths), so all ranks agree.
/// `OrderedLinear` is never auto-selected: it exists as an explicit
/// determinism request, not a performance choice.
pub fn select_allreduce(p: usize, elems: usize, net: &NetworkModel) -> AllreduceAlgo {
    let candidates = [
        AllreduceAlgo::RecursiveDoubling,
        AllreduceAlgo::Rabenseifner,
        AllreduceAlgo::Ring,
        AllreduceAlgo::Linear,
    ];
    let mut best = AllreduceAlgo::RecursiveDoubling;
    let mut best_cost = f64::INFINITY;
    for algo in candidates {
        let cost = predicted_allreduce_cost(algo, p, elems, net);
        if cost < best_cost {
            best = algo;
            best_cost = cost;
        }
    }
    best
}

/// A complete machine description: size, interconnect, and timing.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Number of ranks (processors).
    pub p: usize,
    /// Interconnect shape.
    pub topology: Topology,
    /// Network timing for the inter-node interconnect.
    pub network: NetworkModel,
    /// Optional timing for the *intra-node* fabric (shared memory or an
    /// on-node bus). Used for pairs the topology reports as
    /// [`colocated`](Topology::colocated); `None` means every pair pays
    /// the main network's prices. Only meaningful with a hierarchical
    /// topology, whose node grouping defines colocation.
    pub intra: Option<NetworkModel>,
    /// Compute timing.
    pub compute: ComputeModel,
    /// Default algorithm for `Allreduce`.
    pub allreduce: AllreduceAlgo,
    /// Per-rank relative compute speed (1.0 = the base `compute` model;
    /// 0.5 = half speed). Empty means homogeneous. Lets experiments model
    /// heterogeneous nodes and the load imbalance they cause.
    pub rank_speed: Vec<f64>,
    /// Warm standby processors beyond `p`: physical slots `p..p+spares`
    /// hold idle ranks that the recovery supervisor can promote into a
    /// failed logical slot via [`MachineSpec::promote`] without changing
    /// `p` (and hence without changing any collective schedule).
    pub spares: usize,
    /// Logical-rank → physical-slot indirection. Empty means the identity
    /// mapping. Entry `r` names the physical slot that carries logical
    /// rank `r`; after a promotion the failed rank's entry points at a
    /// spare slot (`>= p`). Only *costs* (hops, transit, speed) see the
    /// physical slot — message routing, collectives, and verification all
    /// stay in logical-rank space, which is what keeps a promoted run
    /// bitwise identical to the fault-free one.
    pub member_table: Vec<usize>,
}

impl MachineSpec {
    /// Physical slot carrying a logical rank (identity when no promotion
    /// has touched the member table).
    pub fn slot(&self, rank: usize) -> usize {
        self.member_table.get(rank).copied().unwrap_or(rank)
    }

    /// Total physical slots: the `p` working ranks plus the warm spares.
    pub fn slots(&self) -> usize {
        self.p + self.spares
    }

    /// Hop count between two logical ranks under this machine's topology,
    /// measured between the physical slots that carry them.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        self.topology.hops_with_size(self.slots(), self.slot(a), self.slot(b))
    }

    /// Transit time of a message between two logical ranks. Colocated
    /// pairs (same node under a hierarchical topology) use the intra-node
    /// fabric's prices when one is configured; self-messages stay free.
    pub fn transit(&self, bytes: usize, from: usize, to: usize) -> f64 {
        let (from, to) = (self.slot(from), self.slot(to));
        if from != to && self.topology.colocated(from, to) {
            if let Some(intra) = &self.intra {
                return intra.transit(bytes, 1);
            }
        }
        self.network.transit(bytes, self.topology.hops_with_size(self.slots(), from, to))
    }

    /// Relative compute speed of a logical rank (1.0 when unspecified),
    /// read from the physical slot carrying it.
    pub fn speed(&self, rank: usize) -> f64 {
        let s = self.rank_speed.get(self.slot(rank)).copied().unwrap_or(1.0);
        if s.is_finite() && s > 0.0 {
            s
        } else {
            1.0
        }
    }

    /// Returns a copy with the given per-rank speeds (convenience for
    /// heterogeneous-machine experiments).
    pub fn with_rank_speeds(mut self, speeds: Vec<f64>) -> Self {
        assert_eq!(speeds.len(), self.p, "need one speed per rank");
        self.rank_speed = speeds;
        self
    }

    /// Returns a copy with `n` warm spare slots appended after the `p`
    /// working ranks (identity member table until a promotion).
    pub fn with_spares(mut self, n: usize) -> Self {
        self.spares = n;
        self
    }

    /// Point logical rank `logical` at physical slot `slot` (normally a
    /// spare slot in `p..slots()`), materializing the identity member
    /// table first if it was empty.
    ///
    /// # Panics
    /// Panics if `logical >= p` or `slot >= slots()` — promotion rewires
    /// an existing logical rank onto an existing physical slot, never
    /// grows the machine.
    pub fn promote(&mut self, logical: usize, slot: usize) {
        assert!(logical < self.p, "logical rank {logical} out of range (p = {})", self.p);
        assert!(slot < self.slots(), "slot {slot} out of range ({} slots)", self.slots());
        if self.member_table.is_empty() {
            self.member_table = (0..self.p).collect();
        }
        self.member_table[logical] = slot;
    }
}

/// Ready-made machine descriptions.
pub mod presets {
    use super::*;

    /// The paper's testbed: a Meiko CS-2 with up to 10 SPARC processors on
    /// an arity-4 fat tree with 50 MB/s links. See the module docs for the
    /// calibration rationale. The default allreduce is `Linear`, matching
    /// the saturation behaviour the paper observed with its era's MPI.
    pub fn meiko_cs2(p: usize) -> MachineSpec {
        MachineSpec {
            p,
            topology: Topology::FatTree { arity: 4 },
            network: NetworkModel {
                // Era MPI cost is dominated by per-message CPU protocol
                // processing (`overhead`, charged per endpoint and thus
                // serialized at a busy root), with a smaller pipelined wire
                // latency. Both are shape-calibrated to Fig. 7's saturation.
                latency: 80e-6,
                byte_time: 1.0 / 50e6, // 50 MB/s from the paper
                per_hop: 1e-6,
                overhead: 120e-6,
            },
            intra: None,
            compute: ComputeModel {
                // One "op" in autoclass terms is one (item, class,
                // attribute) kernel evaluation (a Gaussian log-density or
                // a multinomial lookup plus weighted accumulation).
                sec_per_op: 0.75e-6, // ~1.3 M kernel evals/s on a ~1999 SPARC
                wall_scale: 1.0,
            },
            allreduce: AllreduceAlgo::Linear,
            rank_speed: Vec::new(),
            spares: 0,
            member_table: Vec::new(),
        }
    }

    /// A contemporary commodity cluster: low-latency network, fast CPUs.
    pub fn modern_cluster(p: usize) -> MachineSpec {
        MachineSpec {
            p,
            topology: Topology::FatTree { arity: 16 },
            network: NetworkModel {
                latency: 2e-6,
                byte_time: 1.0 / 10e9,
                per_hop: 100e-9,
                overhead: 500e-9,
            },
            intra: None,
            compute: ComputeModel { sec_per_op: 2e-9, wall_scale: 1.0 },
            // A modern MPI picks its collective algorithm per call from the
            // message size; model that with the size-adaptive selector.
            allreduce: AllreduceAlgo::Auto,
            rank_speed: Vec::new(),
            spares: 0,
            member_table: Vec::new(),
        }
    }

    /// A machine with free communication — the upper bound on speedup.
    pub fn ideal(p: usize) -> MachineSpec {
        MachineSpec {
            p,
            topology: Topology::Crossbar,
            network: NetworkModel::ideal(),
            intra: None,
            compute: ComputeModel { sec_per_op: 1.4e-6, wall_scale: 1.0 },
            allreduce: AllreduceAlgo::RecursiveDoubling,
            rank_speed: Vec::new(),
            spares: 0,
            member_table: Vec::new(),
        }
    }

    /// A fat tree of multicore nodes: `node_size` ranks per node sharing a
    /// fast on-node fabric, nodes connected by a modern-cluster-grade
    /// arity-16 fat tree. The default allreduce is [`AllreduceAlgo::
    /// Hierarchical`], which folds inside each node before going over the
    /// wire — the machine shape the large-P sweeps (P = 64…1024) model.
    pub fn hier_cluster(p: usize, node_size: usize) -> MachineSpec {
        MachineSpec {
            p,
            topology: Topology::HierFatTree { node_size: node_size.max(1), arity: 16 },
            network: NetworkModel {
                latency: 2e-6,
                byte_time: 1.0 / 10e9,
                per_hop: 100e-9,
                overhead: 500e-9,
            },
            // Shared-memory transfers inside a node: ~100× lower latency,
            // memory-bus bandwidth, negligible per-hop cost.
            intra: Some(NetworkModel {
                latency: 200e-9,
                byte_time: 1.0 / 40e9,
                per_hop: 10e-9,
                overhead: 100e-9,
            }),
            compute: ComputeModel { sec_per_op: 2e-9, wall_scale: 1.0 },
            allreduce: AllreduceAlgo::Hierarchical,
            rank_speed: Vec::new(),
            spares: 0,
            member_table: Vec::new(),
        }
    }

    /// Zero-cost machine used by unit tests that only check data movement.
    pub fn zero_cost(p: usize) -> MachineSpec {
        MachineSpec {
            p,
            topology: Topology::Crossbar,
            network: NetworkModel::ideal(),
            intra: None,
            compute: ComputeModel::ideal(),
            allreduce: AllreduceAlgo::RecursiveDoubling,
            rank_speed: Vec::new(),
            spares: 0,
            member_table: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_table_defaults_to_identity() {
        let m = presets::meiko_cs2(4);
        assert_eq!(m.spares, 0);
        assert_eq!(m.slots(), 4);
        for r in 0..4 {
            assert_eq!(m.slot(r), r);
        }
        // With spares but no promotion, costs are untouched for flat
        // (non-hierarchical) topologies: hop counts there depend only on
        // the endpoint pair, not the machine size.
        let spared = presets::meiko_cs2(4).with_spares(2);
        assert_eq!(spared.slots(), 6);
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(spared.transit(64, a, b), m.transit(64, a, b), "{a}->{b}");
            }
        }
    }

    #[test]
    fn promotion_reroutes_costs_through_the_spare_slot() {
        let mut m = presets::meiko_cs2(4).with_spares(1).with_rank_speeds(vec![1.0; 4]);
        m.rank_speed.push(0.5); // the spare slot is a slower node
        assert_eq!(m.speed(1), 1.0);
        m.promote(1, 4);
        assert_eq!(m.slot(1), 4, "logical rank 1 now lives on slot 4");
        assert_eq!(m.slot(0), 0, "other ranks keep their slots");
        assert_eq!(m.speed(1), 0.5, "speed reads the physical slot");
        // Self-messages of the promoted rank stay free: both endpoints
        // resolve to the same slot.
        assert_eq!(m.transit(64, 1, 1), 0.0);
        assert_eq!(m.p, 4, "promotion never changes P");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn promotion_to_a_nonexistent_slot_panics() {
        let mut m = presets::zero_cost(2).with_spares(1);
        m.promote(0, 3);
    }

    #[test]
    fn transit_is_affine_in_bytes_and_hops() {
        let n = NetworkModel { latency: 1.0, byte_time: 0.5, per_hop: 0.25, overhead: 0.0 };
        assert_eq!(n.transit(0, 1), 1.25);
        assert_eq!(n.transit(4, 1), 1.0 + 2.0 + 0.25);
        assert_eq!(n.transit(4, 3), 1.0 + 2.0 + 0.75);
    }

    #[test]
    fn self_messages_have_no_transit() {
        let n = NetworkModel { latency: 1.0, byte_time: 1.0, per_hop: 1.0, overhead: 1.0 };
        assert_eq!(n.transit(1_000_000, 0), 0.0);
    }

    #[test]
    fn presets_are_sane() {
        let m = presets::meiko_cs2(10);
        assert_eq!(m.p, 10);
        assert!(m.network.latency > 0.0);
        assert!(m.compute.sec_per_op > 0.0);
        // 50 MB/s from the paper
        assert!((m.network.byte_time - 2e-8).abs() < 1e-12);

        let i = presets::ideal(4);
        assert_eq!(i.network.transit(100, i.hops(0, 3)), 0.0);
    }

    /// Meiko-like parameters used by the selection tests: high latency and
    /// per-message overhead, 50 MB/s links.
    fn meiko_net() -> NetworkModel {
        NetworkModel { latency: 80e-6, byte_time: 2e-8, per_hop: 1e-6, overhead: 120e-6 }
    }

    #[test]
    fn selection_prefers_recursive_doubling_for_short_vectors() {
        let net = meiko_net();
        for p in [2, 4, 8, 16] {
            assert_eq!(
                select_allreduce(p, 2, &net),
                AllreduceAlgo::RecursiveDoubling,
                "P={p}: short vectors are latency-bound"
            );
        }
    }

    #[test]
    fn selection_prefers_rabenseifner_for_long_vectors_on_pow2() {
        let net = meiko_net();
        for p in [4, 8, 16] {
            assert_eq!(
                select_allreduce(p, 262_144, &net),
                AllreduceAlgo::Rabenseifner,
                "P={p}: long vectors are bandwidth-bound, log latency beats ring"
            );
        }
    }

    #[test]
    fn selection_prefers_ring_for_long_vectors_on_awkward_p() {
        // Non-power-of-two P makes Rabenseifner pay two extra full-vector
        // parking messages; the ring has no such penalty.
        let net = meiko_net();
        assert_eq!(select_allreduce(6, 1 << 20, &net), AllreduceAlgo::Ring);
    }

    #[test]
    fn selection_is_always_concrete() {
        let net = meiko_net();
        for p in 1..=17 {
            for elems in [0, 1, 64, 4096, 1 << 18] {
                let algo = select_allreduce(p, elems, &net);
                assert!(
                    !matches!(algo, AllreduceAlgo::Auto | AllreduceAlgo::OrderedLinear),
                    "P={p} elems={elems}: selected {algo:?}"
                );
            }
        }
    }

    #[test]
    fn selection_is_deterministic_on_a_free_network() {
        // All costs are 0 on the ideal network; the fixed candidate order
        // must break the tie the same way every time.
        let net = NetworkModel::ideal();
        for p in 2..=9 {
            assert_eq!(select_allreduce(p, 100, &net), AllreduceAlgo::RecursiveDoubling);
        }
    }

    #[test]
    fn predicted_costs_match_hand_formulas() {
        let net = meiko_net();
        let msg = |bytes: f64| net.latency + bytes * net.byte_time + 2.0 * net.overhead;
        let m = 8.0 * 512.0;
        // P=4 (pow2): 2 rounds of recursive doubling.
        let rd = predicted_allreduce_cost(AllreduceAlgo::RecursiveDoubling, 4, 512, &net);
        assert!((rd - 2.0 * msg(m)).abs() < 1e-12);
        let ring = predicted_allreduce_cost(AllreduceAlgo::Ring, 4, 512, &net);
        assert!((ring - 6.0 * msg(m / 4.0)).abs() < 1e-12);
        let rab = predicted_allreduce_cost(AllreduceAlgo::Rabenseifner, 4, 512, &net);
        assert!((rab - 2.0 * (msg(m / 2.0) + msg(m / 4.0))).abs() < 1e-12);
        // Auto's cost equals its selection's cost.
        let auto = predicted_allreduce_cost(AllreduceAlgo::Auto, 4, 512, &net);
        let sel = select_allreduce(4, 512, &net);
        assert_eq!(auto, predicted_allreduce_cost(sel, 4, 512, &net));
        // P=1 is free for everyone.
        assert_eq!(predicted_allreduce_cost(AllreduceAlgo::Linear, 1, 512, &net), 0.0);
    }

    #[test]
    fn hier_cluster_intra_node_transit_is_cheaper() {
        let m = presets::hier_cluster(64, 8);
        // Ranks 0 and 7 share node 0; 0 and 8 do not.
        let intra = m.transit(1024, 0, 7);
        let inter = m.transit(1024, 0, 8);
        assert!(intra < inter, "intra {intra} vs inter {inter}");
        assert_eq!(m.transit(1024, 5, 5), 0.0, "self messages stay free");
        // Without an intra model, colocated pairs pay network prices.
        let mut flat = m.clone();
        flat.intra = None;
        assert!(flat.transit(1024, 0, 7) > intra);
    }

    #[test]
    fn hierarchical_is_never_auto_selected_and_has_a_cost() {
        let net = meiko_net();
        for p in 2..=17 {
            assert_ne!(select_allreduce(p, 4096, &net), AllreduceAlgo::Hierarchical);
        }
        let c = predicted_allreduce_cost(AllreduceAlgo::Hierarchical, 8, 4096, &net);
        assert_eq!(c, predicted_allreduce_cost(AllreduceAlgo::Rabenseifner, 8, 4096, &net));
    }

    #[test]
    fn machine_transit_uses_topology_hops() {
        let m = presets::meiko_cs2(10);
        // ranks 0 and 1 share a leaf switch (2 hops); 0 and 5 do not (4 hops)
        assert!(m.transit(8, 0, 5) > m.transit(8, 0, 1));
        assert_eq!(m.transit(8, 3, 3), 0.0);
    }
}
