//! Error types for the simulated multicomputer.

use std::fmt;

/// Errors surfaced by the SPMD engine or by communication primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing
pub enum SimError {
    /// A rank's user code panicked. The message is the panic payload when
    /// it was a string, or a placeholder otherwise.
    RankPanicked { rank: usize, message: String },
    /// A blocking receive waited longer than the configured wall-clock
    /// timeout. This almost always indicates mismatched communication
    /// (e.g. one rank skipped a collective) rather than a slow sender.
    RecvTimeout { rank: usize, from: usize, tag: u64 },
    /// The run was aborted because another rank failed first.
    Aborted { rank: usize },
    /// Invalid machine description (e.g. zero ranks).
    InvalidMachine(String),
    /// A collective was called with arguments inconsistent across ranks
    /// (detected where cheaply possible, e.g. mismatched buffer lengths).
    CollectiveMismatch { rank: usize, detail: String },
    /// Cross-rank collective divergence caught by the fingerprint checker
    /// (see [`crate::verify`]): at the same sequence number two ranks
    /// called different collectives, or the same collective with
    /// incompatible root / operator / element count. `seq` is the
    /// per-communicator collective sequence number at which they diverged.
    CollectiveDivergence { rank: usize, seq: u64, detail: String },
    /// The wait-for-graph detector (see [`crate::verify`]) proved the run
    /// can never make progress: a cycle of ranks blocked on each other, or
    /// a rank blocked on a rank that already finished. `cycle` lists the
    /// ranks forming the cycle (empty for the finished-peer case); `detail`
    /// renders the full wait-for graph.
    Deadlock { rank: usize, cycle: Vec<usize>, detail: String },
    /// Replication-invariant violation (see [`crate::verify`]): a value
    /// that must be bitwise identical on every rank of the communicator
    /// (an allreduce/broadcast result, or a buffer passed to
    /// [`crate::Comm::verify_replicated`]) hashed differently across ranks.
    ReplicationDivergence { rank: usize, seq: u64, detail: String },
    /// A non-blocking [`crate::Request`] was used incorrectly on a rank:
    /// waited twice, or completed out of protocol. Dropping a request
    /// without waiting panics the rank instead (surfacing as
    /// [`SimError::RankPanicked`]) because `Drop` has no error channel.
    RequestMisuse { rank: usize, detail: String },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            SimError::RecvTimeout { rank, from, tag } => write!(
                f,
                "rank {rank} timed out receiving from rank {from} (tag {tag:#x}); \
                 likely mismatched sends/collectives"
            ),
            SimError::Aborted { rank } => {
                write!(f, "rank {rank} aborted because another rank failed")
            }
            SimError::InvalidMachine(msg) => write!(f, "invalid machine: {msg}"),
            SimError::CollectiveMismatch { rank, detail } => {
                write!(f, "collective argument mismatch on rank {rank}: {detail}")
            }
            SimError::CollectiveDivergence { rank, seq, detail } => {
                write!(f, "collective divergence at collective #{seq} (rank {rank}): {detail}")
            }
            SimError::Deadlock { rank, cycle, detail } => {
                write!(f, "deadlock detected by rank {rank}")?;
                if !cycle.is_empty() {
                    write!(f, " (cycle: {cycle:?})")?;
                }
                write!(f, ": {detail}")
            }
            SimError::ReplicationDivergence { rank, seq, detail } => {
                write!(f, "replication divergence at check #{seq} (rank {rank}): {detail}")
            }
            SimError::RequestMisuse { rank, detail } => {
                write!(f, "non-blocking request misuse on rank {rank}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::RankPanicked { rank: 3, message: "boom".into() };
        assert!(e.to_string().contains("rank 3"));
        assert!(e.to_string().contains("boom"));

        let e = SimError::RecvTimeout { rank: 1, from: 0, tag: 0xC0 };
        assert!(e.to_string().contains("timed out"));
        assert!(e.to_string().contains("0xc0"));
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(SimError::Aborted { rank: 2 }, SimError::Aborted { rank: 2 });
        assert_ne!(SimError::Aborted { rank: 2 }, SimError::Aborted { rank: 3 });
    }
}
