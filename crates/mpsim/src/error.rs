//! Error types for the simulated multicomputer.

use std::fmt;

use crate::fault::FaultKind;
use crate::payload::DecodeError;

/// Errors surfaced by the SPMD engine or by communication primitives.
///
/// Marked `#[non_exhaustive]`: later robustness work will add variants, so
/// downstream matches must keep a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
#[allow(missing_docs)] // field names are self-describing
pub enum SimError {
    /// A rank's user code panicked. The message is the panic payload when
    /// it was a string, or a placeholder otherwise.
    RankPanicked { rank: usize, message: String },
    /// A blocking receive waited longer than the effective wall-clock
    /// timeout (`budget`, the P-scaled value derived from
    /// [`crate::SimOptions::recv_timeout`]). This almost always indicates
    /// mismatched communication (e.g. one rank skipped a collective)
    /// rather than a slow sender.
    RecvTimeout { rank: usize, from: usize, tag: u64, budget: std::time::Duration },
    /// The run was aborted because another rank failed first.
    Aborted { rank: usize },
    /// Invalid machine description (e.g. zero ranks).
    InvalidMachine(String),
    /// A collective was called with arguments inconsistent across ranks
    /// (detected where cheaply possible, e.g. mismatched buffer lengths).
    CollectiveMismatch { rank: usize, detail: String },
    /// Cross-rank collective divergence caught by the fingerprint checker
    /// (see [`crate::verify`]): at the same sequence number two ranks
    /// called different collectives, or the same collective with
    /// incompatible root / operator / element count. `seq` is the
    /// per-communicator collective sequence number at which they diverged.
    CollectiveDivergence { rank: usize, seq: u64, detail: String },
    /// The wait-for-graph detector (see [`crate::verify`]) proved the run
    /// can never make progress: a cycle of ranks blocked on each other, or
    /// a rank blocked on a rank that already finished. `cycle` lists the
    /// ranks forming the cycle (empty for the finished-peer case); `detail`
    /// renders the full wait-for graph.
    Deadlock { rank: usize, cycle: Vec<usize>, detail: String },
    /// Replication-invariant violation (see [`crate::verify`]): a value
    /// that must be bitwise identical on every rank of the communicator
    /// (an allreduce/broadcast result, or a buffer passed to
    /// [`crate::Comm::verify_replicated`]) hashed differently across ranks.
    ReplicationDivergence { rank: usize, seq: u64, detail: String },
    /// A non-blocking [`crate::Request`] was used incorrectly on a rank:
    /// waited twice, or completed out of protocol. Dropping a request
    /// without waiting panics the rank instead (surfacing as
    /// [`SimError::RankPanicked`]) because `Drop` has no error channel.
    RequestMisuse { rank: usize, detail: String },
    /// An injected fault (see [`crate::fault::FaultPlan`]) killed this
    /// rank. `seq` is the rank's send count and `phase` its active phase
    /// bucket at the moment of death — the coordinates a supervisor needs
    /// to decide where to resume.
    RankCrashed { rank: usize, seq: u64, phase: String },
    /// `rank`'s blocking receive can provably never be satisfied because
    /// `peer` failed (crashed, or dropped the only message the wait could
    /// match). `kind`, `seq`, and `phase` are the *culprit's* coordinates
    /// at the moment its fault fired — this is the typed replacement for a
    /// hang.
    PeerFailed { rank: usize, peer: usize, kind: FaultKind, seq: u64, phase: String },
    /// A message's arrival would have forced the receiver to idle longer
    /// than the fault plan's virtual-time timeout
    /// (see [`crate::fault::FaultPlan::with_virtual_timeout`]); `waited`
    /// is the idle the receiver would have absorbed, `seq` the sender's
    /// message seq, `phase` the *receiver's* active phase.
    Timeout { rank: usize, from: usize, seq: u64, waited: f64, limit: f64, phase: String },
    /// A received payload failed integrity checking: the envelope
    /// checksum did not match, or decoding found a malformed length.
    /// `seq` is the sender's message seq; `cause` is the typed decode
    /// failure, also reachable through [`std::error::Error::source`].
    PayloadCorrupt { rank: usize, from: usize, seq: u64, cause: DecodeError },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            SimError::RecvTimeout { rank, from, tag, budget } => write!(
                f,
                "rank {rank} timed out receiving from rank {from} (tag {tag:#x}) after \
                 {budget:?}; likely mismatched sends/collectives"
            ),
            SimError::Aborted { rank } => {
                write!(f, "rank {rank} aborted because another rank failed")
            }
            SimError::InvalidMachine(msg) => write!(f, "invalid machine: {msg}"),
            SimError::CollectiveMismatch { rank, detail } => {
                write!(f, "collective argument mismatch on rank {rank}: {detail}")
            }
            SimError::CollectiveDivergence { rank, seq, detail } => {
                write!(f, "collective divergence at collective #{seq} (rank {rank}): {detail}")
            }
            SimError::Deadlock { rank, cycle, detail } => {
                write!(f, "deadlock detected by rank {rank}")?;
                if !cycle.is_empty() {
                    write!(f, " (cycle: {cycle:?})")?;
                }
                write!(f, ": {detail}")
            }
            SimError::ReplicationDivergence { rank, seq, detail } => {
                write!(f, "replication divergence at check #{seq} (rank {rank}): {detail}")
            }
            SimError::RequestMisuse { rank, detail } => {
                write!(f, "non-blocking request misuse on rank {rank}: {detail}")
            }
            SimError::RankCrashed { rank, seq, phase } => {
                write!(
                    f,
                    "rank {rank} crashed (injected fault) after message #{seq} in phase {phase:?}"
                )
            }
            SimError::PeerFailed { rank, peer, kind, seq, phase } => write!(
                f,
                "rank {rank}: peer rank {peer} failed ({kind} at message #{seq} in phase \
                 {phase:?}); the pending receive can never complete"
            ),
            SimError::Timeout { rank, from, seq, waited, limit, phase } => write!(
                f,
                "rank {rank}: message #{seq} from rank {from} arrived {waited:.6}s of virtual \
                 idle late (timeout {limit:.6}s) in phase {phase:?}"
            ),
            SimError::PayloadCorrupt { rank, from, seq, cause } => write!(
                f,
                "rank {rank}: corrupt payload in message #{seq} from rank {from}: {cause}"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::PayloadCorrupt { cause, .. } => Some(cause),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_is_informative() {
        let e = SimError::RankPanicked { rank: 3, message: "boom".into() };
        assert!(e.to_string().contains("rank 3"));
        assert!(e.to_string().contains("boom"));

        let e = SimError::RecvTimeout {
            rank: 1,
            from: 0,
            tag: 0xC0,
            budget: std::time::Duration::from_secs(2),
        };
        assert!(e.to_string().contains("timed out"));
        assert!(e.to_string().contains("0xc0"));
        assert!(e.to_string().contains("2s"), "names the budget: {e}");
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(SimError::Aborted { rank: 2 }, SimError::Aborted { rank: 2 });
        assert_ne!(SimError::Aborted { rank: 2 }, SimError::Aborted { rank: 3 });
    }

    #[test]
    fn fault_errors_name_culprit_coordinates() {
        let e = SimError::PeerFailed {
            rank: 0,
            peer: 3,
            kind: FaultKind::Drop,
            seq: 17,
            phase: "allreduce".into(),
        };
        let s = e.to_string();
        assert!(s.contains("rank 3"), "{s}");
        assert!(s.contains("drop"), "{s}");
        assert!(s.contains("#17"), "{s}");
        assert!(s.contains("allreduce"), "{s}");
    }

    #[test]
    fn payload_corrupt_chains_its_decode_cause() {
        let e = SimError::PayloadCorrupt {
            rank: 1,
            from: 2,
            seq: 9,
            cause: DecodeError::RaggedLength { len: 13 },
        };
        let src = e.source().expect("has a source");
        assert!(src.to_string().contains("13"), "{src}");
        assert!(e.to_string().contains("#9"), "{}", e);
    }
}
