//! Per-rank execution statistics, time breakdowns, and optional message
//! event traces.

/// What a trace event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A message left this rank.
    Send,
    /// A message was accepted by this rank.
    Recv,
}

/// One traced message event on a rank (recorded only when
/// [`crate::SimOptions::record_events`] is set).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Virtual time at which the event completed on this rank.
    pub t: f64,
    /// Send or receive.
    pub kind: EventKind,
    /// The other endpoint.
    pub peer: usize,
    /// Payload size.
    pub bytes: usize,
    /// Message tag (collective tags have bit 32 set).
    pub tag: u64,
}

/// Summary of one rank's activity during an SPMD run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankStats {
    /// Rank id.
    pub rank: usize,
    /// Final virtual time (seconds).
    pub elapsed: f64,
    /// Virtual seconds spent computing.
    pub compute: f64,
    /// Virtual seconds spent in communication endpoint work.
    pub comm: f64,
    /// Virtual seconds spent blocked waiting for messages.
    pub idle: f64,
    /// Point-to-point messages sent (collectives count their constituent
    /// messages).
    pub msgs_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages received.
    pub msgs_recvd: u64,
    /// Payload bytes received.
    pub bytes_recvd: u64,
    /// Collective operations entered (world communicator); also the
    /// sequence number the verifier's fingerprint registry is keyed by,
    /// which makes a [`crate::SimError::CollectiveDivergence`] report easy
    /// to line up against a trace.
    pub collectives: u64,
}

impl RankStats {
    /// Fraction of elapsed time spent computing (0 when nothing elapsed).
    pub fn compute_fraction(&self) -> f64 {
        if self.elapsed > 0.0 {
            self.compute / self.elapsed
        } else {
            0.0
        }
    }

    /// Fraction of elapsed time lost to communication and waiting.
    pub fn overhead_fraction(&self) -> f64 {
        if self.elapsed > 0.0 {
            (self.comm + self.idle) / self.elapsed
        } else {
            0.0
        }
    }
}

/// Aggregate statistics over all ranks of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Elapsed virtual time of the run (max over ranks).
    pub elapsed: f64,
    /// Total messages sent by all ranks.
    pub total_msgs: u64,
    /// Total payload bytes sent by all ranks.
    pub total_bytes: u64,
    /// Mean compute fraction across ranks.
    pub mean_compute_fraction: f64,
}

impl RunStats {
    /// Summarize a set of per-rank statistics.
    pub fn from_ranks(ranks: &[RankStats]) -> Self {
        if ranks.is_empty() {
            return RunStats::default();
        }
        let elapsed = ranks.iter().map(|r| r.elapsed).fold(0.0, f64::max);
        let total_msgs = ranks.iter().map(|r| r.msgs_sent).sum();
        let total_bytes = ranks.iter().map(|r| r.bytes_sent).sum();
        let mean_compute_fraction =
            ranks.iter().map(|r| r.compute_fraction()).sum::<f64>() / ranks.len() as f64;
        RunStats { elapsed, total_msgs, total_bytes, mean_compute_fraction }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(rank: usize, elapsed: f64, compute: f64) -> RankStats {
        RankStats { rank, elapsed, compute, ..Default::default() }
    }

    #[test]
    fn fractions_handle_zero_elapsed() {
        let r = RankStats::default();
        assert_eq!(r.compute_fraction(), 0.0);
        assert_eq!(r.overhead_fraction(), 0.0);
    }

    #[test]
    fn fractions_partition_time() {
        let r = RankStats {
            rank: 0,
            elapsed: 10.0,
            compute: 6.0,
            comm: 1.0,
            idle: 3.0,
            ..Default::default()
        };
        assert!((r.compute_fraction() - 0.6).abs() < 1e-12);
        assert!((r.overhead_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn run_stats_take_max_elapsed() {
        let rs = [stats(0, 1.0, 0.5), stats(1, 3.0, 3.0), stats(2, 2.0, 1.0)];
        let agg = RunStats::from_ranks(&rs);
        assert_eq!(agg.elapsed, 3.0);
        assert!((agg.mean_compute_fraction - (0.5 + 1.0 + 0.5) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn run_stats_empty() {
        assert_eq!(RunStats::from_ranks(&[]), RunStats::default());
    }
}
