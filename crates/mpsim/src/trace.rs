//! Per-rank execution statistics, time breakdowns, and optional message
//! event traces.

/// Conventional phase-bucket name for time spent rebuilding after a
/// failure (communicator shrink, data repartitioning, state restore).
/// Supervisors read this bucket back from [`RankStats::phase`] to
/// quantify the virtual-time cost of a recovery.
pub const RECOVERY_PHASE: &str = "recovery";

/// What a trace event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A message left this rank.
    Send,
    /// A message was accepted by this rank.
    Recv,
}

/// One traced message event on a rank (recorded only when
/// [`crate::SimOptions::record_events`] is set).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Virtual time at which the event completed on this rank.
    pub t: f64,
    /// Send or receive.
    pub kind: EventKind,
    /// The other endpoint.
    pub peer: usize,
    /// Payload size.
    pub bytes: usize,
    /// Message tag (collective tags have bit 32 set).
    pub tag: u64,
}

/// Time and traffic attributed to one named phase on one rank.
///
/// Produced by the communicator's `enter_phase`/`exit_phase` span API.
/// Phase 0 is always the synthetic `"other"` bucket holding everything
/// outside an explicit span, so the buckets partition the rank's elapsed
/// time: `Σ phases[i].total() == elapsed` up to floating-point rounding.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseStats {
    /// Phase name (`"other"` for the default bucket).
    pub name: String,
    /// Virtual seconds spent computing in this phase.
    pub compute: f64,
    /// Virtual seconds of communication endpoint work in this phase.
    pub comm: f64,
    /// Virtual seconds blocked waiting for messages in this phase.
    pub idle: f64,
    /// Virtual seconds of non-blocking communication hidden behind other
    /// work in this phase. A shadow measure of intervals already counted
    /// in compute/comm/idle, so it is **not** part of
    /// [`PhaseStats::total`] and the partition invariant is unaffected.
    pub hidden_comm: f64,
    /// Point-to-point messages sent while this phase was current.
    pub msgs_sent: u64,
    /// Payload bytes sent while this phase was current.
    pub bytes_sent: u64,
    /// Messages received while this phase was current.
    pub msgs_recvd: u64,
    /// Payload bytes received while this phase was current.
    pub bytes_recvd: u64,
    /// Collective operations entered while this phase was current.
    pub collectives: u64,
}

impl PhaseStats {
    /// Total virtual seconds attributed to this phase.
    pub fn total(&self) -> f64 {
        self.compute + self.comm + self.idle
    }
}

/// Summary of one rank's activity during an SPMD run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankStats {
    /// Rank id.
    pub rank: usize,
    /// Final virtual time (seconds).
    pub elapsed: f64,
    /// Virtual seconds spent computing.
    pub compute: f64,
    /// Virtual seconds spent in communication endpoint work.
    pub comm: f64,
    /// Virtual seconds spent blocked waiting for messages.
    pub idle: f64,
    /// Virtual seconds of non-blocking communication hidden behind other
    /// work (shadow measure; not part of `elapsed`'s
    /// compute + comm + idle partition).
    pub hidden_comm: f64,
    /// Point-to-point messages sent (collectives count their constituent
    /// messages).
    pub msgs_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages received.
    pub msgs_recvd: u64,
    /// Payload bytes received.
    pub bytes_recvd: u64,
    /// Collective operations entered (world communicator); also the
    /// sequence number the verifier's fingerprint registry is keyed by,
    /// which makes a [`crate::SimError::CollectiveDivergence`] report easy
    /// to line up against a trace.
    pub collectives: u64,
    /// Per-phase breakdown of the totals above, in phase-creation order
    /// with the synthetic `"other"` bucket first. Empty when the rank body
    /// never ran under a [`crate::Comm`] (hand-built stats).
    pub phases: Vec<PhaseStats>,
}

impl RankStats {
    /// Fraction of elapsed time spent computing (0 when nothing elapsed).
    pub fn compute_fraction(&self) -> f64 {
        if self.elapsed > 0.0 {
            self.compute / self.elapsed
        } else {
            0.0
        }
    }

    /// Fraction of elapsed time lost to communication and waiting.
    pub fn overhead_fraction(&self) -> f64 {
        if self.elapsed > 0.0 {
            (self.comm + self.idle) / self.elapsed
        } else {
            0.0
        }
    }

    /// The phase with the given name, if this rank recorded one.
    pub fn phase(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Sum of all phase-bucket totals; equals `elapsed` up to rounding
    /// whenever `phases` is non-empty (the buckets partition the clock).
    pub fn phases_total(&self) -> f64 {
        self.phases.iter().map(PhaseStats::total).sum()
    }
}

/// Aggregate statistics over all ranks of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Elapsed virtual time of the run (max over ranks).
    pub elapsed: f64,
    /// Total messages sent by all ranks.
    pub total_msgs: u64,
    /// Total payload bytes sent by all ranks.
    pub total_bytes: u64,
    /// Total messages received by all ranks.
    pub total_msgs_recvd: u64,
    /// Total payload bytes received by all ranks.
    pub total_bytes_recvd: u64,
    /// Mean compute fraction across ranks.
    pub mean_compute_fraction: f64,
}

impl RunStats {
    /// Summarize a set of per-rank statistics.
    pub fn from_ranks(ranks: &[RankStats]) -> Self {
        if ranks.is_empty() {
            return RunStats::default();
        }
        let elapsed = ranks.iter().map(|r| r.elapsed).fold(0.0, f64::max);
        let total_msgs = ranks.iter().map(|r| r.msgs_sent).sum();
        let total_bytes = ranks.iter().map(|r| r.bytes_sent).sum();
        let total_msgs_recvd = ranks.iter().map(|r| r.msgs_recvd).sum();
        let total_bytes_recvd = ranks.iter().map(|r| r.bytes_recvd).sum();
        let mean_compute_fraction =
            ranks.iter().map(|r| r.compute_fraction()).sum::<f64>() / ranks.len() as f64;
        RunStats {
            elapsed,
            total_msgs,
            total_bytes,
            total_msgs_recvd,
            total_bytes_recvd,
            mean_compute_fraction,
        }
    }

    /// Check sender/receiver symmetry of the aggregate message counts.
    ///
    /// In a run whose ranks all drain every message addressed to them —
    /// which every collective-only program does — the world-wide send and
    /// receive totals must match exactly; a mismatch means a collective
    /// implementation dropped or double-counted constituent messages.
    /// Buffered sends to a rank that already finished its body are legal
    /// in user programs and show up here as a surplus of sends; callers
    /// that use such fire-and-forget sends should expect `Err`.
    ///
    /// # Errors
    /// Returns a human-readable description of the first asymmetry found.
    pub fn check_message_symmetry(&self) -> Result<(), String> {
        if self.total_msgs != self.total_msgs_recvd {
            return Err(format!(
                "message count asymmetry: {} sent vs {} received",
                self.total_msgs, self.total_msgs_recvd
            ));
        }
        if self.total_bytes != self.total_bytes_recvd {
            return Err(format!(
                "byte count asymmetry: {} sent vs {} received",
                self.total_bytes, self.total_bytes_recvd
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(rank: usize, elapsed: f64, compute: f64) -> RankStats {
        RankStats { rank, elapsed, compute, ..Default::default() }
    }

    #[test]
    fn fractions_handle_zero_elapsed() {
        let r = RankStats::default();
        assert_eq!(r.compute_fraction(), 0.0);
        assert_eq!(r.overhead_fraction(), 0.0);
    }

    #[test]
    fn fractions_partition_time() {
        let r = RankStats {
            rank: 0,
            elapsed: 10.0,
            compute: 6.0,
            comm: 1.0,
            idle: 3.0,
            ..Default::default()
        };
        assert!((r.compute_fraction() - 0.6).abs() < 1e-12);
        assert!((r.overhead_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn run_stats_take_max_elapsed() {
        let rs = [stats(0, 1.0, 0.5), stats(1, 3.0, 3.0), stats(2, 2.0, 1.0)];
        let agg = RunStats::from_ranks(&rs);
        assert_eq!(agg.elapsed, 3.0);
        assert!((agg.mean_compute_fraction - (0.5 + 1.0 + 0.5) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn run_stats_empty() {
        assert_eq!(RunStats::from_ranks(&[]), RunStats::default());
    }

    #[test]
    fn run_stats_total_both_directions() {
        let a = RankStats {
            rank: 0,
            msgs_sent: 3,
            bytes_sent: 300,
            msgs_recvd: 1,
            bytes_recvd: 100,
            ..Default::default()
        };
        let b = RankStats {
            rank: 1,
            msgs_sent: 1,
            bytes_sent: 100,
            msgs_recvd: 3,
            bytes_recvd: 300,
            ..Default::default()
        };
        let agg = RunStats::from_ranks(&[a, b]);
        assert_eq!(agg.total_msgs, 4);
        assert_eq!(agg.total_msgs_recvd, 4);
        assert_eq!(agg.total_bytes, 400);
        assert_eq!(agg.total_bytes_recvd, 400);
        assert!(agg.check_message_symmetry().is_ok());
    }

    #[test]
    fn symmetry_check_reports_drops() {
        let sender = RankStats { rank: 0, msgs_sent: 2, bytes_sent: 16, ..Default::default() };
        let agg = RunStats::from_ranks(&[sender]);
        let err = agg.check_message_symmetry().unwrap_err();
        assert!(err.contains("2 sent vs 0 received"), "{err}");
    }

    #[test]
    fn phase_lookup_and_totals() {
        let r = RankStats {
            rank: 0,
            elapsed: 3.0,
            phases: vec![
                PhaseStats { name: "other".into(), compute: 1.0, ..Default::default() },
                PhaseStats {
                    name: "estep".into(),
                    compute: 1.5,
                    comm: 0.25,
                    idle: 0.25,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert_eq!(r.phase("estep").map(|p| p.total()), Some(2.0));
        assert!(r.phase("mstep").is_none());
        assert!((r.phases_total() - r.elapsed).abs() < 1e-12);
    }
}
