//! Collective operations built on point-to-point messaging.
//!
//! Every collective here is implemented with the textbook message-passing
//! algorithm (dissemination barrier, binomial-tree broadcast/reduce,
//! recursive-doubling / ring / linear allreduce, ring allgather), so the
//! simulated communication pattern — and therefore the modeled cost — is
//! the one a real MPI implementation would produce.
//!
//! # SPMD discipline
//!
//! As with MPI, all ranks must call the same sequence of collectives with
//! compatible arguments. Each collective call consumes one slot of a
//! per-communicator sequence number used as the message tag, so a rank that
//! skips a collective deadlocks (and is caught by the receive timeout)
//! rather than silently corrupting a later collective.
//!
//! # Phase attribution
//!
//! Collectives carry no phase tagging of their own: every constituent
//! send/recv and all idle time waiting on peers is charged to whatever
//! phase span (see [`Comm::enter_phase`]) is open on the calling rank, so
//! wrapping a collective call in a span attributes its full modeled cost —
//! including the algorithm-dependent message fan-out — to that bucket.

use crate::comm::Comm;
use crate::cost::AllreduceAlgo;
use crate::verify::{CollFingerprint, CollKind};

/// Base of the tag space reserved for collectives (above all user tags).
pub(crate) const COLL_TAG_BASE: u64 = 1 << 32;

/// Element-wise reduction operator over `f64` vectors. All operators are
/// commutative, which the recursive-doubling algorithm exploits to keep
/// results bitwise identical on every rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise product.
    Prod,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
}

impl ReduceOp {
    /// Fold `other` into `acc` element-wise.
    ///
    /// # Panics
    /// Panics if lengths differ (collective argument mismatch).
    pub fn fold(self, acc: &mut [f64], other: &[f64]) {
        assert_eq!(acc.len(), other.len(), "reduce buffers must have equal length");
        match self {
            ReduceOp::Sum => acc.iter_mut().zip(other).for_each(|(a, b)| *a += b),
            ReduceOp::Prod => acc.iter_mut().zip(other).for_each(|(a, b)| *a *= b),
            ReduceOp::Min => acc.iter_mut().zip(other).for_each(|(a, b)| *a = a.min(*b)),
            ReduceOp::Max => acc.iter_mut().zip(other).for_each(|(a, b)| *a = a.max(*b)),
        }
    }
}

/// Shorthand for building the fingerprint a collective posts on entry.
fn fp(kind: CollKind, root: Option<usize>, op: Option<ReduceOp>, elems: usize) -> CollFingerprint {
    CollFingerprint { kind, root, op, elems: Some(elems) }
}

impl Comm {
    /// Synchronize all ranks (dissemination barrier, `ceil(log2 P)` rounds).
    pub fn barrier(&mut self) {
        let p = self.size();
        if p <= 1 {
            return;
        }
        let tag = self.coll_enter(fp(CollKind::Barrier, None, None, 0));
        let me = self.rank();
        let mut k = 1usize;
        while k < p {
            let to = (me + k) % p;
            let from = (me + p - k) % p;
            self.send_bytes(to, tag, Vec::new());
            let _ = self.recv_bytes(from, tag);
            k <<= 1;
        }
    }

    /// Broadcast `buf` from `root` to all ranks (binomial tree). On entry
    /// only `root`'s buffer is meaningful; on exit every rank holds the
    /// root's data. All ranks must pass buffers of the same length.
    pub fn broadcast_f64s(&mut self, root: usize, buf: &mut [f64]) {
        let p = self.size();
        if p <= 1 {
            return;
        }
        let tag = self.coll_enter(fp(CollKind::Broadcast, Some(root), None, buf.len()));
        let me = self.rank();
        let vrank = (me + p - root) % p;

        // Receive from the parent in the binomial tree.
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let src = (me + p - mask) % p;
                let data = self.recv_f64s(src, tag);
                if data.len() != buf.len() {
                    self.mismatch(format!(
                        "broadcast buffer length {} != incoming {}",
                        buf.len(),
                        data.len()
                    ));
                }
                buf.copy_from_slice(&data);
                break;
            }
            mask <<= 1;
        }
        // Forward to children.
        mask >>= 1;
        while mask > 0 {
            if vrank + mask < p {
                let dst = (me + mask) % p;
                self.send_f64s(dst, tag, buf);
            }
            mask >>= 1;
        }
        // Every rank now holds the root's data — a replication invariant.
        self.check_replicated_result("broadcast result", buf);
    }

    /// Reduce element-wise into `root` (binomial tree). After the call the
    /// root's `buf` holds the reduction over all ranks; other ranks' `buf`
    /// contents are unspecified.
    pub fn reduce_f64s(&mut self, root: usize, buf: &mut [f64], op: ReduceOp) {
        let p = self.size();
        if p <= 1 {
            return;
        }
        let tag = self.coll_enter(fp(CollKind::Reduce, Some(root), Some(op), buf.len()));
        let me = self.rank();
        let vrank = (me + p - root) % p;

        let mut mask = 1usize;
        while mask < p {
            if vrank & mask == 0 {
                let vsrc = vrank | mask;
                if vsrc < p {
                    let src = (vsrc + root) % p;
                    let data = self.recv_f64s(src, tag);
                    op.fold(buf, &data);
                }
            } else {
                let vdst = vrank & !mask;
                let dst = (vdst + root) % p;
                self.send_f64s(dst, tag, buf);
                break;
            }
            mask <<= 1;
        }
    }

    /// Allreduce with the machine's default algorithm (see
    /// [`crate::cost::MachineSpec::allreduce`]). On exit every rank holds
    /// the element-wise reduction of all ranks' buffers.
    pub fn allreduce_f64s(&mut self, buf: &mut [f64], op: ReduceOp) {
        let algo = self.machine().allreduce;
        self.allreduce_f64s_with(buf, op, algo);
    }

    /// Allreduce with an explicit algorithm. `Auto` resolves here, before
    /// the fingerprint is posted: the selection is a pure function of
    /// (P, length, network parameters), all identical on every rank, so
    /// every rank dispatches to the same concrete algorithm.
    pub fn allreduce_f64s_with(&mut self, buf: &mut [f64], op: ReduceOp, algo: AllreduceAlgo) {
        if self.size() <= 1 {
            return;
        }
        let algo = match algo {
            AllreduceAlgo::Auto => {
                crate::cost::select_allreduce(self.size(), buf.len(), &self.machine().network)
            }
            other => other,
        };
        // The fingerprint is posted before algorithm dispatch, so a length
        // or operator divergence is caught even when the chosen algorithm
        // would route the mismatched buffers past each other.
        let tag = self.coll_enter(fp(CollKind::Allreduce, None, Some(op), buf.len()));
        match algo {
            AllreduceAlgo::Linear | AllreduceAlgo::OrderedLinear => {
                self.allreduce_linear(buf, op, tag)
            }
            AllreduceAlgo::RecursiveDoubling => self.allreduce_rd(buf, op, tag),
            AllreduceAlgo::Ring => self.allreduce_ring(buf, op, tag),
            AllreduceAlgo::Rabenseifner => self.allreduce_rabenseifner(buf, op, tag),
            AllreduceAlgo::Hierarchical => self.allreduce_hierarchical(buf, op, tag),
            AllreduceAlgo::Auto => unreachable!("Auto resolved to a concrete algorithm above"),
        }
        // Every rank now holds the same reduction (the simulator's
        // algorithms are bitwise deterministic) — a replication invariant.
        self.check_replicated_result("allreduce result", buf);
    }

    /// Non-blocking allreduce with the machine's default algorithm. See
    /// [`Comm::iallreduce_f64s_with`].
    pub fn iallreduce_f64s(&mut self, buf: &mut [f64], op: ReduceOp) -> crate::comm::Request {
        let algo = self.machine().allreduce;
        self.iallreduce_f64s_with(buf, op, algo)
    }

    /// Non-blocking allreduce with an explicit algorithm.
    ///
    /// The data movement runs *eagerly*: on return `buf` already holds the
    /// reduction, and the messages, collective fingerprint, and
    /// replication hash are exactly those of the blocking
    /// [`Comm::allreduce_f64s_with`] — so results are bitwise identical to
    /// the blocking call under every algorithm, and all verification
    /// layers see the same collective. What is deferred is *time*: the
    /// idle (wire) portion of the collective's cost is rolled off the
    /// clock and becomes the returned request's pending window, free to
    /// hide behind subsequent [`Comm::work`]. Endpoint overhead (LogGP
    /// `o`) stays on the CPU clock at post, and [`Comm::wait`] blocks only
    /// for whatever wire time was not hidden. Completions are clamped
    /// FIFO-monotone across posts on the same rank.
    pub fn iallreduce_f64s_with(
        &mut self,
        buf: &mut [f64],
        op: ReduceOp,
        algo: AllreduceAlgo,
    ) -> crate::comm::Request {
        let idle0 = self.nb_idle_snapshot();
        self.allreduce_f64s_with(buf, op, algo);
        self.nb_retract(idle0)
    }

    /// Gather to rank 0 (folding in rank order, so the floating-point
    /// reduction order is deterministic and independent of the algorithm's
    /// tree shape), then send the result back to every rank individually.
    /// `O(P)` latencies — the behaviour of early-90s MPI reductions.
    fn allreduce_linear(&mut self, buf: &mut [f64], op: ReduceOp, tag: u64) {
        let p = self.size();
        let me = self.rank();
        if me == 0 {
            for src in 1..p {
                let data = self.recv_f64s(src, tag);
                if data.len() != buf.len() {
                    self.mismatch(format!(
                        "allreduce length {} != rank {src}'s {}",
                        buf.len(),
                        data.len()
                    ));
                }
                op.fold(buf, &data);
            }
            for dst in 1..p {
                self.send_f64s(dst, tag, buf);
            }
        } else {
            self.send_f64s(0, tag, buf);
            let data = self.recv_f64s(0, tag);
            buf.copy_from_slice(&data);
        }
    }

    /// Recursive doubling: `ceil(log2 P)` rounds of pairwise full-vector
    /// exchanges. Non-power-of-two sizes park the excess ranks: each extra
    /// rank first folds its vector into a partner in the power-of-two
    /// group and receives the final result afterwards (the MPICH scheme).
    fn allreduce_rd(&mut self, buf: &mut [f64], op: ReduceOp, tag: u64) {
        let p = self.size();
        let me = self.rank();
        let pow2 = p.next_power_of_two() / if p.is_power_of_two() { 1 } else { 2 };
        let rem = p - pow2;

        if me >= pow2 {
            // Extra rank: contribute and wait for the result.
            let partner = me - pow2;
            self.send_f64s(partner, tag, buf);
            let data = self.recv_f64s(partner, tag);
            buf.copy_from_slice(&data);
            return;
        }
        if me < rem {
            let data = self.recv_f64s(me + pow2, tag);
            op.fold(buf, &data);
        }
        // Pairwise exchange within the power-of-two group. Both partners
        // fold the same two (identical-per-subgroup) values with a
        // commutative op, so all ranks stay bitwise identical.
        let mut mask = 1usize;
        while mask < pow2 {
            let partner = me ^ mask;
            self.send_f64s(partner, tag, buf);
            let data = self.recv_f64s(partner, tag);
            op.fold(buf, &data);
            mask <<= 1;
        }
        if me < rem {
            self.send_f64s(me + pow2, tag, buf);
        }
    }

    /// Ring allreduce: reduce-scatter then allgather, `2(P-1)` rounds of
    /// `~m/P`-sized messages. Bandwidth-optimal for long vectors.
    fn allreduce_ring(&mut self, buf: &mut [f64], op: ReduceOp, tag: u64) {
        let p = self.size();
        let me = self.rank();
        let n = buf.len();
        if n == 0 {
            // Still synchronize so the collective sequence stays aligned.
            self.barrier();
            return;
        }
        // Chunk c covers chunk_range(c); chunks differ by at most one item.
        let range = |c: usize| -> std::ops::Range<usize> {
            let base = n / p;
            let extra = n % p;
            let start = c * base + c.min(extra);
            let len = base + usize::from(c < extra);
            start..start + len
        };
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;

        // Reduce-scatter: after p-1 steps, rank r owns the fully reduced
        // chunk (r + 1) % p.
        for step in 0..p - 1 {
            let send_c = (me + p - step) % p;
            let recv_c = (me + p - step - 1) % p;
            self.send_f64s(right, tag, &buf[range(send_c)]);
            let data = self.recv_f64s(left, tag);
            op.fold(&mut buf[range(recv_c)], &data);
        }
        // Allgather: circulate the reduced chunks.
        for step in 0..p - 1 {
            let send_c = (me + 1 + p - step) % p;
            let recv_c = (me + p - step) % p;
            self.send_f64s(right, tag, &buf[range(send_c)]);
            let data = self.recv_f64s(left, tag);
            buf[range(recv_c)].copy_from_slice(&data);
        }
    }

    /// Rabenseifner's allreduce: recursive-halving reduce-scatter followed
    /// by a recursive-doubling allgather — `2·log2 P'` rounds moving about
    /// `2m(P'−1)/P'` bytes per rank (`P'` = largest power of two ≤ P), the
    /// ring's bandwidth optimality with logarithmic latency. Non-power-of-
    /// two sizes park the excess ranks exactly like [`recursive
    /// doubling`](Self::allreduce_rd). The element space is split into the
    /// same balanced chunk partition the ring uses (over the pow2 group),
    /// so lengths not divisible by P — including lengths shorter than P,
    /// where some chunks are empty — work unchanged. Each chunk's
    /// reduction is computed along a fixed binary tree on exactly one
    /// owner rank and then copied verbatim to all ranks in the allgather,
    /// so the result is bitwise identical everywhere.
    fn allreduce_rabenseifner(&mut self, buf: &mut [f64], op: ReduceOp, tag: u64) {
        let members: Vec<usize> = (0..self.size()).collect();
        self.rabenseifner_over(&members, buf, op, tag);
    }

    /// Rabenseifner's schedule over an arbitrary member list: `members` is
    /// the ascending list of participating world ranks, and the algorithm
    /// runs as if they formed a dense communicator of size
    /// `members.len()`. With `members == 0..P` this is exactly
    /// [`allreduce_rabenseifner`](Self::allreduce_rabenseifner); the
    /// hierarchical allreduce reuses it over the node leaders. Must be
    /// called by every member (and only members), with `self.rank()` in
    /// the list.
    fn rabenseifner_over(&mut self, members: &[usize], buf: &mut [f64], op: ReduceOp, tag: u64) {
        let g = members.len();
        if g <= 1 {
            return;
        }
        let me = members
            .iter()
            .position(|&r| r == self.rank())
            .unwrap_or_else(|| panic!("rank {} is not a member of this group", self.rank()));
        let pow2 = g.next_power_of_two() / if g.is_power_of_two() { 1 } else { 2 };
        let rem = g - pow2;

        if me >= pow2 {
            // Extra rank: contribute and wait for the result.
            let partner = members[me - pow2];
            self.send_f64s(partner, tag, buf);
            let data = self.recv_f64s(partner, tag);
            buf.copy_from_slice(&data);
            return;
        }
        if me < rem {
            let data = self.recv_f64s(members[me + pow2], tag);
            op.fold(buf, &data);
        }

        let n = buf.len();
        // Balanced chunk partition over the pow2 group: chunk c covers
        // range(c), sizes differing by at most one element (empty when
        // n < pow2 — empty messages still synchronize).
        let range = |c: usize| -> std::ops::Range<usize> {
            let base = n / pow2;
            let extra = n % pow2;
            let start = c * base + c.min(extra);
            start..start + base + usize::from(c < extra)
        };
        // Element span of the chunk interval [clo, chi).
        let span = |clo: usize, chi: usize| range(clo).start..range(chi - 1).end;

        // Reduce-scatter by recursive halving: each round exchanges half of
        // the remaining chunk interval with the partner and folds the kept
        // half. The rank keeps the half containing its own chunk index, so
        // after log2(pow2) rounds rank r owns exactly chunk r, reduced over
        // the whole group.
        let (mut clo, mut chi) = (0usize, pow2);
        let mut mask = pow2 >> 1;
        while mask > 0 {
            let partner = members[me ^ mask];
            let mid = clo + (chi - clo) / 2;
            let (keep, give) =
                if me & mask == 0 { ((clo, mid), (mid, chi)) } else { ((mid, chi), (clo, mid)) };
            // Sends are buffered, so send-then-recv cannot deadlock.
            self.send_f64s(partner, tag, &buf[span(give.0, give.1)]);
            let data = self.recv_f64s(partner, tag);
            op.fold(&mut buf[span(keep.0, keep.1)], &data);
            (clo, chi) = keep;
            mask >>= 1;
        }

        // Allgather by recursive doubling: intervals (always mask chunks
        // long and mask-aligned) double until every rank holds [0, pow2).
        let mut mask = 1usize;
        while mask < pow2 {
            let partner = members[me ^ mask];
            self.send_f64s(partner, tag, &buf[span(clo, chi)]);
            let data = self.recv_f64s(partner, tag);
            // The partner's interval is the mirror of ours within the
            // doubled block.
            let plo = clo ^ mask;
            buf[span(plo, plo + mask)].copy_from_slice(&data);
            clo = clo.min(plo);
            chi = clo + 2 * mask;
            mask <<= 1;
        }

        if me < rem {
            self.send_f64s(members[me + pow2], tag, buf);
        }
    }

    /// Hierarchical allreduce for fat-tree-of-multicore-node machines
    /// (see [`crate::cost::AllreduceAlgo::Hierarchical`]): an
    /// ascending-rank linear fold onto each node's leader over the cheap
    /// intra-node fabric, [`rabenseifner_over`](Self::rabenseifner_over)
    /// among the leaders over the inter-node network, then an intra-node
    /// broadcast of the result. Fold orders are fixed (ascending within
    /// the node, Rabenseifner's tree among leaders), so the result is
    /// bitwise identical on every rank. On a flat topology every rank is
    /// its own leader and this is plain Rabenseifner.
    fn allreduce_hierarchical(&mut self, buf: &mut [f64], op: ReduceOp, tag: u64) {
        let p = self.size();
        let me = self.rank();
        let ns = self.machine().topology.node_size().clamp(1, p);
        let node = me / ns;
        let leader = node * ns;
        let node_end = ((node + 1) * ns).min(p);

        // Intra-node reduce: members fold into the leader in ascending
        // rank order (a deterministic left fold).
        if me == leader {
            for src in leader + 1..node_end {
                let data = self.recv_f64s(src, tag);
                if data.len() != buf.len() {
                    self.mismatch(format!(
                        "allreduce length {} != rank {src}'s {}",
                        buf.len(),
                        data.len()
                    ));
                }
                op.fold(buf, &data);
            }
            // Inter-node reduce among the leaders only.
            let leaders: Vec<usize> = (0..p).step_by(ns).collect();
            self.rabenseifner_over(&leaders, buf, op, tag);
            // Intra-node broadcast of the finished result.
            for dst in leader + 1..node_end {
                self.send_f64s(dst, tag, buf);
            }
        } else {
            self.send_f64s(leader, tag, buf);
            let data = self.recv_f64s(leader, tag);
            buf.copy_from_slice(&data);
        }
    }

    /// Allreduce of a single scalar; returns the reduced value.
    pub fn allreduce_scalar(&mut self, value: f64, op: ReduceOp) -> f64 {
        let mut buf = [value];
        self.allreduce_f64s(&mut buf, op);
        buf[0]
    }

    /// Gather each rank's (possibly differently sized) vector to `root`,
    /// concatenated in rank order. Returns `Some` on the root, `None`
    /// elsewhere.
    pub fn gather_f64s(&mut self, root: usize, mine: &[f64]) -> Option<Vec<f64>> {
        let p = self.size();
        let me = self.rank();
        let tag = self.coll_enter(fp(CollKind::Gather, Some(root), None, mine.len()));
        if me == root {
            let mut all = Vec::with_capacity(mine.len() * p);
            for src in 0..p {
                if src == me {
                    all.extend_from_slice(mine);
                } else {
                    let data = self.recv_f64s(src, tag);
                    all.extend_from_slice(&data);
                }
            }
            Some(all)
        } else {
            self.send_f64s(root, tag, mine);
            None
        }
    }

    /// Allgather over a ring: every rank ends with every rank's vector
    /// (`result[r]` is rank `r`'s contribution). Vectors may differ in
    /// length across ranks.
    pub fn allgather_f64s(&mut self, mine: &[f64]) -> Vec<Vec<f64>> {
        let p = self.size();
        let me = self.rank();
        let tag = self.coll_enter(fp(CollKind::Allgather, None, None, mine.len()));
        let mut blocks: Vec<Vec<f64>> = vec![Vec::new(); p];
        blocks[me] = mine.to_vec();
        if p == 1 {
            return blocks;
        }
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        let mut cur = mine.to_vec();
        for step in 0..p - 1 {
            self.send_f64s(right, tag, &cur);
            cur = self.recv_f64s(left, tag);
            blocks[(me + p - step - 1) % p] = cur.clone();
        }
        blocks
    }

    /// Scatter: `root` supplies one block per rank; every rank receives its
    /// block. Non-roots must pass `None`.
    ///
    /// # Panics
    /// Panics (as a collective mismatch) if the root provides a number of
    /// blocks different from the communicator size, or a non-root provides
    /// data.
    pub fn scatter_f64s(&mut self, root: usize, blocks: Option<&[Vec<f64>]>) -> Vec<f64> {
        let p = self.size();
        let me = self.rank();
        let tag =
            self.coll_enter(fp(CollKind::Scatter, Some(root), None, blocks.map_or(0, |b| b.len())));
        if me == root {
            let blocks = match blocks {
                Some(b) if b.len() == p => b,
                Some(b) => self.mismatch(format!("scatter got {} blocks for {} ranks", b.len(), p)),
                None => self.mismatch("scatter root must supply blocks".into()),
            };
            for (dst, block) in blocks.iter().enumerate() {
                if dst != me {
                    self.send_f64s(dst, tag, block);
                }
            }
            blocks[me].clone()
        } else {
            if blocks.is_some() {
                self.mismatch("scatter non-root must pass None".into());
            }
            self.recv_f64s(root, tag)
        }
    }

    /// All-to-all personalized exchange: `send[d]` goes to rank `d`;
    /// returns `recv` with `recv[s]` from rank `s`.
    pub fn alltoall_f64s(&mut self, send: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let p = self.size();
        let me = self.rank();
        if send.len() != p {
            self.mismatch(format!("alltoall got {} blocks for {} ranks", send.len(), p));
        }
        let tag = self.coll_enter(fp(CollKind::Alltoall, None, None, send.len()));
        let mut recv: Vec<Vec<f64>> = vec![Vec::new(); p];
        recv[me] = send[me].clone();
        // Pairwise exchange by offset; sends are buffered so the
        // send-then-recv order cannot deadlock.
        for offset in 1..p {
            let dst = (me + offset) % p;
            let src = (me + p - offset) % p;
            self.send_f64s(dst, tag, &send[dst]);
            recv[src] = self.recv_f64s(src, tag);
        }
        recv
    }

    /// Inclusive prefix reduction in rank order: rank `r` ends with the
    /// reduction of ranks `0..=r`. Linear chain (deterministic order).
    pub fn scan_f64s(&mut self, buf: &mut [f64], op: ReduceOp) {
        let p = self.size();
        let me = self.rank();
        if p <= 1 {
            return;
        }
        let tag = self.coll_enter(fp(CollKind::Scan, None, Some(op), buf.len()));
        if me > 0 {
            let prefix = self.recv_f64s(me - 1, tag);
            // Keep rank order: result = reduce(prefix, mine).
            let mut acc = prefix;
            op.fold(&mut acc, buf);
            buf.copy_from_slice(&acc);
        }
        if me + 1 < p {
            self.send_f64s(me + 1, tag, buf);
        }
    }

    /// Broadcast a single `u64` from `root` (handy for sizes and seeds).
    pub fn broadcast_u64(&mut self, root: usize, value: u64) -> u64 {
        let p = self.size();
        if p <= 1 {
            return value;
        }
        // Reuse the f64 tree via bit transmutation to keep one tree
        // implementation; u64 bit patterns survive the f64 round-trip
        // because the payload codec is bit-exact.
        let mut buf = [f64::from_bits(value)];
        self.broadcast_f64s(root, &mut buf);
        buf[0].to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_applies_elementwise() {
        let mut a = vec![1.0, 2.0, 3.0];
        ReduceOp::Sum.fold(&mut a, &[10.0, 20.0, 30.0]);
        assert_eq!(a, vec![11.0, 22.0, 33.0]);

        let mut b = vec![1.0, 5.0];
        ReduceOp::Min.fold(&mut b, &[3.0, 2.0]);
        assert_eq!(b, vec![1.0, 2.0]);

        let mut c = vec![1.0, 5.0];
        ReduceOp::Max.fold(&mut c, &[3.0, 2.0]);
        assert_eq!(c, vec![3.0, 5.0]);

        let mut d = vec![2.0, 3.0];
        ReduceOp::Prod.fold(&mut d, &[4.0, 0.5]);
        assert_eq!(d, vec![8.0, 1.5]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn fold_rejects_mismatched_lengths() {
        let mut a = vec![1.0];
        ReduceOp::Sum.fold(&mut a, &[1.0, 2.0]);
    }
}
