//! Configuration of a P-AutoClass run: parallelization strategy, the
//! statistics-exchange pattern, and the data decomposition.

use autoclass::data::{block_partition, weighted_partition};
use autoclass::search::SearchConfig;

/// How the global sufficient statistics are exchanged in the parallel
/// `update_parameters`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exchange {
    /// One Allreduce per (class, attribute) statistics block — the
    /// pattern in the paper's Figure 5, where the reduction sits inside
    /// the class/attribute loops. Many small latency-bound messages.
    PerTerm,
    /// A single Allreduce of the whole flat statistics vector — the
    /// natural fusion optimization; one of the ablations in `bench`.
    /// The two cycle log-likelihood scalars piggyback on the same
    /// message, so one collective per cycle replaces three.
    Fused,
    /// The overlapped cycle: a fused single-pass E+M kernel, then the
    /// statistics leave as *non-blocking* chunked Allreduces — one per
    /// class when the machine's algorithm reduces element-wise
    /// independently of buffer geometry (Linear, OrderedLinear,
    /// RecursiveDoubling), whole-buffer otherwise — and each class's
    /// parameters are derived while later chunks are still on the wire.
    /// Results are bitwise identical to [`Exchange::Fused`]; only the
    /// schedule (and hence the virtual time) differs.
    Pipelined,
}

/// Which functions are parallelized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's P-AutoClass: both `update_wts` and `update_parameters`
    /// run on partitions, with Allreduce combining partial results.
    Full {
        /// Statistics exchange pattern.
        exchange: Exchange,
    },
    /// The earlier MIMD prototype the paper compares against (Miller &
    /// Guo): only `update_wts` is parallel; the full weight matrix is
    /// gathered to rank 0, which computes the parameters sequentially and
    /// broadcasts them.
    WtsOnly,
}

impl Default for Strategy {
    fn default() -> Self {
        Strategy::Full { exchange: Exchange::PerTerm }
    }
}

/// How the dataset is decomposed across processors.
#[derive(Debug, Clone, PartialEq)]
pub enum Partitioning {
    /// Equal-sized contiguous blocks — the paper's decomposition, which
    /// needs no load balancing on a homogeneous machine.
    Block,
    /// Contiguous blocks proportional to the given per-rank weights (one
    /// per rank) — e.g. relative processor speeds on a heterogeneous
    /// machine. See the `ablation_imbalance` bench.
    Weighted(Vec<f64>),
}

impl Partitioning {
    /// The per-rank row ranges for `n` items over `p` processors.
    ///
    /// # Panics
    /// Panics if `Weighted` weights don't count `p` entries.
    pub fn ranges(&self, n: usize, p: usize) -> Vec<std::ops::Range<usize>> {
        match self {
            Partitioning::Block => block_partition(n, p),
            Partitioning::Weighted(w) => {
                assert_eq!(w.len(), p, "need one partition weight per rank");
                weighted_partition(n, w)
            }
        }
    }
}

/// What the fault-tolerant supervisor does when a run dies with a
/// recoverable engine fault (a crashed rank, a dropped or corrupted
/// message, a receive timeout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecoveryPolicy {
    /// Propagate the typed error to the caller; the diagnosis (culprit
    /// rank, sequence number, fault kind) is the product.
    Abort,
    /// Re-run on the full machine from the latest checkpoint (from
    /// scratch if none was taken yet). The final classification is
    /// bitwise identical to an unfaulted run: the checkpoint restores
    /// replicated state exactly and the EM search is deterministic.
    RestartFromCheckpoint,
    /// Exclude the culprit rank, rebuild a (P−1)-rank communicator via
    /// `Comm::split`, repartition the data over the survivors, and resume
    /// from the latest checkpoint. Completes on degraded hardware; the
    /// rebuild cost is reported under the `"recovery"` phase bucket.
    ShrinkAndRedistribute,
    /// Promote a warm spare slot (see `MachineSpec::spares`) into the
    /// failed logical rank via the member table: P is preserved, every
    /// collective schedule is unchanged, and the final classification is
    /// bitwise identical to the fault-free run. Only the promoted rank
    /// loads the culprit's checkpoint *shard*; the survivors pay a
    /// handshake and a barrier in the `"recovery"` bucket. When the spare
    /// pool is exhausted the supervisor falls back — deterministically —
    /// to [`StandbyConfig::fallback`].
    PromoteSpare,
    /// Restart only the failed rank from its checkpoint and replay its
    /// in-flight delivery log (see `mpsim::ReplayLog`) locally: the
    /// survivors stall just until the replay horizon catches up, instead
    /// of the whole machine rolling back. Recovery virtual time is
    /// strictly below [`RecoveryPolicy::RestartFromCheckpoint`]'s on the
    /// same fault. Falls back to a full restart when the ring evicted
    /// entries since the last checkpoint (the log no longer covers the
    /// gap). Simulated backends only — the native backend refuses it
    /// with a typed `CommError::Unsupported`.
    LocalReplay,
}

/// Deterministic corruption injected into one checkpoint shard — the
/// shard-level analogue of `FaultAction::Corrupt`, used to exercise the
/// promotion path's integrity checking (a promoted spare that loads a
/// corrupt shard must surface `PayloadCorrupt` naming the shard's
/// logical rank and fall back to a full restart from the intact copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardFault {
    /// Which logical rank's shard is corrupted.
    pub logical_rank: usize,
    /// Byte offset flipped, modulo the shard's length.
    pub byte: usize,
    /// XOR mask (forced non-zero by the injector).
    pub mask: u8,
}

/// Localized-recovery knobs shared by [`RecoveryPolicy::PromoteSpare`]
/// and [`RecoveryPolicy::LocalReplay`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StandbyConfig {
    /// Warm spare slots the supervisor may promote (also how many spare
    /// park-threads the engine keeps warm; see `MachineSpec::spares`).
    pub spares: usize,
    /// Per-rank replay-ring capacity, in delivered envelopes.
    pub replay_capacity: usize,
    /// Policy applied — deterministically — when a promotion is needed
    /// but the spare pool is exhausted, or when a replay log no longer
    /// covers the gap back to the checkpoint.
    pub fallback: RecoveryPolicy,
    /// Deterministic shard-corruption injection for tests and the
    /// `faultmatrix` sweep; `None` on healthy storage.
    pub shard_fault: Option<ShardFault>,
}

impl Default for StandbyConfig {
    fn default() -> Self {
        StandbyConfig {
            spares: 1,
            replay_capacity: 64,
            fallback: RecoveryPolicy::RestartFromCheckpoint,
            shard_fault: None,
        }
    }
}

/// Checkpoint/restart configuration for [`crate::run_search_ft`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FtConfig {
    /// Take a checkpoint every this many EM cycles (0 disables
    /// checkpointing; a restart then replays from scratch).
    pub checkpoint_every: usize,
    /// What to do when a run dies with a recoverable fault.
    pub policy: RecoveryPolicy,
    /// How many failed runs the supervisor will recover from before
    /// giving up and returning the error (guards against a fault that
    /// recurs on every attempt).
    pub max_restarts: usize,
    /// Localized-recovery knobs (spare pool, replay ring, fallback
    /// lattice); only read under [`RecoveryPolicy::PromoteSpare`] and
    /// [`RecoveryPolicy::LocalReplay`].
    pub standby: StandbyConfig,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            checkpoint_every: 4,
            policy: RecoveryPolicy::RestartFromCheckpoint,
            max_restarts: 1,
            standby: StandbyConfig::default(),
        }
    }
}

/// How the fleet consensus stage combines the per-fleet winners.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Consensus {
    /// Gather every fleet's completed candidates to rank 0, replay the
    /// sequential duplicate-elimination chain in schedule order, and pick
    /// the best by Cheeseman–Stutz score — bit-identical to the serial
    /// search given the same candidate set.
    GlobalBest,
    /// [`Consensus::GlobalBest`] plus an ensemble classification: the top
    /// `voters` models each label every item, labels are aligned to the
    /// best model's classes by a greedy confusion-matrix match, and a
    /// per-item majority vote produces a consensus labeling with an
    /// agreement score (the co-association idea from consensus
    /// clustering).
    Ensemble {
        /// How many of the top-scored models vote (clamped to the number
        /// of retained classifications).
        voters: usize,
    },
}

/// The second parallelism axis: split the machine into `groups`
/// concurrent sub-searches ("fleets") over disjoint sub-communicators.
/// Each fleet draws candidates (J values × restart tries) from the shared
/// schedule, exchanges convergence fingerprints with the other fleets
/// every round to abandon duplicate basins early, steals queued
/// candidates when it runs dry, and joins a final consensus stage. See
/// [`crate::run_search_fleet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of concurrent sub-searches. Fleets are contiguous rank
    /// blocks (sizes differ by at most one). Clamped to the rank count.
    pub groups: usize,
    /// EM cycles each fleet runs between two fingerprint exchanges (the
    /// BSP round length). Longer rounds amortize the exchange; shorter
    /// rounds abandon duplicates and steal work sooner.
    pub round_cycles: usize,
    /// Probe for cross-fleet duplicates every this many EM cycles of a
    /// running candidate (0 disables duplicate abandonment — every
    /// candidate then runs to its own convergence, which is the
    /// configuration whose result is bit-identical to the serial search).
    pub dedup_every: usize,
    /// What the consensus stage produces.
    pub consensus: Consensus,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { groups: 2, round_cycles: 8, dedup_every: 0, consensus: Consensus::GlobalBest }
    }
}

/// Full configuration of a parallel search.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelConfig {
    /// The search settings (shared with sequential AutoClass).
    pub search: SearchConfig,
    /// Parallelization strategy.
    pub strategy: Strategy,
    /// Data decomposition.
    pub partition: Partitioning,
    /// Blocks of real attributes modeled with full covariance
    /// (`multi_normal_cn`); empty = all attributes independent. See
    /// [`autoclass::Model::with_correlated`].
    pub correlated_blocks: Vec<Vec<usize>>,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            search: SearchConfig::default(),
            strategy: Strategy::default(),
            partition: Partitioning::Block,
            correlated_blocks: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = ParallelConfig::default();
        assert_eq!(c.strategy, Strategy::Full { exchange: Exchange::PerTerm });
        assert_eq!(c.search.start_j_list, vec![2, 4, 8, 16, 24, 50, 64]);
    }
}
