//! Fault-tolerant search: checkpointing, failure handling, and the
//! recovery policies.
//!
//! [`run_search_ft`] wraps the parallel search in a supervisor loop. The
//! rank body snapshots its (bitwise replicated) state into a
//! [`SearchCheckpoint`] every `k` EM cycles; when the engine dies with a
//! recoverable fault — a crashed rank, a dropped or corrupted message, a
//! receive timeout (see `mpsim::fault`) — the supervisor applies the
//! configured [`RecoveryPolicy`]:
//!
//! * [`RecoveryPolicy::Abort`] — return the typed error; the diagnosis
//!   (culprit rank, sequence number, fault kind) is the product.
//! * [`RecoveryPolicy::RestartFromCheckpoint`] — re-run on the full
//!   machine from the latest checkpoint. One-shot faults in a
//!   [`mpsim::FaultPlan`] stay spent across re-runs, and the EM search is
//!   deterministic, so the final classification is **bitwise identical**
//!   to an unfaulted run's.
//! * [`RecoveryPolicy::ShrinkAndRedistribute`] — exclude the culprit
//!   rank, rebuild a (P−1)-rank communicator with `Communicator::split`,
//!   repartition the data over the survivors, and resume from the
//!   checkpoint. The rebuild cost is measured under the `"recovery"`
//!   phase bucket and reported as [`FtOutcome::recovery_time`].
//! * [`RecoveryPolicy::PromoteSpare`] — promote a warm spare slot into
//!   the failed logical rank through the machine's member table
//!   (`MachineSpec::promote`): `P` is preserved, every collective
//!   schedule is unchanged, and the result stays bitwise identical. Only
//!   the promoted rank loads the culprit's checkpoint *shard*
//!   (`checkpoint::to_shards`); a corrupt shard surfaces as
//!   [`SimError::PayloadCorrupt`] naming the shard's owner and the
//!   supervisor falls back to a full restart from the intact image. An
//!   exhausted spare pool falls back — deterministically — to
//!   [`crate::StandbyConfig::fallback`].
//! * [`RecoveryPolicy::LocalReplay`] — restart only the culprit from its
//!   shard and replay its in-flight delivery log ([`mpsim::ReplayLog`])
//!   locally; the survivors stall just to the replay horizon. Its
//!   recovery virtual time is strictly below a full restart's (see
//!   [`BASE_LOCAL_OPS`]). When the bounded ring evicted entries since the
//!   last checkpoint the log no longer covers the gap, and the supervisor
//!   falls back like an exhausted spare pool. Simulated backends only:
//!   [`run_search_ft_native`] refuses it with a typed
//!   `CommError::Unsupported`.

use std::sync::Mutex;

use autoclass::data::{block_partition, Dataset};
use autoclass::model::{
    classes_from_flat_into, classes_to_flat, converged, derive_seed, log_param_prior,
    Approximation, CycleWorkspace,
};
use autoclass::search::{apply_class_death, is_duplicate, Classification};
use mpsim::{
    run_spmd, CommError, Communicator, DecodeError, GroupCommunicator, MachineSpec, ReplayLog,
    SimError, SimOptions, RECOVERY_PHASE,
};
use shmcomm::{run_native, NativeOptions};

use crate::checkpoint::{
    corrupt_shard, decode_shard, to_shards, CheckpointError, CkptClassification, SearchCheckpoint,
};
use crate::config::{FtConfig, ParallelConfig, RecoveryPolicy, ShardFault};
use crate::driver::{
    build_model, init_classes_parallel, parallel_base_cycle, sub_base_cycle, sub_build_model,
    sub_init_classes,
};
use crate::error::RunError;
use crate::run::{outcome_from, ParallelOutcome};

/// Result of a fault-tolerant search, wrapping the ordinary
/// [`ParallelOutcome`] with the supervisor's recovery record.
#[derive(Debug, Clone)]
pub struct FtOutcome {
    /// The search result (rank 0's — identical on every surviving rank).
    pub outcome: ParallelOutcome,
    /// Engine runs launched, including the successful one (1 = no fault).
    pub attempts: usize,
    /// The typed fault each failed attempt died with, in order.
    pub faults: Vec<SimError>,
    /// Whether the final attempt ran on a shrunken communicator.
    pub shrunk: bool,
    /// Ranks that computed the final result (`P`, or `P − 1` after a
    /// shrink).
    pub survivors: usize,
    /// Virtual seconds spent rebuilding after faults (checkpoint reload,
    /// communicator shrink, shard load, replay, resynchronization): the
    /// maximum `"recovery"` phase-bucket total over ranks. Zero when no
    /// fault fired.
    pub recovery_time: f64,
    /// Spare slots promoted into failed logical ranks
    /// ([`RecoveryPolicy::PromoteSpare`]).
    pub promotions: usize,
    /// Faults recovered by replaying the culprit's delivery log locally
    /// ([`RecoveryPolicy::LocalReplay`]).
    pub replays: usize,
    /// Whether any recovery had to walk the fallback lattice (spare pool
    /// exhausted, replay ring evicted, or a corrupt checkpoint shard).
    pub fell_back: bool,
}

/// Structural cost, in abstract compute ops, of a full rollback: every
/// rank tears down, reloads the whole checkpoint image and rebuilds its
/// replicated state.
const BASE_RESTART_OPS: u64 = 512;
/// Structural cost of a localized restart (spare promotion or local
/// replay): only the culprit's slot rebuilds, and it loads a `1/P`
/// checkpoint shard instead of the whole image. Kept far below
/// [`BASE_RESTART_OPS`] so a local recovery stays strictly cheaper than a
/// rollback even for a tiny checkpoint with a full default replay ring:
/// `64 + 4 × 64 = 320 < 512`, and the shard load is a `1/P` fraction of
/// the full reload on top.
const BASE_LOCAL_OPS: u64 = 64;
/// Checkpoint (re)load cost per 8-byte word.
const CKPT_LOAD_OPS_PER_WORD: u64 = 8;
/// Cost of re-applying one logged envelope during a local replay.
const REPLAY_OPS_PER_ENTRY: u64 = 4;

/// How the next attempt recovers from the previous attempt's fault —
/// decided by the supervisor, charged by the rank body's prologue under
/// the `"recovery"` phase so [`FtOutcome::recovery_time`] compares
/// policies on the same axis.
#[derive(Debug, Clone, Copy)]
enum Recovery {
    /// First attempt, or a recovery whose cost is accounted elsewhere
    /// (the shrink body charges its own `"recovery"` span).
    None,
    /// Full rollback: every rank reloads the whole checkpoint image.
    Restart {
        /// Checkpoint image size in 8-byte words (0 = none taken yet).
        ck_words: u64,
    },
    /// A spare was promoted into the culprit's logical slot: only the
    /// promoted rank loads the culprit's shard, then announces itself;
    /// the survivors just handshake and resynchronize.
    Promote {
        /// Logical rank the spare was promoted into.
        culprit: usize,
        /// Checkpoint image size in 8-byte words.
        ck_words: u64,
    },
    /// The culprit restarts alone from its shard and replays its bounded
    /// delivery log; the survivors stall only to the replay horizon.
    Replay {
        /// The restarted logical rank.
        culprit: usize,
        /// Checkpoint image size in 8-byte words.
        ck_words: u64,
        /// Logged envelopes replayed (bounded by the ring capacity).
        entries: u64,
    },
}

/// Charge the decided recovery's virtual-time cost at the top of the
/// re-run, under the `"recovery"` phase. The collective pattern is the
/// mechanism's own: a rollback resynchronizes everyone after a full
/// reload; a promotion is a shard load on one slot plus a ready
/// handshake; a replay is culprit-local with the survivors stalled at the
/// barrier until the replay horizon catches up.
fn recovery_prologue<C: Communicator>(comm: &mut C, recovery: Recovery) {
    let p = comm.size().max(1) as u64;
    let shard_words = move |ck_words: u64| ck_words.div_ceil(p);
    match recovery {
        Recovery::None => {}
        Recovery::Restart { ck_words } => {
            comm.enter_phase(RECOVERY_PHASE);
            comm.work(BASE_RESTART_OPS + CKPT_LOAD_OPS_PER_WORD * ck_words);
            comm.barrier();
            comm.exit_phase();
        }
        Recovery::Promote { culprit, ck_words } => {
            comm.enter_phase(RECOVERY_PHASE);
            if comm.rank() == culprit {
                comm.work(BASE_LOCAL_OPS + CKPT_LOAD_OPS_PER_WORD * shard_words(ck_words));
            }
            // The promoted spare announces it holds the slot; one word of
            // payload is enough for the handshake.
            let mut ready = [culprit as f64];
            comm.broadcast_f64s(culprit, &mut ready);
            comm.barrier();
            comm.exit_phase();
        }
        Recovery::Replay { culprit, ck_words, entries } => {
            comm.enter_phase(RECOVERY_PHASE);
            if comm.rank() == culprit {
                comm.work(
                    BASE_LOCAL_OPS
                        + CKPT_LOAD_OPS_PER_WORD * shard_words(ck_words)
                        + REPLAY_OPS_PER_ENTRY * entries,
                );
            }
            comm.barrier();
            comm.exit_phase();
        }
    }
}

/// Run the parallel search with checkpoint/restart supervision.
///
/// Behaves exactly like [`crate::run_search_with`] when no fault fires
/// (the checkpoints add virtual time but change no numbers). See the
/// module docs for what happens when one does.
///
/// # Errors
/// Non-recoverable engine errors (program bugs, verifier divergences),
/// recoverable faults under [`RecoveryPolicy::Abort`] or past
/// `max_restarts`, undecodable checkpoints, and empty searches.
pub fn run_search_ft(
    data: &Dataset,
    machine: &MachineSpec,
    config: &ParallelConfig,
    ft: &FtConfig,
    opts: &SimOptions,
) -> Result<FtOutcome, RunError> {
    let store: Mutex<Option<Vec<u8>>> = Mutex::new(None);
    let mut sup = Supervisor::new(machine, ft);
    let mut opts_now = opts.clone();
    if matches!(ft.policy, RecoveryPolicy::LocalReplay) && opts_now.replay.is_none() {
        opts_now.replay = Some(ReplayLog::new(ft.standby.replay_capacity));
    }
    let mut attempts = 0usize;
    let mut recovery = Recovery::None;
    loop {
        attempts += 1;
        let resume = {
            // lint:allow(unwrap): mutex poisoning only follows another panic
            let guard = store.lock().expect("checkpoint store lock");
            match guard.as_deref() {
                Some(bytes) => Some(SearchCheckpoint::from_bytes(bytes)?),
                None => None,
            }
        };
        let resume = resume.as_ref();
        if let Some(log) = &opts_now.replay {
            // Fresh horizon per attempt: the decided prologue has already
            // charged the previous attempt's replay.
            log.reset();
        }
        let rec = recovery;
        let excluded = sup.excluded;
        let result = run_spmd(&sup.machine_now, &opts_now, |comm| match excluded {
            Some(culprit) => shrunk_rank_body(comm, data, config, ft, culprit, resume, &store),
            None => Some(ft_rank_body(comm, data, config, ft, resume, &store, rec)),
        });
        match result {
            Ok(out) => {
                let recovery_time = out
                    .ranks
                    .iter()
                    .filter_map(|r| r.phase(RECOVERY_PHASE))
                    .map(|ph| ph.total())
                    .fold(0.0, f64::max);
                let elapsed = out.elapsed;
                let (ranks, stats) = (out.ranks, out.stats);
                let Some((all, cycles)) = out.per_rank.into_iter().flatten().next() else {
                    return Err(RunError::EmptySearch);
                };
                let outcome = outcome_from(all, cycles, elapsed, ranks, stats)?;
                return Ok(sup.finish(outcome, attempts, recovery_time));
            }
            Err(e) => match sup.plan(&e, &store, opts_now.replay.as_ref()) {
                Some(r) => recovery = r,
                None => return Err(e.into()),
            },
        }
    }
}

/// [`run_search_ft`] on real cores: the same generic rank body and the
/// same supervisor, driven by `shmcomm::run_native` with wall-clock time.
/// Injected faults arrive as `CommError::Sim` (see
/// `shmcomm::NativeOptions::fault`), so the culprit diagnosis — and
/// therefore every recovery decision — is identical to the simulated
/// supervisor's; results stay bitwise identical across backends.
///
/// # Errors
/// [`RecoveryPolicy::LocalReplay`] is refused up front with a typed
/// `CommError::Unsupported` — the native backend keeps no in-flight
/// replay log. Native failure modes without a simulated culprit (a
/// panicked rank, a poisoned lock) propagate unrecovered, as do the
/// errors [`run_search_ft`] propagates.
pub fn run_search_ft_native(
    data: &Dataset,
    machine: &MachineSpec,
    config: &ParallelConfig,
    ft: &FtConfig,
    opts: &NativeOptions,
) -> Result<FtOutcome, RunError> {
    if matches!(ft.policy, RecoveryPolicy::LocalReplay) {
        return Err(RunError::Comm(CommError::Unsupported {
            what: "RecoveryPolicy::LocalReplay (no in-flight replay log)".into(),
            backend: "native",
        }));
    }
    let store: Mutex<Option<Vec<u8>>> = Mutex::new(None);
    let mut sup = Supervisor::new(machine, ft);
    let mut attempts = 0usize;
    let mut recovery = Recovery::None;
    loop {
        attempts += 1;
        let resume = {
            // lint:allow(unwrap): mutex poisoning only follows another panic
            let guard = store.lock().expect("checkpoint store lock");
            match guard.as_deref() {
                Some(bytes) => Some(SearchCheckpoint::from_bytes(bytes)?),
                None => None,
            }
        };
        let resume = resume.as_ref();
        let rec = recovery;
        let excluded = sup.excluded;
        let result = run_native(&sup.machine_now, opts, |comm| match excluded {
            Some(culprit) => shrunk_rank_body(comm, data, config, ft, culprit, resume, &store),
            None => Some(ft_rank_body(comm, data, config, ft, resume, &store, rec)),
        });
        match result {
            Ok(out) => {
                let recovery_time = out
                    .ranks
                    .iter()
                    .filter_map(|r| r.phase(RECOVERY_PHASE))
                    .map(|ph| ph.total())
                    .fold(0.0, f64::max);
                let elapsed = out.elapsed;
                let (ranks, stats) = (out.ranks, out.stats);
                let Some((all, cycles)) = out.per_rank.into_iter().flatten().next() else {
                    return Err(RunError::EmptySearch);
                };
                let outcome = outcome_from(all, cycles, elapsed, ranks, stats)?;
                return Ok(sup.finish(outcome, attempts, recovery_time));
            }
            Err(e) => {
                // Only simulated-typed faults carry a culprit diagnosis;
                // genuinely native failures propagate unrecovered.
                let CommError::Sim(sim) = &e else {
                    return Err(e.into());
                };
                match sup.plan(&sim.clone(), &store, None) {
                    Some(r) => recovery = r,
                    None => return Err(e.into()),
                }
            }
        }
    }
}

/// The recovery decision state shared by the simulated and native
/// supervisors: the (possibly promoted) machine, the effective policy
/// after any fallback, and the running recovery tallies.
struct Supervisor<'a> {
    ft: &'a FtConfig,
    /// The machine the next attempt runs on — `p` never changes, but
    /// promotions rewrite its member table (and spare promotions consume
    /// slots left to right).
    machine_now: MachineSpec,
    /// The policy in force — starts at `ft.policy` and moves one step
    /// down the fallback lattice when a mechanism runs out of resources.
    policy_now: RecoveryPolicy,
    excluded: Option<usize>,
    spares_used: usize,
    promotions: usize,
    replays: usize,
    fell_back: bool,
    faults: Vec<SimError>,
}

impl<'a> Supervisor<'a> {
    fn new(machine: &MachineSpec, ft: &'a FtConfig) -> Self {
        let mut machine_now = machine.clone();
        if matches!(ft.policy, RecoveryPolicy::PromoteSpare) {
            // The standby pool rides on the engine's warm spare slots.
            machine_now.spares = machine_now.spares.max(ft.standby.spares);
        }
        Supervisor {
            ft,
            machine_now,
            policy_now: ft.policy,
            excluded: None,
            spares_used: 0,
            promotions: 0,
            replays: 0,
            fell_back: false,
            faults: Vec::new(),
        }
    }

    /// Wrap a successful attempt's outcome with the recovery record.
    fn finish(self, outcome: ParallelOutcome, attempts: usize, recovery_time: f64) -> FtOutcome {
        FtOutcome {
            outcome,
            attempts,
            faults: self.faults,
            shrunk: self.excluded.is_some(),
            survivors: self.machine_now.p - usize::from(self.excluded.is_some()),
            recovery_time,
            promotions: self.promotions,
            replays: self.replays,
            fell_back: self.fell_back,
        }
    }

    /// Decide how the next attempt recovers from `e`, mutating the
    /// machine (promotion), the effective policy (fallback), and the
    /// tallies. `None` means the fault is unrecoverable under the current
    /// configuration and the caller propagates the original error. The
    /// fallback lattice is one step deep: a fallback policy that itself
    /// cannot proceed ends recovery rather than looping.
    fn plan(
        &mut self,
        e: &SimError,
        store: &Mutex<Option<Vec<u8>>>,
        replay: Option<&ReplayLog>,
    ) -> Option<Recovery> {
        // Only injected-fault errors are recoverable; anything else (a
        // genuine bug, a verifier divergence) propagates.
        let culprit = fault_culprit(e)?;
        self.faults.push(e.clone());
        if matches!(self.policy_now, RecoveryPolicy::Abort)
            || self.faults.len() > self.ft.max_restarts
        {
            return None;
        }
        let ck_words = {
            // lint:allow(unwrap): mutex poisoning only follows another panic
            let guard = store.lock().expect("checkpoint store lock");
            guard.as_deref().map_or(0, |b| (b.len() / 8) as u64)
        };
        let mut steps = 0;
        loop {
            steps += 1;
            if steps > 2 {
                return None;
            }
            match self.policy_now {
                RecoveryPolicy::Abort => return None,
                RecoveryPolicy::RestartFromCheckpoint => {
                    // With no stored image the "restart" is a from-scratch
                    // re-execution: the whole search is re-paid in the
                    // ordinary phases and there is nothing to reload, so no
                    // rollback toll is charged.
                    return Some(if ck_words == 0 {
                        Recovery::None
                    } else {
                        Recovery::Restart { ck_words }
                    });
                }
                RecoveryPolicy::ShrinkAndRedistribute => {
                    if self.machine_now.p < 2 || self.excluded.is_some_and(|r| r != culprit) {
                        // Can't drop below one rank, and excluding a
                        // second distinct rank would need nested shrink
                        // levels this supervisor doesn't implement.
                        return None;
                    }
                    self.excluded = Some(culprit);
                    // The shrink body measures its own rebuild cost.
                    return Some(Recovery::None);
                }
                RecoveryPolicy::PromoteSpare => {
                    if self.spares_used >= self.machine_now.spares {
                        self.fell_back = true;
                        self.policy_now = self.ft.standby.fallback;
                        continue;
                    }
                    if let Err(shard_err) = check_culprit_shard(
                        store,
                        self.machine_now.p,
                        culprit,
                        self.ft.standby.shard_fault,
                    ) {
                        // The spare cannot trust its shard; record the
                        // corruption (naming the shard's owner) and fall
                        // back to a full restart from the intact image.
                        self.faults.push(shard_err);
                        self.fell_back = true;
                        return Some(Recovery::Restart { ck_words });
                    }
                    let slot = self.machine_now.p + self.spares_used;
                    self.machine_now.promote(culprit, slot);
                    self.spares_used += 1;
                    self.promotions += 1;
                    return Some(Recovery::Promote { culprit, ck_words });
                }
                RecoveryPolicy::LocalReplay => match replay {
                    Some(log) if log.evicted(culprit) == 0 => {
                        self.replays += 1;
                        return Some(Recovery::Replay {
                            culprit,
                            ck_words,
                            entries: log.len(culprit) as u64,
                        });
                    }
                    // Ring evicted entries (or no log at all): the log no
                    // longer covers the gap back to the checkpoint.
                    _ => {
                        self.fell_back = true;
                        self.policy_now = self.ft.standby.fallback;
                        continue;
                    }
                },
            }
        }
    }
}

/// Load-check the culprit's checkpoint shard the way a promoted spare
/// would, applying any injected [`ShardFault`] first. A corrupt shard
/// surfaces as [`SimError::PayloadCorrupt`] naming the shard's owner.
fn check_culprit_shard(
    store: &Mutex<Option<Vec<u8>>>,
    p: usize,
    culprit: usize,
    injected: Option<ShardFault>,
) -> Result<(), SimError> {
    // lint:allow(unwrap): mutex poisoning only follows another panic
    let guard = store.lock().expect("checkpoint store lock");
    let Some(bytes) = guard.as_deref() else {
        return Ok(()); // nothing checkpointed yet: nothing to load
    };
    let mut shards = to_shards(bytes, p);
    if let Some(f) = injected {
        if let Some(shard) = shards.get_mut(f.logical_rank) {
            corrupt_shard(shard, f.byte, f.mask);
        }
    }
    match decode_shard(&shards[culprit]) {
        Ok(_) => Ok(()),
        Err(CheckpointError::ShardCorrupt { logical_rank, expected, found }) => {
            Err(SimError::PayloadCorrupt {
                rank: culprit,
                from: logical_rank,
                seq: 0,
                cause: DecodeError::ChecksumMismatch { expected, found },
            })
        }
        // Unreachable with our own framing, but never a panic path: any
        // other decode failure still reads as a corrupt shard.
        Err(_) => Err(SimError::PayloadCorrupt {
            rank: culprit,
            from: culprit,
            seq: 0,
            cause: DecodeError::RaggedLength { len: shards[culprit].len() },
        }),
    }
}

/// The rank to blame for a recoverable engine fault: the crashed rank,
/// the peer whose message went missing, or the sender of a late or
/// corrupted payload. `None` marks the error non-recoverable.
pub(crate) fn fault_culprit(e: &SimError) -> Option<usize> {
    match e {
        SimError::RankCrashed { rank, .. } => Some(*rank),
        SimError::PeerFailed { peer, .. } => Some(*peer),
        SimError::Timeout { from, .. } => Some(*from),
        SimError::PayloadCorrupt { from, .. } => Some(*from),
        _ => None,
    }
}

fn approx_to(a: Approximation) -> [f64; 4] {
    [a.log_likelihood, a.complete_ll, a.complete_marginal, a.cs_score]
}

fn approx_from(v: [f64; 4]) -> Approximation {
    Approximation {
        log_likelihood: v[0],
        complete_ll: v[1],
        complete_marginal: v[2],
        cs_score: v[3],
    }
}

/// Serialize the (replicated) search state, charge the serialization cost
/// in virtual time on every rank under the `"checkpoint"` phase, and
/// publish rank 0's copy to the supervisor's store.
fn publish_checkpoint<C: Communicator>(
    comm: &mut C,
    ck: &SearchCheckpoint,
    store: &Mutex<Option<Vec<u8>>>,
) {
    let bytes = ck.to_bytes();
    comm.enter_phase("checkpoint");
    comm.work(bytes.len() as u64);
    comm.exit_phase();
    if comm.rank() == 0 {
        // lint:allow(unwrap): mutex poisoning only follows another panic
        *store.lock().expect("checkpoint store lock") = Some(bytes);
    }
    // Nothing delivered before this snapshot can need replaying.
    comm.replay_truncate();
}

/// The fault-tolerant variant of the search rank body: identical EM
/// schedule and numbers, plus checkpoint publication every
/// `ft.checkpoint_every` cycles and the ability to resume mid-try from a
/// decoded checkpoint.
fn ft_rank_body<C: Communicator>(
    comm: &mut C,
    data: &Dataset,
    config: &ParallelConfig,
    ft: &FtConfig,
    resume: Option<&SearchCheckpoint>,
    store: &Mutex<Option<Vec<u8>>>,
    recovery: Recovery,
) -> (Vec<Classification>, usize) {
    recovery_prologue(comm, recovery);
    comm.enter_phase("search");
    let parts = config.partition.ranges(data.len(), comm.size());
    let part = &parts[comm.rank()];
    let view = data.view(part.start, part.end);
    let model = build_model(comm, &view, &config.correlated_blocks);
    let sc = &config.search;

    // Results of tries that finished before the checkpoint restore
    // exactly (flat parameters are carried as raw bit patterns).
    let mut all: Vec<Classification> = resume
        .map(|ck| ck.best.iter().map(|b| b.to_classification(&model)).collect())
        .unwrap_or_default();
    let mut total_cycles = resume.map_or(0, |ck| ck.total_cycles);
    let mut ws = CycleWorkspace::new();

    for (ji, &j) in sc.start_j_list.iter().enumerate() {
        for t in 0..sc.tries_per_j {
            if resume.is_some_and(|ck| (ji, t) < (ck.ji, ck.try_idx)) {
                continue; // finished before the checkpoint; already in `all`
            }
            let resumed = resume.filter(|ck| (ji, t) == (ck.ji, ck.try_idx));
            let seed = derive_seed(sc.seed, (ji * sc.tries_per_j + t) as u64);
            let mut classes = Vec::new();
            let mut prev_ll = f64::NEG_INFINITY;
            let mut cycles = 0usize;
            let mut approx = approx_from([f64::NEG_INFINITY; 4]);
            match resumed {
                Some(ck) => {
                    classes_from_flat_into(&model, ck.j_current, &ck.classes_flat, &mut classes);
                    prev_ll = ck.prev_ll;
                    cycles = ck.cycle;
                    approx = approx_from(ck.approx);
                }
                None => init_classes_parallel(comm, &model, &view, j, seed, &mut classes),
            }
            let mut did_converge = false;
            let mut since_ckpt = 0usize;
            while cycles < sc.max_cycles {
                if ft.checkpoint_every > 0 && since_ckpt >= ft.checkpoint_every {
                    let ck = SearchCheckpoint {
                        ji,
                        try_idx: t,
                        cycle: cycles,
                        j_current: classes.len(),
                        seed,
                        prev_ll,
                        approx: approx_to(approx),
                        total_cycles,
                        classes_flat: classes_to_flat(&classes),
                        best: all.iter().map(CkptClassification::from_classification).collect(),
                    };
                    publish_checkpoint(comm, &ck, store);
                    since_ckpt = 0;
                }
                let a = parallel_base_cycle(
                    comm,
                    &model,
                    &view,
                    &mut classes,
                    &mut ws,
                    config.strategy,
                );
                approx = a;
                cycles += 1;
                since_ckpt += 1;
                if apply_class_death(&mut classes, sc.min_class_weight) {
                    prev_ll = f64::NEG_INFINITY;
                    continue;
                }
                if converged(prev_ll, a.log_likelihood, sc.rel_delta_ll) {
                    did_converge = true;
                    break;
                }
                prev_ll = a.log_likelihood;
            }
            total_cycles += cycles;
            classes.sort_by(|a, b| b.weight.total_cmp(&a.weight));
            let log_prior = log_param_prior(&model, &classes);
            let c = Classification {
                classes,
                j_initial: j,
                approx,
                log_prior,
                cycles,
                converged: did_converge,
                seed,
            };
            if !all.iter().any(|existing| is_duplicate(existing, &c)) {
                all.push(c);
            }
        }
    }
    all.sort_by(|a, b| b.score().total_cmp(&a.score()));
    all.truncate(sc.max_stored);
    comm.exit_phase();
    (all, total_cycles)
}

/// The post-shrink rank body: the culprit rank secedes, the survivors
/// rebuild a (P−1)-rank sub-communicator, repartition the data, restore
/// the checkpointed state, and finish the search with sub-communicator
/// collectives. Returns `None` on the excluded rank.
fn shrunk_rank_body<C: Communicator>(
    comm: &mut C,
    data: &Dataset,
    config: &ParallelConfig,
    ft: &FtConfig,
    culprit: usize,
    resume: Option<&SearchCheckpoint>,
    store: &Mutex<Option<Vec<u8>>>,
) -> Option<(Vec<Classification>, usize)> {
    // Everything up to the resumed EM — communicator shrink, data
    // repartitioning, model rebuild, state restore — is recovery cost.
    comm.enter_phase(RECOVERY_PHASE);
    let excluded = comm.rank() == culprit;
    let mut sub = comm.split(u32::from(excluded));
    if excluded {
        // The suspect rank leaves the computation entirely.
        sub.exit_phase();
        return None;
    }
    let parts = block_partition(data.len(), sub.size());
    let part = &parts[sub.rank()];
    let view = data.view(part.start, part.end);
    // Survivors-only by design: the excluded rank has already left and
    // every collective below runs on the shrunk communicator `sub`,
    // whose membership is exactly the ranks that took this path — the
    // analyzer's sub-communicator rule recognizes this, no waiver needed.
    let model = sub_build_model(&mut sub, &view, &config.correlated_blocks);
    let sc = &config.search;
    let mut all: Vec<Classification> = resume
        .map(|ck| ck.best.iter().map(|b| b.to_classification(&model)).collect())
        .unwrap_or_default();
    let mut total_cycles = resume.map_or(0, |ck| ck.total_cycles);
    sub.exit_phase();

    sub.enter_phase("search");
    let mut ws = CycleWorkspace::new();
    for (ji, &j) in sc.start_j_list.iter().enumerate() {
        for t in 0..sc.tries_per_j {
            if resume.is_some_and(|ck| (ji, t) < (ck.ji, ck.try_idx)) {
                continue;
            }
            let resumed = resume.filter(|ck| (ji, t) == (ck.ji, ck.try_idx));
            let seed = derive_seed(sc.seed, (ji * sc.tries_per_j + t) as u64);
            let mut classes = Vec::new();
            let mut prev_ll = f64::NEG_INFINITY;
            let mut cycles = 0usize;
            let mut approx = approx_from([f64::NEG_INFINITY; 4]);
            match resumed {
                Some(ck) => {
                    // The class parameters were checkpointed in their flat
                    // broadcast form; rebuilding them against the
                    // survivors' model restores the crashed run's state.
                    classes_from_flat_into(&model, ck.j_current, &ck.classes_flat, &mut classes);
                    prev_ll = ck.prev_ll;
                    cycles = ck.cycle;
                    approx = approx_from(ck.approx);
                }
                None => sub_init_classes(&mut sub, &model, &view, j, seed, &mut classes),
            }
            let mut did_converge = false;
            let mut since_ckpt = 0usize;
            while cycles < sc.max_cycles {
                if ft.checkpoint_every > 0 && since_ckpt >= ft.checkpoint_every {
                    let ck = SearchCheckpoint {
                        ji,
                        try_idx: t,
                        cycle: cycles,
                        j_current: classes.len(),
                        seed,
                        prev_ll,
                        approx: approx_to(approx),
                        total_cycles,
                        classes_flat: classes_to_flat(&classes),
                        best: all.iter().map(CkptClassification::from_classification).collect(),
                    };
                    sub_publish_checkpoint(&mut sub, &ck, store);
                    since_ckpt = 0;
                }
                let a = sub_base_cycle(&mut sub, &model, &view, &mut classes, &mut ws);
                approx = a;
                cycles += 1;
                since_ckpt += 1;
                if apply_class_death(&mut classes, sc.min_class_weight) {
                    prev_ll = f64::NEG_INFINITY;
                    continue;
                }
                if converged(prev_ll, a.log_likelihood, sc.rel_delta_ll) {
                    did_converge = true;
                    break;
                }
                prev_ll = a.log_likelihood;
            }
            total_cycles += cycles;
            classes.sort_by(|a, b| b.weight.total_cmp(&a.weight));
            let log_prior = log_param_prior(&model, &classes);
            let c = Classification {
                classes,
                j_initial: j,
                approx,
                log_prior,
                cycles,
                converged: did_converge,
                seed,
            };
            if !all.iter().any(|existing| is_duplicate(existing, &c)) {
                all.push(c);
            }
        }
    }
    all.sort_by(|a, b| b.score().total_cmp(&a.score()));
    all.truncate(sc.max_stored);
    sub.exit_phase();
    Some((all, total_cycles))
}

/// [`publish_checkpoint`] over the sub-communicator: the lowest surviving
/// rank publishes.
fn sub_publish_checkpoint<G: GroupCommunicator>(
    sub: &mut G,
    ck: &SearchCheckpoint,
    store: &Mutex<Option<Vec<u8>>>,
) {
    let bytes = ck.to_bytes();
    sub.work(bytes.len() as u64);
    if sub.rank() == 0 {
        // lint:allow(unwrap): mutex poisoning only follows another panic
        *store.lock().expect("checkpoint store lock") = Some(bytes);
    }
}
