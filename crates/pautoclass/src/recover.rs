//! Fault-tolerant search: checkpointing, failure handling, and the
//! recovery policies.
//!
//! [`run_search_ft`] wraps the parallel search in a supervisor loop. The
//! rank body snapshots its (bitwise replicated) state into a
//! [`SearchCheckpoint`] every `k` EM cycles; when the engine dies with a
//! recoverable fault — a crashed rank, a dropped or corrupted message, a
//! receive timeout (see `mpsim::fault`) — the supervisor applies the
//! configured [`RecoveryPolicy`]:
//!
//! * [`RecoveryPolicy::Abort`] — return the typed error; the diagnosis
//!   (culprit rank, sequence number, fault kind) is the product.
//! * [`RecoveryPolicy::RestartFromCheckpoint`] — re-run on the full
//!   machine from the latest checkpoint. One-shot faults in a
//!   [`mpsim::FaultPlan`] stay spent across re-runs, and the EM search is
//!   deterministic, so the final classification is **bitwise identical**
//!   to an unfaulted run's.
//! * [`RecoveryPolicy::ShrinkAndRedistribute`] — exclude the culprit
//!   rank, rebuild a (P−1)-rank communicator with `Communicator::split`,
//!   repartition the data over the survivors, and resume from the
//!   checkpoint. The rebuild cost is measured under the `"recovery"`
//!   phase bucket and reported as [`FtOutcome::recovery_time`].

use std::sync::Mutex;

use autoclass::data::{block_partition, Dataset};
use autoclass::model::{
    classes_from_flat_into, classes_to_flat, converged, derive_seed, log_param_prior,
    Approximation, CycleWorkspace,
};
use autoclass::search::{apply_class_death, is_duplicate, Classification};
use mpsim::{
    run_spmd, Communicator, GroupCommunicator, MachineSpec, SimError, SimOptions, RECOVERY_PHASE,
};

use crate::checkpoint::{CkptClassification, SearchCheckpoint};
use crate::config::{FtConfig, ParallelConfig, RecoveryPolicy};
use crate::driver::{
    build_model, init_classes_parallel, parallel_base_cycle, sub_base_cycle, sub_build_model,
    sub_init_classes,
};
use crate::error::RunError;
use crate::run::{outcome_from, ParallelOutcome};

/// Result of a fault-tolerant search, wrapping the ordinary
/// [`ParallelOutcome`] with the supervisor's recovery record.
#[derive(Debug, Clone)]
pub struct FtOutcome {
    /// The search result (rank 0's — identical on every surviving rank).
    pub outcome: ParallelOutcome,
    /// Engine runs launched, including the successful one (1 = no fault).
    pub attempts: usize,
    /// The typed fault each failed attempt died with, in order.
    pub faults: Vec<SimError>,
    /// Whether the final attempt ran on a shrunken communicator.
    pub shrunk: bool,
    /// Ranks that computed the final result (`P`, or `P − 1` after a
    /// shrink).
    pub survivors: usize,
    /// Virtual seconds the survivors spent rebuilding (communicator
    /// shrink, repartitioning, model and state restore): the maximum
    /// `"recovery"` phase-bucket total over ranks. Zero when no shrink
    /// happened.
    pub recovery_time: f64,
}

/// Run the parallel search with checkpoint/restart supervision.
///
/// Behaves exactly like [`crate::run_search_with`] when no fault fires
/// (the checkpoints add virtual time but change no numbers). See the
/// module docs for what happens when one does.
///
/// # Errors
/// Non-recoverable engine errors (program bugs, verifier divergences),
/// recoverable faults under [`RecoveryPolicy::Abort`] or past
/// `max_restarts`, undecodable checkpoints, and empty searches.
pub fn run_search_ft(
    data: &Dataset,
    machine: &MachineSpec,
    config: &ParallelConfig,
    ft: &FtConfig,
    opts: &SimOptions,
) -> Result<FtOutcome, RunError> {
    let store: Mutex<Option<Vec<u8>>> = Mutex::new(None);
    let mut faults: Vec<SimError> = Vec::new();
    let mut excluded: Option<usize> = None;
    let mut attempts = 0usize;
    loop {
        attempts += 1;
        let resume = {
            // lint:allow(unwrap): mutex poisoning only follows another panic
            let guard = store.lock().expect("checkpoint store lock");
            match guard.as_deref() {
                Some(bytes) => Some(SearchCheckpoint::from_bytes(bytes)?),
                None => None,
            }
        };
        let resume = resume.as_ref();
        let result = run_spmd(machine, opts, |comm| match excluded {
            Some(culprit) => shrunk_rank_body(comm, data, config, ft, culprit, resume, &store),
            None => Some(ft_rank_body(comm, data, config, ft, resume, &store)),
        });
        match result {
            Ok(out) => {
                let recovery_time = out
                    .ranks
                    .iter()
                    .filter_map(|r| r.phase(RECOVERY_PHASE))
                    .map(|ph| ph.total())
                    .fold(0.0, f64::max);
                let elapsed = out.elapsed;
                let (ranks, stats) = (out.ranks, out.stats);
                let Some((all, cycles)) = out.per_rank.into_iter().flatten().next() else {
                    return Err(RunError::EmptySearch);
                };
                let outcome = outcome_from(all, cycles, elapsed, ranks, stats)?;
                return Ok(FtOutcome {
                    outcome,
                    attempts,
                    faults,
                    shrunk: excluded.is_some(),
                    survivors: machine.p - usize::from(excluded.is_some()),
                    recovery_time,
                });
            }
            Err(e) => {
                // Only injected-fault errors are recoverable; anything
                // else (a genuine bug, a verifier divergence) propagates.
                let Some(culprit) = fault_culprit(&e) else {
                    return Err(e.into());
                };
                faults.push(e.clone());
                if matches!(ft.policy, RecoveryPolicy::Abort) || faults.len() > ft.max_restarts {
                    return Err(e.into());
                }
                if matches!(ft.policy, RecoveryPolicy::ShrinkAndRedistribute) {
                    if machine.p < 2 || excluded.is_some_and(|r| r != culprit) {
                        // Can't drop below one rank, and excluding a
                        // second distinct rank would need nested shrink
                        // levels this supervisor doesn't implement.
                        return Err(e.into());
                    }
                    excluded = Some(culprit);
                }
            }
        }
    }
}

/// The rank to blame for a recoverable engine fault: the crashed rank,
/// the peer whose message went missing, or the sender of a late or
/// corrupted payload. `None` marks the error non-recoverable.
pub(crate) fn fault_culprit(e: &SimError) -> Option<usize> {
    match e {
        SimError::RankCrashed { rank, .. } => Some(*rank),
        SimError::PeerFailed { peer, .. } => Some(*peer),
        SimError::Timeout { from, .. } => Some(*from),
        SimError::PayloadCorrupt { from, .. } => Some(*from),
        _ => None,
    }
}

fn approx_to(a: Approximation) -> [f64; 4] {
    [a.log_likelihood, a.complete_ll, a.complete_marginal, a.cs_score]
}

fn approx_from(v: [f64; 4]) -> Approximation {
    Approximation {
        log_likelihood: v[0],
        complete_ll: v[1],
        complete_marginal: v[2],
        cs_score: v[3],
    }
}

/// Serialize the (replicated) search state, charge the serialization cost
/// in virtual time on every rank under the `"checkpoint"` phase, and
/// publish rank 0's copy to the supervisor's store.
fn publish_checkpoint<C: Communicator>(
    comm: &mut C,
    ck: &SearchCheckpoint,
    store: &Mutex<Option<Vec<u8>>>,
) {
    let bytes = ck.to_bytes();
    comm.enter_phase("checkpoint");
    comm.work(bytes.len() as u64);
    comm.exit_phase();
    if comm.rank() == 0 {
        // lint:allow(unwrap): mutex poisoning only follows another panic
        *store.lock().expect("checkpoint store lock") = Some(bytes);
    }
}

/// The fault-tolerant variant of the search rank body: identical EM
/// schedule and numbers, plus checkpoint publication every
/// `ft.checkpoint_every` cycles and the ability to resume mid-try from a
/// decoded checkpoint.
fn ft_rank_body<C: Communicator>(
    comm: &mut C,
    data: &Dataset,
    config: &ParallelConfig,
    ft: &FtConfig,
    resume: Option<&SearchCheckpoint>,
    store: &Mutex<Option<Vec<u8>>>,
) -> (Vec<Classification>, usize) {
    comm.enter_phase("search");
    let parts = config.partition.ranges(data.len(), comm.size());
    let part = &parts[comm.rank()];
    let view = data.view(part.start, part.end);
    let model = build_model(comm, &view, &config.correlated_blocks);
    let sc = &config.search;

    // Results of tries that finished before the checkpoint restore
    // exactly (flat parameters are carried as raw bit patterns).
    let mut all: Vec<Classification> = resume
        .map(|ck| ck.best.iter().map(|b| b.to_classification(&model)).collect())
        .unwrap_or_default();
    let mut total_cycles = resume.map_or(0, |ck| ck.total_cycles);
    let mut ws = CycleWorkspace::new();

    for (ji, &j) in sc.start_j_list.iter().enumerate() {
        for t in 0..sc.tries_per_j {
            if resume.is_some_and(|ck| (ji, t) < (ck.ji, ck.try_idx)) {
                continue; // finished before the checkpoint; already in `all`
            }
            let resumed = resume.filter(|ck| (ji, t) == (ck.ji, ck.try_idx));
            let seed = derive_seed(sc.seed, (ji * sc.tries_per_j + t) as u64);
            let mut classes = Vec::new();
            let mut prev_ll = f64::NEG_INFINITY;
            let mut cycles = 0usize;
            let mut approx = approx_from([f64::NEG_INFINITY; 4]);
            match resumed {
                Some(ck) => {
                    classes_from_flat_into(&model, ck.j_current, &ck.classes_flat, &mut classes);
                    prev_ll = ck.prev_ll;
                    cycles = ck.cycle;
                    approx = approx_from(ck.approx);
                }
                None => init_classes_parallel(comm, &model, &view, j, seed, &mut classes),
            }
            let mut did_converge = false;
            let mut since_ckpt = 0usize;
            while cycles < sc.max_cycles {
                if ft.checkpoint_every > 0 && since_ckpt >= ft.checkpoint_every {
                    let ck = SearchCheckpoint {
                        ji,
                        try_idx: t,
                        cycle: cycles,
                        j_current: classes.len(),
                        seed,
                        prev_ll,
                        approx: approx_to(approx),
                        total_cycles,
                        classes_flat: classes_to_flat(&classes),
                        best: all.iter().map(CkptClassification::from_classification).collect(),
                    };
                    publish_checkpoint(comm, &ck, store);
                    since_ckpt = 0;
                }
                let a = parallel_base_cycle(
                    comm,
                    &model,
                    &view,
                    &mut classes,
                    &mut ws,
                    config.strategy,
                );
                approx = a;
                cycles += 1;
                since_ckpt += 1;
                if apply_class_death(&mut classes, sc.min_class_weight) {
                    prev_ll = f64::NEG_INFINITY;
                    continue;
                }
                if converged(prev_ll, a.log_likelihood, sc.rel_delta_ll) {
                    did_converge = true;
                    break;
                }
                prev_ll = a.log_likelihood;
            }
            total_cycles += cycles;
            classes.sort_by(|a, b| b.weight.total_cmp(&a.weight));
            let log_prior = log_param_prior(&model, &classes);
            let c = Classification {
                classes,
                j_initial: j,
                approx,
                log_prior,
                cycles,
                converged: did_converge,
                seed,
            };
            if !all.iter().any(|existing| is_duplicate(existing, &c)) {
                all.push(c);
            }
        }
    }
    all.sort_by(|a, b| b.score().total_cmp(&a.score()));
    all.truncate(sc.max_stored);
    comm.exit_phase();
    (all, total_cycles)
}

/// The post-shrink rank body: the culprit rank secedes, the survivors
/// rebuild a (P−1)-rank sub-communicator, repartition the data, restore
/// the checkpointed state, and finish the search with sub-communicator
/// collectives. Returns `None` on the excluded rank.
fn shrunk_rank_body<C: Communicator>(
    comm: &mut C,
    data: &Dataset,
    config: &ParallelConfig,
    ft: &FtConfig,
    culprit: usize,
    resume: Option<&SearchCheckpoint>,
    store: &Mutex<Option<Vec<u8>>>,
) -> Option<(Vec<Classification>, usize)> {
    // Everything up to the resumed EM — communicator shrink, data
    // repartitioning, model rebuild, state restore — is recovery cost.
    comm.enter_phase(RECOVERY_PHASE);
    let excluded = comm.rank() == culprit;
    let mut sub = comm.split(u32::from(excluded));
    if excluded {
        // The suspect rank leaves the computation entirely.
        sub.exit_phase();
        return None;
    }
    let parts = block_partition(data.len(), sub.size());
    let part = &parts[sub.rank()];
    let view = data.view(part.start, part.end);
    // Survivors-only by design: the excluded rank has already left and
    // every collective below runs on the shrunk communicator `sub`,
    // whose membership is exactly the ranks that took this path — the
    // analyzer's sub-communicator rule recognizes this, no waiver needed.
    let model = sub_build_model(&mut sub, &view, &config.correlated_blocks);
    let sc = &config.search;
    let mut all: Vec<Classification> = resume
        .map(|ck| ck.best.iter().map(|b| b.to_classification(&model)).collect())
        .unwrap_or_default();
    let mut total_cycles = resume.map_or(0, |ck| ck.total_cycles);
    sub.exit_phase();

    sub.enter_phase("search");
    let mut ws = CycleWorkspace::new();
    for (ji, &j) in sc.start_j_list.iter().enumerate() {
        for t in 0..sc.tries_per_j {
            if resume.is_some_and(|ck| (ji, t) < (ck.ji, ck.try_idx)) {
                continue;
            }
            let resumed = resume.filter(|ck| (ji, t) == (ck.ji, ck.try_idx));
            let seed = derive_seed(sc.seed, (ji * sc.tries_per_j + t) as u64);
            let mut classes = Vec::new();
            let mut prev_ll = f64::NEG_INFINITY;
            let mut cycles = 0usize;
            let mut approx = approx_from([f64::NEG_INFINITY; 4]);
            match resumed {
                Some(ck) => {
                    // The class parameters were checkpointed in their flat
                    // broadcast form; rebuilding them against the
                    // survivors' model restores the crashed run's state.
                    classes_from_flat_into(&model, ck.j_current, &ck.classes_flat, &mut classes);
                    prev_ll = ck.prev_ll;
                    cycles = ck.cycle;
                    approx = approx_from(ck.approx);
                }
                None => sub_init_classes(&mut sub, &model, &view, j, seed, &mut classes),
            }
            let mut did_converge = false;
            let mut since_ckpt = 0usize;
            while cycles < sc.max_cycles {
                if ft.checkpoint_every > 0 && since_ckpt >= ft.checkpoint_every {
                    let ck = SearchCheckpoint {
                        ji,
                        try_idx: t,
                        cycle: cycles,
                        j_current: classes.len(),
                        seed,
                        prev_ll,
                        approx: approx_to(approx),
                        total_cycles,
                        classes_flat: classes_to_flat(&classes),
                        best: all.iter().map(CkptClassification::from_classification).collect(),
                    };
                    sub_publish_checkpoint(&mut sub, &ck, store);
                    since_ckpt = 0;
                }
                let a = sub_base_cycle(&mut sub, &model, &view, &mut classes, &mut ws);
                approx = a;
                cycles += 1;
                since_ckpt += 1;
                if apply_class_death(&mut classes, sc.min_class_weight) {
                    prev_ll = f64::NEG_INFINITY;
                    continue;
                }
                if converged(prev_ll, a.log_likelihood, sc.rel_delta_ll) {
                    did_converge = true;
                    break;
                }
                prev_ll = a.log_likelihood;
            }
            total_cycles += cycles;
            classes.sort_by(|a, b| b.weight.total_cmp(&a.weight));
            let log_prior = log_param_prior(&model, &classes);
            let c = Classification {
                classes,
                j_initial: j,
                approx,
                log_prior,
                cycles,
                converged: did_converge,
                seed,
            };
            if !all.iter().any(|existing| is_duplicate(existing, &c)) {
                all.push(c);
            }
        }
    }
    all.sort_by(|a, b| b.score().total_cmp(&a.score()));
    all.truncate(sc.max_stored);
    sub.exit_phase();
    Some((all, total_cycles))
}

/// [`publish_checkpoint`] over the sub-communicator: the lowest surviving
/// rank publishes.
fn sub_publish_checkpoint<G: GroupCommunicator>(
    sub: &mut G,
    ck: &SearchCheckpoint,
    store: &Mutex<Option<Vec<u8>>>,
) {
    let bytes = ck.to_bytes();
    sub.work(bytes.len() as u64);
    if sub.rank() == 0 {
        // lint:allow(unwrap): mutex poisoning only follows another panic
        *store.lock().expect("checkpoint store lock") = Some(bytes);
    }
}
