//! Versioned, checksummed snapshots of the EM search state.
//!
//! A [`SearchCheckpoint`] captures everything `run_search`'s rank body
//! needs to resume a search mid-try: the position in the
//! `start_j_list × tries` schedule, the current try's EM state (class
//! parameters, previous log likelihood, cycle count), and the
//! classifications stored so far. Because the parallel search keeps this
//! state bitwise replicated on every rank, one checkpoint describes the
//! whole machine — and resuming from it reproduces the unfaulted run's
//! final classification bit for bit (see `recover.rs`).
//!
//! The wire format is deliberately self-contained: a fixed header (magic,
//! version, payload length, FNV-1a checksum) followed by a flat sequence
//! of little-endian `u64` words, with every `f64` carried as its raw bit
//! pattern (`to_bits`/`from_bits` round-trips exactly — no text
//! round-off). Decoding never panics: truncation, corruption, or a
//! foreign file surface as a typed [`CheckpointError`].

use autoclass::search::Classification;
use mpsim::payload::checksum;

/// First eight bytes of every checkpoint file (`b"PACCKPT1"`).
pub const MAGIC: u64 = u64::from_le_bytes(*b"PACCKPT1");
/// Current format version. Bumped on any layout change; old versions are
/// rejected with [`CheckpointError::BadVersion`] rather than misread.
pub const VERSION: u64 = 1;

/// Header length in bytes: magic, version, payload length, checksum.
const HEADER_LEN: usize = 32;

/// First eight bytes of every checkpoint *shard* (`b"PACSHRD1"`).
pub const SHARD_MAGIC: u64 = u64::from_le_bytes(*b"PACSHRD1");

/// Shard header length in bytes: magic, owner rank, shard count, chunk
/// length, chunk checksum.
const SHARD_HEADER_LEN: usize = 40;

/// Why checkpoint bytes could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Fewer bytes than the fixed header.
    TooShort {
        /// Actual byte count.
        len: usize,
    },
    /// The magic number is wrong — not a checkpoint at all.
    BadMagic {
        /// The first eight bytes, read little-endian.
        found: u64,
    },
    /// A checkpoint, but from an incompatible format version.
    BadVersion {
        /// The version the header declares.
        found: u64,
    },
    /// The header's payload length disagrees with the bytes present.
    LengthMismatch {
        /// Payload bytes actually present.
        len: usize,
        /// Payload bytes the header declares.
        expected: usize,
    },
    /// The payload checksum does not match — the bytes were altered.
    ChecksumMismatch {
        /// Checksum stored in the header.
        expected: u64,
        /// Checksum of the payload as read.
        found: u64,
    },
    /// A checkpoint shard's chunk checksum does not match — unlike
    /// [`CheckpointError::ChecksumMismatch`] this names the shard's owner,
    /// so a promotion supervisor can report *whose* state is damaged.
    ShardCorrupt {
        /// The logical rank that owns the corrupt shard.
        logical_rank: usize,
        /// Checksum stored in the shard header.
        expected: u64,
        /// Checksum of the chunk as read.
        found: u64,
    },
    /// Structurally invalid payload (a field ran off the end, or an
    /// enum-like field held an impossible value).
    Malformed {
        /// Which field failed to decode.
        what: &'static str,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::TooShort { len } => {
                write!(f, "checkpoint too short: {len} bytes, header needs {HEADER_LEN}")
            }
            CheckpointError::BadMagic { found } => {
                write!(f, "bad checkpoint magic {found:#018x} (expected {MAGIC:#018x})")
            }
            CheckpointError::BadVersion { found } => {
                write!(f, "unsupported checkpoint version {found} (expected {VERSION})")
            }
            CheckpointError::LengthMismatch { len, expected } => {
                write!(f, "checkpoint payload is {len} bytes but the header declares {expected}")
            }
            CheckpointError::ChecksumMismatch { expected, found } => write!(
                f,
                "checkpoint checksum mismatch: header says {expected:#018x}, payload hashes to \
                 {found:#018x}"
            ),
            CheckpointError::ShardCorrupt { logical_rank, expected, found } => write!(
                f,
                "checkpoint shard for logical rank {logical_rank} is corrupt: header says \
                 {expected:#018x}, chunk hashes to {found:#018x}"
            ),
            CheckpointError::Malformed { what } => {
                write!(f, "malformed checkpoint payload: bad {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// One stored classification, flattened for the checkpoint payload.
///
/// Carries the [`Classification`] fields verbatim, with the class
/// parameters in their broadcast flat form; rebuilding against the
/// (replicated, deterministic) `Model` restores the original bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct CkptClassification {
    /// The J the try started with.
    pub j_initial: usize,
    /// Final class count (class death may have shrunk J).
    pub j: usize,
    /// `[log_likelihood, complete_ll, complete_marginal, cs_score]`.
    pub approx: [f64; 4],
    /// Log prior density of the final parameters.
    pub log_prior: f64,
    /// EM cycles the try ran.
    pub cycles: usize,
    /// Whether the convergence criterion fired.
    pub converged: bool,
    /// The try's derived RNG seed.
    pub seed: u64,
    /// Flat class parameters (`classes_to_flat` layout).
    pub classes_flat: Vec<f64>,
}

impl CkptClassification {
    /// Flatten a stored classification for the payload.
    pub fn from_classification(c: &Classification) -> Self {
        CkptClassification {
            j_initial: c.j_initial,
            j: c.classes.len(),
            approx: [
                c.approx.log_likelihood,
                c.approx.complete_ll,
                c.approx.complete_marginal,
                c.approx.cs_score,
            ],
            log_prior: c.log_prior,
            cycles: c.cycles,
            converged: c.converged,
            seed: c.seed,
            classes_flat: autoclass::model::classes_to_flat(&c.classes),
        }
    }

    /// Rebuild the full classification against the model (replicated on
    /// every rank, so the restore is identical machine-wide).
    pub fn to_classification(&self, model: &autoclass::model::Model) -> Classification {
        Classification {
            classes: autoclass::model::classes_from_flat(model, self.j, &self.classes_flat),
            j_initial: self.j_initial,
            approx: autoclass::model::Approximation {
                log_likelihood: self.approx[0],
                complete_ll: self.approx[1],
                complete_marginal: self.approx[2],
                cs_score: self.approx[3],
            },
            log_prior: self.log_prior,
            cycles: self.cycles,
            converged: self.converged,
            seed: self.seed,
        }
    }
}

/// A resumable snapshot of the parallel search, taken at an EM cycle
/// boundary (every state below is bitwise replicated across ranks there).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchCheckpoint {
    /// Index into `start_j_list` of the try in progress.
    pub ji: usize,
    /// Restart index within that J.
    pub try_idx: usize,
    /// EM cycles the current try has completed.
    pub cycle: usize,
    /// Current class count (after any class death).
    pub j_current: usize,
    /// The current try's derived RNG seed. Recomputable from the search
    /// config, but stored so a checkpoint is self-describing.
    pub seed: u64,
    /// Previous cycle's log likelihood (the convergence reference;
    /// `-inf` right after init or class death).
    pub prev_ll: f64,
    /// `[log_likelihood, complete_ll, complete_marginal, cs_score]` of the
    /// last completed cycle.
    pub approx: [f64; 4],
    /// EM cycles completed by earlier (finished) tries.
    pub total_cycles: usize,
    /// Current class parameters, flat (`classes_to_flat` layout).
    pub classes_flat: Vec<f64>,
    /// Classifications stored by finished tries, flattened.
    pub best: Vec<CkptClassification>,
}

impl SearchCheckpoint {
    /// Serialize to the versioned, checksummed wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_u64(&mut payload, self.ji as u64);
        put_u64(&mut payload, self.try_idx as u64);
        put_u64(&mut payload, self.cycle as u64);
        put_u64(&mut payload, self.j_current as u64);
        put_u64(&mut payload, self.seed);
        put_f64(&mut payload, self.prev_ll);
        for v in self.approx {
            put_f64(&mut payload, v);
        }
        put_u64(&mut payload, self.total_cycles as u64);
        put_f64s(&mut payload, &self.classes_flat);
        put_u64(&mut payload, self.best.len() as u64);
        for b in &self.best {
            put_u64(&mut payload, b.j_initial as u64);
            put_u64(&mut payload, b.j as u64);
            for v in b.approx {
                put_f64(&mut payload, v);
            }
            put_f64(&mut payload, b.log_prior);
            put_u64(&mut payload, b.cycles as u64);
            put_u64(&mut payload, u64::from(b.converged));
            put_u64(&mut payload, b.seed);
            put_f64s(&mut payload, &b.classes_flat);
        }
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        put_u64(&mut out, MAGIC);
        put_u64(&mut out, VERSION);
        put_u64(&mut out, payload.len() as u64);
        put_u64(&mut out, checksum(&payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Decode and validate checkpoint bytes.
    ///
    /// # Errors
    /// Every way the bytes can be wrong is a distinct [`CheckpointError`];
    /// no input, however mangled, panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < HEADER_LEN {
            return Err(CheckpointError::TooShort { len: bytes.len() });
        }
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.u64("magic")?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic { found: magic });
        }
        let version = r.u64("version")?;
        if version != VERSION {
            return Err(CheckpointError::BadVersion { found: version });
        }
        let declared = r.u64("payload length")? as usize;
        let sum = r.u64("checksum")?;
        let payload = &bytes[HEADER_LEN..];
        if payload.len() != declared {
            return Err(CheckpointError::LengthMismatch { len: payload.len(), expected: declared });
        }
        let found = checksum(payload);
        if found != sum {
            return Err(CheckpointError::ChecksumMismatch { expected: sum, found });
        }
        let mut r = Reader { bytes: payload, pos: 0 };
        let ji = r.u64("ji")? as usize;
        let try_idx = r.u64("try index")? as usize;
        let cycle = r.u64("cycle")? as usize;
        let j_current = r.u64("class count")? as usize;
        let seed = r.u64("seed")?;
        let prev_ll = r.f64("prev_ll")?;
        let mut approx = [0.0; 4];
        for v in &mut approx {
            *v = r.f64("approximation")?;
        }
        let total_cycles = r.u64("total cycles")? as usize;
        let classes_flat = r.f64s("class parameters")?;
        let n_best = r.u64("stored count")? as usize;
        let mut best = Vec::new();
        for _ in 0..n_best {
            let j_initial = r.u64("stored j_initial")? as usize;
            let j = r.u64("stored class count")? as usize;
            let mut approx = [0.0; 4];
            for v in &mut approx {
                *v = r.f64("stored approximation")?;
            }
            let log_prior = r.f64("stored log prior")?;
            let cycles = r.u64("stored cycles")? as usize;
            let converged = match r.u64("stored converged flag")? {
                0 => false,
                1 => true,
                _ => return Err(CheckpointError::Malformed { what: "stored converged flag" }),
            };
            let seed = r.u64("stored seed")?;
            let classes_flat = r.f64s("stored class parameters")?;
            best.push(CkptClassification {
                j_initial,
                j,
                approx,
                log_prior,
                cycles,
                converged,
                seed,
                classes_flat,
            });
        }
        if r.pos != payload.len() {
            return Err(CheckpointError::Malformed { what: "trailing bytes" });
        }
        Ok(SearchCheckpoint {
            ji,
            try_idx,
            cycle,
            j_current,
            seed,
            prev_ll,
            approx,
            total_cycles,
            classes_flat,
            best,
        })
    }
}

/// Split serialized checkpoint bytes into `p` framed shards, one per
/// logical rank — contiguous chunks whose sizes differ by at most one
/// byte. Each shard is independently verifiable: a fixed header (shard
/// magic, owner rank, shard count, chunk length, FNV-1a chunk checksum)
/// followed by the chunk bytes. A promoted spare loads only the culprit's
/// shard; the per-shard checksum turns silent storage corruption into a
/// typed [`CheckpointError::ShardCorrupt`] *naming the owner*, so the
/// supervisor can fall back to a full restart from the intact copy.
///
/// # Panics
/// Panics if `p == 0`.
pub fn to_shards(bytes: &[u8], p: usize) -> Vec<Vec<u8>> {
    assert!(p > 0, "need at least one shard");
    autoclass::data::block_partition(bytes.len(), p)
        .into_iter()
        .enumerate()
        .map(|(rank, range)| {
            let chunk = &bytes[range];
            let mut out = Vec::with_capacity(SHARD_HEADER_LEN + chunk.len());
            put_u64(&mut out, SHARD_MAGIC);
            put_u64(&mut out, rank as u64);
            put_u64(&mut out, p as u64);
            put_u64(&mut out, chunk.len() as u64);
            put_u64(&mut out, checksum(chunk));
            out.extend_from_slice(chunk);
            out
        })
        .collect()
}

/// Deterministically damage one chunk byte of a framed shard — the
/// shard-level fault injector behind [`crate::ShardFault`]. The offset is
/// taken modulo the chunk length and the mask is forced non-zero, so the
/// flip always lands inside the chunk and always changes it. No-op on an
/// empty chunk (there is nothing to damage).
pub fn corrupt_shard(shard: &mut [u8], byte: usize, mask: u8) {
    let chunk_len = shard.len().saturating_sub(SHARD_HEADER_LEN);
    if chunk_len == 0 {
        return;
    }
    shard[SHARD_HEADER_LEN + byte % chunk_len] ^= mask | 1;
}

/// Decode one framed shard into `(owner logical rank, shard count, chunk)`.
///
/// # Errors
/// Truncation, a foreign magic, a length disagreement, an impossible owner
/// rank, and a chunk-checksum mismatch each surface as their own
/// [`CheckpointError`]; corruption names the owner via
/// [`CheckpointError::ShardCorrupt`].
pub fn decode_shard(bytes: &[u8]) -> Result<(usize, usize, Vec<u8>), CheckpointError> {
    if bytes.len() < SHARD_HEADER_LEN {
        return Err(CheckpointError::TooShort { len: bytes.len() });
    }
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.u64("shard magic")?;
    if magic != SHARD_MAGIC {
        return Err(CheckpointError::BadMagic { found: magic });
    }
    let logical_rank = r.u64("shard owner rank")? as usize;
    let total = r.u64("shard count")? as usize;
    let declared = r.u64("shard chunk length")? as usize;
    let sum = r.u64("shard checksum")?;
    if total == 0 || logical_rank >= total {
        return Err(CheckpointError::Malformed { what: "shard owner rank" });
    }
    let chunk = &bytes[SHARD_HEADER_LEN..];
    if chunk.len() != declared {
        return Err(CheckpointError::LengthMismatch { len: chunk.len(), expected: declared });
    }
    let found = checksum(chunk);
    if found != sum {
        return Err(CheckpointError::ShardCorrupt { logical_rank, expected: sum, found });
    }
    Ok((logical_rank, total, chunk.to_vec()))
}

/// Reassemble full checkpoint bytes from the complete shard set, in owner
/// order (shard `i` must belong to logical rank `i`).
///
/// # Errors
/// Propagates per-shard decode errors; a wrong shard count, an
/// out-of-order owner, or an empty set are [`CheckpointError::Malformed`].
pub fn from_shards(shards: &[Vec<u8>]) -> Result<Vec<u8>, CheckpointError> {
    if shards.is_empty() {
        return Err(CheckpointError::Malformed { what: "empty shard set" });
    }
    let mut out = Vec::new();
    for (i, shard) in shards.iter().enumerate() {
        let (rank, total, chunk) = decode_shard(shard)?;
        if total != shards.len() {
            return Err(CheckpointError::Malformed { what: "shard count" });
        }
        if rank != i {
            return Err(CheckpointError::Malformed { what: "shard order" });
        }
        out.extend_from_slice(&chunk);
    }
    Ok(out)
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        put_f64(out, v);
    }
}

/// Bounds-checked little-endian word reader; overruns become
/// [`CheckpointError::Malformed`] naming the field.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u64(&mut self, what: &'static str) -> Result<u64, CheckpointError> {
        let end = self.pos.checked_add(8).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(CheckpointError::Malformed { what });
        };
        let mut w = [0u8; 8];
        w.copy_from_slice(&self.bytes[self.pos..end]);
        self.pos = end;
        Ok(u64::from_le_bytes(w))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn f64s(&mut self, what: &'static str) -> Result<Vec<f64>, CheckpointError> {
        let n = self.u64(what)? as usize;
        // A corrupt length that slipped past the checksum must not drive a
        // huge allocation; the remaining bytes bound the element count.
        if n > (self.bytes.len() - self.pos) / 8 {
            return Err(CheckpointError::Malformed { what });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64(what)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SearchCheckpoint {
        SearchCheckpoint {
            ji: 1,
            try_idx: 2,
            cycle: 7,
            j_current: 3,
            seed: 0xDEAD_BEEF,
            prev_ll: -1234.5678,
            approx: [-1200.0, -1300.0, -1350.5, -1400.25],
            total_cycles: 19,
            classes_flat: vec![1.5, -2.5, f64::NEG_INFINITY, 0.0, 3.25e-300],
            best: vec![CkptClassification {
                j_initial: 4,
                j: 3,
                approx: [-1.0, -2.0, -3.0, -4.0],
                log_prior: -55.5,
                cycles: 12,
                converged: true,
                seed: 42,
                classes_flat: vec![0.125, 7.75],
            }],
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let ck = sample();
        let bytes = ck.to_bytes();
        let back = SearchCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ck);
        // Special values survive as bit patterns, not text.
        assert_eq!(back.classes_flat[2].to_bits(), f64::NEG_INFINITY.to_bits());
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = sample().to_bytes();
        assert_eq!(
            SearchCheckpoint::from_bytes(&bytes[..HEADER_LEN - 1]),
            Err(CheckpointError::TooShort { len: HEADER_LEN - 1 })
        );
        // Cut inside the payload: the declared length no longer matches.
        let cut = &bytes[..bytes.len() - 9];
        assert!(matches!(
            SearchCheckpoint::from_bytes(cut),
            Err(CheckpointError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn any_payload_byte_flip_is_a_checksum_error() {
        let bytes = sample().to_bytes();
        for pos in HEADER_LEN..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(
                matches!(
                    SearchCheckpoint::from_bytes(&bad),
                    Err(CheckpointError::ChecksumMismatch { .. })
                ),
                "flip at {pos} not caught"
            );
        }
    }

    #[test]
    fn foreign_bytes_are_rejected_by_magic_and_version() {
        let mut bytes = sample().to_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            SearchCheckpoint::from_bytes(&bytes),
            Err(CheckpointError::BadMagic { .. })
        ));
        let mut bytes = sample().to_bytes();
        bytes[8] = 99;
        assert_eq!(
            SearchCheckpoint::from_bytes(&bytes),
            Err(CheckpointError::BadVersion { found: 99 })
        );
        assert!(matches!(
            SearchCheckpoint::from_bytes(&[0u8; 4]),
            Err(CheckpointError::TooShort { len: 4 })
        ));
    }

    #[test]
    fn shards_round_trip_for_every_machine_size() {
        let bytes = sample().to_bytes();
        for p in 1..=7 {
            let shards = to_shards(&bytes, p);
            assert_eq!(shards.len(), p);
            let back = from_shards(&shards).unwrap();
            assert_eq!(back, bytes, "p = {p}");
            assert_eq!(SearchCheckpoint::from_bytes(&back).unwrap(), sample());
        }
    }

    #[test]
    fn a_flipped_chunk_byte_names_the_shard_owner() {
        let bytes = sample().to_bytes();
        let shards = to_shards(&bytes, 4);
        for (rank, shard) in shards.iter().enumerate() {
            if shard.len() == SHARD_HEADER_LEN {
                continue; // empty chunk: nothing to flip
            }
            let mut bad = shard.clone();
            let mid = SHARD_HEADER_LEN + (bad.len() - SHARD_HEADER_LEN) / 2;
            bad[mid] ^= 0x04;
            match decode_shard(&bad) {
                Err(CheckpointError::ShardCorrupt { logical_rank, .. }) => {
                    assert_eq!(logical_rank, rank);
                }
                other => panic!("expected ShardCorrupt for rank {rank}, got {other:?}"),
            }
        }
    }

    #[test]
    fn shard_reassembly_rejects_wrong_sets() {
        let bytes = sample().to_bytes();
        let mut shards = to_shards(&bytes, 3);
        shards.swap(0, 1);
        assert_eq!(from_shards(&shards), Err(CheckpointError::Malformed { what: "shard order" }));
        let shards = to_shards(&bytes, 3);
        assert_eq!(
            from_shards(&shards[..2]),
            Err(CheckpointError::Malformed { what: "shard count" })
        );
        assert_eq!(from_shards(&[]), Err(CheckpointError::Malformed { what: "empty shard set" }));
    }

    #[test]
    fn foreign_shard_bytes_are_typed() {
        let bytes = sample().to_bytes();
        let mut shard = to_shards(&bytes, 2).swap_remove(0);
        shard[0] ^= 0xFF;
        assert!(matches!(decode_shard(&shard), Err(CheckpointError::BadMagic { .. })));
        assert!(matches!(
            decode_shard(&[0u8; SHARD_HEADER_LEN - 1]),
            Err(CheckpointError::TooShort { .. })
        ));
        // A full-checkpoint header is not a shard.
        assert!(matches!(decode_shard(&bytes), Err(CheckpointError::BadMagic { .. })));
    }

    #[test]
    fn errors_display_their_coordinates() {
        let e = CheckpointError::ChecksumMismatch { expected: 1, found: 2 };
        let s = e.to_string();
        assert!(s.contains("checksum"), "{s}");
        assert!(
            CheckpointError::Malformed { what: "seed" }.to_string().contains("seed"),
            "field name missing"
        );
    }
}
