//! Fleet-parallel model search: the second parallelism axis.
//!
//! The ordinary search ([`crate::run_search`]) parallelizes *within* one
//! candidate model — all P ranks cooperate on one EM run at a time. This
//! module adds parallelism *across* candidates: the machine is split into
//! G sub-fleets (contiguous rank blocks over disjoint sub-communicators),
//! each running an independent sub-search that draws candidates (J values
//! × restart tries) from the shared schedule.
//!
//! The search proceeds in BSP rounds. Each round a fleet runs up to
//! [`FleetConfig::round_cycles`] EM cycles of its current candidate on its
//! own sub-communicator (`"fleet"` phase), then all ranks join one small
//! world allreduce of per-fleet report slots (`"dedup"` phase). Because
//! only the fleet leader writes its slot and every other contribution is
//! `+0.0` — a bitwise identity for IEEE doubles away from `-0.0` — the
//! exchange is bit-exact transport regardless of the machine's allreduce
//! algorithm. The replicated reports drive three decisions every rank
//! makes identically, with no further coordination:
//!
//! * **Duplicate elimination** — a fleet whose running candidate matches
//!   the convergence fingerprint (class count, log likelihood, heaviest
//!   weights) of an earlier-scheduled finished candidate abandons it
//!   mid-flight instead of burning cycles converging into the same basin.
//! * **Work stealing** — a fleet whose queue runs dry takes the tail
//!   candidate of the largest remaining queue, so an unlucky fleet of
//!   slow-converging candidates doesn't serialize the search.
//! * **Termination** — the round loop ends when every candidate is done.
//!
//! The final `"consensus"` stage gathers each fleet's completed
//! candidates to rank 0 over the world communicator, replays the *serial*
//! duplicate-elimination chain in schedule order, score-sorts, and
//! broadcasts the surviving list back, so every rank returns the identical
//! result. Given the same candidate set (duplicate abandonment disabled)
//! the selected model is **bit-identical** to the serial search's on a
//! machine of one fleet's size — see the equivalence tests below.
//! [`Consensus::Ensemble`] additionally has the top models vote out a
//! consensus labeling with an agreement score.

use std::collections::VecDeque;
use std::sync::Mutex;

use autoclass::data::{block_partition, Dataset};
use autoclass::model::{
    classes_from_flat_into, classes_to_flat, converged, derive_seed, log_param_prior,
    update_wts_into, Approximation, ClassParams, CycleWorkspace, EStepScratch, Model, WtsMatrix,
};
use autoclass::search::{apply_class_death, is_duplicate, Classification};
use mpsim::{
    run_spmd, Communicator, GroupCommunicator, MachineSpec, ReduceOp, SimError, SimOptions,
    RECOVERY_PHASE,
};
use shmcomm::{run_native, NativeOptions};

use crate::config::{Consensus, FleetConfig, FtConfig, ParallelConfig, RecoveryPolicy};
use crate::error::RunError;
use crate::recover::fault_culprit;
use crate::run::{outcome_from, ParallelOutcome};

/// Counters of the fleet scheduler, identical on every rank.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Number of fleets the search actually ran with (after clamping).
    pub groups: usize,
    /// BSP rounds executed.
    pub rounds: usize,
    /// Candidates completed (converged, cycle-capped, or abandoned).
    pub candidates: usize,
    /// Candidates abandoned mid-flight as cross-fleet duplicates.
    pub dedup_hits: usize,
    /// EM cycles the abandoned candidates would still have been entitled
    /// to (`max_cycles − cycles run`): an upper bound on the work saved.
    pub dedup_saved_cycles: usize,
    /// Queued candidates stolen by an idle fleet.
    pub steals: usize,
    /// The ensemble summary, when [`Consensus::Ensemble`] was configured
    /// and at least two models were retained.
    pub ensemble: Option<EnsembleSummary>,
}

/// Result of the ensemble consensus vote.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleSummary {
    /// Models that voted (the configured count clamped to the retained
    /// list).
    pub voters: usize,
    /// Mean fraction of voters agreeing with the per-item majority label,
    /// in `[1/voters, 1.0]`.
    pub agreement: f64,
    /// FNV-1a hash of the consensus labeling (items in dataset order) —
    /// a compact cross-backend comparison handle.
    pub label_hash: u64,
}

/// Result of a fleet-parallel search.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The search result, shaped exactly like the serial search's.
    pub outcome: ParallelOutcome,
    /// The fleet scheduler's counters.
    pub fleet: FleetStats,
}

/// Result of a fault-tolerant fleet search: [`FleetOutcome`] plus the
/// supervisor's recovery record (same shape as [`crate::FtOutcome`]).
#[derive(Debug, Clone)]
pub struct FleetFtOutcome {
    /// The search result.
    pub outcome: FleetOutcome,
    /// Engine runs launched, including the successful one (1 = no fault).
    pub attempts: usize,
    /// The typed fault each failed attempt died with, in order.
    pub faults: Vec<SimError>,
    /// Whether the final attempt ran with the culprit rank excluded.
    pub shrunk: bool,
    /// Ranks that computed the final result.
    pub survivors: usize,
    /// Virtual seconds spent rebuilding after a shrink (max over ranks of
    /// the `"recovery"` phase bucket). Zero when no shrink happened.
    pub recovery_time: f64,
    /// Spare slots promoted into failed logical ranks under
    /// [`RecoveryPolicy::PromoteSpare`]; each promotion preserves `P`, so
    /// every fleet keeps its exact membership and data partition.
    pub promotions: usize,
}

/// Which spare slot serves a failed rank. Spares are dealt round-robin
/// over the fleets — spare `k` is attached to fleet `k mod G` — and a
/// culprit consumes its *own fleet's* unused spare first (keeping the
/// warm slot topologically near the fleet it backs), falling back to the
/// lowest-numbered unused spare of any fleet. `None` when the pool is
/// exhausted.
pub(crate) fn spare_for(culprit: usize, p: usize, groups: usize, used: &[bool]) -> Option<usize> {
    let g = groups.clamp(1, p.max(1));
    let fleet = block_partition(p, g).iter().position(|r| r.contains(&culprit)).unwrap_or(0);
    used.iter()
        .enumerate()
        .filter(|&(_, &taken)| !taken)
        .map(|(k, _)| k)
        .min_by_key(|&k| (usize::from(k % g != fleet), k))
}

/// Convergence fingerprint of a completed candidate, broadcast to every
/// fleet through the round exchange. Deliberately small: class count, the
/// converged log likelihood, and the four heaviest class weights — the
/// same features [`autoclass::search::is_duplicate`] leads with.
#[derive(Debug, Clone, Copy)]
struct Fingerprint {
    idx: usize,
    n_classes: usize,
    ll: f64,
    weights: [f64; 4],
}

/// Per-fleet report slot in the round exchange:
/// `[idx+1, converged, abandoned, cycles, n_classes, ll, w0, w1, w2, w3]`
/// (all zeros when the fleet finished nothing this round).
const SLOT_LEN: usize = 10;

/// A candidate suspended across rounds on the ranks of its fleet.
struct Running {
    idx: usize,
    j_initial: usize,
    seed: u64,
    classes: Vec<ClassParams>,
    prev_ll: f64,
    cycles: usize,
    approx: Approximation,
}

/// How a candidate's burst ended this round.
#[derive(Clone, Copy, PartialEq)]
enum BurstEnd {
    /// Budget exhausted; the candidate stays suspended.
    Suspended,
    /// Converged (or hit the cycle cap with `false`).
    Finished { converged: bool },
    /// Matched an earlier candidate's fingerprint and was abandoned.
    Abandoned,
}

/// Round-boundary snapshot of the replicated scheduler state plus every
/// fleet's retained list, held by the fault-tolerant supervisor. Running
/// candidates are re-queued at the front: on resume they restart from
/// cycle 0, which reproduces the same converged numbers (the EM is
/// deterministic in the candidate's seed).
#[derive(Debug, Clone, Default)]
pub(crate) struct FleetCheckpoint {
    queues: Vec<Vec<usize>>,
    fingerprints: Vec<(usize, usize, f64, [f64; 4])>,
    total_cycles: usize,
    rounds: usize,
    candidates: usize,
    dedup_hits: usize,
    dedup_saved_cycles: usize,
    steals: usize,
    /// Per fleet, the serialized retained classifications (the same
    /// record format the consensus gather uses).
    retained_raw: Vec<Vec<f64>>,
}

fn neg_inf_approx() -> Approximation {
    Approximation {
        log_likelihood: f64::NEG_INFINITY,
        complete_ll: f64::NEG_INFINITY,
        complete_marginal: f64::NEG_INFINITY,
        cs_score: f64::NEG_INFINITY,
    }
}

/// Append one classification as a self-describing record:
/// `[body_len, idx, j_initial, j, cycles, converged, seed_hi, seed_lo,
/// log_prior, approx×4, flat parameters…]`. The parameters travel as
/// their exact bit patterns (`classes_to_flat` round-trips bitwise), so
/// decoding on another rank reconstructs the classification exactly.
fn push_record(out: &mut Vec<f64>, idx: usize, c: &Classification) {
    let flat = classes_to_flat(&c.classes);
    out.push((12 + flat.len()) as f64);
    out.push(idx as f64);
    out.push(c.j_initial as f64);
    out.push(c.classes.len() as f64);
    out.push(c.cycles as f64);
    out.push(f64::from(u8::from(c.converged)));
    out.push((c.seed >> 32) as f64);
    out.push((c.seed & 0xFFFF_FFFF) as f64);
    out.push(c.log_prior);
    out.push(c.approx.log_likelihood);
    out.push(c.approx.complete_ll);
    out.push(c.approx.complete_marginal);
    out.push(c.approx.cs_score);
    out.extend_from_slice(&flat);
}

fn serialize_retained(retained: &[(usize, Classification)]) -> Vec<f64> {
    let mut out = Vec::new();
    for (idx, c) in retained {
        push_record(&mut out, *idx, c);
    }
    out
}

/// A wire flag: slot and record fields carry exactly +0.0 or a small
/// positive integer written as `x as f64`, so the bit pattern of zero is
/// the exact discriminant (no tolerance needed or wanted).
fn wire_flag(x: f64) -> bool {
    x.to_bits() != 0
}

/// Decode a concatenation of [`push_record`] records. The model supplies
/// only the parameter layout (schema-derived), so any rank's model
/// instance decodes any fleet's records.
fn parse_records(buf: &[f64], model: &Model) -> Vec<(usize, Classification)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < buf.len() {
        let body = buf[i] as usize;
        i += 1;
        if body < 12 || i + body > buf.len() {
            break; // malformed tail; decode what framed cleanly
        }
        let rec = &buf[i..i + body];
        i += body;
        let j = rec[2] as usize;
        let mut classes = Vec::new();
        classes_from_flat_into(model, j, &rec[12..], &mut classes);
        out.push((
            rec[0] as usize,
            Classification {
                classes,
                j_initial: rec[1] as usize,
                approx: Approximation {
                    log_likelihood: rec[8],
                    complete_ll: rec[9],
                    complete_marginal: rec[10],
                    cs_score: rec[11],
                },
                log_prior: rec[7],
                cycles: rec[3] as usize,
                converged: wire_flag(rec[4]),
                seed: ((rec[5] as u64) << 32) | (rec[6] as u64),
            },
        ));
    }
    out
}

/// Does the running candidate look like it is converging into `fp`'s
/// basin? Same features and tolerances as the sequential
/// [`is_duplicate`]: class count, relative log likelihood, heaviest
/// weights.
fn matches_fingerprint(fp: &Fingerprint, run: &Running) -> bool {
    if fp.n_classes != run.classes.len() {
        return false;
    }
    let ll = run.approx.log_likelihood;
    if !ll.is_finite() || (fp.ll - ll).abs() > 1e-4 * ll.abs().max(1.0) {
        return false;
    }
    let mut w: Vec<f64> = run.classes.iter().map(|c| c.weight).collect();
    w.sort_by(|a, b| b.total_cmp(a));
    for (k, fw) in fp.weights.iter().enumerate() {
        let rw = w.get(k).copied().unwrap_or(0.0);
        if (fw - rw).abs() > 0.01 * rw.abs().max(1.0) {
            return false;
        }
    }
    true
}

fn top4_weights(classes: &[ClassParams]) -> [f64; 4] {
    let mut w: Vec<f64> = classes.iter().map(|c| c.weight).collect();
    w.sort_by(|a, b| b.total_cmp(a));
    let mut out = [0.0; 4];
    for (k, slot) in out.iter_mut().enumerate() {
        *slot = w.get(k).copied().unwrap_or(0.0);
    }
    out
}

/// The fleet search over a (possibly already shrunk) world group. `sub`
/// is the communicator of every participating rank; `orig_p` is the
/// unshrunk machine size, so fleet membership stays anchored to the
/// original contiguous rank blocks — after a shrink only the culprit's
/// fleet loses a member, the others keep their exact membership.
#[allow(clippy::too_many_arguments)]
fn fleet_core<G: GroupCommunicator>(
    sub: &mut G,
    orig_p: usize,
    data: &Dataset,
    config: &ParallelConfig,
    fc: &FleetConfig,
    ft: Option<(&FtConfig, &Mutex<Option<FleetCheckpoint>>)>,
    resume: Option<&FleetCheckpoint>,
) -> (Vec<Classification>, usize, FleetStats) {
    let sc = &config.search;
    let g = fc.groups.clamp(1, sub.size());
    let round_cycles = fc.round_cycles.max(1);
    let blocks = block_partition(orig_p, g);
    let my_world = sub.members()[sub.rank()];
    let my_fleet = blocks
        .iter()
        .position(|b| b.contains(&my_world))
        // lint:allow(unwrap): the blocks partition 0..orig_p exhaustively
        .expect("every rank belongs to one fleet block");
    // Group rank of each fleet's leader (lowest member), and each fleet's
    // surviving size. A fleet can be empty after a shrink; its queue is
    // then drained by the other fleets' stealing.
    let leader: Vec<Option<usize>> =
        (0..g).map(|f| sub.members().iter().position(|r| blocks[f].contains(r))).collect();
    let fleet_sizes: Vec<usize> =
        (0..g).map(|f| sub.members().iter().filter(|r| blocks[f].contains(r)).count()).collect();

    // ---- Per-fleet setup: partition, model --------------------------
    let mut fleet = sub.split(my_fleet as u32);
    let parts = block_partition(data.len(), fleet.size());
    let part = parts[fleet.rank()].clone();
    let view = data.view(part.start, part.end);
    let model = crate::driver::sub_build_model(&mut fleet, &view, &config.correlated_blocks);
    drop(fleet);

    // ---- Replicated scheduler state ---------------------------------
    let total_k = sc.start_j_list.len() * sc.tries_per_j;
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); g];
    let mut fingerprints: Vec<Fingerprint> = Vec::new();
    let mut total_cycles = 0usize;
    let mut rounds = 0usize;
    let mut candidates = 0usize;
    let mut dedup_hits = 0usize;
    let mut dedup_saved_cycles = 0usize;
    let mut steals = 0usize;
    let mut my_retained: Vec<(usize, Classification)> = Vec::new();
    match resume {
        Some(ck) => {
            for (f, q) in ck.queues.iter().enumerate() {
                if f < g {
                    queues[f] = q.iter().copied().collect();
                }
            }
            fingerprints = ck
                .fingerprints
                .iter()
                .map(|&(idx, n_classes, ll, weights)| Fingerprint { idx, n_classes, ll, weights })
                .collect();
            total_cycles = ck.total_cycles;
            rounds = ck.rounds;
            candidates = ck.candidates;
            dedup_hits = ck.dedup_hits;
            dedup_saved_cycles = ck.dedup_saved_cycles;
            steals = ck.steals;
            if let Some(raw) = ck.retained_raw.get(my_fleet) {
                my_retained = parse_records(raw, &model);
            }
        }
        None => {
            // Deal the schedule round-robin so every fleet starts with a
            // mix of small and large J.
            for k in 0..total_k {
                queues[k % g].push_back(k);
            }
        }
    }

    let mut in_progress: Vec<Option<usize>> = vec![None; g];
    let mut my_running: Option<Running> = None;
    let mut ws = CycleWorkspace::new();
    let mut rounds_since_ckpt = 0usize;

    loop {
        // ---- Assignment + stealing (replicated decision) ------------
        for f in 0..g {
            if fleet_sizes[f] == 0 || in_progress[f].is_some() {
                continue;
            }
            if let Some(k) = queues[f].pop_front() {
                in_progress[f] = Some(k);
                continue;
            }
            // Steal the tail of the largest queue (ties: lowest donor
            // index) — the tail is the donor's farthest-out candidate.
            let donor = (0..g)
                .filter(|&d| d != f && !queues[d].is_empty())
                .max_by_key(|&d| (queues[d].len(), std::cmp::Reverse(d)));
            if let Some(d) = donor {
                if let Some(k) = queues[d].pop_back() {
                    in_progress[f] = Some(k);
                    steals += 1;
                }
            }
        }
        if in_progress.iter().all(Option::is_none) {
            break; // queues drained and every fleet idle: search done
        }
        rounds += 1;

        // ---- EM burst on my fleet's sub-communicator ----------------
        let mut end: Option<BurstEnd> = None;
        sub.enter_phase("fleet");
        {
            let mut fleet = sub.split(my_fleet as u32);
            if let Some(k) = in_progress[my_fleet] {
                if my_running.is_none() {
                    let ji = k / sc.tries_per_j;
                    let j = sc.start_j_list[ji];
                    let seed = derive_seed(sc.seed, k as u64);
                    let mut classes = Vec::new();
                    crate::driver::sub_init_classes(
                        &mut fleet,
                        &model,
                        &view,
                        j,
                        seed,
                        &mut classes,
                    );
                    my_running = Some(Running {
                        idx: k,
                        j_initial: j,
                        seed,
                        classes,
                        prev_ll: f64::NEG_INFINITY,
                        cycles: 0,
                        approx: neg_inf_approx(),
                    });
                }
                // lint:allow(unwrap): installed above when absent
                let run = my_running.as_mut().expect("running candidate installed");
                let mut burst = 0usize;
                while burst < round_cycles && run.cycles < sc.max_cycles {
                    // Duplicate probe: earlier-scheduled converged
                    // candidates only, so the abandonment relation is
                    // acyclic and schedule-deterministic.
                    if fc.dedup_every > 0
                        && run.cycles > 0
                        && run.cycles.is_multiple_of(fc.dedup_every)
                        && fingerprints
                            .iter()
                            .any(|fp| fp.idx < run.idx && matches_fingerprint(fp, run))
                    {
                        end = Some(BurstEnd::Abandoned);
                        break;
                    }
                    let a = crate::driver::sub_base_cycle(
                        &mut fleet,
                        &model,
                        &view,
                        &mut run.classes,
                        &mut ws,
                    );
                    run.approx = a;
                    run.cycles += 1;
                    burst += 1;
                    if apply_class_death(&mut run.classes, sc.min_class_weight) {
                        run.prev_ll = f64::NEG_INFINITY;
                        continue;
                    }
                    if converged(run.prev_ll, a.log_likelihood, sc.rel_delta_ll) {
                        end = Some(BurstEnd::Finished { converged: true });
                        break;
                    }
                    run.prev_ll = a.log_likelihood;
                }
                if end.is_none() {
                    end = Some(if run.cycles >= sc.max_cycles {
                        BurstEnd::Finished { converged: false }
                    } else {
                        BurstEnd::Suspended
                    });
                }
            }
        }
        sub.exit_phase();

        // ---- Finalize a completed candidate locally -----------------
        // (slot := what the fleet leader will publish this round)
        let mut slot = [0.0; SLOT_LEN];
        match end {
            Some(BurstEnd::Finished { converged: did_converge }) => {
                // lint:allow(unwrap): Finished is only set while running
                let run = my_running.take().expect("finished candidate was running");
                let mut classes = run.classes;
                classes.sort_by(|a, b| b.weight.total_cmp(&a.weight));
                let log_prior = log_param_prior(&model, &classes);
                let c = Classification {
                    classes,
                    j_initial: run.j_initial,
                    approx: run.approx,
                    log_prior,
                    cycles: run.cycles,
                    converged: did_converge,
                    seed: run.seed,
                };
                slot = [
                    (run.idx + 1) as f64,
                    f64::from(u8::from(did_converge)),
                    0.0,
                    run.cycles as f64,
                    c.classes.len() as f64,
                    c.approx.log_likelihood,
                    0.0,
                    0.0,
                    0.0,
                    0.0,
                ];
                slot[6..10].copy_from_slice(&top4_weights(&c.classes));
                my_retained.push((run.idx, c));
            }
            Some(BurstEnd::Abandoned) => {
                // lint:allow(unwrap): Abandoned is only set while running
                let run = my_running.take().expect("abandoned candidate was running");
                slot[0] = (run.idx + 1) as f64;
                slot[2] = 1.0;
                slot[3] = run.cycles as f64;
            }
            Some(BurstEnd::Suspended) | None => {}
        }

        // ---- Round exchange: one world allreduce of leader slots ----
        // Only the fleet leader writes; everyone else contributes +0.0,
        // which is a bitwise identity, so the combined buffer equals the
        // leaders' bits whatever the allreduce algorithm.
        sub.enter_phase("dedup");
        let mut slots = vec![0.0; g * SLOT_LEN];
        if leader[my_fleet] == Some(sub.rank()) {
            slots[my_fleet * SLOT_LEN..(my_fleet + 1) * SLOT_LEN].copy_from_slice(&slot);
        }
        // lint:allow(blocking-collective): one batched slot exchange per BSP round IS the protocol
        sub.allreduce_f64s(&mut slots, ReduceOp::Sum);
        for f in 0..g {
            let s = &slots[f * SLOT_LEN..(f + 1) * SLOT_LEN];
            if !wire_flag(s[0]) {
                continue;
            }
            let idx = s[0] as usize - 1;
            in_progress[f] = None;
            candidates += 1;
            total_cycles += s[3] as usize;
            if wire_flag(s[2]) {
                dedup_hits += 1;
                dedup_saved_cycles += sc.max_cycles.saturating_sub(s[3] as usize);
            } else if wire_flag(s[1]) {
                fingerprints.push(Fingerprint {
                    idx,
                    n_classes: s[4] as usize,
                    ll: s[5],
                    weights: [s[6], s[7], s[8], s[9]],
                });
            }
        }
        sub.exit_phase();

        // ---- Round-boundary checkpoint (fault-tolerant runs only) ---
        rounds_since_ckpt += 1;
        if let Some((ftc, store)) = ft {
            if ftc.checkpoint_every > 0 && rounds_since_ckpt >= ftc.checkpoint_every {
                rounds_since_ckpt = 0;
                publish_fleet_checkpoint(
                    sub,
                    store,
                    &queues,
                    &in_progress,
                    &fingerprints,
                    &my_retained,
                    my_fleet,
                    leader[my_fleet] == Some(sub.rank()),
                    g,
                    &FleetCounters {
                        total_cycles,
                        rounds,
                        candidates,
                        dedup_hits,
                        dedup_saved_cycles,
                        steals,
                    },
                );
            }
        }
    }

    // ---- Consensus: gather, replay serial dedup, broadcast back -----
    sub.enter_phase("consensus");
    let payload = if leader[my_fleet] == Some(sub.rank()) {
        serialize_retained(&my_retained)
    } else {
        Vec::new()
    };
    sub.work(8 * payload.len() as u64);
    let gathered = sub.gather_f64s(0, &payload);
    let final_buf: Vec<f64> = if let Some(buf) = gathered {
        let mut cands = parse_records(&buf, &model);
        cands.sort_by_key(|(idx, _)| *idx);
        // Replay the sequential search's duplicate-elimination chain in
        // schedule order: with abandonment disabled this retains exactly
        // the classifications the serial search would, bit for bit.
        let mut all: Vec<Classification> = Vec::new();
        for (_, c) in cands {
            if !all.iter().any(|existing| is_duplicate(existing, &c)) {
                all.push(c);
            }
        }
        all.sort_by(|a, b| b.score().total_cmp(&a.score()));
        all.truncate(sc.max_stored);
        let mut out = Vec::new();
        for (i, c) in all.iter().enumerate() {
            push_record(&mut out, i, c);
        }
        out
    } else {
        Vec::new()
    };
    let mut len = [final_buf.len() as f64];
    sub.broadcast_f64s(0, &mut len);
    let mut buf = final_buf;
    buf.resize(len[0] as usize, 0.0);
    sub.broadcast_f64s(0, &mut buf);
    let all: Vec<Classification> =
        parse_records(&buf, &model).into_iter().map(|(_, c)| c).collect();

    let ensemble = match fc.consensus {
        Consensus::Ensemble { voters } if voters >= 2 && all.len() >= 2 => {
            Some(ensemble_stage(sub, data, &model, &all, voters))
        }
        _ => None,
    };
    sub.exit_phase();

    let stats = FleetStats {
        groups: g,
        rounds,
        candidates,
        dedup_hits,
        dedup_saved_cycles,
        steals,
        ensemble,
    };
    (all, total_cycles, stats)
}

/// The scheduler counters, bundled to keep the checkpoint call readable.
struct FleetCounters {
    total_cycles: usize,
    rounds: usize,
    candidates: usize,
    dedup_hits: usize,
    dedup_saved_cycles: usize,
    steals: usize,
}

/// Snapshot the replicated scheduler state plus every fleet's retained
/// list into the supervisor's store: leaders contribute their serialized
/// lists through one world gather, the root assembles and publishes.
#[allow(clippy::too_many_arguments)]
fn publish_fleet_checkpoint<G: GroupCommunicator>(
    sub: &mut G,
    store: &Mutex<Option<FleetCheckpoint>>,
    queues: &[VecDeque<usize>],
    in_progress: &[Option<usize>],
    fingerprints: &[Fingerprint],
    my_retained: &[(usize, Classification)],
    my_fleet: usize,
    is_leader: bool,
    g: usize,
    counters: &FleetCounters,
) {
    sub.enter_phase("checkpoint");
    let mut payload = Vec::new();
    if is_leader {
        let records = serialize_retained(my_retained);
        payload.push(my_fleet as f64);
        payload.push(records.len() as f64);
        payload.extend_from_slice(&records);
    }
    sub.work(8 * payload.len() as u64);
    if let Some(buf) = sub.gather_f64s(0, &payload) {
        let mut retained_raw: Vec<Vec<f64>> = vec![Vec::new(); g];
        let mut i = 0usize;
        while i + 2 <= buf.len() {
            let f = buf[i] as usize;
            let n = buf[i + 1] as usize;
            i += 2;
            if f < g && i + n <= buf.len() {
                retained_raw[f] = buf[i..i + n].to_vec();
            }
            i += n;
        }
        // Running candidates restart from cycle 0 on resume: re-queue
        // them at the front of their fleet's queue.
        let mut q: Vec<Vec<usize>> = queues.iter().map(|q| q.iter().copied().collect()).collect();
        for (f, ip) in in_progress.iter().enumerate() {
            if let Some(k) = ip {
                q[f].insert(0, *k);
            }
        }
        let ck = FleetCheckpoint {
            queues: q,
            fingerprints: fingerprints
                .iter()
                .map(|fp| (fp.idx, fp.n_classes, fp.ll, fp.weights))
                .collect(),
            total_cycles: counters.total_cycles,
            rounds: counters.rounds,
            candidates: counters.candidates,
            dedup_hits: counters.dedup_hits,
            dedup_saved_cycles: counters.dedup_saved_cycles,
            steals: counters.steals,
            retained_raw,
        };
        // lint:allow(unwrap): mutex poisoning only follows another panic
        *store.lock().expect("fleet checkpoint store lock") = Some(ck);
    }
    sub.exit_phase();
}

/// The ensemble consensus vote: the top `voters` models each label every
/// item (over a fresh world-wide block partition), labels are aligned to
/// the best model's classes through allreduced confusion matrices, and a
/// per-item majority vote yields the consensus labeling. Every rank
/// computes the identical alignment (the confusion counts are exact
/// integer sums); the labeling hash travels root → all so the summary is
/// replicated.
fn ensemble_stage<G: GroupCommunicator>(
    sub: &mut G,
    data: &Dataset,
    model: &Model,
    all: &[Classification],
    voters: usize,
) -> EnsembleSummary {
    let v = voters.min(all.len());
    let parts = block_partition(data.len(), sub.size());
    let part = parts[sub.rank()].clone();
    let view = data.view(part.start, part.end);
    let n_local = view.len();

    // Per-voter hard labels for the local block.
    let mut wts = WtsMatrix::default();
    let mut scratch = EStepScratch::default();
    let mut labels: Vec<Vec<usize>> = Vec::with_capacity(v);
    for c in all.iter().take(v) {
        let e = update_wts_into(model, &view, &c.classes, &mut wts, &mut scratch);
        sub.work(e.ops);
        let lab: Vec<usize> = (0..n_local)
            .map(|i| {
                let w = wts.item_weights(i);
                let mut best = 0usize;
                for (ci, &wc) in w.iter().enumerate() {
                    if wc > w[best] {
                        best = ci;
                    }
                }
                best
            })
            .collect();
        labels.push(lab);
    }

    // Align every voter to voter 0 by a greedy match on the global
    // confusion matrix (largest co-occurrence first).
    let j0 = all[0].classes.len();
    let mut max_label = j0;
    for vi in 1..v {
        let jv = all[vi].classes.len();
        let mut conf = vec![0.0; j0 * jv];
        for i in 0..n_local {
            conf[labels[0][i] * jv + labels[vi][i]] += 1.0;
        }
        // lint:allow(blocking-collective): one whole confusion matrix per voter pair, already batched
        sub.allreduce_f64s(&mut conf, ReduceOp::Sum);
        let map = greedy_align(&conf, j0, jv, &mut max_label);
        for l in &mut labels[vi] {
            *l = map[*l];
        }
    }

    // Majority vote with the lowest label winning ties; agreement is the
    // mean fraction of voters on the winning label.
    let mut counts = vec![0usize; max_label];
    let mut agree_local = 0.0f64;
    let winners: Vec<f64> = (0..n_local)
        .map(|i| {
            counts.iter_mut().for_each(|c| *c = 0);
            for lab in &labels {
                counts[lab[i]] += 1;
            }
            let mut win = 0usize;
            for (l, &c) in counts.iter().enumerate() {
                if c > counts[win] {
                    win = l;
                }
            }
            agree_local += counts[win] as f64 / v as f64;
            win as f64
        })
        .collect();
    let agreement = sub.allreduce_scalar(agree_local, ReduceOp::Sum) / data.len().max(1) as f64;

    // Hash the full labeling on the root and replicate the digest.
    let gathered = sub.gather_f64s(0, &winners);
    let mut hbuf = [0.0f64; 2];
    if let Some(lab) = gathered {
        let bytes: Vec<u8> = lab.iter().flat_map(|l| (*l as u64).to_le_bytes()).collect();
        let h = mpsim::payload::checksum(&bytes);
        hbuf = [(h >> 32) as f64, (h & 0xFFFF_FFFF) as f64];
    }
    sub.broadcast_f64s(0, &mut hbuf);
    let label_hash = ((hbuf[0] as u64) << 32) | (hbuf[1] as u64);
    EnsembleSummary { voters: v, agreement, label_hash }
}

/// Greedy confusion-matrix alignment: repeatedly map the (row, col) pair
/// with the largest count (ties: lowest row, then lowest col), then
/// strike both. Unmatched columns get fresh labels past the reference
/// model's range.
fn greedy_align(conf: &[f64], j0: usize, jv: usize, max_label: &mut usize) -> Vec<usize> {
    let mut map = vec![usize::MAX; jv];
    let mut row_used = vec![false; j0];
    let mut col_used = vec![false; jv];
    for _ in 0..j0.min(jv) {
        let mut best: Option<(usize, usize)> = None;
        for a in 0..j0 {
            if row_used[a] {
                continue;
            }
            for b in 0..jv {
                if col_used[b] {
                    continue;
                }
                if best.is_none_or(|(ba, bb)| conf[a * jv + b] > conf[ba * jv + bb]) {
                    best = Some((a, b));
                }
            }
        }
        let Some((a, b)) = best else { break };
        map[b] = a;
        row_used[a] = true;
        col_used[b] = true;
    }
    for m in &mut map {
        if *m == usize::MAX {
            *m = *max_label;
            *max_label += 1;
        }
    }
    *max_label = (*max_label).max(j0);
    map
}

/// The world rank body of the plain (non-fault-tolerant) fleet search:
/// wrap the whole machine in a single group (so the fleet splits are the
/// nested splits both backends implement identically) and run the core.
fn fleet_rank_body<C: Communicator>(
    comm: &mut C,
    data: &Dataset,
    config: &ParallelConfig,
    fc: &FleetConfig,
) -> (Vec<Classification>, usize, FleetStats) {
    comm.enter_phase("search");
    let p = comm.size();
    let mut sub = comm.split(0);
    let r = fleet_core(&mut sub, p, data, config, fc, None, None);
    drop(sub);
    comm.exit_phase();
    r
}

/// Run the fleet-parallel model search on the given simulated machine.
///
/// With [`FleetConfig::dedup_every`] `= 0` and fleets whose size is a
/// power of two, the selected model is bit-identical to
/// [`crate::run_search`] on a machine of one fleet's size (fused
/// exchange, recursive-doubling allreduce) — the fleets change *where*
/// candidates run, not their numbers.
///
/// # Errors
/// Same contract as [`crate::run_search`].
pub fn run_search_fleet(
    data: &Dataset,
    machine: &MachineSpec,
    config: &ParallelConfig,
    fc: &FleetConfig,
) -> Result<FleetOutcome, RunError> {
    run_search_fleet_with(data, machine, config, fc, &SimOptions::default())
}

/// [`run_search_fleet`] with explicit engine options.
///
/// # Errors
/// Same contract as [`crate::run_search`].
pub fn run_search_fleet_with(
    data: &Dataset,
    machine: &MachineSpec,
    config: &ParallelConfig,
    fc: &FleetConfig,
    opts: &SimOptions,
) -> Result<FleetOutcome, RunError> {
    let out = run_spmd(machine, opts, |comm| fleet_rank_body(comm, data, config, fc))?;
    let Some((all, cycles, fleet)) = out.per_rank.into_iter().next() else {
        return Err(RunError::EmptySearch);
    };
    let outcome = outcome_from(all, cycles, out.elapsed, out.ranks, out.stats)?;
    Ok(FleetOutcome { outcome, fleet })
}

/// [`run_search_fleet`] on real cores: same rank body, wall-clock time,
/// bitwise-identical classifications.
///
/// # Errors
/// Same contract as [`crate::run_search_native`].
pub fn run_search_fleet_native(
    data: &Dataset,
    machine: &MachineSpec,
    config: &ParallelConfig,
    fc: &FleetConfig,
    opts: &NativeOptions,
) -> Result<FleetOutcome, RunError> {
    let out = run_native(machine, opts, |comm| fleet_rank_body(comm, data, config, fc))?;
    let Some((all, cycles, fleet)) = out.per_rank.into_iter().next() else {
        return Err(RunError::EmptySearch);
    };
    let outcome = outcome_from(all, cycles, out.elapsed, out.ranks, out.stats)?;
    Ok(FleetOutcome { outcome, fleet })
}

/// The post-shrink fleet rank body: the culprit secedes, the survivors
/// rebuild a world group and run the fleet search on it. Fleet blocks
/// stay anchored to the original ranks (`orig_p`), so only the
/// culprit's fleet shrinks. Returns `None` on the excluded rank.
#[allow(clippy::too_many_arguments)]
fn shrunk_fleet_rank_body<C: Communicator>(
    comm: &mut C,
    orig_p: usize,
    data: &Dataset,
    config: &ParallelConfig,
    fc: &FleetConfig,
    culprit: usize,
    ft: (&FtConfig, &Mutex<Option<FleetCheckpoint>>),
    resume: Option<&FleetCheckpoint>,
) -> Option<(Vec<Classification>, usize, FleetStats)> {
    comm.enter_phase(RECOVERY_PHASE);
    let secede = comm.rank() == culprit;
    let mut sub = comm.split(u32::from(secede));
    if secede {
        sub.exit_phase();
        return None;
    }
    sub.exit_phase();
    sub.enter_phase("search");
    let r = fleet_core(&mut sub, orig_p, data, config, fc, Some(ft), resume);
    sub.exit_phase();
    Some(r)
}

/// Run the fleet search with checkpoint/restart supervision. The
/// checkpoint granularity is the BSP round (every
/// [`FtConfig::checkpoint_every`] rounds): completed candidates and the
/// scheduler state are preserved; a candidate in flight when the fault
/// fired restarts from cycle 0, which reproduces its numbers exactly.
/// Under [`RecoveryPolicy::ShrinkAndRedistribute`] only the culprit's
/// fleet shrinks — the other fleets keep their exact membership, data
/// partition, and model. Under [`RecoveryPolicy::PromoteSpare`] a warm
/// spare is promoted through the member table, consuming the culprit's
/// *own fleet's* spare first (see [`spare_for`]); `P` and every fleet
/// boundary are preserved, so the result stays bitwise identical. An
/// exhausted pool falls back deterministically to
/// [`crate::StandbyConfig::fallback`].
///
/// # Errors
/// Same contract as [`crate::run_search_ft`].
pub fn run_search_fleet_ft(
    data: &Dataset,
    machine: &MachineSpec,
    config: &ParallelConfig,
    fc: &FleetConfig,
    ft: &FtConfig,
    opts: &SimOptions,
) -> Result<FleetFtOutcome, RunError> {
    let store: Mutex<Option<FleetCheckpoint>> = Mutex::new(None);
    let mut faults: Vec<SimError> = Vec::new();
    let mut excluded: Option<usize> = None;
    let mut attempts = 0usize;
    let mut machine_now = machine.clone();
    if matches!(ft.policy, RecoveryPolicy::PromoteSpare) {
        machine_now.spares = machine_now.spares.max(ft.standby.spares);
    }
    let mut policy_now = ft.policy;
    let mut spare_used = vec![false; machine_now.spares];
    let mut promotions = 0usize;
    loop {
        attempts += 1;
        let resume = {
            // lint:allow(unwrap): mutex poisoning only follows another panic
            store.lock().expect("fleet checkpoint store lock").clone()
        };
        let resume = resume.as_ref();
        let result = run_spmd(&machine_now, opts, |comm| match excluded {
            Some(culprit) => shrunk_fleet_rank_body(
                comm,
                machine.p,
                data,
                config,
                fc,
                culprit,
                (ft, &store),
                resume,
            ),
            None => {
                comm.enter_phase("search");
                let p = comm.size();
                let mut sub = comm.split(0);
                let r = fleet_core(&mut sub, p, data, config, fc, Some((ft, &store)), resume);
                drop(sub);
                comm.exit_phase();
                Some(r)
            }
        });
        match result {
            Ok(out) => {
                let recovery_time = out
                    .ranks
                    .iter()
                    .filter_map(|r| r.phase(RECOVERY_PHASE))
                    .map(|ph| ph.total())
                    .fold(0.0, f64::max);
                let elapsed = out.elapsed;
                let (ranks, stats) = (out.ranks, out.stats);
                let Some((all, cycles, fleet)) = out.per_rank.into_iter().flatten().next() else {
                    return Err(RunError::EmptySearch);
                };
                let outcome = outcome_from(all, cycles, elapsed, ranks, stats)?;
                return Ok(FleetFtOutcome {
                    outcome: FleetOutcome { outcome, fleet },
                    attempts,
                    faults,
                    shrunk: excluded.is_some(),
                    survivors: machine.p - usize::from(excluded.is_some()),
                    recovery_time,
                    promotions,
                });
            }
            Err(e) => {
                let Some(culprit) = fault_culprit(&e) else {
                    return Err(e.into());
                };
                faults.push(e.clone());
                if matches!(policy_now, RecoveryPolicy::Abort) || faults.len() > ft.max_restarts {
                    return Err(e.into());
                }
                if matches!(policy_now, RecoveryPolicy::PromoteSpare) {
                    match spare_for(culprit, machine_now.p, fc.groups, &spare_used) {
                        Some(k) => {
                            spare_used[k] = true;
                            machine_now.promote(culprit, machine_now.p + k);
                            promotions += 1;
                        }
                        // Pool exhausted: walk the fallback lattice (one
                        // step, deterministically) and let the arms below
                        // apply the fallback policy to this same fault.
                        None => policy_now = ft.standby.fallback,
                    }
                }
                if matches!(policy_now, RecoveryPolicy::Abort) {
                    return Err(e.into());
                }
                if matches!(policy_now, RecoveryPolicy::ShrinkAndRedistribute) {
                    if machine_now.p < 2 || excluded.is_some_and(|r| r != culprit) {
                        return Err(e.into());
                    }
                    excluded = Some(culprit);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::spare_for;

    #[test]
    fn spares_prefer_the_culprits_own_fleet() {
        // P = 8, G = 2: fleets {0..4} and {4..8}; spare 0 backs fleet 0,
        // spare 1 backs fleet 1.
        let used = [false, false];
        assert_eq!(spare_for(2, 8, 2, &used), Some(0));
        assert_eq!(spare_for(6, 8, 2, &used), Some(1));
        // Own fleet's spare taken: borrow the lowest unused one.
        assert_eq!(spare_for(6, 8, 2, &[false, true]), Some(0));
        // Pool exhausted.
        assert_eq!(spare_for(1, 8, 2, &[true, true]), None);
        // More spares than fleets: round-robin attachment.
        assert_eq!(spare_for(5, 8, 2, &[true, false, false, false]), Some(1));
        assert_eq!(spare_for(5, 8, 2, &[true, true, false, false]), Some(3));
    }
}
