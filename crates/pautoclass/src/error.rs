//! Error type for the parallel entry points.

use mpsim::SimError;

/// Why a parallel run could not produce an outcome.
///
/// Wraps the engine's [`SimError`] (rank panics, deadlocks, verifier
/// divergences — each carrying rank/sequence diagnostics) and adds the
/// driver-level failure modes that previously `expect`ed their way into a
/// panic inside the library.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The SPMD engine reported a failure; see the wrapped error for the
    /// offending rank and collective sequence number.
    Sim(SimError),
    /// The search finished without storing any classification — an empty
    /// `start_j_list` or a configuration that discarded every try.
    EmptySearch,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "simulated run failed: {e}"),
            RunError::EmptySearch => {
                write!(f, "search produced no classification (empty start_j_list?)")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Sim(e) => Some(e),
            RunError::EmptySearch => None,
        }
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cause() {
        let e = RunError::from(SimError::Aborted { rank: 3 });
        assert!(e.to_string().contains("simulated run failed"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(RunError::EmptySearch.to_string().contains("no classification"));
    }
}
