//! Error type for the parallel entry points.

use mpsim::{CommError, SimError};

use crate::checkpoint::CheckpointError;

/// Why a parallel run could not produce an outcome.
///
/// Wraps the engine's [`SimError`] (rank panics, deadlocks, injected
/// faults, verifier divergences — each carrying rank/sequence
/// diagnostics) and adds the driver-level failure modes that previously
/// `expect`ed their way into a panic inside the library. Marked
/// `#[non_exhaustive]`: future failure modes (like the checkpoint
/// variant added for fault tolerance) must not break downstream matches.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RunError {
    /// The SPMD engine reported a failure; see the wrapped error for the
    /// offending rank and collective sequence number.
    Sim(SimError),
    /// The search finished without storing any classification — an empty
    /// `start_j_list` or a configuration that discarded every try.
    EmptySearch,
    /// A checkpoint could not be decoded (truncated, corrupted, or from
    /// an incompatible version), so the requested recovery is impossible.
    Checkpoint(CheckpointError),
    /// The communication backend reported a failure — backend-neutral:
    /// wraps a simulator error on the simulated machine and a native
    /// failure (panicked rank, poisoned lock, disconnected channel,
    /// receive timeout) on real cores.
    Comm(CommError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "simulated run failed: {e}"),
            RunError::EmptySearch => {
                write!(f, "search produced no classification (empty start_j_list?)")
            }
            RunError::Checkpoint(e) => write!(f, "cannot resume from checkpoint: {e}"),
            RunError::Comm(e) => write!(f, "communication backend failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Sim(e) => Some(e),
            RunError::EmptySearch => None,
            RunError::Checkpoint(e) => Some(e),
            RunError::Comm(e) => Some(e),
        }
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

impl From<CheckpointError> for RunError {
    fn from(e: CheckpointError) -> Self {
        RunError::Checkpoint(e)
    }
}

impl From<CommError> for RunError {
    fn from(e: CommError) -> Self {
        RunError::Comm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cause() {
        let e = RunError::from(SimError::Aborted { rank: 3 });
        assert!(e.to_string().contains("simulated run failed"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(RunError::EmptySearch.to_string().contains("no classification"));
    }

    #[test]
    fn comm_errors_chain_their_cause() {
        let e = RunError::from(CommError::Poisoned { rank: 2, detail: "store".into() });
        assert!(e.to_string().contains("communication backend failed"), "{e}");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn checkpoint_errors_chain_their_cause() {
        let e = RunError::from(CheckpointError::BadVersion { found: 9 });
        assert!(e.to_string().contains("cannot resume"), "{e}");
        let src = std::error::Error::source(&e).map(ToString::to_string);
        assert!(src.is_some_and(|s| s.contains("version 9")), "source must be the decode error");
    }
}
