//! # pautoclass — P-AutoClass: SPMD parallel Bayesian classification
//!
//! The paper's contribution: AutoClass parallelized for shared-nothing
//! MIMD multicomputers. The dataset is block-partitioned across P
//! processors; each EM cycle runs `update_wts` and `update_parameters` on
//! the local partition and combines the partial class weights and
//! sufficient statistics with Allreduce, so every processor holds
//! identical global parameters — the same semantics as sequential
//! AutoClass.
//!
//! The message-passing substrate is [`mpsim`], a deterministic simulated
//! multicomputer: the computation and the communication pattern are real;
//! elapsed time comes from a calibrated machine model (see DESIGN.md for
//! the substitution rationale — the original ran on a Meiko CS-2 via MPI).
//!
//! ## Quick start
//!
//! ```
//! use autoclass::search::SearchConfig;
//! use pautoclass::{run_search, ParallelConfig};
//!
//! let data = datagen::paper_dataset(2_000, 42);
//! let machine = mpsim::presets::meiko_cs2(4);
//! let config = ParallelConfig {
//!     search: SearchConfig::quick(vec![4, 8], 42),
//!     ..ParallelConfig::default()
//! };
//! let out = run_search(&data, &machine, &config).unwrap();
//! assert!(out.best.n_classes() >= 2);
//! assert!(out.elapsed > 0.0); // virtual seconds on the simulated CS-2
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod driver;
pub mod error;
pub mod fleet;
pub mod recover;
pub mod run;

pub use checkpoint::{
    corrupt_shard, decode_shard, from_shards, to_shards, CheckpointError, CkptClassification,
    SearchCheckpoint,
};
pub use config::{
    Consensus, Exchange, FleetConfig, FtConfig, ParallelConfig, Partitioning, RecoveryPolicy,
    ShardFault, StandbyConfig, Strategy,
};
pub use error::RunError;
pub use fleet::{
    run_search_fleet, run_search_fleet_ft, run_search_fleet_native, run_search_fleet_with,
    EnsembleSummary, FleetFtOutcome, FleetOutcome, FleetStats,
};
pub use recover::{run_search_ft, run_search_ft_native, FtOutcome};
pub use run::{
    run_fixed_j, run_search, run_search_native, run_search_with, CycleTiming, ParallelOutcome,
};
// The native entry point's options type, so callers need not depend on the
// backend crate directly.
pub use shmcomm::NativeOptions;
