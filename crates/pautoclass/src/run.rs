//! Top-level P-AutoClass entry points: run the full search — or a
//! fixed-size cycling run for scaleup measurements — on a simulated
//! multicomputer ([`run_search`]) or on real cores ([`run_search_native`]).
//! Both drive the same generic rank body through [`mpsim::Communicator`],
//! so their classifications are bitwise identical; only the time axis
//! differs (virtual LogGP seconds vs measured wall-clock seconds).

use autoclass::data::Dataset;
use autoclass::model::{converged, derive_seed, CycleWorkspace};
use autoclass::search::{apply_class_death, is_duplicate, Classification};
use mpsim::{run_spmd, Communicator, MachineSpec, RankStats, RunStats, SimOptions};
use shmcomm::{run_native, NativeOptions};

use crate::config::ParallelConfig;
use crate::driver::{build_model, init_classes_parallel, parallel_base_cycle};
use crate::error::RunError;

/// Result of a parallel search. Every rank computes identical
/// classifications (the semantics-preservation property); the values here
/// are rank 0's.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// Best classification by Cheeseman–Stutz score.
    pub best: Classification,
    /// All retained classifications, best first, duplicates removed.
    pub all: Vec<Classification>,
    /// Elapsed virtual time of the whole run (max over ranks), seconds.
    pub elapsed: f64,
    /// Per-rank time/traffic statistics.
    pub ranks: Vec<RankStats>,
    /// Aggregate statistics.
    pub stats: RunStats,
    /// Total EM cycles executed across all tries.
    pub cycles: usize,
}

/// The per-rank body of the search, shared by [`run_search`] and
/// [`run_search_native`] — one body, two machines.
fn search_rank_body<C: Communicator>(
    comm: &mut C,
    data: &Dataset,
    config: &ParallelConfig,
) -> (Vec<Classification>, usize) {
    // Everything not claimed by an inner span (model setup, class-death
    // and convergence decisions, dedup/scoring) is model-search time.
    comm.enter_phase("search");
    let parts = config.partition.ranges(data.len(), comm.size());
    let part = &parts[comm.rank()];
    let view = data.view(part.start, part.end);
    let model = build_model(comm, &view, &config.correlated_blocks);
    let sc = &config.search;

    let mut all: Vec<Classification> = Vec::new();
    let mut total_cycles = 0usize;
    // One workspace outlives every try: the weight matrix, E-step scratch
    // and statistics buffer reach their high-water mark once and are
    // reused for the rest of the search.
    let mut ws = CycleWorkspace::new();

    for (ji, &j) in sc.start_j_list.iter().enumerate() {
        for t in 0..sc.tries_per_j {
            let seed = derive_seed(sc.seed, (ji * sc.tries_per_j + t) as u64);
            let mut classes = Vec::new();
            init_classes_parallel(comm, &model, &view, j, seed, &mut classes);
            let mut prev_ll = f64::NEG_INFINITY;
            let mut cycles = 0usize;
            let mut did_converge = false;
            let mut approx = autoclass::model::Approximation {
                log_likelihood: f64::NEG_INFINITY,
                complete_ll: f64::NEG_INFINITY,
                complete_marginal: f64::NEG_INFINITY,
                cs_score: f64::NEG_INFINITY,
            };
            while cycles < sc.max_cycles {
                let a = parallel_base_cycle(
                    comm,
                    &model,
                    &view,
                    &mut classes,
                    &mut ws,
                    config.strategy,
                );
                approx = a;
                cycles += 1;
                // Global statistics are identical on every rank, so the
                // class-death and convergence decisions are too — no
                // extra coordination message is needed.
                if apply_class_death(&mut classes, sc.min_class_weight) {
                    prev_ll = f64::NEG_INFINITY;
                    continue;
                }
                if converged(prev_ll, a.log_likelihood, sc.rel_delta_ll) {
                    did_converge = true;
                    break;
                }
                prev_ll = a.log_likelihood;
            }
            total_cycles += cycles;
            classes.sort_by(|a, b| b.weight.total_cmp(&a.weight));
            let log_prior = autoclass::model::log_param_prior(&model, &classes);
            let c = Classification {
                classes,
                j_initial: j,
                approx,
                log_prior,
                cycles,
                converged: did_converge,
                seed,
            };
            if !all.iter().any(|existing| is_duplicate(existing, &c)) {
                all.push(c);
            }
        }
    }
    all.sort_by(|a, b| b.score().total_cmp(&a.score()));
    all.truncate(sc.max_stored);
    comm.exit_phase();
    (all, total_cycles)
}

/// Run the full P-AutoClass search on the given (simulated) machine.
///
/// # Errors
/// Propagates engine failures (rank panics, deadlock timeouts, verifier
/// divergences) as [`RunError::Sim`]; a search that stores no
/// classification (e.g. an empty `start_j_list`) is
/// [`RunError::EmptySearch`] rather than a panic.
pub fn run_search(
    data: &Dataset,
    machine: &MachineSpec,
    config: &ParallelConfig,
) -> Result<ParallelOutcome, RunError> {
    run_search_with(data, machine, config, &SimOptions::default())
}

/// [`run_search`] with explicit engine options (longer receive timeouts
/// for very large workloads, event tracing, verification layers).
///
/// # Errors
/// Same contract as [`run_search`].
pub fn run_search_with(
    data: &Dataset,
    machine: &MachineSpec,
    config: &ParallelConfig,
    opts: &SimOptions,
) -> Result<ParallelOutcome, RunError> {
    let out = run_spmd(machine, opts, |comm| search_rank_body(comm, data, config))?;
    let Some((all, cycles)) = out.per_rank.into_iter().next() else {
        // A machine with zero ranks is rejected by the engine before the
        // body runs, so this is unreachable in practice — but returning an
        // error keeps the library free of panic paths.
        return Err(RunError::EmptySearch);
    };
    outcome_from(all, cycles, out.elapsed, out.ranks, out.stats)
}

/// Run the full P-AutoClass search on real cores: `machine.p` OS threads,
/// wall-clock time, the exact rank body [`run_search`] uses. The machine
/// spec contributes only its decisions (rank count, allreduce algorithm
/// selection), so the classification, log-likelihoods, and per-cycle
/// control flow are bitwise identical to the simulated run's; `elapsed`
/// and the per-rank phase buckets are measured on this host's silicon.
///
/// # Errors
/// Native backend failures (a panicked rank, a poisoned lock, a
/// disconnected channel, a receive timeout) surface as
/// [`RunError::Comm`]; a search that stores no classification is
/// [`RunError::EmptySearch`].
pub fn run_search_native(
    data: &Dataset,
    machine: &MachineSpec,
    config: &ParallelConfig,
    opts: &NativeOptions,
) -> Result<ParallelOutcome, RunError> {
    let out = run_native(machine, opts, |comm| search_rank_body(comm, data, config))?;
    let Some((all, cycles)) = out.per_rank.into_iter().next() else {
        return Err(RunError::EmptySearch);
    };
    outcome_from(all, cycles, out.elapsed, out.ranks, out.stats)
}

/// Assemble a [`ParallelOutcome`] from one rank's search result and the
/// run's statistics. Shared with the fault-tolerant supervisor
/// ([`crate::run_search_ft`]), whose surviving ranks produce the same
/// `(classifications, cycles)` pair.
pub(crate) fn outcome_from(
    all: Vec<Classification>,
    cycles: usize,
    elapsed: f64,
    ranks: Vec<RankStats>,
    stats: RunStats,
) -> Result<ParallelOutcome, RunError> {
    let Some(best) = all.first().cloned() else {
        return Err(RunError::EmptySearch);
    };
    Ok(ParallelOutcome { best, all, elapsed, ranks, stats, cycles })
}

/// Timing of a fixed-J cycling run (the paper's scaleup measurement:
/// Figure 8 times single `base_cycle` iterations at J = 8 and 16).
#[derive(Debug, Clone)]
pub struct CycleTiming {
    /// Virtual seconds spent in the measured cycles (max over ranks).
    pub elapsed: f64,
    /// Number of cycles measured.
    pub cycles: usize,
    /// Elapsed / cycles.
    pub per_cycle: f64,
    /// Per-rank statistics for the whole run (including setup).
    pub ranks: Vec<RankStats>,
    /// Final global log likelihood (sanity output).
    pub log_likelihood: f64,
}

/// Run exactly `n_cycles` parallel base cycles at a fixed class count
/// (no class death, no convergence exit) and time them in virtual time.
///
/// # Errors
/// Propagates engine failures as [`RunError::Sim`].
pub fn run_fixed_j(
    data: &Dataset,
    machine: &MachineSpec,
    j: usize,
    n_cycles: usize,
    seed: u64,
    config: &ParallelConfig,
) -> Result<CycleTiming, RunError> {
    let out = run_spmd(machine, &SimOptions::default(), |comm| {
        comm.enter_phase("search");
        let parts = config.partition.ranges(data.len(), comm.size());
        let part = &parts[comm.rank()];
        let view = data.view(part.start, part.end);
        let model = build_model(comm, &view, &config.correlated_blocks);
        let mut classes = Vec::new();
        init_classes_parallel(comm, &model, &view, j, seed, &mut classes);
        let mut ws = CycleWorkspace::new();
        // Synchronize before the measured window so stragglers from setup
        // don't leak into the cycle timing.
        comm.barrier();
        let t0 = comm.now();
        let mut ll = f64::NEG_INFINITY;
        for _ in 0..n_cycles {
            let a =
                parallel_base_cycle(comm, &model, &view, &mut classes, &mut ws, config.strategy);
            ll = a.log_likelihood;
        }
        comm.exit_phase();
        (comm.now() - t0, ll)
    })?;
    let elapsed = out.per_rank.iter().map(|(dt, _)| *dt).fold(0.0, f64::max);
    let log_likelihood = out.per_rank.first().map(|&(_, ll)| ll).unwrap_or(f64::NEG_INFINITY);
    Ok(CycleTiming {
        elapsed,
        cycles: n_cycles,
        per_cycle: elapsed / n_cycles.max(1) as f64,
        ranks: out.ranks,
        log_likelihood,
    })
}
