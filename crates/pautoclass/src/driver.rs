//! The rank-level building blocks of P-AutoClass: everything a single
//! processor executes between collectives.
//!
//! The parallel algorithm calls the *same* kernels as sequential AutoClass
//! (`autoclass::model`), inserting Allreduce steps where the paper's
//! Figures 4 and 5 place them. Because the combined statistics are bitwise
//! identical on every rank (see `mpsim::collectives`), every rank derives
//! identical parameters and identical control-flow decisions — the
//! semantics-preservation property the paper claims for its design.

use autoclass::data::{DataView, GlobalStats};
use autoclass::model::{
    classes_from_flat, classes_to_flat, evaluate, init_classes, stats_to_classes_into,
    update_wts_into, Approximation, ClassParams, CycleWorkspace, Model, SuffStats, WtsMatrix,
};
use mpsim::{Comm, ReduceOp};

use crate::config::{Exchange, Strategy};

/// Build the model structure on every rank: local statistics are computed
/// on the partition and combined with one Allreduce, so each rank derives
/// the identical `Model` (this is AutoClass's "data structures
/// initialized" step, distributed). `correlated_blocks` selects the
/// attribute structure (empty = all independent).
pub fn build_model(
    comm: &mut Comm,
    view: &DataView<'_>,
    correlated_blocks: &[Vec<usize>],
) -> Model {
    let local = GlobalStats::compute(view);
    // Scanning the partition once costs ~K ops per item.
    comm.work((view.len() * view.schema().len()) as u64);
    let mut flat = local.to_flat();
    comm.enter_phase("allreduce");
    comm.allreduce_f64s(&mut flat, ReduceOp::Sum);
    comm.exit_phase();
    let global = GlobalStats::from_flat(&local, &flat);
    if correlated_blocks.is_empty() {
        Model::new(view.schema().clone(), &global)
    } else {
        Model::with_correlated(view.schema().clone(), &global, correlated_blocks)
    }
}

/// Initialize a try's classes on rank 0 and broadcast them, so all ranks
/// start identically (the parallel equivalent of AutoClass's random
/// class seeding).
pub fn init_classes_parallel(
    comm: &mut Comm,
    model: &Model,
    view: &DataView<'_>,
    j: usize,
    seed: u64,
) -> Vec<ClassParams> {
    let flat_len = model.class_param_len() * j;
    let mut flat = if comm.rank() == 0 {
        let classes = init_classes(model, view, j, seed);
        classes_to_flat(&classes)
    } else {
        vec![0.0; flat_len]
    };
    comm.broadcast_f64s(0, &mut flat);
    classes_from_flat(model, j, &flat)
}

/// One parallel `base_cycle`: E-step + weight Allreduce, M-step with the
/// configured statistics exchange, and the approximation update. Updates
/// `classes` in place with the new parameters and returns the cycle's
/// (global) scores — identical on every rank.
///
/// Time and traffic are attributed to named phase spans for the report
/// harness: `"estep"` (weight computation), `"mstep"` (statistics
/// accumulation and parameter derivation), and `"allreduce"` (every
/// statistics-exchange collective, whichever algorithm or strategy
/// realizes it). The negligible `update_approximations` tail falls to the
/// caller's enclosing span, so buckets still partition elapsed time.
///
/// All transient storage (the weight matrix, E-step scratch, statistics
/// buffer, flat payload buffer) lives in `ws` and is reused across cycles:
/// like the sequential `base_cycle`, the `Full` strategies perform no heap
/// allocation in steady state. (`WtsOnly` gathers the whole weight matrix
/// through growing transport buffers by design — that bandwidth cost is
/// the point of the comparison.)
pub fn parallel_base_cycle(
    comm: &mut Comm,
    model: &Model,
    view: &DataView<'_>,
    classes: &mut Vec<ClassParams>,
    ws: &mut CycleWorkspace,
    strategy: Strategy,
) -> Approximation {
    let j = classes.len();
    ws.reset_stats(model, j);
    let CycleWorkspace { wts, estep, stats, flat } = ws;
    let Some(stats) = stats else { unreachable!("reset_stats installs the statistics buffer") };

    // ---- update_wts (Figure 4) -------------------------------------
    comm.enter_phase("estep");
    let e = update_wts_into(model, view, classes, wts, estep);
    comm.work(e.ops);
    comm.exit_phase();
    // Allreduce of the per-class weight sums w_j, in place in the scratch.
    comm.enter_phase("allreduce");
    comm.allreduce_f64s(&mut estep.class_weight_sums, ReduceOp::Sum);
    comm.exit_phase();
    comm.verify_replicated("class weight sums w_j", &estep.class_weight_sums);
    let wj = &estep.class_weight_sums;

    // ---- update_parameters (Figure 5) -------------------------------
    match strategy {
        Strategy::Full { exchange } => {
            comm.enter_phase("mstep");
            let ops = stats.accumulate(model, view, wts);
            comm.work(ops);
            comm.exit_phase();
            match exchange {
                Exchange::PerTerm => {
                    // The class-weight slots were already combined in the
                    // wts phase; install the global values so the per-term
                    // mode doesn't need to re-send them.
                    for (c, &w) in wj.iter().enumerate() {
                        let idx = stats.layout.weight_index(c);
                        stats.data[idx] = w;
                    }
                    // Faithful to Figure 5: the Allreduce sits inside the
                    // per-class, per-attribute loops.
                    comm.enter_phase("allreduce");
                    for c in 0..j {
                        for k in 0..model.n_groups() {
                            let range = stats.layout.attr_range(c, k);
                            comm.allreduce_f64s(&mut stats.data[range], ReduceOp::Sum);
                        }
                    }
                    comm.exit_phase();
                }
                Exchange::Fused => {
                    // One big message. The weight slots were already
                    // combined in the wts phase, so send zeros in their
                    // place and install the global values afterwards —
                    // no save/restore buffer needed.
                    for c in 0..j {
                        let idx = stats.layout.weight_index(c);
                        stats.data[idx] = 0.0;
                    }
                    comm.enter_phase("allreduce");
                    comm.allreduce_f64s(&mut stats.data, ReduceOp::Sum);
                    comm.exit_phase();
                    for (c, &w) in wj.iter().enumerate() {
                        let idx = stats.layout.weight_index(c);
                        stats.data[idx] = w;
                    }
                }
            }
            comm.enter_phase("mstep");
            let mops = stats_to_classes_into(model, stats, classes);
            comm.work(mops);
            comm.exit_phase();
        }
        Strategy::WtsOnly => wts_only_mstep(comm, model, view, wts, stats, flat, classes, j),
    }

    // ---- update_approximations ---------------------------------------
    // Two scalars must become global: the log likelihood and the complete
    // log likelihood. The paper folds this into the (negligible)
    // update_approximations step.
    let mut scalars = [e.log_likelihood, e.complete_ll];
    comm.enter_phase("allreduce");
    comm.allreduce_f64s(&mut scalars, ReduceOp::Sum);
    comm.exit_phase();
    let approx = evaluate(model, stats, scalars[0], scalars[1]);
    comm.work((j * stats.layout.stride) as u64);

    // The new parameters were derived *independently* on every rank from
    // the combined statistics. When replication checking is on, prove they
    // are still bitwise identical — the semantics-preservation property
    // the paper's design rests on — before the next cycle builds on them.
    if comm.checks_replication() {
        flat.clear();
        for class in classes.iter() {
            class.to_flat(flat);
        }
        comm.verify_replicated("updated class parameters", flat);
        comm.verify_replicated("cycle scores", &scalars);
    }

    approx
}

/// The Miller & Guo-style M-step: gather the full weight matrix to rank 0,
/// compute statistics and parameters there against the full dataset, then
/// broadcast the classes. The gathered matrix is `n × J` doubles — the
/// bandwidth cost that motivates the paper's fully-parallel design.
///
/// `stats` arrives zeroed (from [`CycleWorkspace::reset_stats`]) and leaves
/// holding the global statistics on every rank; `flat` is a reusable
/// payload buffer; `classes` is replaced with the broadcast parameters.
#[allow(clippy::too_many_arguments)]
fn wts_only_mstep(
    comm: &mut Comm,
    model: &Model,
    view: &DataView<'_>,
    wts: &WtsMatrix,
    stats: &mut SuffStats,
    flat: &mut Vec<f64>,
    classes: &mut Vec<ClassParams>,
    j: usize,
) {
    let n_local = wts.n_items();
    // The master needs each rank's partition size to unpack the gathered
    // matrix; learn them on the wire rather than assuming a decomposition
    // (Block and Weighted partitionings both produce contiguous
    // rank-ordered ranges). The counts travel as raw bit patterns inside
    // f64 payloads — `from_bits`/`to_bits` round-trips exactly, with no
    // integer-to-float precision cliff at 2^53.
    comm.enter_phase("allreduce");
    let sizes = comm.gather_f64s(0, &[f64::from_bits(n_local as u64)]);
    // Flatten column-major local weights: [class0 col .. class{J-1} col].
    flat.clear();
    for c in 0..j {
        flat.extend_from_slice(wts.class_column(c));
    }
    let gathered = comm.gather_f64s(0, flat);
    comm.exit_phase();

    let flat_classes_len = model.class_param_len() * j;
    // Both gathers root at rank 0, so they return `Some` on exactly the
    // same rank: destructure jointly instead of `expect`ing the second —
    // no panic path inside the rank closure.
    if let (Some(all), Some(sizes)) = (gathered, sizes) {
        // Root: rebuild the global weight matrix. Ranks contributed in
        // rank order; rank r's block is n_r × J column-major.
        let full = root_view(view);
        let n_total = full.len();
        let mut global_wts = WtsMatrix::new(n_total, j);
        let mut offset = 0;
        let mut start = 0usize;
        for &size in &sizes {
            let n_r = size.to_bits() as usize;
            for c in 0..j {
                let src = &all[offset + c * n_r..offset + (c + 1) * n_r];
                global_wts.class_column_mut(c)[start..start + n_r].copy_from_slice(src);
            }
            offset += n_r * j;
            start += n_r;
        }
        debug_assert_eq!(start, n_total, "partitions must cover the dataset");
        comm.enter_phase("mstep");
        let ops = stats.accumulate(model, &full, &global_wts);
        comm.work(ops);
        let mops = stats_to_classes_into(model, stats, classes);
        comm.work(mops);
        comm.exit_phase();
        flat.clear();
        for class in classes.iter() {
            class.to_flat(flat);
        }
        debug_assert_eq!(flat.len(), flat_classes_len, "flat classes length");
    } else {
        flat.clear();
        flat.resize(flat_classes_len, 0.0);
    }
    comm.enter_phase("allreduce");
    comm.broadcast_f64s(0, flat);
    comm.exit_phase();
    // Every rank (root included) derives its classes from the broadcast
    // payload, so all ranks share one code path and stay bitwise equal.
    *classes = classes_from_flat(model, j, flat);

    // Non-root ranks also need the global statistics for the shared
    // approximation step; broadcast them too (small next to the gather).
    comm.enter_phase("allreduce");
    comm.broadcast_f64s(0, &mut stats.data);
    comm.exit_phase();
}

/// Recover the full-dataset view from a partition view. Only valid on the
/// rank that conceptually owns the whole dataset (rank 0 in the WtsOnly
/// strategy); in this simulation every rank borrows the same `Dataset`, so
/// this is a reslice, but the communication cost of getting the weights to
/// rank 0 is charged for real.
fn root_view<'a>(view: &DataView<'a>) -> DataView<'a> {
    view.whole_dataset()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoclass::data::block_partition;
    use mpsim::{presets, run_spmd_default};

    #[test]
    fn build_model_agrees_across_ranks_and_with_sequential() {
        let data = datagen::paper_dataset(500, 42);
        let seq_stats = GlobalStats::compute(&data.full_view());
        let seq_model = Model::new(data.schema().clone(), &seq_stats);

        for p in [1usize, 2, 3, 5] {
            let spec = presets::zero_cost(p);
            let out = run_spmd_default(&spec, |comm| {
                let parts = block_partition(data.len(), comm.size());
                let part = &parts[comm.rank()];
                let view = data.view(part.start, part.end);
                build_model(comm, &view, &[])
            })
            .unwrap();
            for (r, m) in out.per_rank.iter().enumerate() {
                assert_eq!(m.n_total, seq_model.n_total, "p={p} rank={r}");
                // Priors are derived from the allreduced stats; tolerate
                // floating-point reduction-order differences only.
                for (a, b) in m.groups.iter().zip(&seq_model.groups) {
                    match (&a.prior, &b.prior) {
                        (
                            autoclass::model::TermPrior::Normal { mean0: m1, var0: v1, .. },
                            autoclass::model::TermPrior::Normal { mean0: m2, var0: v2, .. },
                        ) => {
                            assert!((m1 - m2).abs() < 1e-9, "p={p}");
                            assert!((v1 - v2).abs() < 1e-9, "p={p}");
                        }
                        _ => panic!("unexpected prior kind"),
                    }
                }
            }
            // All ranks bitwise identical to each other.
            for m in &out.per_rank {
                assert_eq!(m.groups, out.per_rank[0].groups);
            }
        }
    }

    #[test]
    fn init_broadcast_gives_all_ranks_rank0_classes() {
        let data = datagen::paper_dataset(300, 7);
        let spec = presets::zero_cost(4);
        let out = run_spmd_default(&spec, |comm| {
            let parts = block_partition(data.len(), comm.size());
            let part = &parts[comm.rank()];
            let view = data.view(part.start, part.end);
            let model = build_model(comm, &view, &[]);
            init_classes_parallel(comm, &model, &view, 5, 99)
        })
        .unwrap();
        for r in 1..4 {
            assert_eq!(out.per_rank[r], out.per_rank[0], "rank {r} differs");
        }
        assert_eq!(out.per_rank[0].len(), 5);
    }
}
