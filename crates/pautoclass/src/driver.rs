//! The rank-level building blocks of P-AutoClass: everything a single
//! processor executes between collectives.
//!
//! The parallel algorithm calls the *same* kernels as sequential AutoClass
//! (`autoclass::model`), inserting Allreduce steps where the paper's
//! Figures 4 and 5 place them. Because the combined statistics are bitwise
//! identical on every rank (see `mpsim::collectives`), every rank derives
//! identical parameters and identical control-flow decisions — the
//! semantics-preservation property the paper claims for its design.

use autoclass::data::{DataView, GlobalStats};
use autoclass::model::{
    classes_from_flat, classes_to_flat, evaluate, init_classes, stats_to_classes, update_wts,
    Approximation, ClassParams, Model, StatLayout, SuffStats, WtsMatrix,
};
use mpsim::{Comm, ReduceOp};

use crate::config::{Exchange, Strategy};

/// Build the model structure on every rank: local statistics are computed
/// on the partition and combined with one Allreduce, so each rank derives
/// the identical `Model` (this is AutoClass's "data structures
/// initialized" step, distributed). `correlated_blocks` selects the
/// attribute structure (empty = all independent).
pub fn build_model(
    comm: &mut Comm,
    view: &DataView<'_>,
    correlated_blocks: &[Vec<usize>],
) -> Model {
    let local = GlobalStats::compute(view);
    // Scanning the partition once costs ~K ops per item.
    comm.work((view.len() * view.schema().len()) as u64);
    let mut flat = local.to_flat();
    comm.allreduce_f64s(&mut flat, ReduceOp::Sum);
    let global = GlobalStats::from_flat(&local, &flat);
    if correlated_blocks.is_empty() {
        Model::new(view.schema().clone(), &global)
    } else {
        Model::with_correlated(view.schema().clone(), &global, correlated_blocks)
    }
}

/// Initialize a try's classes on rank 0 and broadcast them, so all ranks
/// start identically (the parallel equivalent of AutoClass's random
/// class seeding).
pub fn init_classes_parallel(
    comm: &mut Comm,
    model: &Model,
    view: &DataView<'_>,
    j: usize,
    seed: u64,
) -> Vec<ClassParams> {
    let flat_len = model.class_param_len() * j;
    let mut flat = if comm.rank() == 0 {
        let classes = init_classes(model, view, j, seed);
        classes_to_flat(&classes)
    } else {
        vec![0.0; flat_len]
    };
    comm.broadcast_f64s(0, &mut flat);
    classes_from_flat(model, j, &flat)
}

/// One parallel `base_cycle`: E-step + weight Allreduce, M-step with the
/// configured statistics exchange, and the approximation update. Returns
/// the new classes and the cycle's (global) scores — identical on every
/// rank.
pub fn parallel_base_cycle(
    comm: &mut Comm,
    model: &Model,
    view: &DataView<'_>,
    classes: &[ClassParams],
    wts: &mut WtsMatrix,
    strategy: Strategy,
) -> (Vec<ClassParams>, Approximation) {
    let j = classes.len();

    // ---- update_wts (Figure 4) -------------------------------------
    let e = update_wts(model, view, classes, wts);
    comm.work(e.ops);
    // Allreduce of the per-class weight sums w_j.
    let mut wj = e.class_weight_sums.clone();
    comm.allreduce_f64s(&mut wj, ReduceOp::Sum);
    comm.verify_replicated("class weight sums w_j", &wj);

    // ---- update_parameters (Figure 5) -------------------------------
    let (stats, classes_new) = match strategy {
        Strategy::Full { exchange } => {
            let mut stats = SuffStats::zeros(StatLayout::new(model, j));
            let ops = stats.accumulate(model, view, wts);
            comm.work(ops);
            // The class-weight slots were already combined in the wts
            // phase; install the global values before the exchange so the
            // per-term mode doesn't need to re-send them.
            for (c, &w) in wj.iter().enumerate() {
                let idx = stats.layout.weight_index(c);
                stats.data[idx] = w;
            }
            match exchange {
                Exchange::PerTerm => {
                    // Faithful to Figure 5: the Allreduce sits inside the
                    // per-class, per-attribute loops.
                    for c in 0..j {
                        for k in 0..model.n_groups() {
                            let range = stats.layout.attr_range(c, k);
                            comm.allreduce_f64s(&mut stats.data[range], ReduceOp::Sum);
                        }
                    }
                }
                Exchange::Fused => {
                    // One big message; exclude nothing — the weight slots
                    // are already global, so zero the local copies first
                    // on non-contributing... simpler: rebuild from local
                    // by subtracting is wasteful. Instead allreduce a
                    // vector with the weight slots zeroed and restore.
                    let saved: Vec<f64> =
                        (0..j).map(|c| stats.data[stats.layout.weight_index(c)]).collect();
                    for c in 0..j {
                        let idx = stats.layout.weight_index(c);
                        stats.data[idx] = 0.0;
                    }
                    comm.allreduce_f64s(&mut stats.data, ReduceOp::Sum);
                    for (c, w) in saved.into_iter().enumerate() {
                        let idx = stats.layout.weight_index(c);
                        stats.data[idx] = w;
                    }
                }
            }
            let (cls, mops) = stats_to_classes(model, &stats);
            comm.work(mops);
            (stats, cls)
        }
        Strategy::WtsOnly => wts_only_mstep(comm, model, view, wts, &wj, j),
    };

    // ---- update_approximations ---------------------------------------
    // Two scalars must become global: the log likelihood and the complete
    // log likelihood. The paper folds this into the (negligible)
    // update_approximations step.
    let mut scalars = [e.log_likelihood, e.complete_ll];
    comm.allreduce_f64s(&mut scalars, ReduceOp::Sum);
    let approx = evaluate(model, &stats, scalars[0], scalars[1]);
    comm.work((j * stats.layout.stride) as u64);

    // The new parameters were derived *independently* on every rank from
    // the combined statistics. When replication checking is on, prove they
    // are still bitwise identical — the semantics-preservation property
    // the paper's design rests on — before the next cycle builds on them.
    if comm.checks_replication() {
        comm.verify_replicated("updated class parameters", &classes_to_flat(&classes_new));
        comm.verify_replicated("cycle scores", &scalars);
    }

    (classes_new, approx)
}

/// The Miller & Guo-style M-step: gather the full weight matrix to rank 0,
/// compute statistics and parameters there against the full dataset, then
/// broadcast the classes. The gathered matrix is `n × J` doubles — the
/// bandwidth cost that motivates the paper's fully-parallel design.
fn wts_only_mstep(
    comm: &mut Comm,
    model: &Model,
    view: &DataView<'_>,
    wts: &WtsMatrix,
    wj: &[f64],
    j: usize,
) -> (SuffStats, Vec<ClassParams>) {
    let n_local = wts.n_items();
    // The master needs each rank's partition size to unpack the gathered
    // matrix; learn them on the wire rather than assuming a decomposition
    // (Block and Weighted partitionings both produce contiguous
    // rank-ordered ranges).
    let sizes = comm.gather_f64s(0, &[n_local as f64]);
    // Flatten column-major local weights: [class0 col .. class{J-1} col].
    let mut flat_local = Vec::with_capacity(n_local * j);
    for c in 0..j {
        flat_local.extend_from_slice(wts.class_column(c));
    }
    let gathered = comm.gather_f64s(0, &flat_local);

    let mut stats = SuffStats::zeros(StatLayout::new(model, j));
    let flat_classes_len = model.class_param_len() * j;
    let mut flat_classes = vec![0.0; flat_classes_len];

    if let Some(all) = gathered {
        // Root: rebuild the global weight matrix. Ranks contributed in
        // rank order; rank r's block is n_r × J column-major.
        let full = root_view(view);
        let n_total = full.len();
        // lint:allow(unwrap): this branch only runs on the gather root
        let sizes = sizes.expect("root holds the gathered sizes");
        let mut global_wts = WtsMatrix::new(n_total, j);
        let mut offset = 0;
        let mut start = 0usize;
        for &size in &sizes {
            let n_r = size as usize;
            for c in 0..j {
                let src = &all[offset + c * n_r..offset + (c + 1) * n_r];
                global_wts.class_column_mut(c)[start..start + n_r].copy_from_slice(src);
            }
            offset += n_r * j;
            start += n_r;
        }
        debug_assert_eq!(start, n_total, "partitions must cover the dataset");
        let ops = stats.accumulate(model, &full, &global_wts);
        comm.work(ops);
        // The gathered weights are exact, so the accumulated class
        // weights equal the Allreduced wj (up to association); use the
        // accumulated ones for internal consistency.
        let _ = wj;
        let (classes, mops) = stats_to_classes(model, &stats);
        comm.work(mops);
        flat_classes = classes_to_flat(&classes);
    }
    comm.broadcast_f64s(0, &mut flat_classes);
    let classes = classes_from_flat(model, j, &flat_classes);

    // Non-root ranks also need the global statistics for the shared
    // approximation step; broadcast them too (small next to the gather).
    comm.broadcast_f64s(0, &mut stats.data);
    (stats, classes)
}

/// Recover the full-dataset view from a partition view. Only valid on the
/// rank that conceptually owns the whole dataset (rank 0 in the WtsOnly
/// strategy); in this simulation every rank borrows the same `Dataset`, so
/// this is a reslice, but the communication cost of getting the weights to
/// rank 0 is charged for real.
fn root_view<'a>(view: &DataView<'a>) -> DataView<'a> {
    view.whole_dataset()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoclass::data::block_partition;
    use mpsim::{presets, run_spmd_default};

    #[test]
    fn build_model_agrees_across_ranks_and_with_sequential() {
        let data = datagen::paper_dataset(500, 42);
        let seq_stats = GlobalStats::compute(&data.full_view());
        let seq_model = Model::new(data.schema().clone(), &seq_stats);

        for p in [1usize, 2, 3, 5] {
            let spec = presets::zero_cost(p);
            let out = run_spmd_default(&spec, |comm| {
                let parts = block_partition(data.len(), comm.size());
                let part = &parts[comm.rank()];
                let view = data.view(part.start, part.end);
                build_model(comm, &view, &[])
            })
            .unwrap();
            for (r, m) in out.per_rank.iter().enumerate() {
                assert_eq!(m.n_total, seq_model.n_total, "p={p} rank={r}");
                // Priors are derived from the allreduced stats; tolerate
                // floating-point reduction-order differences only.
                for (a, b) in m.groups.iter().zip(&seq_model.groups) {
                    match (&a.prior, &b.prior) {
                        (
                            autoclass::model::TermPrior::Normal { mean0: m1, var0: v1, .. },
                            autoclass::model::TermPrior::Normal { mean0: m2, var0: v2, .. },
                        ) => {
                            assert!((m1 - m2).abs() < 1e-9, "p={p}");
                            assert!((v1 - v2).abs() < 1e-9, "p={p}");
                        }
                        _ => panic!("unexpected prior kind"),
                    }
                }
            }
            // All ranks bitwise identical to each other.
            for m in &out.per_rank {
                assert_eq!(m.groups, out.per_rank[0].groups);
            }
        }
    }

    #[test]
    fn init_broadcast_gives_all_ranks_rank0_classes() {
        let data = datagen::paper_dataset(300, 7);
        let spec = presets::zero_cost(4);
        let out = run_spmd_default(&spec, |comm| {
            let parts = block_partition(data.len(), comm.size());
            let part = &parts[comm.rank()];
            let view = data.view(part.start, part.end);
            let model = build_model(comm, &view, &[]);
            init_classes_parallel(comm, &model, &view, 5, 99)
        })
        .unwrap();
        for r in 1..4 {
            assert_eq!(out.per_rank[r], out.per_rank[0], "rank {r} differs");
        }
        assert_eq!(out.per_rank[0].len(), 5);
    }
}
