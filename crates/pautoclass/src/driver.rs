//! The rank-level building blocks of P-AutoClass: everything a single
//! processor executes between collectives.
//!
//! The parallel algorithm calls the *same* kernels as sequential AutoClass
//! (`autoclass::model`), inserting Allreduce steps where the paper's
//! Figures 4 and 5 place them. Because the combined statistics are bitwise
//! identical on every rank (see `mpsim::collectives`), every rank derives
//! identical parameters and identical control-flow decisions — the
//! semantics-preservation property the paper claims for its design.
//!
//! Every building block here is generic over [`mpsim::Communicator`], so
//! the same driver runs on the simulated machine (`mpsim::Comm`, virtual
//! time) or on real cores (`shmcomm::NativeComm`, wall-clock time) with
//! bitwise-identical numerical results.

use autoclass::data::{DataView, GlobalStats};
use autoclass::model::{
    classes_from_flat_into, classes_to_flat, evaluate, init_classes, stats_to_class_into,
    stats_to_classes_into, update_wts_and_stats_into, update_wts_into, Approximation, ClassParams,
    CycleWorkspace, EStepScratch, Model, SuffStats, WtsMatrix,
};
use mpsim::{
    predicted_allreduce_cost, select_allreduce, AllreduceAlgo, Communicator, GroupCommunicator,
    ReduceOp,
};

use crate::config::{Exchange, Strategy};

/// Build the model structure on every rank: local statistics are computed
/// on the partition and combined with one Allreduce, so each rank derives
/// the identical `Model` (this is AutoClass's "data structures
/// initialized" step, distributed). `correlated_blocks` selects the
/// attribute structure (empty = all independent).
pub fn build_model<C: Communicator>(
    comm: &mut C,
    view: &DataView<'_>,
    correlated_blocks: &[Vec<usize>],
) -> Model {
    let local = GlobalStats::compute(view);
    // Scanning the partition once costs ~K ops per item.
    comm.work((view.len() * view.schema().len()) as u64);
    let mut flat = local.to_flat();
    comm.enter_phase("allreduce");
    comm.allreduce_f64s(&mut flat, ReduceOp::Sum);
    comm.exit_phase();
    let global = GlobalStats::from_flat(&local, &flat);
    if correlated_blocks.is_empty() {
        Model::new(view.schema().clone(), &global)
    } else {
        Model::with_correlated(view.schema().clone(), &global, correlated_blocks)
    }
}

/// Initialize a try's classes on rank 0 and broadcast them, so all ranks
/// start identically (the parallel equivalent of AutoClass's random
/// class seeding).
pub fn init_classes_parallel<C: Communicator>(
    comm: &mut C,
    model: &Model,
    view: &DataView<'_>,
    j: usize,
    seed: u64,
    classes: &mut Vec<ClassParams>,
) {
    let flat_len = model.class_param_len() * j;
    let mut flat = if comm.rank() == 0 {
        let init = init_classes(model, view, j, seed);
        classes_to_flat(&init)
    } else {
        vec![0.0; flat_len]
    };
    comm.broadcast_f64s(0, &mut flat);
    classes_from_flat_into(model, j, &flat, classes);
}

/// One parallel `base_cycle`: E-step + weight Allreduce, M-step with the
/// configured statistics exchange, and the approximation update. Updates
/// `classes` in place with the new parameters and returns the cycle's
/// (global) scores — identical on every rank.
///
/// Time and traffic are attributed to named phase spans for the report
/// harness: `"estep"` (weight computation), `"mstep"` (statistics
/// accumulation and parameter derivation), and `"allreduce"` (every
/// statistics-exchange collective, whichever algorithm or strategy
/// realizes it). The negligible `update_approximations` tail falls to the
/// caller's enclosing span, so buckets still partition elapsed time.
///
/// All transient storage (the weight matrix, E-step scratch, statistics
/// buffer, flat payload buffer) lives in `ws` and is reused across cycles:
/// like the sequential `base_cycle`, the `Full` strategies perform no heap
/// allocation in steady state. (`WtsOnly` gathers the whole weight matrix
/// through growing transport buffers by design — that bandwidth cost is
/// the point of the comparison.)
pub fn parallel_base_cycle<C: Communicator>(
    comm: &mut C,
    model: &Model,
    view: &DataView<'_>,
    classes: &mut Vec<ClassParams>,
    ws: &mut CycleWorkspace,
    strategy: Strategy,
) -> Approximation {
    let j = classes.len();
    ws.reset_stats(model, j);
    let CycleWorkspace { wts, estep, stats, flat, accum } = ws;
    let Some(stats) = stats else { unreachable!("reset_stats installs the statistics buffer") };

    let scalars = if matches!(strategy, Strategy::Full { exchange: Exchange::Pipelined }) {
        pipelined_cycle(comm, model, view, classes, wts, estep, stats, accum)
    } else {
        // ---- update_wts (Figure 4) -----------------------------------
        comm.enter_phase("estep");
        let e = update_wts_into(model, view, classes, wts, estep);
        comm.work(e.ops);
        comm.exit_phase();
        // Allreduce of the per-class weight sums w_j, in place in the
        // scratch.
        comm.enter_phase("allreduce");
        comm.allreduce_f64s(&mut estep.class_weight_sums, ReduceOp::Sum);
        comm.exit_phase();
        comm.verify_replicated("class weight sums w_j", &estep.class_weight_sums);
        let wj = &estep.class_weight_sums;

        // ---- update_parameters (Figure 5) ----------------------------
        // `Fused` combines the two cycle scalars with the statistics
        // message (`Some`); the other arms leave them for the trailing
        // scalar Allreduce (`None`).
        let packed: Option<[f64; 2]> = match strategy {
            Strategy::Full { exchange } => {
                comm.enter_phase("mstep");
                let ops = stats.accumulate(model, view, wts);
                comm.work(ops);
                comm.exit_phase();
                let packed = match exchange {
                    Exchange::PerTerm => {
                        // The class-weight slots were already combined in
                        // the wts phase; install the global values so the
                        // per-term mode doesn't need to re-send them.
                        for (c, &w) in wj.iter().enumerate() {
                            let idx = stats.layout.weight_index(c);
                            stats.data[idx] = w;
                        }
                        // Faithful to Figure 5: the Allreduce sits inside
                        // the per-class, per-attribute loops.
                        comm.enter_phase("allreduce");
                        for c in 0..j {
                            for k in 0..model.n_groups() {
                                let range = stats.layout.attr_range(c, k);
                                // lint:allow(blocking-collective): this IS the ablation baseline
                                comm.allreduce_f64s(&mut stats.data[range], ReduceOp::Sum);
                            }
                        }
                        comm.exit_phase();
                        None
                    }
                    Exchange::Fused => {
                        // One big message. The weight slots were already
                        // combined in the wts phase, so send zeros in
                        // their place and install the global values
                        // afterwards — no save/restore buffer needed. The
                        // two log-likelihood scalars piggyback on the end
                        // of the same buffer, replacing the trailing
                        // 2-element Allreduce.
                        for c in 0..j {
                            let idx = stats.layout.weight_index(c);
                            stats.data[idx] = 0.0;
                        }
                        stats.data.push(e.log_likelihood);
                        stats.data.push(e.complete_ll);
                        comm.enter_phase("allreduce");
                        comm.allreduce_f64s(&mut stats.data, ReduceOp::Sum);
                        comm.exit_phase();
                        // lint:allow(unwrap): the two scalars were pushed above
                        let complete_ll = stats.data.pop().expect("piggybacked scalar");
                        // lint:allow(unwrap): the two scalars were pushed above
                        let log_likelihood = stats.data.pop().expect("piggybacked scalar");
                        for (c, &w) in wj.iter().enumerate() {
                            let idx = stats.layout.weight_index(c);
                            stats.data[idx] = w;
                        }
                        Some([log_likelihood, complete_ll])
                    }
                    Exchange::Pipelined => unreachable!("handled above"),
                };
                comm.enter_phase("mstep");
                let mops = stats_to_classes_into(model, stats, classes);
                comm.work(mops);
                comm.exit_phase();
                packed
            }
            Strategy::WtsOnly => {
                wts_only_mstep(comm, model, view, wts, stats, flat, classes, j);
                None
            }
        };

        // ---- update_approximations -----------------------------------
        // Two scalars must become global: the log likelihood and the
        // complete log likelihood. The paper folds this into the
        // (negligible) update_approximations step; the fused exchanges
        // have already combined them on the statistics wire.
        match packed {
            Some(s) => s,
            None => {
                let mut s = [e.log_likelihood, e.complete_ll];
                comm.enter_phase("allreduce");
                comm.allreduce_f64s(&mut s, ReduceOp::Sum);
                comm.exit_phase();
                s
            }
        }
    };
    let approx = evaluate(model, stats, scalars[0], scalars[1]);
    comm.work((j * stats.layout.stride) as u64);

    // The new parameters were derived *independently* on every rank from
    // the combined statistics. When replication checking is on, prove they
    // are still bitwise identical — the semantics-preservation property
    // the paper's design rests on — before the next cycle builds on them.
    if comm.checks_replication() {
        flat.clear();
        for class in classes.iter() {
            class.to_flat(flat);
        }
        comm.verify_replicated("updated class parameters", flat);
        comm.verify_replicated("cycle scores", &scalars);
    }

    approx
}

/// The overlapped cycle (the [`Exchange::Pipelined`] arm): one fused
/// single-pass E+M kernel produces the weights and the local statistics
/// together; then w_j and the statistics leave as *non-blocking*
/// collectives, and each class's parameters are derived while later
/// chunks are still on the wire. Returns the global `[log_likelihood,
/// complete_ll]` scalars.
///
/// Bitwise identical to the blocking [`Exchange::Fused`] cycle for every
/// allreduce algorithm, by construction:
/// * The fused kernel's weights, scalars, and statistics are bitwise
///   equal to the two-pass form (carried-chain tiling; see
///   `update_wts_and_stats_into`).
/// * w_j travels as its own j-length collective with the machine's
///   algorithm — identical geometry to the blocking path.
/// * The statistics buffer (weight slots zeroed, the two log-likelihood
///   scalars packed on the end) resolves its effective algorithm at the
///   full `L + 2` length, exactly where the blocking call would. When
///   that algorithm reduces element-wise independently of buffer
///   geometry (Linear, OrderedLinear, RecursiveDoubling) *and* the
///   predicted extra per-message cost of j chunks is covered by the
///   derive compute it can hide, the buffer is split into per-class
///   chunks, each posted with the *resolved* algorithm forced — every
///   element sees the identical reduction chain it would inside one big
///   call. Ring and Rabenseifner fold orders depend on the element→chunk
///   mapping — and latency-bound machines make small chunks a net loss —
///   so those cases ship a single whole-buffer collective: no chunk
///   pipelining, but the fused kernel, packed scalars, and post/wait
///   overlap (w_j's wire hides behind the statistics post) still apply.
///
/// The only steady-state heap allocation in this cycle is the vector of
/// `Request` handles (`j + 1` of them) — documented in DESIGN.md §10;
/// everything else reuses the [`CycleWorkspace`] buffers.
#[allow(clippy::too_many_arguments)]
fn pipelined_cycle<C: Communicator>(
    comm: &mut C,
    model: &Model,
    view: &DataView<'_>,
    classes: &mut Vec<ClassParams>,
    wts: &mut WtsMatrix,
    estep: &mut EStepScratch,
    stats: &mut SuffStats,
    accum: &mut Vec<f64>,
) -> [f64; 2] {
    let j = classes.len();

    // ---- fused update_wts + statistics accumulation (one pass) -------
    comm.enter_phase("estep");
    let (e, stat_ops) = update_wts_and_stats_into(model, view, classes, wts, estep, stats, accum);
    comm.work(e.ops);
    comm.exit_phase();
    // The statistics ops are charged under "mstep" so the phase rows stay
    // comparable with the two-pass strategies.
    comm.enter_phase("mstep");
    comm.work(stat_ops);
    comm.exit_phase();

    // ---- post the exchanges ------------------------------------------
    comm.enter_phase("allreduce");
    let mut wj_req = comm.iallreduce_f64s(&mut estep.class_weight_sums, ReduceOp::Sum);
    comm.exit_phase();

    // Weight slots travel on the w_j wire; zero them here and piggyback
    // the two log-likelihood scalars, as in the blocking Fused arm.
    for c in 0..j {
        stats.data[stats.layout.weight_index(c)] = 0.0;
    }
    stats.data.push(e.log_likelihood);
    stats.data.push(e.complete_ll);
    let full_len = stats.data.len();

    let algo = {
        let machine = comm.machine();
        match machine.allreduce {
            AllreduceAlgo::Auto => select_allreduce(machine.p, full_len, &machine.network),
            a => a,
        }
    };
    let chunkable = matches!(
        algo,
        AllreduceAlgo::Linear | AllreduceAlgo::OrderedLinear | AllreduceAlgo::RecursiveDoubling
    ) && {
        // Size-adaptive, like `AllreduceAlgo::Auto`: splitting into j
        // chunks multiplies the per-message fixed costs (LogGP L and o),
        // and pipelining can hide at most the per-class derive compute
        // behind the extra messages. Chunk only when that compute covers
        // the predicted extra cost — on latency-bound machines with small
        // per-class payloads, the whole buffer goes as one collective.
        // Every input is replicated, so all ranks take the same branch.
        let machine = comm.machine();
        let stride = stats.layout.stride;
        let whole = predicted_allreduce_cost(algo, machine.p, full_len, &machine.network);
        let split = (j - 1) as f64
            * predicted_allreduce_cost(algo, machine.p, stride, &machine.network)
            + predicted_allreduce_cost(algo, machine.p, stride + 2, &machine.network);
        let hideable = (j * stride) as f64 * machine.compute.sec_per_op;
        split - whole <= hideable
    };

    comm.enter_phase("allreduce");
    let mut chunk_reqs = Vec::with_capacity(if chunkable { j } else { 1 });
    if chunkable {
        for c in 0..j {
            let range = stats.layout.class_range(c);
            // The last chunk carries the two packed scalars.
            let range = if c == j - 1 { range.start..full_len } else { range };
            chunk_reqs.push(comm.iallreduce_f64s_with(&mut stats.data[range], ReduceOp::Sum, algo));
        }
    } else {
        chunk_reqs.push(comm.iallreduce_f64s(&mut stats.data, ReduceOp::Sum));
    }
    comm.exit_phase();

    // ---- wait / install / derive, overlapped -------------------------
    comm.enter_phase("allreduce");
    comm.wait(&mut wj_req);
    comm.exit_phase();
    comm.verify_replicated("class weight sums w_j", &estep.class_weight_sums);

    // Identical on every rank (class shapes are replicated), so this
    // branch — and with it the collective schedule — matches across ranks.
    let in_place = classes.iter().all(|c| c.terms.len() == model.groups.len());
    if chunkable && in_place {
        for (c, class) in classes.iter_mut().enumerate() {
            comm.enter_phase("allreduce");
            comm.wait(&mut chunk_reqs[c]);
            comm.exit_phase();
            stats.data[stats.layout.weight_index(c)] = estep.class_weight_sums[c];
            comm.enter_phase("mstep");
            let mops = stats_to_class_into(model, stats, c, class);
            comm.work(mops);
            comm.exit_phase();
        }
    } else {
        comm.enter_phase("allreduce");
        // The reductions land in place; waitall's per-request payloads
        // only confirm every request completed.
        let completions = comm.waitall(&mut chunk_reqs);
        debug_assert_eq!(completions.len(), chunk_reqs.len());
        comm.exit_phase();
        for (c, &w) in estep.class_weight_sums.iter().enumerate() {
            stats.data[stats.layout.weight_index(c)] = w;
        }
        comm.enter_phase("mstep");
        let mops = stats_to_classes_into(model, stats, classes);
        comm.work(mops);
        comm.exit_phase();
    }

    // Pop the two reduced scalars and restore the statistics length
    // (capacity is retained for the next cycle).
    // lint:allow(unwrap): the two scalars were pushed above
    let complete_ll = stats.data.pop().expect("piggybacked scalar");
    // lint:allow(unwrap): the two scalars were pushed above
    let log_likelihood = stats.data.pop().expect("piggybacked scalar");
    debug_assert_eq!(stats.data.len(), stats.layout.len());
    [log_likelihood, complete_ll]
}

/// The Miller & Guo-style M-step: gather the full weight matrix to rank 0,
/// compute statistics and parameters there against the full dataset, then
/// broadcast the classes. The gathered matrix is `n × J` doubles — the
/// bandwidth cost that motivates the paper's fully-parallel design.
///
/// `stats` arrives zeroed (from [`CycleWorkspace::reset_stats`]) and leaves
/// holding the global statistics on every rank; `flat` is a reusable
/// payload buffer; `classes` is replaced with the broadcast parameters.
#[allow(clippy::too_many_arguments)]
fn wts_only_mstep<C: Communicator>(
    comm: &mut C,
    model: &Model,
    view: &DataView<'_>,
    wts: &WtsMatrix,
    stats: &mut SuffStats,
    flat: &mut Vec<f64>,
    classes: &mut Vec<ClassParams>,
    j: usize,
) {
    let n_local = wts.n_items();
    // The master needs each rank's partition size to unpack the gathered
    // matrix; learn them on the wire rather than assuming a decomposition
    // (Block and Weighted partitionings both produce contiguous
    // rank-ordered ranges). The counts travel as raw bit patterns inside
    // f64 payloads — `from_bits`/`to_bits` round-trips exactly, with no
    // integer-to-float precision cliff at 2^53.
    comm.enter_phase("allreduce");
    let sizes = comm.gather_f64s(0, &[f64::from_bits(n_local as u64)]);
    // Flatten column-major local weights: [class0 col .. class{J-1} col].
    flat.clear();
    for c in 0..j {
        flat.extend_from_slice(wts.class_column(c));
    }
    let gathered = comm.gather_f64s(0, flat);
    comm.exit_phase();

    let flat_classes_len = model.class_param_len() * j;
    // Both gathers root at rank 0, so they return `Some` on exactly the
    // same rank: destructure jointly instead of `expect`ing the second —
    // no panic path inside the rank closure.
    if let (Some(all), Some(sizes)) = (gathered, sizes) {
        // Root: rebuild the global weight matrix. Ranks contributed in
        // rank order; rank r's block is n_r × J column-major.
        let full = root_view(view);
        let n_total = full.len();
        let mut global_wts = WtsMatrix::new(n_total, j);
        let mut offset = 0;
        let mut start = 0usize;
        for &size in &sizes {
            let n_r = size.to_bits() as usize;
            for c in 0..j {
                let src = &all[offset + c * n_r..offset + (c + 1) * n_r];
                global_wts.class_column_mut(c)[start..start + n_r].copy_from_slice(src);
            }
            offset += n_r * j;
            start += n_r;
        }
        debug_assert_eq!(start, n_total, "partitions must cover the dataset");
        comm.enter_phase("mstep");
        let ops = stats.accumulate(model, &full, &global_wts);
        comm.work(ops);
        let mops = stats_to_classes_into(model, stats, classes);
        comm.work(mops);
        comm.exit_phase();
        flat.clear();
        for class in classes.iter() {
            class.to_flat(flat);
        }
        debug_assert_eq!(flat.len(), flat_classes_len, "flat classes length");
    } else {
        flat.clear();
        flat.resize(flat_classes_len, 0.0);
    }
    comm.enter_phase("allreduce");
    comm.broadcast_f64s(0, flat);
    comm.exit_phase();
    // Every rank (root included) derives its classes from the broadcast
    // payload, so all ranks share one code path and stay bitwise equal.
    // In place: the last per-cycle `Vec<ClassParams>` allocation removed.
    classes_from_flat_into(model, j, flat, classes);

    // Non-root ranks also need the global statistics for the shared
    // approximation step; broadcast them too (small next to the gather).
    comm.enter_phase("allreduce");
    comm.broadcast_f64s(0, &mut stats.data);
    comm.exit_phase();
}

/// Recover the full-dataset view from a partition view. Only valid on the
/// rank that conceptually owns the whole dataset (rank 0 in the WtsOnly
/// strategy); in this simulation every rank borrows the same `Dataset`, so
/// this is a reslice, but the communication cost of getting the weights to
/// rank 0 is charged for real.
fn root_view<'a>(view: &DataView<'a>) -> DataView<'a> {
    view.whole_dataset()
}

// ---- Sub-communicator (group) variants ---------------------------------
//
// The same building blocks over a `GroupCommunicator`: used by the
// shrink-recovery path (survivors-only sub-communicator, `crate::recover`)
// and by the fleet-parallel model search (one EM sub-search per fleet,
// `crate::fleet`). The group allreduce is recursive doubling with the
// standard non-power-of-two parking, so for a power-of-two group running
// the fused exchange these produce bitwise the same numbers as the
// world-communicator driver on a machine of the group's size.

/// [`build_model`] over a sub-communicator: local statistics on the
/// group's partition, combined with a group allreduce, so every member
/// derives the identical model.
pub(crate) fn sub_build_model<G: GroupCommunicator>(
    sub: &mut G,
    view: &DataView<'_>,
    correlated_blocks: &[Vec<usize>],
) -> Model {
    let local = GlobalStats::compute(view);
    sub.work((view.len() * view.schema().len()) as u64);
    let mut flat = local.to_flat();
    sub.allreduce_f64s(&mut flat, ReduceOp::Sum);
    let global = GlobalStats::from_flat(&local, &flat);
    if correlated_blocks.is_empty() {
        Model::new(view.schema().clone(), &global)
    } else {
        Model::with_correlated(view.schema().clone(), &global, correlated_blocks)
    }
}

/// [`init_classes_parallel`] over a sub-communicator: the group's lowest
/// rank seeds and broadcasts.
pub(crate) fn sub_init_classes<G: GroupCommunicator>(
    sub: &mut G,
    model: &Model,
    view: &DataView<'_>,
    j: usize,
    seed: u64,
    classes: &mut Vec<ClassParams>,
) {
    let flat_len = model.class_param_len() * j;
    let mut flat = if sub.rank() == 0 {
        let init = init_classes(model, view, j, seed);
        classes_to_flat(&init)
    } else {
        vec![0.0; flat_len]
    };
    sub.broadcast_f64s(0, &mut flat);
    classes_from_flat_into(model, j, &flat, classes);
}

/// One EM cycle over a sub-communicator, in the fused-exchange shape:
/// E-step, one w_j group allreduce, statistics accumulation, one combined
/// statistics + scalars group allreduce, parameter derivation, evaluation.
/// The compact blocking form is fine on these paths (recovery, fleet
/// sub-searches): correctness — every member bitwise identical — is what
/// matters, not overlap.
pub(crate) fn sub_base_cycle<G: GroupCommunicator>(
    sub: &mut G,
    model: &Model,
    view: &DataView<'_>,
    classes: &mut Vec<ClassParams>,
    ws: &mut CycleWorkspace,
) -> Approximation {
    let j = classes.len();
    ws.reset_stats(model, j);
    let CycleWorkspace { wts, estep, stats, .. } = ws;
    let Some(stats) = stats else { unreachable!("reset_stats installs the statistics buffer") };

    let e = update_wts_into(model, view, classes, wts, estep);
    sub.work(e.ops);
    sub.allreduce_f64s(&mut estep.class_weight_sums, ReduceOp::Sum);

    let ops = stats.accumulate(model, view, wts);
    sub.work(ops);
    // As in the world-communicator Fused exchange: the class-weight slots
    // already traveled on the w_j wire, so zero them out, and the two
    // cycle scalars piggyback on the end of the statistics message.
    for c in 0..j {
        stats.data[stats.layout.weight_index(c)] = 0.0;
    }
    stats.data.push(e.log_likelihood);
    stats.data.push(e.complete_ll);
    sub.allreduce_f64s(&mut stats.data, ReduceOp::Sum);
    // lint:allow(unwrap): the two scalars were pushed above
    let complete_ll = stats.data.pop().expect("piggybacked scalar");
    // lint:allow(unwrap): the two scalars were pushed above
    let log_likelihood = stats.data.pop().expect("piggybacked scalar");
    for (c, &w) in estep.class_weight_sums.iter().enumerate() {
        stats.data[stats.layout.weight_index(c)] = w;
    }
    let mops = stats_to_classes_into(model, stats, classes);
    sub.work(mops);
    let approx = evaluate(model, stats, log_likelihood, complete_ll);
    sub.work((j * stats.layout.stride) as u64);
    approx
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoclass::data::block_partition;
    use mpsim::{presets, run_spmd_default};

    #[test]
    fn build_model_agrees_across_ranks_and_with_sequential() {
        let data = datagen::paper_dataset(500, 42);
        let seq_stats = GlobalStats::compute(&data.full_view());
        let seq_model = Model::new(data.schema().clone(), &seq_stats);

        for p in [1usize, 2, 3, 5] {
            let spec = presets::zero_cost(p);
            let out = run_spmd_default(&spec, |comm| {
                let parts = block_partition(data.len(), comm.size());
                let part = &parts[comm.rank()];
                let view = data.view(part.start, part.end);
                build_model(comm, &view, &[])
            })
            .unwrap();
            for (r, m) in out.per_rank.iter().enumerate() {
                assert_eq!(m.n_total, seq_model.n_total, "p={p} rank={r}");
                // Priors are derived from the allreduced stats; tolerate
                // floating-point reduction-order differences only.
                for (a, b) in m.groups.iter().zip(&seq_model.groups) {
                    match (&a.prior, &b.prior) {
                        (
                            autoclass::model::TermPrior::Normal { mean0: m1, var0: v1, .. },
                            autoclass::model::TermPrior::Normal { mean0: m2, var0: v2, .. },
                        ) => {
                            assert!((m1 - m2).abs() < 1e-9, "p={p}");
                            assert!((v1 - v2).abs() < 1e-9, "p={p}");
                        }
                        _ => panic!("unexpected prior kind"),
                    }
                }
            }
            // All ranks bitwise identical to each other.
            for m in &out.per_rank {
                assert_eq!(m.groups, out.per_rank[0].groups);
            }
        }
    }

    #[test]
    fn init_broadcast_gives_all_ranks_rank0_classes() {
        let data = datagen::paper_dataset(300, 7);
        let spec = presets::zero_cost(4);
        let out = run_spmd_default(&spec, |comm| {
            let parts = block_partition(data.len(), comm.size());
            let part = &parts[comm.rank()];
            let view = data.view(part.start, part.end);
            let model = build_model(comm, &view, &[]);
            let mut classes = Vec::new();
            init_classes_parallel(comm, &model, &view, 5, 99, &mut classes);
            classes
        })
        .unwrap();
        for r in 1..4 {
            assert_eq!(out.per_rank[r], out.per_rank[0], "rank {r} differs");
        }
        assert_eq!(out.per_rank[0].len(), 5);
    }
}
