//! Checkpoint/restart and recovery-policy tests: the fault-tolerant
//! supervisor must turn every injected fault into either a bit-identical
//! recovered result or a typed error naming the culprit — never a hang,
//! never a panic, never silently different numbers.

use std::time::Duration;

use autoclass::model::classes_to_flat;
use autoclass::search::SearchConfig;
use mpsim::{presets, FaultAction, FaultPlan, FaultSpec, FaultTrigger, SimError, SimOptions};
use pautoclass::{
    run_search_ft, run_search_with, Exchange, FtConfig, ParallelConfig, ParallelOutcome,
    RecoveryPolicy, RunError, SearchCheckpoint, Strategy,
};
use proptest::prelude::*;

fn config(seed: u64) -> ParallelConfig {
    ParallelConfig {
        search: SearchConfig::quick(vec![3], seed),
        strategy: Strategy::Full { exchange: Exchange::Fused },
        ..ParallelConfig::default()
    }
}

fn ft(policy: RecoveryPolicy) -> FtConfig {
    FtConfig { checkpoint_every: 4, policy, max_restarts: 1 }
}

fn opts_with(plan: FaultPlan) -> SimOptions {
    SimOptions { recv_timeout: Duration::from_secs(20), fault: Some(plan), ..SimOptions::default() }
}

fn crash(rank: usize, seq: u64) -> FaultPlan {
    FaultPlan::new(vec![FaultSpec {
        rank,
        action: FaultAction::Crash,
        trigger: FaultTrigger::AtSendSeq(seq),
    }])
}

/// The best classification's score and parameters as raw bit patterns —
/// the strictest possible "same result" comparison.
fn result_bits(o: &ParallelOutcome) -> (u64, Vec<u64>) {
    let flat = classes_to_flat(&o.best.classes);
    (o.best.score().to_bits(), flat.iter().map(|v| v.to_bits()).collect())
}

#[test]
fn unfaulted_ft_run_matches_the_plain_search_bit_for_bit() {
    let data = datagen::paper_dataset(240, 7);
    let machine = presets::meiko_cs2(4);
    let cfg = config(11);
    let plain = run_search_with(&data, &machine, &cfg, &SimOptions::default()).unwrap();
    let ftc = ft(RecoveryPolicy::RestartFromCheckpoint);
    let out = run_search_ft(&data, &machine, &cfg, &ftc, &SimOptions::default()).unwrap();
    assert_eq!(out.attempts, 1);
    assert!(out.faults.is_empty());
    assert!(!out.shrunk);
    assert_eq!(out.survivors, 4);
    assert_eq!(
        result_bits(&out.outcome),
        result_bits(&plain),
        "checkpoints must not change numbers"
    );
    assert_eq!(out.outcome.cycles, plain.cycles);
    // ...but they do cost virtual time (the serialized bytes are charged
    // as work on every rank).
    assert!(out.outcome.elapsed >= plain.elapsed, "checkpoint work should not be free");
}

#[test]
fn crash_restart_recovers_bit_identically() {
    let data = datagen::paper_dataset(240, 7);
    let machine = presets::meiko_cs2(4);
    let cfg = config(11);
    let ftc = ft(RecoveryPolicy::RestartFromCheckpoint);
    let baseline = run_search_ft(&data, &machine, &cfg, &ftc, &SimOptions::default()).unwrap();

    let out = run_search_ft(&data, &machine, &cfg, &ftc, &opts_with(crash(1, 12))).unwrap();
    assert_eq!(out.attempts, 2, "one failed run plus the recovery");
    assert_eq!(out.faults.len(), 1);
    assert!(
        matches!(
            &out.faults[0],
            SimError::RankCrashed { rank: 1, .. } | SimError::PeerFailed { peer: 1, .. }
        ),
        "fault must name rank 1: {}",
        out.faults[0]
    );
    assert!(!out.shrunk);
    assert_eq!(
        result_bits(&out.outcome),
        result_bits(&baseline.outcome),
        "recovery must be bit-identical"
    );
    assert_eq!(out.outcome.cycles, baseline.outcome.cycles);
}

#[test]
fn corruption_restart_recovers_bit_identically() {
    let data = datagen::paper_dataset(240, 7);
    let machine = presets::meiko_cs2(4);
    let cfg = config(11);
    let ftc = ft(RecoveryPolicy::RestartFromCheckpoint);
    let baseline = run_search_ft(&data, &machine, &cfg, &ftc, &SimOptions::default()).unwrap();

    let plan = FaultPlan::new(vec![FaultSpec {
        rank: 1,
        action: FaultAction::Corrupt { dst: 0, byte: 5, mask: 0x20 },
        trigger: FaultTrigger::AtSendSeq(8),
    }]);
    let out = run_search_ft(&data, &machine, &cfg, &ftc, &opts_with(plan)).unwrap();
    assert_eq!(out.attempts, 2);
    assert!(
        matches!(&out.faults[0], SimError::PayloadCorrupt { from: 1, .. }),
        "fault must name the corrupting sender: {}",
        out.faults[0]
    );
    assert_eq!(result_bits(&out.outcome), result_bits(&baseline.outcome));
}

#[test]
fn abort_policy_surfaces_the_typed_culprit() {
    let data = datagen::paper_dataset(240, 7);
    let machine = presets::meiko_cs2(4);
    let cfg = config(11);
    let ftc = ft(RecoveryPolicy::Abort);
    let err = run_search_ft(&data, &machine, &cfg, &ftc, &opts_with(crash(1, 12))).unwrap_err();
    match err {
        RunError::Sim(SimError::RankCrashed { rank, seq, .. }) => {
            assert_eq!(rank, 1);
            assert!(seq <= 12, "crash at or before its trigger seq, got {seq}");
        }
        other => panic!("expected the crash diagnosis, got {other}"),
    }
}

#[test]
fn shrink_completes_on_the_survivors_and_reports_the_cost() {
    let data = datagen::paper_dataset(240, 7);
    let machine = presets::meiko_cs2(4);
    let cfg = config(11);
    let ftc = ft(RecoveryPolicy::ShrinkAndRedistribute);
    let out = run_search_ft(&data, &machine, &cfg, &ftc, &opts_with(crash(1, 12))).unwrap();
    assert_eq!(out.attempts, 2);
    assert!(out.shrunk);
    assert_eq!(out.survivors, 3, "P-1 ranks must finish the search");
    assert!(out.recovery_time > 0.0, "rebuild cost must land in the recovery bucket");
    assert!(out.outcome.best.n_classes() >= 2, "the degraded run still classifies");
    // The excluded rank does no searching: its elapsed time stops at the
    // communicator split, strictly before the survivors'.
    let excluded = &out.outcome.ranks[1];
    let max_elapsed = out.outcome.ranks.iter().map(|r| r.elapsed).fold(0.0, f64::max);
    assert!(excluded.elapsed < max_elapsed, "culprit must leave the computation");
}

#[test]
fn restart_without_any_checkpoint_replays_from_scratch() {
    let data = datagen::paper_dataset(240, 7);
    let machine = presets::meiko_cs2(4);
    let cfg = config(11);
    // checkpoint_every = 0 disables snapshots entirely.
    let ftc = FtConfig {
        checkpoint_every: 0,
        policy: RecoveryPolicy::RestartFromCheckpoint,
        max_restarts: 1,
    };
    let baseline = run_search_ft(&data, &machine, &cfg, &ftc, &SimOptions::default()).unwrap();
    let out = run_search_ft(&data, &machine, &cfg, &ftc, &opts_with(crash(2, 9))).unwrap();
    assert_eq!(out.attempts, 2);
    assert_eq!(result_bits(&out.outcome), result_bits(&baseline.outcome));
}

#[test]
fn a_recurring_fault_exhausts_the_restart_budget() {
    let data = datagen::paper_dataset(240, 7);
    let machine = presets::meiko_cs2(4);
    let cfg = config(11);
    let ftc = ft(RecoveryPolicy::RestartFromCheckpoint);
    // Two independent crashes. Rank 2 dies at send 5 — before the first
    // checkpoint — so attempt 1 fails and the restart replays from
    // scratch; rank 1's crash at send 12 then fires on attempt 2,
    // exhausting the budget, and must surface as the final error.
    let plan = FaultPlan::new(vec![
        FaultSpec { rank: 2, action: FaultAction::Crash, trigger: FaultTrigger::AtSendSeq(5) },
        FaultSpec { rank: 1, action: FaultAction::Crash, trigger: FaultTrigger::AtSendSeq(12) },
    ]);
    let err = run_search_ft(&data, &machine, &cfg, &ftc, &opts_with(plan)).unwrap_err();
    assert!(
        matches!(
            err,
            RunError::Sim(
                SimError::RankCrashed { .. }
                    | SimError::PeerFailed { .. }
                    | SimError::Timeout { .. }
            )
        ),
        "budget exhaustion must return the typed fault, got {err}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    // Satellite: checkpoint round-trips are exact for any shape the
    // search can produce (any schedule position, any parameter bits).
    #[test]
    fn checkpoint_round_trip_is_bit_exact(
        ji in 0usize..5,
        try_idx in 0usize..4,
        cycle in 0usize..200,
        seed in 0u64..u64::MAX,
        raw in prop::collection::vec(0u64..1_000_000_000, 1..60),
    ) {
        let classes_flat: Vec<f64> =
            raw.iter().map(|&v| (v as f64) * 0.125e-3 - 40_000.0).collect();
        let ck = SearchCheckpoint {
            ji,
            try_idx,
            cycle,
            j_current: 1 + classes_flat.len() % 7,
            seed,
            prev_ll: if cycle == 0 { f64::NEG_INFINITY } else { -(cycle as f64) * 13.5 },
            approx: [-1.0e4, -1.1e4, -1.2e4, -1.3e4],
            total_cycles: cycle * 3,
            classes_flat,
            best: Vec::new(),
        };
        let back = SearchCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        prop_assert_eq!(back, ck);
    }

    // Satellite: no truncation or byte flip may panic the decoder, and
    // every one must be rejected with a typed error.
    #[test]
    fn mangled_checkpoints_are_typed_errors_never_panics(
        cut in 0usize..1_000,
        pos in 0usize..1_000,
        mask in 1u64..256,
    ) {
        let ck = SearchCheckpoint {
            ji: 2,
            try_idx: 0,
            cycle: 9,
            j_current: 3,
            seed: 77,
            prev_ll: -512.25,
            approx: [-1.0, -2.0, -3.0, -4.0],
            total_cycles: 21,
            classes_flat: vec![0.5; 30],
            best: Vec::new(),
        };
        let bytes = ck.to_bytes();
        let cut = cut % bytes.len();
        prop_assert!(
            SearchCheckpoint::from_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes must be rejected"
        );
        let mut flipped = bytes.clone();
        let pos = pos % bytes.len();
        flipped[pos] ^= mask as u8;
        prop_assert!(
            SearchCheckpoint::from_bytes(&flipped).is_err(),
            "byte flip at {pos} must be rejected"
        );
    }
}
