//! Checkpoint/restart and recovery-policy tests: the fault-tolerant
//! supervisor must turn every injected fault into either a bit-identical
//! recovered result or a typed error naming the culprit — never a hang,
//! never a panic, never silently different numbers.

use std::time::Duration;

use autoclass::model::classes_to_flat;
use autoclass::search::SearchConfig;
use mpsim::{
    presets, CommError, FaultAction, FaultPlan, FaultSpec, FaultTrigger, SimError, SimOptions,
};
use pautoclass::{
    corrupt_shard, decode_shard, from_shards, run_search_ft, run_search_ft_native, run_search_with,
    to_shards, CheckpointError, Exchange, FtConfig, NativeOptions, ParallelConfig, ParallelOutcome,
    RecoveryPolicy, RunError, SearchCheckpoint, ShardFault, StandbyConfig, Strategy,
};
use proptest::prelude::*;

fn config(seed: u64) -> ParallelConfig {
    ParallelConfig {
        search: SearchConfig::quick(vec![3], seed),
        strategy: Strategy::Full { exchange: Exchange::Fused },
        ..ParallelConfig::default()
    }
}

fn ft(policy: RecoveryPolicy) -> FtConfig {
    FtConfig { checkpoint_every: 4, policy, max_restarts: 1, ..FtConfig::default() }
}

fn opts_with(plan: FaultPlan) -> SimOptions {
    SimOptions { recv_timeout: Duration::from_secs(20), fault: Some(plan), ..SimOptions::default() }
}

fn crash(rank: usize, seq: u64) -> FaultPlan {
    FaultPlan::new(vec![FaultSpec {
        rank,
        action: FaultAction::Crash,
        trigger: FaultTrigger::AtSendSeq(seq),
    }])
}

/// The best classification's score and parameters as raw bit patterns —
/// the strictest possible "same result" comparison.
fn result_bits(o: &ParallelOutcome) -> (u64, Vec<u64>) {
    let flat = classes_to_flat(&o.best.classes);
    (o.best.score().to_bits(), flat.iter().map(|v| v.to_bits()).collect())
}

#[test]
fn unfaulted_ft_run_matches_the_plain_search_bit_for_bit() {
    let data = datagen::paper_dataset(240, 7);
    let machine = presets::meiko_cs2(4);
    let cfg = config(11);
    let plain = run_search_with(&data, &machine, &cfg, &SimOptions::default()).unwrap();
    let ftc = ft(RecoveryPolicy::RestartFromCheckpoint);
    let out = run_search_ft(&data, &machine, &cfg, &ftc, &SimOptions::default()).unwrap();
    assert_eq!(out.attempts, 1);
    assert!(out.faults.is_empty());
    assert!(!out.shrunk);
    assert_eq!(out.survivors, 4);
    assert_eq!(
        result_bits(&out.outcome),
        result_bits(&plain),
        "checkpoints must not change numbers"
    );
    assert_eq!(out.outcome.cycles, plain.cycles);
    // ...but they do cost virtual time (the serialized bytes are charged
    // as work on every rank).
    assert!(out.outcome.elapsed >= plain.elapsed, "checkpoint work should not be free");
}

#[test]
fn crash_restart_recovers_bit_identically() {
    let data = datagen::paper_dataset(240, 7);
    let machine = presets::meiko_cs2(4);
    let cfg = config(11);
    let ftc = ft(RecoveryPolicy::RestartFromCheckpoint);
    let baseline = run_search_ft(&data, &machine, &cfg, &ftc, &SimOptions::default()).unwrap();

    let out = run_search_ft(&data, &machine, &cfg, &ftc, &opts_with(crash(1, 12))).unwrap();
    assert_eq!(out.attempts, 2, "one failed run plus the recovery");
    assert_eq!(out.faults.len(), 1);
    assert!(
        matches!(
            &out.faults[0],
            SimError::RankCrashed { rank: 1, .. } | SimError::PeerFailed { peer: 1, .. }
        ),
        "fault must name rank 1: {}",
        out.faults[0]
    );
    assert!(!out.shrunk);
    assert_eq!(
        result_bits(&out.outcome),
        result_bits(&baseline.outcome),
        "recovery must be bit-identical"
    );
    assert_eq!(out.outcome.cycles, baseline.outcome.cycles);
}

#[test]
fn corruption_restart_recovers_bit_identically() {
    let data = datagen::paper_dataset(240, 7);
    let machine = presets::meiko_cs2(4);
    let cfg = config(11);
    let ftc = ft(RecoveryPolicy::RestartFromCheckpoint);
    let baseline = run_search_ft(&data, &machine, &cfg, &ftc, &SimOptions::default()).unwrap();

    let plan = FaultPlan::new(vec![FaultSpec {
        rank: 1,
        action: FaultAction::Corrupt { dst: 0, byte: 5, mask: 0x20 },
        trigger: FaultTrigger::AtSendSeq(8),
    }]);
    let out = run_search_ft(&data, &machine, &cfg, &ftc, &opts_with(plan)).unwrap();
    assert_eq!(out.attempts, 2);
    assert!(
        matches!(&out.faults[0], SimError::PayloadCorrupt { from: 1, .. }),
        "fault must name the corrupting sender: {}",
        out.faults[0]
    );
    assert_eq!(result_bits(&out.outcome), result_bits(&baseline.outcome));
}

#[test]
fn abort_policy_surfaces_the_typed_culprit() {
    let data = datagen::paper_dataset(240, 7);
    let machine = presets::meiko_cs2(4);
    let cfg = config(11);
    let ftc = ft(RecoveryPolicy::Abort);
    let err = run_search_ft(&data, &machine, &cfg, &ftc, &opts_with(crash(1, 12))).unwrap_err();
    match err {
        RunError::Sim(SimError::RankCrashed { rank, seq, .. }) => {
            assert_eq!(rank, 1);
            assert!(seq <= 12, "crash at or before its trigger seq, got {seq}");
        }
        other => panic!("expected the crash diagnosis, got {other}"),
    }
}

#[test]
fn shrink_completes_on_the_survivors_and_reports_the_cost() {
    let data = datagen::paper_dataset(240, 7);
    let machine = presets::meiko_cs2(4);
    let cfg = config(11);
    let ftc = ft(RecoveryPolicy::ShrinkAndRedistribute);
    let out = run_search_ft(&data, &machine, &cfg, &ftc, &opts_with(crash(1, 12))).unwrap();
    assert_eq!(out.attempts, 2);
    assert!(out.shrunk);
    assert_eq!(out.survivors, 3, "P-1 ranks must finish the search");
    assert!(out.recovery_time > 0.0, "rebuild cost must land in the recovery bucket");
    assert!(out.outcome.best.n_classes() >= 2, "the degraded run still classifies");
    // The excluded rank does no searching: its elapsed time stops at the
    // communicator split, strictly before the survivors'.
    let excluded = &out.outcome.ranks[1];
    let max_elapsed = out.outcome.ranks.iter().map(|r| r.elapsed).fold(0.0, f64::max);
    assert!(excluded.elapsed < max_elapsed, "culprit must leave the computation");
}

#[test]
fn restart_without_any_checkpoint_replays_from_scratch() {
    let data = datagen::paper_dataset(240, 7);
    let machine = presets::meiko_cs2(4);
    let cfg = config(11);
    // checkpoint_every = 0 disables snapshots entirely.
    let ftc = FtConfig {
        checkpoint_every: 0,
        policy: RecoveryPolicy::RestartFromCheckpoint,
        max_restarts: 1,
        ..FtConfig::default()
    };
    let baseline = run_search_ft(&data, &machine, &cfg, &ftc, &SimOptions::default()).unwrap();
    let out = run_search_ft(&data, &machine, &cfg, &ftc, &opts_with(crash(2, 9))).unwrap();
    assert_eq!(out.attempts, 2);
    assert_eq!(result_bits(&out.outcome), result_bits(&baseline.outcome));
}

#[test]
fn a_recurring_fault_exhausts_the_restart_budget() {
    let data = datagen::paper_dataset(240, 7);
    let machine = presets::meiko_cs2(4);
    let cfg = config(11);
    let ftc = ft(RecoveryPolicy::RestartFromCheckpoint);
    // Two independent crashes. Rank 2 dies at send 5 — before the first
    // checkpoint — so attempt 1 fails and the restart replays from
    // scratch; rank 1's crash at send 12 then fires on attempt 2,
    // exhausting the budget, and must surface as the final error.
    let plan = FaultPlan::new(vec![
        FaultSpec { rank: 2, action: FaultAction::Crash, trigger: FaultTrigger::AtSendSeq(5) },
        FaultSpec { rank: 1, action: FaultAction::Crash, trigger: FaultTrigger::AtSendSeq(12) },
    ]);
    let err = run_search_ft(&data, &machine, &cfg, &ftc, &opts_with(plan)).unwrap_err();
    assert!(
        matches!(
            err,
            RunError::Sim(
                SimError::RankCrashed { .. }
                    | SimError::PeerFailed { .. }
                    | SimError::Timeout { .. }
            )
        ),
        "budget exhaustion must return the typed fault, got {err}"
    );
}

#[test]
fn promote_spare_preserves_p_and_recovers_bit_identically() {
    let data = datagen::paper_dataset(240, 7);
    let machine = presets::meiko_cs2(4);
    let cfg = config(11);
    let ftc = ft(RecoveryPolicy::PromoteSpare);
    let baseline = run_search_ft(&data, &machine, &cfg, &ftc, &SimOptions::default()).unwrap();
    assert_eq!(baseline.attempts, 1);
    assert_eq!(baseline.promotions, 0, "no fault, no promotion");

    let out = run_search_ft(&data, &machine, &cfg, &ftc, &opts_with(crash(1, 13))).unwrap();
    assert_eq!(out.attempts, 2, "one failed run plus the promoted retry");
    assert_eq!(out.promotions, 1, "exactly one spare consumed");
    assert_eq!(out.replays, 0);
    assert!(!out.fell_back, "a healthy spare pool must not fall back");
    assert!(!out.shrunk, "promotion must preserve P");
    assert_eq!(out.survivors, 4);
    assert!(out.recovery_time > 0.0, "shard load + handshake must be charged");
    assert_eq!(
        result_bits(&out.outcome),
        result_bits(&baseline.outcome),
        "a promoted spare must reproduce the fault-free numbers bit for bit"
    );
    assert_eq!(out.outcome.cycles, baseline.outcome.cycles);
}

#[test]
fn promote_spare_on_the_native_backend_matches_the_fault_free_run() {
    let data = datagen::paper_dataset(240, 7);
    let machine = presets::meiko_cs2(4);
    let cfg = config(11);
    let ftc = ft(RecoveryPolicy::PromoteSpare);
    let baseline =
        run_search_ft_native(&data, &machine, &cfg, &ftc, &NativeOptions::default()).unwrap();
    let opts = NativeOptions { fault: Some(crash(1, 13)), ..NativeOptions::default() };
    let out = run_search_ft_native(&data, &machine, &cfg, &ftc, &opts).unwrap();
    assert_eq!(out.attempts, 2);
    assert_eq!(out.promotions, 1);
    assert!(!out.fell_back);
    assert!(!out.shrunk);
    assert_eq!(out.survivors, 4, "promotion on real threads must preserve P");
    assert_eq!(
        result_bits(&out.outcome),
        result_bits(&baseline.outcome),
        "native promotion must be bit-identical to the native fault-free run"
    );
}

#[test]
fn local_replay_is_strictly_cheaper_than_a_full_rollback() {
    let data = datagen::paper_dataset(240, 7);
    let machine = presets::meiko_cs2(4);
    let cfg = config(11);
    let restart_cfg = ft(RecoveryPolicy::RestartFromCheckpoint);
    let baseline =
        run_search_ft(&data, &machine, &cfg, &restart_cfg, &SimOptions::default()).unwrap();

    // The identical fault cell under both policies.
    let restart =
        run_search_ft(&data, &machine, &cfg, &restart_cfg, &opts_with(crash(1, 13))).unwrap();
    let replay_cfg = ft(RecoveryPolicy::LocalReplay);
    let replay =
        run_search_ft(&data, &machine, &cfg, &replay_cfg, &opts_with(crash(1, 13))).unwrap();

    assert_eq!(restart.attempts, 2);
    assert_eq!(replay.attempts, 2);
    assert_eq!(replay.replays, 1, "the log must cover the gap back to the checkpoint");
    assert!(!replay.fell_back, "no ring eviction at the default capacity");
    assert!(restart.recovery_time > 0.0);
    assert!(
        replay.recovery_time < restart.recovery_time,
        "replaying {} envelopes locally must undercut the global rollback: {} vs {}",
        replay.replays,
        replay.recovery_time,
        restart.recovery_time
    );
    assert_eq!(result_bits(&replay.outcome), result_bits(&baseline.outcome));
    assert_eq!(result_bits(&restart.outcome), result_bits(&baseline.outcome));
}

#[test]
fn exhausted_spares_fall_back_deterministically() {
    let data = datagen::paper_dataset(240, 7);
    let machine = presets::meiko_cs2(4);
    let cfg = config(11);
    // One spare (the StandbyConfig default), two independent crashes on
    // the same logical rank: the first consumes the spare, the second
    // finds the pool empty and must take the fallback lattice.
    let ftc = FtConfig {
        checkpoint_every: 4,
        policy: RecoveryPolicy::PromoteSpare,
        max_restarts: 2,
        ..FtConfig::default()
    };
    let baseline = run_search_ft(&data, &machine, &cfg, &ftc, &SimOptions::default()).unwrap();
    let plan = || {
        FaultPlan::new(vec![
            FaultSpec { rank: 1, action: FaultAction::Crash, trigger: FaultTrigger::AtSendSeq(5) },
            FaultSpec { rank: 1, action: FaultAction::Crash, trigger: FaultTrigger::AtSendSeq(9) },
        ])
    };
    let out = run_search_ft(&data, &machine, &cfg, &ftc, &opts_with(plan())).unwrap();
    assert_eq!(out.attempts, 3, "crash, promoted retry, fallback restart");
    assert_eq!(out.promotions, 1, "only one spare existed to consume");
    assert!(out.fell_back, "the empty pool must be reported, not hidden");
    assert!(!out.shrunk, "the fallback is a restart, not a shrink");
    assert_eq!(out.faults.len(), 2);
    assert_eq!(result_bits(&out.outcome), result_bits(&baseline.outcome));

    // The fallback decision is part of the deterministic contract: a
    // second run of the same cell must retrace it exactly.
    let again = run_search_ft(&data, &machine, &cfg, &ftc, &opts_with(plan())).unwrap();
    assert_eq!(
        (again.attempts, again.promotions, again.fell_back),
        (out.attempts, out.promotions, out.fell_back)
    );
    assert_eq!(result_bits(&again.outcome), result_bits(&out.outcome));
}

#[test]
fn a_corrupt_shard_is_refused_and_the_promotion_falls_back() {
    let data = datagen::paper_dataset(240, 7);
    let machine = presets::meiko_cs2(4);
    let cfg = config(11);
    let culprit = 1usize;
    let ftc = FtConfig {
        standby: StandbyConfig {
            shard_fault: Some(ShardFault { logical_rank: culprit, byte: 7, mask: 0x40 }),
            ..StandbyConfig::default()
        },
        ..ft(RecoveryPolicy::PromoteSpare)
    };
    let baseline = run_search_ft(
        &data,
        &machine,
        &cfg,
        &ft(RecoveryPolicy::PromoteSpare),
        &SimOptions::default(),
    )
    .unwrap();
    let out = run_search_ft(&data, &machine, &cfg, &ftc, &opts_with(crash(culprit, 13))).unwrap();
    assert_eq!(out.attempts, 2);
    assert_eq!(out.promotions, 0, "a corrupt shard must not consume the spare");
    assert!(out.fell_back, "integrity failure must take the fallback restart");
    assert!(
        out.faults
            .iter()
            .any(|f| matches!(f, SimError::PayloadCorrupt { from, .. } if *from == culprit)),
        "the diagnosis must name the shard's logical rank: {:?}",
        out.faults
    );
    assert_eq!(
        result_bits(&out.outcome),
        result_bits(&baseline.outcome),
        "the intact full copy must still recover bit-identically"
    );
}

#[test]
fn the_native_backend_refuses_local_replay_with_a_typed_error() {
    let data = datagen::paper_dataset(240, 7);
    let machine = presets::meiko_cs2(4);
    let cfg = config(11);
    let ftc = ft(RecoveryPolicy::LocalReplay);
    let err =
        run_search_ft_native(&data, &machine, &cfg, &ftc, &NativeOptions::default()).unwrap_err();
    match err {
        RunError::Comm(CommError::Unsupported { what, backend }) => {
            assert_eq!(backend, "native");
            assert!(what.contains("LocalReplay"), "refusal must name the policy: {what}");
        }
        other => panic!("expected the typed refusal, got {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    // Satellite: shard corruption at *any* offset under *any* mask is
    // detected by the per-shard checksum and attributed to the owning
    // logical rank; the untouched shard set still reassembles exactly.
    #[test]
    fn any_shard_corruption_is_a_typed_error_naming_the_owner(
        p in 1usize..6,
        pick in 0usize..6,
        byte in 0usize..10_000,
        mask in 0u64..256,
    ) {
        let ck = SearchCheckpoint {
            ji: 1,
            try_idx: 2,
            cycle: 17,
            j_current: 4,
            seed: 4242,
            prev_ll: -321.5,
            approx: [-1.0e3, -1.1e3, -1.2e3, -1.3e3],
            total_cycles: 51,
            classes_flat: vec![0.25; 40],
            best: Vec::new(),
        };
        let bytes = ck.to_bytes();
        let shards = to_shards(&bytes, p);
        prop_assert_eq!(&from_shards(&shards).unwrap(), &bytes, "intact set must round-trip");

        let victim = pick % p;
        let mut damaged = shards[victim].clone();
        corrupt_shard(&mut damaged, byte, mask as u8);
        match decode_shard(&damaged) {
            Err(CheckpointError::ShardCorrupt { logical_rank, .. }) => {
                prop_assert_eq!(logical_rank, victim, "corruption must name its owner");
            }
            other => prop_assert!(false, "offset {byte} mask {mask:#x}: expected ShardCorrupt, got {other:?}"),
        }
    }

    // Satellite: checkpoint round-trips are exact for any shape the
    // search can produce (any schedule position, any parameter bits).
    #[test]
    fn checkpoint_round_trip_is_bit_exact(
        ji in 0usize..5,
        try_idx in 0usize..4,
        cycle in 0usize..200,
        seed in 0u64..u64::MAX,
        raw in prop::collection::vec(0u64..1_000_000_000, 1..60),
    ) {
        let classes_flat: Vec<f64> =
            raw.iter().map(|&v| (v as f64) * 0.125e-3 - 40_000.0).collect();
        let ck = SearchCheckpoint {
            ji,
            try_idx,
            cycle,
            j_current: 1 + classes_flat.len() % 7,
            seed,
            prev_ll: if cycle == 0 { f64::NEG_INFINITY } else { -(cycle as f64) * 13.5 },
            approx: [-1.0e4, -1.1e4, -1.2e4, -1.3e4],
            total_cycles: cycle * 3,
            classes_flat,
            best: Vec::new(),
        };
        let back = SearchCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        prop_assert_eq!(back, ck);
    }

    // Satellite: no truncation or byte flip may panic the decoder, and
    // every one must be rejected with a typed error.
    #[test]
    fn mangled_checkpoints_are_typed_errors_never_panics(
        cut in 0usize..1_000,
        pos in 0usize..1_000,
        mask in 1u64..256,
    ) {
        let ck = SearchCheckpoint {
            ji: 2,
            try_idx: 0,
            cycle: 9,
            j_current: 3,
            seed: 77,
            prev_ll: -512.25,
            approx: [-1.0, -2.0, -3.0, -4.0],
            total_cycles: 21,
            classes_flat: vec![0.5; 30],
            best: Vec::new(),
        };
        let bytes = ck.to_bytes();
        let cut = cut % bytes.len();
        prop_assert!(
            SearchCheckpoint::from_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes must be rejected"
        );
        let mut flipped = bytes.clone();
        let pos = pos % bytes.len();
        flipped[pos] ^= mask as u8;
        prop_assert!(
            SearchCheckpoint::from_bytes(&flipped).is_err(),
            "byte flip at {pos} must be rejected"
        );
    }
}
