//! The overlapped (pipelined) cycle is a pure scheduling change: it must
//! reproduce the blocking `Fused` exchange bit for bit — same weights, same
//! likelihoods, same convergence trajectory — for every allreduce algorithm
//! and communicator size, while hiding wire time behind the M-step on a
//! machine with real communication costs.
//!
//! Bitwise equality holds because the pipelined path reuses the exact
//! collective geometry of the blocking path: the `w_j` exchange is its own
//! j-length allreduce in both, and the statistics buffer is either chunked
//! per class with an order-transparent algorithm (per-element fold
//! independent of buffer geometry) or shipped whole.

use autoclass::model::classes_to_flat;
use autoclass::search::SearchConfig;
use mpsim::{presets, AllreduceAlgo, SimOptions};
use pautoclass::{run_fixed_j, run_search_with, Exchange, ParallelConfig, Strategy};

fn config(exchange: Exchange) -> ParallelConfig {
    ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![3],
            tries_per_j: 1,
            max_cycles: 25,
            rel_delta_ll: 1e-7,
            min_class_weight: 1.0,
            seed: 4242,
            max_stored: 10,
        },
        strategy: Strategy::Full { exchange },
        partition: pautoclass::Partitioning::Block,
        correlated_blocks: Vec::new(),
    }
}

const ALGOS: &[AllreduceAlgo] = &[
    AllreduceAlgo::Linear,
    AllreduceAlgo::OrderedLinear,
    AllreduceAlgo::RecursiveDoubling,
    AllreduceAlgo::Ring,
    AllreduceAlgo::Rabenseifner,
    AllreduceAlgo::Auto,
];

#[test]
fn pipelined_matches_blocking_fused_bitwise_for_every_algorithm() {
    // 301 items: not divisible by any tested P, so every run exercises
    // uneven partitions. Full verification keeps the collective
    // fingerprinting and replication hashing live throughout.
    let data = datagen::paper_dataset(301, 11);
    let fused_cfg = config(Exchange::Fused);
    let piped_cfg = config(Exchange::Pipelined);

    for p in [1usize, 2, 3, 5, 8] {
        for &algo in ALGOS {
            let mut spec = presets::zero_cost(p);
            spec.allreduce = algo;
            let fused = run_search_with(&data, &spec, &fused_cfg, &SimOptions::verified())
                .unwrap_or_else(|e| panic!("Fused P={p} {algo:?}: {e}"));
            let piped = run_search_with(&data, &spec, &piped_cfg, &SimOptions::verified())
                .unwrap_or_else(|e| panic!("Pipelined P={p} {algo:?}: {e}"));

            assert_eq!(piped.cycles, fused.cycles, "P={p} {algo:?}: cycle counts differ");
            assert_eq!(
                piped.best.approx.log_likelihood.to_bits(),
                fused.best.approx.log_likelihood.to_bits(),
                "P={p} {algo:?}: log-likelihood diverged"
            );
            assert_eq!(
                piped.best.approx.complete_ll.to_bits(),
                fused.best.approx.complete_ll.to_bits(),
                "P={p} {algo:?}: complete log-likelihood diverged"
            );
            assert_eq!(
                piped.best.approx.cs_score.to_bits(),
                fused.best.approx.cs_score.to_bits(),
                "P={p} {algo:?}: Cheeseman-Stutz score diverged"
            );

            let ff = classes_to_flat(&fused.best.classes);
            let pf = classes_to_flat(&piped.best.classes);
            assert_eq!(ff.len(), pf.len(), "P={p} {algo:?}: class layout diverged");
            for (i, (a, b)) in ff.iter().zip(&pf).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "P={p} {algo:?}: class parameter {i} diverged ({a} vs {b})"
                );
            }
        }
    }
}

#[test]
fn pipelined_hides_wire_time_that_the_blocking_cycle_exposes() {
    // On a machine with real LogGP costs the pipelined schedule must (a)
    // report hidden (overlapped) communication where the blocking cycle
    // reports none, and (b) not be slower per cycle.
    let data = datagen::paper_dataset(600, 11);
    for p in [4usize, 6, 8] {
        let machine = presets::meiko_cs2(p);
        let fused = run_fixed_j(&data, &machine, 8, 4, 7, &config(Exchange::Fused)).unwrap();
        let piped = run_fixed_j(&data, &machine, 8, 4, 7, &config(Exchange::Pipelined)).unwrap();

        assert_eq!(
            piped.log_likelihood.to_bits(),
            fused.log_likelihood.to_bits(),
            "P={p}: fixed-J pipelined run diverged from blocking Fused"
        );

        let fused_hidden: f64 = fused.ranks.iter().map(|r| r.hidden_comm).sum();
        let piped_hidden: f64 = piped.ranks.iter().map(|r| r.hidden_comm).sum();
        assert_eq!(fused_hidden, 0.0, "P={p}: blocking cycle reported overlap");
        assert!(piped_hidden > 0.0, "P={p}: pipelined cycle hid no communication");
        assert!(
            piped.per_cycle <= fused.per_cycle,
            "P={p}: pipelined cycle slower than blocking ({} > {})",
            piped.per_cycle,
            fused.per_cycle
        );
    }
}
