//! Fleet-parallel search tests: the G-way candidate parallelism must
//! change *where* candidates run, never their numbers. With duplicate
//! abandonment disabled the consensus winner (and the whole retained
//! list) is bit-identical to the serial search on a machine of one
//! fleet's size, on both backends and both engines; the scheduler's
//! duplicate elimination and work stealing are exercised separately; and
//! the fault-tolerant supervisor recovers per policy with the damage
//! confined to the culprit's fleet.

use std::time::Duration;

use autoclass::model::classes_to_flat;
use autoclass::search::{Classification, SearchConfig};
use mpsim::{
    presets, AllreduceAlgo, Engine, FaultAction, FaultPlan, FaultSpec, FaultTrigger, MachineSpec,
    SimError, SimOptions,
};
use pautoclass::{
    run_search_fleet, run_search_fleet_ft, run_search_fleet_native, run_search_fleet_with,
    run_search_with, Consensus, Exchange, FleetConfig, FtConfig, NativeOptions, ParallelConfig,
    RecoveryPolicy, RunError, Strategy,
};

/// The equivalence claim is pinned to the deterministic pair the group
/// collectives mirror: recursive-doubling allreduce + fused exchange.
fn rd_machine(p: usize) -> MachineSpec {
    let mut m = presets::meiko_cs2(p);
    m.allreduce = AllreduceAlgo::RecursiveDoubling;
    m
}

fn config(j_list: Vec<usize>, seed: u64) -> ParallelConfig {
    ParallelConfig {
        search: SearchConfig::quick(j_list, seed),
        strategy: Strategy::Full { exchange: Exchange::Fused },
        ..ParallelConfig::default()
    }
}

/// Score and parameter bits of every retained classification — the
/// strictest "same result" comparison.
fn all_bits(all: &[Classification]) -> Vec<(u64, Vec<u64>)> {
    all.iter()
        .map(|c| {
            (c.score().to_bits(), classes_to_flat(&c.classes).iter().map(|v| v.to_bits()).collect())
        })
        .collect()
}

#[test]
fn fleet_of_two_selects_the_serial_best_bit_for_bit() {
    let data = datagen::paper_dataset(360, 11);
    let cfg = config(vec![3, 5], 7);
    // Serial reference: the whole search on a machine of one fleet's size.
    let serial = run_search_with(&data, &rd_machine(4), &cfg, &SimOptions::default()).unwrap();
    // Fleet run: twice the ranks, two concurrent sub-searches of four.
    let fc = FleetConfig { groups: 2, ..FleetConfig::default() };
    let out = run_search_fleet(&data, &rd_machine(8), &cfg, &fc).unwrap();
    assert_eq!(out.fleet.groups, 2);
    assert_eq!(out.fleet.candidates, 2, "one candidate per J value");
    assert_eq!(out.fleet.dedup_hits, 0, "abandonment is off by default");
    assert_eq!(
        out.outcome.best.approx.log_likelihood.to_bits(),
        serial.best.approx.log_likelihood.to_bits(),
        "the consensus winner's log likelihood must match the serial search exactly"
    );
    assert_eq!(all_bits(&out.outcome.all), all_bits(&serial.all));
    assert_eq!(out.outcome.cycles, serial.cycles);
    assert_eq!(out.outcome.best.seed, serial.best.seed);
    assert_eq!(out.outcome.best.converged, serial.best.converged);
}

#[test]
fn single_fleet_degenerates_to_the_serial_search() {
    let data = datagen::paper_dataset(300, 3);
    let cfg = config(vec![2, 4], 5);
    let serial = run_search_with(&data, &rd_machine(4), &cfg, &SimOptions::default()).unwrap();
    let fc = FleetConfig { groups: 1, ..FleetConfig::default() };
    let out = run_search_fleet(&data, &rd_machine(4), &cfg, &fc).unwrap();
    assert_eq!(out.fleet.groups, 1);
    assert_eq!(out.fleet.steals, 0);
    assert_eq!(all_bits(&out.outcome.all), all_bits(&serial.all));
    assert_eq!(out.outcome.cycles, serial.cycles);
}

#[test]
fn fleet_search_matches_across_backends_and_engines() {
    let data = datagen::paper_dataset(240, 9);
    let cfg = config(vec![2, 3], 13);
    let fc = FleetConfig { groups: 2, ..FleetConfig::default() };
    let m = rd_machine(4);
    let threaded = run_search_fleet_with(&data, &m, &cfg, &fc, &SimOptions::default()).unwrap();
    let coop = run_search_fleet_with(
        &data,
        &m,
        &cfg,
        &fc,
        &SimOptions { engine: Engine::Cooperative, ..SimOptions::default() },
    )
    .unwrap();
    let native = run_search_fleet_native(&data, &m, &cfg, &fc, &NativeOptions::default()).unwrap();
    let reference = all_bits(&threaded.outcome.all);
    assert_eq!(all_bits(&coop.outcome.all), reference, "cooperative engine differs");
    assert_eq!(all_bits(&native.outcome.all), reference, "native backend differs");
    assert_eq!(threaded.fleet.rounds, coop.fleet.rounds);
    assert_eq!(threaded.fleet.rounds, native.fleet.rounds);
    assert_eq!(threaded.outcome.cycles, native.outcome.cycles);
}

#[test]
fn overlapping_schedules_are_abandoned_as_duplicates() {
    // Four restarts of the same J on well-separated data: the tries land
    // in the same basin, so once one fleet converges, the other's
    // running twin must match its fingerprint and be cut short.
    let data = datagen::paper_dataset(300, 21);
    let cfg = ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![3],
            tries_per_j: 4,
            max_cycles: 60,
            rel_delta_ll: 1e-6,
            min_class_weight: 1.0,
            seed: 17,
            max_stored: 10,
        },
        strategy: Strategy::Full { exchange: Exchange::Fused },
        ..ParallelConfig::default()
    };
    let fc = FleetConfig {
        groups: 2,
        round_cycles: 3,
        dedup_every: 1,
        consensus: Consensus::GlobalBest,
    };
    let out = run_search_fleet(&data, &rd_machine(4), &cfg, &fc).unwrap();
    assert_eq!(out.fleet.candidates, 4, "every candidate must be accounted for");
    assert!(
        out.fleet.dedup_hits > 0,
        "restarts of the same J must trip the duplicate filter, stats: {:?}",
        out.fleet
    );
    assert!(out.fleet.dedup_saved_cycles > 0, "an abandoned candidate saves its cycle budget");
    assert!(out.outcome.best.n_classes() >= 2);
}

#[test]
fn an_idle_fleet_steals_queued_candidates() {
    // Three candidates over two fleets: fleet 0 owns two, fleet 1 owns
    // one. With single-cycle rounds fleet 1 goes idle while fleet 0's
    // queue still holds its second candidate — it must be stolen, and
    // the result must still match the serial chain bit for bit.
    let data = datagen::paper_dataset(300, 5);
    let cfg = config(vec![2, 3, 4], 19);
    let serial = run_search_with(&data, &rd_machine(2), &cfg, &SimOptions::default()).unwrap();
    let fc = FleetConfig { groups: 2, round_cycles: 1, ..FleetConfig::default() };
    let out = run_search_fleet(&data, &rd_machine(4), &cfg, &fc).unwrap();
    assert_eq!(out.fleet.candidates, 3);
    assert!(
        out.fleet.steals > 0,
        "fleet 1 must steal the queued candidate, stats: {:?}",
        out.fleet
    );
    assert_eq!(all_bits(&out.outcome.all), all_bits(&serial.all));
}

#[test]
fn ensemble_consensus_votes_out_a_replicated_labeling() {
    let data = datagen::paper_dataset(240, 31);
    let cfg = config(vec![2, 3, 4], 23);
    let fc = FleetConfig {
        groups: 2,
        consensus: Consensus::Ensemble { voters: 3 },
        ..FleetConfig::default()
    };
    let m = rd_machine(4);
    let sim = run_search_fleet(&data, &m, &cfg, &fc).unwrap();
    let ens = sim.fleet.ensemble.clone().expect("ensemble stage must run");
    assert!(ens.voters >= 2, "at least two models must vote");
    assert!(
        ens.agreement > 1.0 / ens.voters as f64 - 1e-12 && ens.agreement <= 1.0,
        "agreement must be a mean vote fraction, got {}",
        ens.agreement
    );
    // The vote is part of the deterministic contract: the native backend
    // produces the identical summary, down to the labeling hash.
    let native = run_search_fleet_native(&data, &m, &cfg, &fc, &NativeOptions::default()).unwrap();
    assert_eq!(native.fleet.ensemble, Some(ens));
}

// ---- Fault tolerance: one test per recovery policy at G = 2 ------------

fn ft(policy: RecoveryPolicy) -> FtConfig {
    FtConfig { checkpoint_every: 2, policy, max_restarts: 1, ..FtConfig::default() }
}

fn opts_with(plan: FaultPlan) -> SimOptions {
    SimOptions { recv_timeout: Duration::from_secs(20), fault: Some(plan), ..SimOptions::default() }
}

fn crash(rank: usize, seq: u64) -> FaultPlan {
    FaultPlan::new(vec![FaultSpec {
        rank,
        action: FaultAction::Crash,
        trigger: FaultTrigger::AtSendSeq(seq),
    }])
}

#[test]
fn fleet_crash_restart_recovers_bit_identically() {
    let data = datagen::paper_dataset(240, 7);
    let m = rd_machine(4);
    let cfg = config(vec![2, 3], 11);
    let fc = FleetConfig { groups: 2, ..FleetConfig::default() };
    let ftc = ft(RecoveryPolicy::RestartFromCheckpoint);
    let baseline = run_search_fleet_ft(&data, &m, &cfg, &fc, &ftc, &SimOptions::default()).unwrap();
    assert_eq!(baseline.attempts, 1);

    let out = run_search_fleet_ft(&data, &m, &cfg, &fc, &ftc, &opts_with(crash(1, 14))).unwrap();
    assert_eq!(out.attempts, 2, "one failed run plus the recovery");
    assert!(
        matches!(
            &out.faults[0],
            SimError::RankCrashed { rank: 1, .. } | SimError::PeerFailed { peer: 1, .. }
        ),
        "fault must name rank 1: {}",
        out.faults[0]
    );
    assert!(!out.shrunk);
    assert_eq!(
        all_bits(&out.outcome.outcome.all),
        all_bits(&baseline.outcome.outcome.all),
        "round-granular restart must be bit-identical"
    );
    assert_eq!(out.outcome.outcome.cycles, baseline.outcome.outcome.cycles);
    assert_eq!(out.outcome.fleet.candidates, baseline.outcome.fleet.candidates);
}

#[test]
fn fleet_abort_policy_surfaces_the_typed_culprit() {
    let data = datagen::paper_dataset(240, 7);
    let cfg = config(vec![2, 3], 11);
    let fc = FleetConfig { groups: 2, ..FleetConfig::default() };
    let err = run_search_fleet_ft(
        &data,
        &rd_machine(4),
        &cfg,
        &fc,
        &ft(RecoveryPolicy::Abort),
        &opts_with(crash(2, 14)),
    )
    .unwrap_err();
    match err {
        RunError::Sim(SimError::RankCrashed { rank, .. }) => assert_eq!(rank, 2),
        RunError::Sim(SimError::PeerFailed { peer, .. }) => assert_eq!(peer, 2),
        other => panic!("expected the crash diagnosis, got {other}"),
    }
}

#[test]
fn fleet_shrink_confines_the_damage_to_the_culprits_fleet() {
    // P = 6, G = 2: fleets {0,1,2} and {3,4,5}. Crashing rank 4 must
    // leave fleet 0 untouched and finish fleet 1 on its two survivors.
    let data = datagen::paper_dataset(240, 7);
    let cfg = config(vec![2, 3], 11);
    let fc = FleetConfig { groups: 2, ..FleetConfig::default() };
    let ftc = ft(RecoveryPolicy::ShrinkAndRedistribute);
    let out = run_search_fleet_ft(&data, &rd_machine(6), &cfg, &fc, &ftc, &opts_with(crash(4, 14)))
        .unwrap();
    assert_eq!(out.attempts, 2);
    assert!(out.shrunk);
    assert_eq!(out.survivors, 5, "P-1 ranks must finish the search");
    assert!(out.recovery_time > 0.0, "the shrink cost must land in the recovery bucket");
    assert_eq!(out.outcome.fleet.groups, 2, "both fleets must still run");
    assert_eq!(out.outcome.fleet.candidates, 2);
    assert!(out.outcome.outcome.best.n_classes() >= 2, "the degraded run still classifies");
    // The excluded rank leaves at the split, strictly before the
    // survivors finish.
    let excluded = &out.outcome.outcome.ranks[4];
    let max_elapsed = out.outcome.outcome.ranks.iter().map(|r| r.elapsed).fold(0.0, f64::max);
    assert!(excluded.elapsed < max_elapsed, "culprit must leave the computation");
}
