//! The allreduce algorithm is an implementation detail: every algorithm —
//! including Rabenseifner and the size-adaptive `Auto` selector — must run
//! the full search cleanly under complete verification (fingerprint
//! cross-checks + replication-invariant hashing prove every rank holds
//! bitwise-identical classes after every cycle), on power-of-two and
//! awkward communicator sizes, with partitions that don't divide evenly.
//!
//! Different algorithms associate the floating-point sums differently, so
//! cross-algorithm results are compared within reduction-order tolerance
//! against a PerTerm/RecursiveDoubling baseline; within one algorithm,
//! cross-rank equality is bitwise (enforced by `SimOptions::verified`).

use autoclass::search::SearchConfig;
use mpsim::{presets, AllreduceAlgo, SimOptions};
use pautoclass::{run_search_with, Exchange, ParallelConfig, Strategy};

fn config(exchange: Exchange) -> ParallelConfig {
    ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![3],
            tries_per_j: 1,
            max_cycles: 25,
            rel_delta_ll: 1e-7,
            min_class_weight: 1.0,
            seed: 4242,
            max_stored: 10,
        },
        strategy: Strategy::Full { exchange },
        partition: pautoclass::Partitioning::Block,
        correlated_blocks: Vec::new(),
    }
}

const ALGOS: &[AllreduceAlgo] = &[
    AllreduceAlgo::Linear,
    AllreduceAlgo::OrderedLinear,
    AllreduceAlgo::RecursiveDoubling,
    AllreduceAlgo::Ring,
    AllreduceAlgo::Rabenseifner,
    AllreduceAlgo::Auto,
];

#[test]
fn every_allreduce_algorithm_verifies_and_agrees() {
    // 301 items: not divisible by any tested P, so every run exercises
    // uneven partitions (and, inside Rabenseifner/Ring, uneven chunks).
    let data = datagen::paper_dataset(301, 11);

    for exchange in [Exchange::Fused, Exchange::PerTerm] {
        let cfg = config(exchange);
        for p in [2usize, 3, 5, 8] {
            let mut baseline: Option<(f64, usize)> = None;
            for &algo in ALGOS {
                let mut spec = presets::zero_cost(p);
                spec.allreduce = algo;
                let out = run_search_with(&data, &spec, &cfg, &SimOptions::verified())
                    .unwrap_or_else(|e| panic!("{exchange:?} P={p} {algo:?}: {e}"));
                assert!(out.cycles > 0, "{exchange:?} P={p} {algo:?}: ran no cycles");
                let ll = out.best.approx.log_likelihood;
                let j = out.best.classes.len();
                match baseline {
                    None => baseline = Some((ll, j)),
                    Some((ll0, j0)) => {
                        assert!(
                            (ll - ll0).abs() <= 1e-6 * ll0.abs(),
                            "{exchange:?} P={p} {algo:?}: ll {ll} vs baseline {ll0}"
                        );
                        assert_eq!(j, j0, "{exchange:?} P={p} {algo:?}: class count diverged");
                    }
                }
            }
        }
    }
}

#[test]
fn rabenseifner_and_auto_match_their_plain_runs_bitwise() {
    // Verification only observes: for the two new algorithms, a verified
    // run must reproduce the unverified run bit for bit.
    let data = datagen::paper_dataset(301, 11);
    let cfg = config(Exchange::Fused);
    for algo in [AllreduceAlgo::Rabenseifner, AllreduceAlgo::Auto] {
        for p in [2usize, 3, 5, 8] {
            let mut spec = presets::zero_cost(p);
            spec.allreduce = algo;
            let plain = run_search_with(&data, &spec, &cfg, &SimOptions::default())
                .unwrap_or_else(|e| panic!("{algo:?} P={p} unverified: {e}"));
            let verified = run_search_with(&data, &spec, &cfg, &SimOptions::verified())
                .unwrap_or_else(|e| panic!("{algo:?} P={p} verified: {e}"));
            assert_eq!(
                verified.best.approx.log_likelihood.to_bits(),
                plain.best.approx.log_likelihood.to_bits(),
                "{algo:?} P={p}: verification changed the result"
            );
            assert_eq!(verified.cycles, plain.cycles, "{algo:?} P={p}");
        }
    }
}
