//! Qualitative reproduction of the paper's scaling results on the
//! simulated Meiko CS-2: speedup grows with dataset size, small datasets
//! saturate, and scaleup (fixed data per processor) stays nearly flat.
//! The figure harnesses in the `bench` crate print the full curves; these
//! tests pin the *shapes* so regressions in the cost model or the drivers
//! are caught.

use mpsim::presets;
use pautoclass::{run_fixed_j, ParallelConfig};

/// Virtual seconds per base_cycle for a dataset of `n` at `p` processors.
fn cycle_time(n: usize, p: usize, j: usize) -> f64 {
    let data = datagen::paper_dataset(n, 99);
    let machine = presets::meiko_cs2(p);
    let config = ParallelConfig::default();
    run_fixed_j(&data, &machine, j, 3, 7, &config).unwrap().per_cycle
}

#[test]
fn speedup_improves_with_dataset_size() {
    // Fig 7's headline: larger datasets scale better.
    let j = 16;
    let speedup = |n: usize| cycle_time(n, 1, j) / cycle_time(n, 10, j);
    let small = speedup(2_000);
    let large = speedup(40_000);
    assert!(large > small + 0.5, "speedup at 10 procs: small(2k)={small:.2} large(40k)={large:.2}");
    assert!(large > 6.0, "large dataset should scale well, got {large:.2}");
    assert!(large < 10.5, "speedup cannot exceed linear, got {large:.2}");
}

#[test]
fn small_datasets_saturate() {
    // Fig 7: for small datasets there is an optimal processor count and
    // little or no gain beyond it.
    let j = 16;
    let t: Vec<f64> = [1, 2, 4, 8, 10].iter().map(|&p| cycle_time(1_000, p, j)).collect();
    let speedups: Vec<f64> = t.iter().map(|&x| t[0] / x).collect();
    // Speedup at 10 procs must be well below linear...
    assert!(speedups[4] < 6.0, "speedups: {speedups:?}");
    // ...and the marginal gain from 8 to 10 procs must be small or negative.
    let marginal = speedups[4] - speedups[3];
    assert!(marginal < 0.5, "marginal gain 8→10: {marginal:.2} ({speedups:?})");
}

#[test]
fn large_datasets_keep_scaling_to_ten_processors() {
    let j = 16;
    let t8 = cycle_time(60_000, 8, j);
    let t10 = cycle_time(60_000, 10, j);
    assert!(t10 < t8, "t8={t8} t10={t10}: 60k tuples should still gain at 10 procs");
}

#[test]
fn scaleup_is_nearly_flat() {
    // Fig 8: 10 000 tuples per processor, J = 8 and 16; time per cycle
    // should stay nearly constant as processors (and data) grow.
    for j in [8usize, 16] {
        let times: Vec<f64> = (1..=10)
            .map(|p| {
                let data = datagen::paper_dataset(10_000 * p, 7);
                let machine = presets::meiko_cs2(p);
                run_fixed_j(&data, &machine, j, 2, 3, &ParallelConfig::default()).unwrap().per_cycle
            })
            .collect();
        let t1 = times[0];
        for (i, &t) in times.iter().enumerate() {
            assert!(
                t < 1.35 * t1,
                "J={j}: cycle time at p={} is {t:.4}s vs {t1:.4}s at p=1 ({times:?})",
                i + 1
            );
        }
    }
}

#[test]
fn elapsed_decomposes_into_compute_and_overhead() {
    let data = datagen::paper_dataset(5_000, 1);
    let machine = presets::meiko_cs2(6);
    let out = run_fixed_j(&data, &machine, 8, 3, 1, &ParallelConfig::default()).unwrap();
    for r in &out.ranks {
        assert!(r.compute > 0.0, "rank {} did no modeled compute", r.rank);
        let sum = r.compute + r.comm + r.idle;
        assert!((r.elapsed - sum).abs() < 1e-9);
    }
    // With 6 equal partitions the compute should dominate at this size.
    let r0 = &out.ranks[0];
    assert!(r0.compute > r0.comm, "compute {} vs comm {}", r0.compute, r0.comm);
}

#[test]
fn weighted_partitioning_fixes_heterogeneous_imbalance() {
    // The paper's equal-block decomposition assumes homogeneous nodes.
    // With one node at half speed, equal blocks drag every cycle to the
    // slow node's pace; speed-proportional blocks recover most of it.
    let data = datagen::paper_dataset(8_000, 3);
    let p = 4;
    let mut speeds = vec![1.0; p];
    speeds[0] = 0.5;
    let slow = presets::meiko_cs2(p).with_rank_speeds(speeds.clone());

    let block = pautoclass::ParallelConfig::default();
    let weighted = pautoclass::ParallelConfig {
        partition: pautoclass::Partitioning::Weighted(speeds),
        ..pautoclass::ParallelConfig::default()
    };
    let t_homog = run_fixed_j(&data, &presets::meiko_cs2(p), 8, 3, 7, &block).unwrap().per_cycle;
    let t_block = run_fixed_j(&data, &slow, 8, 3, 7, &block).unwrap().per_cycle;
    let t_weighted = run_fixed_j(&data, &slow, 8, 3, 7, &weighted).unwrap().per_cycle;

    assert!(t_block > 1.5 * t_homog, "slow node should hurt: {t_block} vs {t_homog}");
    assert!(t_weighted < 1.25 * t_homog, "weighted should recover: {t_weighted} vs {t_homog}");
    assert!(t_weighted < t_block);
}

#[test]
fn weighted_and_block_partitioning_agree_numerically() {
    // Decomposition changes who computes what, not the mathematics: one
    // parallel base cycle from *identical* starting classes must produce
    // the same global result under any contiguous partitioning.
    // (End-to-end runs can differ because initialization draws from rank
    // 0's partition, whose contents depend on the decomposition.)
    use autoclass::data::GlobalStats;
    use autoclass::model::{init_classes, CycleWorkspace, Model};
    use mpsim::run_spmd_default;
    use pautoclass::driver::parallel_base_cycle;
    use pautoclass::{Partitioning, Strategy};

    let data = datagen::paper_dataset(2_000, 5);
    let p = 5;
    let gstats = GlobalStats::compute(&data.full_view());
    let model = Model::new(data.schema().clone(), &gstats);
    let classes0 = init_classes(&model, &data.full_view(), 8, 77);

    let run = |partition: Partitioning| {
        let spec = presets::zero_cost(p);
        run_spmd_default(&spec, |comm| {
            let parts = partition.ranges(data.len(), comm.size());
            let part = &parts[comm.rank()];
            let view = data.view(part.start, part.end);
            let mut ws = CycleWorkspace::new();
            let mut classes = classes0.clone();
            let approx = parallel_base_cycle(
                comm,
                &model,
                &view,
                &mut classes,
                &mut ws,
                Strategy::default(),
            );
            (classes, approx.log_likelihood)
        })
        .unwrap()
        .per_rank
        .remove(0)
    };

    let (ca, lla) = run(Partitioning::Block);
    let (cb, llb) = run(Partitioning::Weighted(vec![3.0, 1.0, 1.0, 2.0, 1.0]));
    assert!((lla - llb).abs() < 1e-9 * lla.abs(), "{lla} vs {llb}");
    for (x, y) in ca.iter().zip(&cb) {
        assert!((x.weight - y.weight).abs() < 1e-8, "{} vs {}", x.weight, y.weight);
    }
}
