//! The tentpole gate for the cooperative engine: the full verified
//! P-AutoClass search produces **bitwise identical** results whether the
//! simulated ranks run as preemptive OS threads or as cooperatively
//! scheduled tasks on the virtual-time run queue. Log-likelihoods, CS
//! scores, classification hashes, cycle counts, and virtual elapsed time
//! must agree to the last bit at P ∈ {1, 2, 4, 8} for every exchange
//! strategy — scheduling must never leak into the numbers.

use autoclass::model::classes_to_flat;
use autoclass::search::SearchConfig;
use mpsim::{hash_f64s, presets, Engine, SimOptions};
use pautoclass::{run_search_with, Exchange, ParallelConfig, ParallelOutcome, Strategy};

fn config(strategy: Strategy) -> ParallelConfig {
    ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![2, 4],
            tries_per_j: 1,
            max_cycles: 30,
            rel_delta_ll: 1e-7,
            min_class_weight: 1.0,
            seed: 99,
            max_stored: 10,
        },
        strategy,
        partition: pautoclass::Partitioning::Block,
        correlated_blocks: Vec::new(),
    }
}

fn classification_hashes(out: &ParallelOutcome) -> Vec<u64> {
    out.all.iter().map(|c| hash_f64s(&classes_to_flat(&c.classes))).collect()
}

fn assert_bitwise_identical(threaded: &ParallelOutcome, coop: &ParallelOutcome, label: &str) {
    assert_eq!(
        threaded.best.approx.log_likelihood.to_bits(),
        coop.best.approx.log_likelihood.to_bits(),
        "{label}: best log-likelihood diverged across engines"
    );
    assert_eq!(
        threaded.best.score().to_bits(),
        coop.best.score().to_bits(),
        "{label}: best CS score diverged across engines"
    );
    assert_eq!(threaded.cycles, coop.cycles, "{label}: cycle counts diverged");
    assert_eq!(
        threaded.elapsed.to_bits(),
        coop.elapsed.to_bits(),
        "{label}: virtual elapsed time diverged across engines"
    );
    assert_eq!(
        classification_hashes(threaded),
        classification_hashes(coop),
        "{label}: classification parameter hashes diverged"
    );
    for (ct, cc) in threaded.all.iter().zip(&coop.all) {
        assert_eq!(ct.cycles, cc.cycles, "{label}: per-try cycle counts diverged");
        assert_eq!(ct.converged, cc.converged, "{label}: convergence flags diverged");
        assert_eq!(
            ct.approx.log_likelihood.to_bits(),
            cc.approx.log_likelihood.to_bits(),
            "{label}: per-try log-likelihoods diverged"
        );
    }
}

#[test]
fn verified_search_is_bitwise_identical_across_engines() {
    // Replication verification stays on for both runs: the cooperative
    // engine must not only match the threaded numbers, it must pass the
    // same in-run replication hash checks the threaded engine does.
    let data = datagen::paper_dataset(600, 9);
    let cfg = config(Strategy::Full { exchange: Exchange::Fused });
    for p in [1usize, 2, 4, 8] {
        let spec = presets::meiko_cs2(p);
        let threaded = run_search_with(&data, &spec, &cfg, &SimOptions::verified())
            .unwrap_or_else(|e| panic!("P={p} threaded: {e}"));
        let coop = run_search_with(
            &data,
            &spec,
            &cfg,
            &SimOptions { engine: Engine::Cooperative, ..SimOptions::verified() },
        )
        .unwrap_or_else(|e| panic!("P={p} cooperative: {e}"));
        assert_bitwise_identical(&threaded, &coop, &format!("P={p}"));
        assert!(threaded.cycles > 0, "P={p}: search ran no cycles");
    }
}

#[test]
fn every_exchange_strategy_is_engine_invariant() {
    // All four strategies — the per-term ablation, the fused exchange, the
    // pipelined (overlapped) exchange, and the wts-only degenerate — ride
    // the same deterministic collectives, so swapping the scheduler
    // underneath must preserve every number bitwise.
    let data = datagen::paper_dataset(400, 11);
    for strategy in [
        Strategy::Full { exchange: Exchange::PerTerm },
        Strategy::Full { exchange: Exchange::Fused },
        Strategy::Full { exchange: Exchange::Pipelined },
        Strategy::WtsOnly,
    ] {
        let cfg = config(strategy);
        let spec = presets::modern_cluster(4);
        let threaded = run_search_with(&data, &spec, &cfg, &SimOptions::default())
            .unwrap_or_else(|e| panic!("{strategy:?} threaded: {e}"));
        let coop = run_search_with(&data, &spec, &cfg, &SimOptions::cooperative())
            .unwrap_or_else(|e| panic!("{strategy:?} cooperative: {e}"));
        assert_bitwise_identical(&threaded, &coop, &format!("{strategy:?}"));
    }
}

#[test]
fn cooperative_search_carries_the_hier_cluster_machine() {
    // The large-P report rows run the search on the hierarchical fat-tree
    // preset under the cooperative engine; pin the combination here at a
    // testable size, including the hierarchical allreduce it selects.
    let data = datagen::paper_dataset(300, 5);
    let cfg = config(Strategy::Full { exchange: Exchange::Fused });
    let spec = presets::hier_cluster(8, 4);
    let coop = run_search_with(&data, &spec, &cfg, &SimOptions::cooperative())
        .unwrap_or_else(|e| panic!("hier_cluster cooperative: {e}"));
    let threaded = run_search_with(&data, &spec, &cfg, &SimOptions::default())
        .unwrap_or_else(|e| panic!("hier_cluster threaded: {e}"));
    // Same machine (hence the same hierarchical fold order), both engines:
    // the numbers and the virtual clock must agree bitwise.
    assert_bitwise_identical(&threaded, &coop, "hier_cluster");
    assert!(coop.elapsed > 0.0, "hier_cluster: no virtual time elapsed");
}
