//! Run the full P-AutoClass search with every verifier check enabled:
//! collective fingerprinting, deadlock detection, and replication-invariant
//! hashing (including the driver's own `verify_replicated` calls on the
//! derived class parameters). A correct EM loop must stay completely quiet
//! under full verification — and produce bitwise the results of an
//! unverified run, since verification only observes.

use autoclass::search::SearchConfig;
use mpsim::{presets, SimOptions};
use pautoclass::{run_search_with, Exchange, ParallelConfig, Strategy};

fn config(strategy: Strategy) -> ParallelConfig {
    ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![2, 4],
            tries_per_j: 1,
            max_cycles: 40,
            rel_delta_ll: 1e-7,
            min_class_weight: 1.0,
            seed: 99,
            max_stored: 10,
        },
        strategy,
        partition: pautoclass::Partitioning::Block,
        correlated_blocks: Vec::new(),
    }
}

#[test]
fn full_search_passes_all_verification_checks() {
    let data = datagen::paper_dataset(600, 9);
    for strategy in [
        Strategy::Full { exchange: Exchange::Fused },
        Strategy::Full { exchange: Exchange::PerTerm },
        Strategy::WtsOnly,
    ] {
        let cfg = config(strategy);
        for p in [1usize, 3, 4] {
            let spec = presets::zero_cost(p);
            let plain = run_search_with(&data, &spec, &cfg, &SimOptions::default())
                .unwrap_or_else(|e| panic!("{strategy:?} P={p} unverified: {e}"));
            let verified = run_search_with(&data, &spec, &cfg, &SimOptions::verified())
                .unwrap_or_else(|e| panic!("{strategy:?} P={p} verified: {e}"));
            // Verification only observes: the search outcome is bitwise
            // identical to the unverified run.
            assert_eq!(
                verified.best.approx.log_likelihood.to_bits(),
                plain.best.approx.log_likelihood.to_bits(),
                "{strategy:?} P={p}: verification changed the result"
            );
            assert_eq!(verified.cycles, plain.cycles, "{strategy:?} P={p}");
            assert!(verified.cycles > 0, "{strategy:?} P={p}: search ran no cycles");
        }
    }
}
