//! The tentpole gate for the native backend: the full verified P-AutoClass
//! search produces **bitwise identical** results whether the driver runs on
//! the simulated multicomputer (`mpsim::Comm`, virtual time) or on real
//! cores (`shmcomm::NativeComm`, wall-clock time). Classifications,
//! log-likelihoods, and the replication hashes of every flat parameter
//! vector must agree to the last bit at P ∈ {1, 2, 4, 8} — the machine
//! spec only chooses algorithms; the numbers come from identical fold
//! orders on both backends.

use autoclass::model::classes_to_flat;
use autoclass::search::SearchConfig;
use mpsim::{hash_f64s, presets, SimOptions};
use pautoclass::{
    run_search_native, run_search_with, Exchange, ParallelConfig, ParallelOutcome, Strategy,
};
use shmcomm::NativeOptions;

fn config(strategy: Strategy) -> ParallelConfig {
    ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![2, 4],
            tries_per_j: 1,
            max_cycles: 30,
            rel_delta_ll: 1e-7,
            min_class_weight: 1.0,
            seed: 99,
            max_stored: 10,
        },
        strategy,
        partition: pautoclass::Partitioning::Block,
        correlated_blocks: Vec::new(),
    }
}

/// Hash every stored classification's flat parameter vector — the same
/// FNV-1a the replication verifier uses, so "equal hashes" here means
/// exactly what the in-run replication checks mean.
fn classification_hashes(out: &ParallelOutcome) -> Vec<u64> {
    out.all.iter().map(|c| hash_f64s(&classes_to_flat(&c.classes))).collect()
}

fn assert_bitwise_identical(sim: &ParallelOutcome, native: &ParallelOutcome, label: &str) {
    assert_eq!(
        sim.best.approx.log_likelihood.to_bits(),
        native.best.approx.log_likelihood.to_bits(),
        "{label}: best log-likelihood diverged across backends"
    );
    assert_eq!(
        sim.best.score().to_bits(),
        native.best.score().to_bits(),
        "{label}: best CS score diverged across backends"
    );
    assert_eq!(sim.cycles, native.cycles, "{label}: cycle counts diverged");
    assert_eq!(sim.all.len(), native.all.len(), "{label}: stored classification counts diverged");
    assert_eq!(
        classification_hashes(sim),
        classification_hashes(native),
        "{label}: classification parameter hashes diverged"
    );
    for (cs, cn) in sim.all.iter().zip(&native.all) {
        assert_eq!(cs.cycles, cn.cycles, "{label}: per-try cycle counts diverged");
        assert_eq!(cs.converged, cn.converged, "{label}: convergence flags diverged");
        assert_eq!(
            cs.approx.log_likelihood.to_bits(),
            cn.approx.log_likelihood.to_bits(),
            "{label}: per-try log-likelihoods diverged"
        );
    }
}

#[test]
fn verified_search_is_bitwise_identical_across_backends() {
    let data = datagen::paper_dataset(600, 9);
    let cfg = config(Strategy::Full { exchange: Exchange::Fused });
    for p in [1usize, 2, 4, 8] {
        let spec = presets::meiko_cs2(p);
        let sim = run_search_with(&data, &spec, &cfg, &SimOptions::verified())
            .unwrap_or_else(|e| panic!("P={p} sim: {e}"));
        let native = run_search_native(&data, &spec, &cfg, &NativeOptions::verified())
            .unwrap_or_else(|e| panic!("P={p} native: {e}"));
        assert_bitwise_identical(&sim, &native, &format!("P={p}"));
        assert!(native.elapsed > 0.0, "P={p}: native run must report wall-clock time");
        assert!(sim.cycles > 0, "P={p}: search ran no cycles");
    }
}

#[test]
fn every_exchange_strategy_is_backend_invariant() {
    // The PerTerm ablation, the fused exchange, and the pipelined
    // (overlapped) exchange all ride the same deterministic collectives;
    // natively the pipelined non-blocking allreduce degenerates to an
    // eager one, which preserves the numbers exactly.
    let data = datagen::paper_dataset(400, 11);
    for strategy in [
        Strategy::Full { exchange: Exchange::PerTerm },
        Strategy::Full { exchange: Exchange::Fused },
        Strategy::Full { exchange: Exchange::Pipelined },
        Strategy::WtsOnly,
    ] {
        let cfg = config(strategy);
        let spec = presets::modern_cluster(4);
        let sim = run_search_with(&data, &spec, &cfg, &SimOptions::default())
            .unwrap_or_else(|e| panic!("{strategy:?} sim: {e}"));
        let native = run_search_native(&data, &spec, &cfg, &NativeOptions::default())
            .unwrap_or_else(|e| panic!("{strategy:?} native: {e}"));
        assert_bitwise_identical(&sim, &native, &format!("{strategy:?}"));
    }
}

#[test]
fn native_stats_fill_the_same_phase_shapes() {
    // `xtask report` and the calibration harness consume RankStats from
    // either backend; the native run must populate the same phase names
    // and conservation law (phase totals partition elapsed wall time).
    let data = datagen::paper_dataset(300, 5);
    let cfg = config(Strategy::Full { exchange: Exchange::Fused });
    let native =
        run_search_native(&data, &presets::meiko_cs2(4), &cfg, &NativeOptions::default()).unwrap();
    assert_eq!(native.ranks.len(), 4);
    for (r, rs) in native.ranks.iter().enumerate() {
        assert!(rs.phase("search").is_some(), "rank {r}: missing the search phase bucket");
        let sum: f64 = rs.phases.iter().map(|p| p.total()).sum();
        let rel = (sum - rs.elapsed).abs() / rs.elapsed.max(1e-9);
        assert!(rel < 1e-6, "rank {r}: phase totals {sum} must partition elapsed {}", rs.elapsed);
        assert!(rs.bytes_sent > 0, "rank {r}: a 4-rank search must communicate");
    }
}
