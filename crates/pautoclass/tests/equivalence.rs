//! The paper's central design claim: P-AutoClass preserves the semantics
//! of sequential AutoClass. We verify that a parallel search on any P
//! produces the same classifications as P = 1, up to floating-point
//! reduction-order tolerance.

use autoclass::model::TermParams;
use autoclass::search::SearchConfig;
use mpsim::presets;
use pautoclass::{run_search, Exchange, ParallelConfig, Strategy};

fn quick_config(strategy: Strategy) -> ParallelConfig {
    ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![2, 4],
            tries_per_j: 1,
            max_cycles: 80,
            rel_delta_ll: 1e-7,
            min_class_weight: 1.0,
            seed: 99,
            max_stored: 10,
        },
        strategy,
        partition: pautoclass::Partitioning::Block,
        correlated_blocks: Vec::new(),
    }
}

fn assert_outcomes_match(
    a: &pautoclass::ParallelOutcome,
    b: &pautoclass::ParallelOutcome,
    tol: f64,
    label: &str,
) {
    assert_eq!(a.best.n_classes(), b.best.n_classes(), "{label}: class count");
    let rel = |x: f64, y: f64| (x - y).abs() / y.abs().max(1.0);
    assert!(
        rel(a.best.approx.log_likelihood, b.best.approx.log_likelihood) < tol,
        "{label}: log likelihood {} vs {}",
        a.best.approx.log_likelihood,
        b.best.approx.log_likelihood
    );
    assert!(
        rel(a.best.score(), b.best.score()) < tol,
        "{label}: CS score {} vs {}",
        a.best.score(),
        b.best.score()
    );
    for (ca, cb) in a.best.classes.iter().zip(&b.best.classes) {
        assert!(rel(ca.weight, cb.weight) < tol, "{label}: weight {} vs {}", ca.weight, cb.weight);
        for (ta, tb) in ca.terms.iter().zip(&cb.terms) {
            match (ta, tb) {
                (
                    TermParams::Normal { mean: m1, sigma: s1, .. },
                    TermParams::Normal { mean: m2, sigma: s2, .. },
                ) => {
                    assert!(rel(*m1, *m2) < tol, "{label}: mean {m1} vs {m2}");
                    assert!(rel(*s1, *s2) < tol, "{label}: sigma {s1} vs {s2}");
                }
                (TermParams::Multinomial { log_p: p1 }, TermParams::Multinomial { log_p: p2 }) => {
                    for (x, y) in p1.iter().zip(p2) {
                        assert!(rel(*x, *y) < tol, "{label}: log_p {x} vs {y}");
                    }
                }
                _ => panic!("{label}: term kind mismatch"),
            }
        }
    }
}

#[test]
fn parallel_matches_single_rank_for_all_p() {
    let data = datagen::paper_dataset(1200, 9);
    let config = quick_config(Strategy::Full { exchange: Exchange::PerTerm });
    let baseline = run_search(&data, &presets::zero_cost(1), &config).unwrap();
    assert!(baseline.best.converged, "baseline try should converge");
    for p in [2usize, 3, 4, 7, 10] {
        let out = run_search(&data, &presets::zero_cost(p), &config).unwrap();
        assert_outcomes_match(&out, &baseline, 1e-5, &format!("P={p}"));
    }
}

#[test]
fn fused_exchange_matches_per_term() {
    let data = datagen::paper_dataset(900, 11);
    let per_term = run_search(
        &data,
        &presets::zero_cost(5),
        &quick_config(Strategy::Full { exchange: Exchange::PerTerm }),
    )
    .unwrap();
    let fused = run_search(
        &data,
        &presets::zero_cost(5),
        &quick_config(Strategy::Full { exchange: Exchange::Fused }),
    )
    .unwrap();
    assert_outcomes_match(&fused, &per_term, 1e-9, "fused-vs-perterm");
}

#[test]
fn wts_only_strategy_matches_full() {
    // The Miller & Guo baseline computes the same mathematics with a
    // different data movement pattern; results must agree.
    let data = datagen::paper_dataset(800, 17);
    let full = run_search(
        &data,
        &presets::zero_cost(4),
        &quick_config(Strategy::Full { exchange: Exchange::PerTerm }),
    )
    .unwrap();
    let wts_only =
        run_search(&data, &presets::zero_cost(4), &quick_config(Strategy::WtsOnly)).unwrap();
    assert_outcomes_match(&wts_only, &full, 1e-5, "wtsonly-vs-full");
}

#[test]
fn parallel_search_with_mixed_attributes() {
    // Equivalence must hold for discrete attributes too (multinomial
    // statistics take the same Allreduce path).
    let mm = datagen::MixedMixture {
        classes: vec![
            datagen::MixedClass {
                means: vec![-6.0, 0.0],
                sigma: 1.0,
                level_probs: vec![vec![0.8, 0.1, 0.1]],
                weight: 1.0,
            },
            datagen::MixedClass {
                means: vec![6.0, 3.0],
                sigma: 1.0,
                level_probs: vec![vec![0.1, 0.1, 0.8]],
                weight: 1.5,
            },
        ],
        error: 0.05,
    };
    let (data, _) = mm.generate(1000, 23);
    let config = quick_config(Strategy::Full { exchange: Exchange::PerTerm });
    let baseline = run_search(&data, &presets::zero_cost(1), &config).unwrap();
    let par = run_search(&data, &presets::zero_cost(6), &config).unwrap();
    assert_outcomes_match(&par, &baseline, 1e-5, "mixed-P=6");
    assert_eq!(baseline.best.n_classes(), 2);
}

#[test]
fn parallel_search_recovers_planted_structure() {
    let gm = datagen::GaussianMixture::well_separated(4, 2, 15.0);
    let (data, _) = gm.generate(2000, 31);
    let config = ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![2, 4, 8],
            tries_per_j: 2,
            max_cycles: 40,
            ..SearchConfig::default()
        },
        ..ParallelConfig::default()
    };
    let out = run_search(&data, &presets::meiko_cs2(5), &config).unwrap();
    assert_eq!(out.best.n_classes(), 4, "should find the 4 planted clusters");
    assert!(out.elapsed > 0.0);
    assert!(out.cycles > 0);
}

#[test]
fn elapsed_time_is_deterministic() {
    let data = datagen::paper_dataset(600, 3);
    let config = quick_config(Strategy::Full { exchange: Exchange::PerTerm });
    let machine = presets::meiko_cs2(4);
    let a = run_search(&data, &machine, &config).unwrap();
    let b = run_search(&data, &machine, &config).unwrap();
    assert_eq!(a.elapsed, b.elapsed, "virtual time must be deterministic");
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn more_processors_than_items_works() {
    // Block partitioning hands empty partitions to the trailing ranks;
    // every kernel and collective must tolerate zero-row views.
    let data = datagen::paper_dataset(6, 2);
    let config = ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![2],
            tries_per_j: 1,
            max_cycles: 5,
            ..SearchConfig::default()
        },
        ..ParallelConfig::default()
    };
    let out = run_search(&data, &presets::zero_cost(10), &config).unwrap();
    assert!(out.best.n_classes() >= 1);
    assert!(out.best.approx.log_likelihood.is_finite());
    // Initialization draws from rank 0's partition (one item here), so
    // exact agreement with P=1 is not expected at this size — but the
    // run must complete with valid, finite parameters on every rank.
    for class in &out.best.classes {
        assert!(class.pi > 0.0 && class.pi <= 1.0);
        assert!(class.weight.is_finite() && class.weight >= 0.0);
    }
}

#[test]
fn single_item_dataset_does_not_crash() {
    let data = datagen::paper_dataset(1, 2);
    let config = ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![2],
            tries_per_j: 1,
            max_cycles: 3,
            ..SearchConfig::default()
        },
        ..ParallelConfig::default()
    };
    let out = run_search(&data, &presets::zero_cost(3), &config).unwrap();
    assert!(out.best.n_classes() >= 1);
}
